/**
 * @file
 * Shared helpers for the table/figure benchmark harnesses: per-kernel
 * analyses on the paper machine and the paper's published reference
 * numbers for side-by-side printing.
 *
 * Analyses are produced through the batch pipeline (src/pipeline) so
 * every table/figure bench shares one worker pool and one memoization
 * cache: the first bench to ask pays the compute, later requests (and
 * duplicated kernels within one process) are cache hits. Results are
 * deterministic and identical to serial model::analyzeKernel() calls.
 */

#ifndef MACS_BENCH_BENCH_UTIL_H
#define MACS_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <map>
#include <vector>

#include "lfk/kernels.h"
#include "lfk/paper_reference.h"
#include "macs/hierarchy.h"
#include "machine/machine_config.h"
#include "pipeline/pipeline.h"
#include "support/logging.h"

namespace macs::bench {

using lfk::PaperReference;
using lfk::paperReference;

/**
 * Median of @p samples (interpolated for even sizes). Preferred over
 * min/best-of-N for wall-clock measurements: the minimum is an
 * optimistic outlier under frequency scaling and cache luck, while the
 * median is robust against both tails and converges as N grows.
 */
inline double
median(std::vector<double> samples)
{
    MACS_ASSERT(!samples.empty(), "median of an empty sample set");
    std::sort(samples.begin(), samples.end());
    size_t mid = samples.size() / 2;
    if (samples.size() % 2 == 1)
        return samples[mid];
    return 0.5 * (samples[mid - 1] + samples[mid]);
}

/**
 * Run @p fn (returning a wall-time sample) @p reps times and return
 * the median. Callers should perform one untimed warm-up invocation
 * first so page faults, allocator growth, and thread-pool creation do
 * not land in the first sample.
 */
template <typename Fn>
double
medianOfN(int reps, Fn &&fn)
{
    std::vector<double> samples;
    samples.reserve(static_cast<size_t>(reps));
    for (int i = 0; i < reps; ++i)
        samples.push_back(fn());
    return median(std::move(samples));
}

/** Process-wide batch engine shared by the bench harnesses. */
inline pipeline::BatchEngine &
sharedEngine()
{
    static pipeline::BatchEngine engine;
    return engine;
}

/** Analyze every kernel once on the paper machine (memoized). */
inline const std::map<int, model::KernelAnalysis> &
allAnalyses()
{
    static const std::map<int, model::KernelAnalysis> cache = [] {
        std::map<int, model::KernelAnalysis> out;
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        pipeline::BatchResult batch =
            sharedEngine().run(pipeline::paperJobSet(cfg));
        for (size_t i = 0; i < batch.results.size(); ++i) {
            const pipeline::JobResult &r = batch.results[i];
            MACS_ASSERT(r.ok(), "bench analysis of ", r.label,
                        " failed: ", r.error);
            out.emplace(lfk::lfkIds()[i], *r.analysis);
        }
        return out;
    }();
    return cache;
}

} // namespace macs::bench

#endif // MACS_BENCH_BENCH_UTIL_H
