file(REMOVE_RECURSE
  "CMakeFiles/lfk_test.dir/lfk_test.cc.o"
  "CMakeFiles/lfk_test.dir/lfk_test.cc.o.d"
  "lfk_test"
  "lfk_test.pdb"
  "lfk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
