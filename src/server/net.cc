#include "server/net.h"

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>

#include "support/logging.h"

namespace macs::server {

namespace {

using Clock = std::chrono::steady_clock;

int
remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    return left > 0 ? static_cast<int>(left) : 0;
}

bool
parseAddr(const std::string &host, int port, sockaddr_in &out)
{
    std::memset(&out, 0, sizeof(out));
    out.sin_family = AF_INET;
    out.sin_port = htons(static_cast<uint16_t>(port));
    if (host.empty() || host == "0.0.0.0") {
        out.sin_addr.s_addr = htonl(INADDR_ANY);
        return true;
    }
    if (host == "localhost")
        return inet_pton(AF_INET, "127.0.0.1", &out.sin_addr) == 1;
    return inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

} // namespace

Listener::~Listener()
{
    close();
}

void
Listener::open(const std::string &host, int port, int backlog,
               bool reuse_port)
{
    sockaddr_in addr;
    if (!parseAddr(host, port, addr))
        fatal("serve: cannot parse listen address '", host, "'");

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("serve: socket(): ", std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (reuse_port &&
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
        int err = errno;
        ::close(fd);
        fatal("serve: SO_REUSEPORT unsupported: ",
              std::strerror(err));
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        int err = errno;
        ::close(fd);
        fatal("serve: cannot bind ", host, ":", port, ": ",
              std::strerror(err));
    }
    if (::listen(fd, backlog) != 0) {
        int err = errno;
        ::close(fd);
        fatal("serve: listen(): ", std::strerror(err));
    }

    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = port;
    fd_ = fd;
}

int
Listener::acceptFor(int timeout_ms)
{
    if (fd_ < 0)
        return kIoError;
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0)
        return kIoTimeout;
    if (rc < 0)
        return errno == EINTR ? kIoTimeout : kIoError;
    int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0)
        return errno == EINTR || errno == EAGAIN ||
                       errno == EWOULDBLOCK || errno == ECONNABORTED
                   ? kIoTimeout
                   : kIoError;
    int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return conn;
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
tcpConnect(const std::string &host, int port, int timeout_ms)
{
    sockaddr_in addr;
    if (!parseAddr(host.empty() ? "127.0.0.1" : host, port, addr))
        return kIoError;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return kIoError;
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
        ::close(fd);
        return kIoError;
    }
    if (rc != 0) {
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, timeout_ms) <= 0) {
            ::close(fd);
            return kIoError;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
            ::close(fd);
            return kIoError;
        }
    }
    ::fcntl(fd, F_SETFL, flags);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

int
readWithDeadline(int fd, char *buf, size_t len, int timeout_ms)
{
    pollfd pfd{fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0)
        return kIoTimeout;
    if (rc < 0)
        return errno == EINTR ? kIoTimeout : kIoError;
    ssize_t n = ::recv(fd, buf, len, 0);
    if (n > 0)
        return static_cast<int>(n);
    if (n == 0)
        return kIoEof;
    return errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK
               ? kIoTimeout
               : kIoError;
}

bool
writeAll(int fd, std::string_view data, int timeout_ms)
{
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    size_t off = 0;
    while (off < data.size()) {
        pollfd pfd{fd, POLLOUT, 0};
        int rc = ::poll(&pfd, 1, remainingMs(deadline));
        if (rc <= 0) {
            if (rc < 0 && errno == EINTR)
                continue;
            return false;
        }
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

void
ignoreSigpipe()
{
    // Thread-safe: concurrent first calls both store SIG_IGN.
    static std::atomic<bool> done{false};
    if (!done.exchange(true, std::memory_order_acq_rel))
        ::signal(SIGPIPE, SIG_IGN);
}

} // namespace macs::server
