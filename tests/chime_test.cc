/**
 * @file
 * Chime partitioner tests against the formation rules of paper
 * section 3.3, including the paper's own register-pair violation
 * examples and the LFK1 worked example.
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "lfk/kernels.h"
#include "macs/chime.h"
#include "machine/machine_config.h"

namespace macs::model {
namespace {

using machine::ChainingConfig;

std::vector<Chime>
partitionText(const std::string &body_text,
              ChainingConfig rules = ChainingConfig{})
{
    std::string text = ".comm x,1024\n.comm y,1024\n" + body_text;
    static std::vector<isa::Program> keep;
    keep.push_back(isa::assemble(text));
    return partitionChimes(keep.back().instrs(), rules);
}

TEST(Chime, EmptyBodyYieldsNoChimes)
{
    EXPECT_TRUE(partitionText("nop\n").empty());
}

TEST(Chime, SinglePipeConflictSplits)
{
    auto c = partitionText(R"(
    ld.l x(a5),v0
    ld.l y(a5),v1
)");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_TRUE(c[0].hasMemoryOp);
    EXPECT_TRUE(c[1].hasMemoryOp);
}

TEST(Chime, ThreePipesShareOneChime)
{
    auto c = partitionText(R"(
    ld.l x(a5),v0
    mul.d v0,s1,v1
    add.d v1,s2,v2
)");
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].instrs.size(), 3u);
    EXPECT_TRUE(c[0].usesPipe[0]);
    EXPECT_TRUE(c[0].usesPipe[1]);
    EXPECT_TRUE(c[0].usesPipe[2]);
}

TEST(Chime, PaperExampleThreeReadsOfPairSplits)
{
    // Paper: add.d v2,v6,v6 ; mul.d v6,v1,v4 exceeds two reads of
    // the {v2,v6} pair.
    auto c = partitionText(R"(
    add.d v2,v6,v6
    mul.d v6,v1,v4
)");
    EXPECT_EQ(c.size(), 2u);
}

TEST(Chime, PaperExampleTwoWritesOfPairSplits)
{
    // Paper: add.d v1,v0,v2 ; mul.d v2,v1,v6 exceeds one write to
    // the {v2,v6} pair.
    auto c = partitionText(R"(
    add.d v1,v0,v2
    mul.d v2,v1,v6
)");
    EXPECT_EQ(c.size(), 2u);
}

TEST(Chime, PairLimitsCanBeDisabled)
{
    ChainingConfig rules;
    rules.enforcePairLimits = false;
    auto c = partitionText(R"(
    add.d v2,v6,v6
    mul.d v6,v1,v4
)",
                           rules);
    EXPECT_EQ(c.size(), 1u);
}

TEST(Chime, TwoReadsOneWritePerPairAllowed)
{
    auto c = partitionText(R"(
    ld.l x(a5),v0
    mul.d v0,v1,v2
)");
    // v0 pair0: 1W (ld) + 1R (mul); v1 pair1 1R; v2 pair2 1W: legal.
    EXPECT_EQ(c.size(), 1u);
}

TEST(Chime, ScalarMemAfterVectorMemTerminatesChime)
{
    auto c = partitionText(R"(
    ld.l x(a5),v0
    ld.w y,s1
    mul.d v0,s1,v1
)");
    // The scalar load closes the chime holding the vector load; the
    // multiply starts a new chime.
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].instrs.size(), 1u);
    EXPECT_EQ(c[1].instrs.size(), 1u);
}

TEST(Chime, ScalarMemBeforeVectorMemSplitsToo)
{
    auto c = partitionText(R"(
    mul.d v0,s1,v1
    ld.w y,s2
    ld.l x(a5),v2
)");
    // "Terminated just before the scalar or vector memory reference,
    // whichever comes later": the vector load cannot join the chime
    // that spans the scalar access.
    ASSERT_EQ(c.size(), 2u);
    EXPECT_FALSE(c[0].hasMemoryOp);
    EXPECT_TRUE(c[1].hasMemoryOp);
}

TEST(Chime, ScalarMemDoesNotSplitFpOnlyChimes)
{
    // Paper section 4.4 (LFK8): a scalar load splits a potential
    // load-add-multiply chime but not an add-multiply chime.
    auto c = partitionText(R"(
    mul.d v0,s1,v1
    ld.w y,s2
    add.d v1,s2,v2
)");
    EXPECT_EQ(c.size(), 1u);
}

TEST(Chime, ScalarMemSplittingCanBeDisabled)
{
    ChainingConfig rules;
    rules.scalarMemSplitsChimes = false;
    auto c = partitionText(R"(
    ld.l x(a5),v0
    ld.w y,s1
    mul.d v0,s1,v1
)",
                           rules);
    EXPECT_EQ(c.size(), 1u);
}

TEST(Chime, NoChainingSplitsDependentInstructions)
{
    ChainingConfig rules;
    rules.chainingEnabled = false;
    auto c = partitionText(R"(
    ld.l x(a5),v0
    mul.d v0,s1,v1
)",
                           rules);
    EXPECT_EQ(c.size(), 2u);
}

TEST(Chime, NoChainingKeepsIndependentInstructionsTogether)
{
    ChainingConfig rules;
    rules.chainingEnabled = false;
    auto c = partitionText(R"(
    ld.l x(a5),v0
    mul.d v2,s1,v1
)",
                           rules);
    EXPECT_EQ(c.size(), 1u);
}

TEST(Chime, ScalarAluInstructionsAreMasked)
{
    auto c = partitionText(R"(
    ld.l x(a5),v0
    add #1024,a5
    sub #128,s0
    mul.d v0,s1,v1
)");
    EXPECT_EQ(c.size(), 1u);
}

TEST(Chime, Lfk1PaperListingYieldsFourChimes)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    auto body = p.innerLoop();
    auto chimes = partitionChimes(body, ChainingConfig{});
    ASSERT_EQ(chimes.size(), 4u);
    // Section 3.5: chime 1 = {ld, mul}, chimes 2-3 = {ld, mul, add},
    // chime 4 = {st}.
    EXPECT_EQ(chimes[0].instrs.size(), 2u);
    EXPECT_EQ(chimes[1].instrs.size(), 3u);
    EXPECT_EQ(chimes[2].instrs.size(), 3u);
    EXPECT_EQ(chimes[3].instrs.size(), 1u);
    for (const auto &c : chimes)
        EXPECT_TRUE(c.hasMemoryOp);
}

TEST(Chime, RenderShowsMembers)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    auto body = p.innerLoop();
    auto chimes = partitionChimes(body, ChainingConfig{});
    std::string txt = renderChimes(body, chimes);
    EXPECT_NE(txt.find("chime 1 [mem]"), std::string::npos);
    EXPECT_NE(txt.find("chime 4"), std::string::npos);
    EXPECT_NE(txt.find("st.l"), std::string::npos);
}

TEST(Chime, ReductionJoinsChimeOnAddPipe)
{
    auto c = partitionText(R"(
    ld.l x(a5),v0
    mul.d v0,v1,v2
    sum.d v2,s1
)");
    EXPECT_EQ(c.size(), 1u);
}

TEST(Chime, DivideOccupiesMultiplyPipe)
{
    auto c = partitionText(R"(
    div.d v0,v1,v2
    mul.d v3,v4,v5
)");
    EXPECT_EQ(c.size(), 2u);
}

} // namespace
} // namespace macs::model
