# Empty compiler generated dependencies file for macs_cli.
# This may be replaced when dependencies are built.
