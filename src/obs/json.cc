#include "obs/json.h"

#include <cctype>
#include <cstdlib>

#include "support/logging.h"

namespace macs::obs {

bool
JsonValue::asBool() const
{
    MACS_ASSERT(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    MACS_ASSERT(kind_ == Kind::Number, "JSON value is not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    MACS_ASSERT(kind_ == Kind::String, "JSON value is not a string");
    return string_;
}

size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    return 0;
}

const JsonValue &
JsonValue::at(size_t index) const
{
    MACS_ASSERT(kind_ == Kind::Array, "JSON value is not an array");
    MACS_ASSERT(index < array_.size(), "JSON array index ", index,
                " out of range (size ", array_.size(), ")");
    return array_[index];
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        fatal("JSON object has no member '", key, "'");
    return *v;
}

namespace {

/** Recursive-descent parser over an in-memory document. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        fatal("JSON parse error at byte ", pos_, ": ", what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            JsonValue v;
            v.kind_ = JsonValue::Kind::String;
            v.string_ = parseString();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.kind_ = JsonValue::Kind::Bool;
            if (consumeLiteral("true"))
                v.bool_ = true;
            else if (consumeLiteral("false"))
                v.bool_ = false;
            else
                fail("bad literal");
            return v;
          }
          case 'n': {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
          }
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.object_.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array_.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // ASCII range decoded; anything beyond is replaced
                // (this reader only verifies our own ASCII output).
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number");
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        v.number_ = d;
        return v;
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parseDocument();
}

} // namespace macs::obs
