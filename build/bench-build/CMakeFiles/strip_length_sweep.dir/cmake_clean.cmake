file(REMOVE_RECURSE
  "../bench/strip_length_sweep"
  "../bench/strip_length_sweep.pdb"
  "CMakeFiles/strip_length_sweep.dir/strip_length_sweep.cc.o"
  "CMakeFiles/strip_length_sweep.dir/strip_length_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strip_length_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
