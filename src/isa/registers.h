/**
 * @file
 * Register model for the Convex C-240 style ISA.
 *
 * The vector processor has eight vector registers v0..v7 of 128
 * 64-bit elements. The registers are organized as four *pairs*
 * {v0,v4}, {v1,v5}, {v2,v6}, {v3,v7}; during a single chime at most two
 * reads and one write may target each pair (paper section 3.3).
 *
 * The address/scalar unit has eight scalar registers s0..s7 and eight
 * address registers a0..a7, plus the special vector-length register VL.
 */

#ifndef MACS_ISA_REGISTERS_H
#define MACS_ISA_REGISTERS_H

#include <string>

namespace macs::isa {

/** Number of vector registers. */
inline constexpr int kNumVectorRegs = 8;
/** Number of scalar (s) registers. */
inline constexpr int kNumScalarRegs = 8;
/** Number of address (a) registers. */
inline constexpr int kNumAddressRegs = 8;
/** Architectural maximum vector length (elements per register). */
inline constexpr int kMaxVectorLength = 128;
/** Number of vector register pairs ({v0,v4} ... {v3,v7}). */
inline constexpr int kNumVectorPairs = 4;

/** Architectural register file a register name belongs to. */
enum class RegClass
{
    None,    ///< operand slot unused
    Vector,  ///< v0..v7
    Scalar,  ///< s0..s7
    Address, ///< a0..a7
    Vl,      ///< the vector length register
};

/** A register reference (class + index). */
struct Reg
{
    RegClass cls = RegClass::None;
    int index = 0;

    constexpr bool valid() const { return cls != RegClass::None; }
    constexpr bool isVector() const { return cls == RegClass::Vector; }
    constexpr bool isScalar() const { return cls == RegClass::Scalar; }
    constexpr bool isAddress() const { return cls == RegClass::Address; }

    constexpr bool
    operator==(const Reg &o) const
    {
        return cls == o.cls && (cls == RegClass::None ||
                                cls == RegClass::Vl || index == o.index);
    }

    /**
     * Vector register pair id in [0, kNumVectorPairs).
     * @pre isVector()
     */
    constexpr int pair() const { return index % kNumVectorPairs; }
};

/** Construct a vector register reference v<i>. */
constexpr Reg vreg(int i) { return {RegClass::Vector, i}; }
/** Construct a scalar register reference s<i>. */
constexpr Reg sreg(int i) { return {RegClass::Scalar, i}; }
/** Construct an address register reference a<i>. */
constexpr Reg areg(int i) { return {RegClass::Address, i}; }
/** The VL register. */
constexpr Reg vlreg() { return {RegClass::Vl, 0}; }
/** An empty operand slot. */
constexpr Reg noreg() { return {RegClass::None, 0}; }

/** Render a register as assembly text ("v0", "s3", "a5", "VL"). */
std::string toString(const Reg &r);

/**
 * Parse a register name.
 * @retval true on success (result in @p out)
 */
bool parseReg(const std::string &text, Reg &out);

} // namespace macs::isa

#endif // MACS_ISA_REGISTERS_H
