file(REMOVE_RECURSE
  "CMakeFiles/macs_bound_test.dir/macs_bound_test.cc.o"
  "CMakeFiles/macs_bound_test.dir/macs_bound_test.cc.o.d"
  "macs_bound_test"
  "macs_bound_test.pdb"
  "macs_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
