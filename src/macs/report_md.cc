#include "macs/report_md.h"

#include <sstream>
#include <vector>

#include "lfk/paper_reference.h"
#include "macs/metrics.h"
#include "support/math_util.h"
#include "support/strings.h"

namespace macs::model {

namespace {

/** Minimal markdown table builder. */
class MdTable
{
  public:
    explicit MdTable(std::vector<std::string> header)
        : header_(std::move(header))
    {
    }

    void
    addRow(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    std::string
    render() const
    {
        std::ostringstream os;
        auto emit = [&](const std::vector<std::string> &cells) {
            os << '|';
            for (const auto &c : cells)
                os << ' ' << c << " |";
            os << '\n';
        };
        emit(header_);
        os << '|';
        for (size_t i = 0; i < header_.size(); ++i)
            os << "---|";
        os << '\n';
        for (const auto &r : rows_)
            emit(r);
        return os.str();
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

std::string
num(double v, int decimals = 3)
{
    return format("%.*f", decimals, v);
}

} // namespace

std::string
renderMarkdownReport(const std::map<int, KernelAnalysis> &analyses,
                     const machine::MachineConfig &config,
                     bool include_paper_columns)
{
    std::ostringstream os;
    os << "# MACS reproduction report\n\n";
    os << format(
        "Machine: %.0f MHz (%.0f ns clock), VL %d, %d banks (busy %d "
        "cycles), refresh %s.\n\n",
        config.clockMhz, config.clockNs(), config.maxVectorLength,
        config.memory.banks, config.memory.bankBusyCycles,
        config.memory.refreshEnabled ? "on" : "off");

    // ---- Table 2 ----
    os << "## Workloads (paper Table 2)\n\n";
    MdTable t2({"LFK", "f_a", "f_m", "l", "s", "f_a'", "f_m'", "l'",
                "s'"});
    for (const auto &[id, a] : analyses) {
        t2.addRow({"LFK" + std::to_string(id),
                   std::to_string(a.ma.fAdd), std::to_string(a.ma.fMul),
                   std::to_string(a.ma.loads),
                   std::to_string(a.ma.stores),
                   std::to_string(a.mac.fAdd),
                   std::to_string(a.mac.fMul),
                   std::to_string(a.mac.loads),
                   std::to_string(a.mac.stores)});
    }
    os << t2.render() << '\n';

    // ---- Table 3 ----
    os << "## Bounds in CPL (paper Table 3)\n\n";
    MdTable t3({"LFK", "t_f'", "t_MACS^f", "t_m'", "t_MACS^m", "t_MA",
                "t_MAC", "t_MACS"});
    for (const auto &[id, a] : analyses) {
        t3.addRow({"LFK" + std::to_string(id), num(a.macBound.tF, 0),
                   num(a.macsFOnly.cpl, 2), num(a.macBound.tM, 0),
                   num(a.macsMOnly.cpl, 2), num(a.maBound.bound, 0),
                   num(a.macBound.bound, 0), num(a.macs.cpl, 2)});
    }
    os << t3.render() << '\n';

    // ---- Table 4 ----
    os << "## Bounds vs measured CPF (paper Table 4)\n\n";
    std::vector<std::string> h4 = {"LFK", "t_MA", "t_MAC", "t_MACS",
                                   "t_p", "%MACS of t_p"};
    if (include_paper_columns)
        h4.push_back("paper t_p");
    MdTable t4(h4);
    std::vector<double> ma, mac, macs, act;
    for (const auto &[id, a] : analyses) {
        ma.push_back(a.maCpf());
        mac.push_back(a.macCpf());
        macs.push_back(a.macsCpf());
        act.push_back(a.actualCpf());
        std::vector<std::string> row = {
            "LFK" + std::to_string(id), num(a.maCpf()), num(a.macCpf()),
            num(a.macsCpf()), num(a.actualCpf()),
            num(100.0 * a.macsCpf() / a.actualCpf(), 1) + "%"};
        if (include_paper_columns) {
            auto it = lfk::paperReference().find(id);
            row.push_back(it == lfk::paperReference().end()
                              ? "-"
                              : num(it->second.tpCpf));
        }
        t4.addRow(row);
    }
    std::vector<std::string> avg = {"**AVG**", num(mean(ma)),
                                    num(mean(mac)), num(mean(macs)),
                                    num(mean(act)), ""};
    if (include_paper_columns)
        avg.push_back("1.900");
    t4.addRow(avg);
    std::vector<std::string> mf = {
        "**MFLOPS**", num(hmeanMflops(ma, config.clockMhz), 2),
        num(hmeanMflops(mac, config.clockMhz), 2),
        num(hmeanMflops(macs, config.clockMhz), 2),
        num(hmeanMflops(act, config.clockMhz), 2), ""};
    if (include_paper_columns)
        mf.push_back("13.16");
    t4.addRow(mf);
    os << t4.render() << '\n';

    // ---- Table 5 ----
    os << "## A/X measurements in CPL (paper Table 5)\n\n";
    std::vector<std::string> h5 = {"LFK", "t_p", "t_MACS", "t_A",
                                   "t_MACS^m", "t_X", "t_MACS^f"};
    if (include_paper_columns) {
        h5.push_back("paper t_A");
        h5.push_back("paper t_X");
    }
    MdTable t5(h5);
    for (const auto &[id, a] : analyses) {
        std::vector<std::string> row = {
            "LFK" + std::to_string(id), num(a.tP, 2), num(a.macs.cpl, 2),
            num(a.tA, 2),  num(a.macsMOnly.cpl, 2),
            num(a.tX, 2),  num(a.macsFOnly.cpl, 2)};
        if (include_paper_columns) {
            auto it = lfk::paperReference().find(id);
            if (it == lfk::paperReference().end()) {
                row.push_back("-");
                row.push_back("-");
            } else {
                row.push_back(num(it->second.tACpl, 2));
                row.push_back(num(it->second.tXCpl, 2));
            }
        }
        t5.addRow(row);
    }
    os << t5.render() << '\n';

    // ---- Per-kernel diagnosis ----
    os << "## Gap diagnosis (paper section 4.4)\n\n";
    for (const auto &[id, a] : analyses) {
        os << "### LFK" << id << "\n\n```\n"
           << renderReport(a, config) << "```\n\n";
    }
    return os.str();
}

} // namespace macs::model
