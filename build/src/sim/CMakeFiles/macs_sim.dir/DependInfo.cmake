
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bank_model.cc" "src/sim/CMakeFiles/macs_sim.dir/bank_model.cc.o" "gcc" "src/sim/CMakeFiles/macs_sim.dir/bank_model.cc.o.d"
  "/root/repo/src/sim/contention.cc" "src/sim/CMakeFiles/macs_sim.dir/contention.cc.o" "gcc" "src/sim/CMakeFiles/macs_sim.dir/contention.cc.o.d"
  "/root/repo/src/sim/memory_image.cc" "src/sim/CMakeFiles/macs_sim.dir/memory_image.cc.o" "gcc" "src/sim/CMakeFiles/macs_sim.dir/memory_image.cc.o.d"
  "/root/repo/src/sim/memory_port.cc" "src/sim/CMakeFiles/macs_sim.dir/memory_port.cc.o" "gcc" "src/sim/CMakeFiles/macs_sim.dir/memory_port.cc.o.d"
  "/root/repo/src/sim/multi_cpu.cc" "src/sim/CMakeFiles/macs_sim.dir/multi_cpu.cc.o" "gcc" "src/sim/CMakeFiles/macs_sim.dir/multi_cpu.cc.o.d"
  "/root/repo/src/sim/profile.cc" "src/sim/CMakeFiles/macs_sim.dir/profile.cc.o" "gcc" "src/sim/CMakeFiles/macs_sim.dir/profile.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/macs_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/macs_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/macs_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/macs_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/macs_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/macs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/macs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
