#include "macs/ax_transform.h"

#include <map>

#include "support/logging.h"

namespace macs::model {

isa::Program
makeAxProgram(const isa::Program &prog, AxVariant variant)
{
    auto removed = [&](const isa::Instruction &in) {
        switch (variant) {
          case AxVariant::AccessOnly:
            return in.isVector() && !in.isVectorMemory();
          case AxVariant::ExecuteOnly:
            return in.isVectorMemory();
        }
        panic("unreachable AxVariant");
    };

    isa::Program out;
    for (const auto &sym : prog.dataSymbols())
        out.defineData(sym.name, sym.words);

    // Labels indexed by original instruction position.
    std::map<size_t, std::vector<std::string>> labels_at;
    for (const auto &[name, idx] : prog.labels())
        labels_at[idx].push_back(name);

    const auto &instrs = prog.instrs();
    for (size_t i = 0; i <= instrs.size(); ++i) {
        auto it = labels_at.find(i);
        if (it != labels_at.end())
            for (const auto &name : it->second)
                out.label(name);
        if (i < instrs.size() && !removed(instrs[i]))
            out.append(instrs[i]);
    }

    out.validate();
    return out;
}

} // namespace macs::model
