# Empty dependencies file for macs_lfk.
# This may be replaced when dependencies are built.
