#include "sim/mp/shared_memory.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.h"

namespace macs::sim::mp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
} // namespace

SharedMemorySystem::SharedMemorySystem(
    const machine::MemoryConfig &config, int cpus)
    : config_(config),
      rateModel_(config, 1.0),
      cpu_(static_cast<size_t>(cpus)),
      ports_(static_cast<size_t>(cpus)),
      bankWindows_(static_cast<size_t>(config.banks))
{
    MACS_ASSERT(cpus >= 1, "shared memory needs at least one CPU");
    MACS_ASSERT(config_.banks >= 1, "bank count must be positive");
    for (int i = 0; i < cpus; ++i)
        ports_[static_cast<size_t>(i)].bind(this, i);
}

ExternalMemoryPort &
SharedMemorySystem::port(int cpu)
{
    MACS_ASSERT(cpu >= 0 && cpu < cpus(), "bad cpu index");
    return ports_[static_cast<size_t>(cpu)];
}

void
SharedMemorySystem::setTimeSkewCycles(int cpu, double cycles)
{
    MACS_ASSERT(cpu >= 0 && cpu < cpus(), "bad cpu index");
    MACS_ASSERT(cycles >= 0.0, "time skew must be non-negative");
    std::lock_guard<std::mutex> lock(mu_);
    cpu_[static_cast<size_t>(cpu)].timeSkew = cycles;
}

void
SharedMemorySystem::setAddressSkewWords(int cpu, int64_t words)
{
    MACS_ASSERT(cpu >= 0 && cpu < cpus(), "bad cpu index");
    std::lock_guard<std::mutex> lock(mu_);
    cpu_[static_cast<size_t>(cpu)].addrSkew = words;
}

void
SharedMemorySystem::finish(int cpu)
{
    MACS_ASSERT(cpu >= 0 && cpu < cpus(), "bad cpu index");
    std::lock_guard<std::mutex> lock(mu_);
    CpuState &c = cpu_[static_cast<size_t>(cpu)];
    MACS_ASSERT(!c.finished, "finish() called twice for one cpu");
    c.finished = true;
    c.horizon = kInf;
    cv_.notify_all();
}

SharedCpuStats
SharedMemorySystem::cpuStats(int cpu) const
{
    MACS_ASSERT(cpu >= 0 && cpu < cpus(), "bad cpu index");
    std::lock_guard<std::mutex> lock(mu_);
    return cpu_[static_cast<size_t>(cpu)].stats;
}

double
SharedMemorySystem::strideRate(int64_t stride_words) const
{
    return rateModel_.strideRate(stride_words);
}

double
SharedMemorySystem::freeAt(int cpu) const
{
    MACS_ASSERT(cpu >= 0 && cpu < cpus(), "bad cpu index");
    std::lock_guard<std::mutex> lock(mu_);
    const CpuState &c = cpu_[static_cast<size_t>(cpu)];
    return c.freeAt - c.timeSkew;
}

int
SharedMemorySystem::bankOf(int64_t word) const
{
    int64_t banks = config_.banks;
    return static_cast<int>(((word % banks) + banks) % banks);
}

void
SharedMemorySystem::advanceRefreshCursor(CpuState &c, double x) const
{
    // Verbatim MemoryPort::advanceRefreshCursor over the CPU's own
    // cursor: the boundary grid k*period is global, so every CPU
    // computes the same exact double boundaries.
    double period = config_.refreshPeriodCycles;
    if (x - c.refreshCursor > 64.0 * period)
        c.refreshCursor = std::floor(x / period) * period;
    while (c.refreshCursor + period <= x)
        c.refreshCursor += period;
}

double
SharedMemorySystem::refreshStall(CpuState &c, double begin,
                                 double end) const
{
    // Verbatim MemoryPort::refreshStall (the bit-exactness contract).
    if (!config_.refreshEnabled || end <= begin)
        return 0.0;
    double period = config_.refreshPeriodCycles;
    double duration = config_.refreshDurationCycles;
    advanceRefreshCursor(c, begin);
    if (end < c.refreshCursor + period)
        return 0.0;
    double stall = 0.0;
    long first = static_cast<long>(std::floor(begin / period)) + 1;
    long last = static_cast<long>(std::floor((end + stall) / period));
    while (true) {
        long count = std::max(0L, last - first + 1);
        double new_stall = duration * static_cast<double>(count);
        long new_last =
            static_cast<long>(std::floor((end + new_stall) / period));
        if (new_last == last) {
            stall = new_stall;
            break;
        }
        last = new_last;
    }
    return stall;
}

bool
SharedMemorySystem::safeAt(int cpu, double t) const
{
    // An event at (t, cpu) may commit once no other unfinished CPU
    // can still produce an event ordered before it: every foreign
    // horizon must lie beyond t, or at t with a larger index.
    for (int j = 0; j < cpus(); ++j) {
        if (j == cpu)
            continue;
        const CpuState &o = cpu_[static_cast<size_t>(j)];
        if (o.finished)
            continue;
        if (o.horizon < t)
            return false;
        if (o.horizon == t && j < cpu)
            return false;
    }
    return true;
}

double
SharedMemorySystem::foreignBusyEnd(int cpu, int bank, double t) const
{
    double end = -1.0;
    for (const BankWindow &w : bankWindows_[static_cast<size_t>(bank)])
        if (w.cpu != cpu && w.start <= t && t < w.end)
            end = std::max(end, w.end);
    return end;
}

double
SharedMemorySystem::commitElement(std::unique_lock<std::mutex> &lock,
                                  int cpu, double t, int bank)
{
    CpuState &c = cpu_[static_cast<size_t>(cpu)];
    double busy = config_.bankBusyCycles;
    double restart = config_.arbitrationRestartCycles;
    for (;;) {
        if (c.horizon != t) {
            c.horizon = t;
            cv_.notify_all();
        }
        cv_.wait(lock, [&] { return safeAt(cpu, t); });
        double pushed = foreignBusyEnd(cpu, bank, t);
        if (pushed < 0.0)
            break;
        // The bank is held by another CPU: lose the remainder of its
        // reservation plus the port re-arbitration handshake, then
        // try again (the freed bank may have been grabbed by a third
        // CPU ordered between the reservations).
        t = pushed + restart;
        ++c.stats.collisions;
    }
    bankWindows_[static_cast<size_t>(bank)].push_back(
        {t, t + busy, cpu});
    return t;
}

void
SharedMemorySystem::pruneWindows()
{
    // A window whose end precedes every unfinished CPU's horizon can
    // never cover a future query (all future events commit at or
    // after their CPU's horizon).
    double min_h = kInf;
    for (const CpuState &c : cpu_)
        if (!c.finished)
            min_h = std::min(min_h, c.horizon);
    for (auto &windows : bankWindows_) {
        auto keep = std::remove_if(windows.begin(), windows.end(),
                                   [min_h](const BankWindow &w) {
                                       return w.end <= min_h;
                                   });
        windows.erase(keep, windows.end());
    }
}

StreamTiming
SharedMemorySystem::serviceStream(int cpu, double earliest,
                                  int elements, int64_t stride_words,
                                  double rate_floor,
                                  uint64_t start_word)
{
    MACS_ASSERT(cpu >= 0 && cpu < cpus(), "bad cpu index");
    MACS_ASSERT(elements > 0, "empty vector stream");
    std::unique_lock<std::mutex> lock(mu_);
    CpuState &c = cpu_[static_cast<size_t>(cpu)];
    double skew = c.timeSkew;

    // Own-port arithmetic: verbatim MemoryPort::serviceStreamWithRate
    // at contention 1.0, in global time.
    StreamTiming t;
    double prev_busy_end = c.freeAt;
    t.enter = std::max(earliest + skew, c.freeAt);
    if (config_.refreshEnabled) {
        double duration = config_.refreshDurationCycles;
        advanceRefreshCursor(c, t.enter);
        double boundary = c.refreshCursor;
        if (boundary > prev_busy_end && boundary + duration > t.enter) {
            t.enter += duration;
            t.refreshStall += duration;
        }
    }
    t.rate = std::max(rate_floor, rateModel_.strideRate(stride_words));

    // Inter-CPU coupling: commit each element as one global event and
    // accumulate the pushes foreign bank reservations force. Element
    // k's nominal slot is enter + rate*k (a product, not a running
    // sum, so delay == 0 leaves the single-CPU arithmetic untouched).
    double delay = 0.0;
    if (cpus() > 1) {
        int64_t base = static_cast<int64_t>(start_word) + c.addrSkew;
        for (int k = 0; k < elements; ++k) {
            double tk = t.enter + t.rate * k + delay;
            int bank = bankOf(base + static_cast<int64_t>(k) *
                                         stride_words);
            double committed = commitElement(lock, cpu, tk, bank);
            delay += committed - tk;
        }
    }

    double nominal_end = t.enter + t.rate * elements;
    double in_stream = refreshStall(c, t.enter, nominal_end + delay);
    t.refreshStall += in_stream;
    t.streamEnd = nominal_end + delay + in_stream;
    c.freeAt = t.streamEnd;
    c.horizon = std::max(c.horizon, c.freeAt);
    cv_.notify_all();

    SharedCpuStats &st = c.stats;
    ++st.streams;
    st.elements += static_cast<uint64_t>(elements);
    st.slotCycles += t.rate * elements;
    st.foreignDelayCycles += delay;
    st.refreshStallCycles += t.refreshStall;
    st.portBusyCycles += t.streamEnd - t.enter;

    if (cpus() > 1)
        pruneWindows();

    t.enter -= skew;
    t.streamEnd -= skew;
    return t;
}

ScalarAccessTiming
SharedMemorySystem::serviceScalar(int cpu, double earliest,
                                  uint64_t word)
{
    MACS_ASSERT(cpu >= 0 && cpu < cpus(), "bad cpu index");
    std::unique_lock<std::mutex> lock(mu_);
    CpuState &c = cpu_[static_cast<size_t>(cpu)];
    double skew = c.timeSkew;

    // Own-port arithmetic: verbatim MemoryPort::serviceScalar at
    // contention 1.0 (2.0 * 1.0 == 2.0), in global time.
    ScalarAccessTiming t;
    t.start = std::max(earliest + skew, c.freeAt);
    if (cpus() > 1) {
        int bank = bankOf(static_cast<int64_t>(word) + c.addrSkew);
        double committed = commitElement(lock, cpu, t.start, bank);
        c.stats.foreignDelayCycles += committed - t.start;
        t.start = committed;
    }
    t.done = t.start + 2.0;
    c.freeAt = t.done;
    c.horizon = std::max(c.horizon, c.freeAt);
    cv_.notify_all();

    SharedCpuStats &st = c.stats;
    ++st.scalarAccesses;
    st.slotCycles += 2.0;
    st.portBusyCycles += t.done - t.start;

    t.start -= skew;
    t.done -= skew;
    return t;
}

} // namespace macs::sim::mp
