#include "obs/trace_export.h"

#include <sstream>

#include "obs/export.h"
#include "obs/json.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::obs {

namespace {

// Thread-id layout of the exported process (see the header).
constexpr int kStreamTid = 0;  ///< +pipe: stream tracks
constexpr int kStallTid = 3;   ///< +pipe: stall tracks
constexpr int kMemoryTid = 6;  ///< memory-port track

const char *const kPipeNames[3] = {"load/store", "add", "multiply"};

/** %.17g: doubles survive a print/parse round trip bit-for-bit. */
std::string
cyc(double v)
{
    return format("%.17g", v);
}

/** chrome://tracing reserved color per stall cause. */
const char *
stallColor(sim::StallCause cause)
{
    switch (cause) {
      case sim::StallCause::Chain:
        return "thread_state_runnable"; // green
      case sim::StallCause::Interlock:
        return "thread_state_iowait";   // orange
      case sim::StallCause::Tailgate:
        return "thread_state_sleeping"; // grey
      case sim::StallCause::PairPort:
        return "terrible";              // red
      case sim::StallCause::MemoryPort:
        return "bad";                   // dark red
      case sim::StallCause::None:
        break;
    }
    return "good";
}

void
metaEvent(std::ostringstream &os, const char *name, int tid,
          const std::string &value, bool sort_index = false)
{
    os << "    {\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"name\": \"" << name << "\", \"args\": {\""
       << (sort_index ? "sort_index" : "name") << "\": "
       << (sort_index ? value : "\"" + jsonEscape(value) + "\"")
       << "}},\n";
}

} // namespace

std::string
renderChromeTrace(const sim::Timeline &timeline,
                  const sim::RunStats &stats,
                  const TraceExportOptions &options)
{
    std::ostringstream os;
    os << "{\n  \"traceEvents\": [\n";

    // Metadata: process and track names, viewer ordering.
    os << "    {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
          "\"args\": {\"name\": \""
       << jsonEscape(options.processName) << "\"}},\n";
    for (int p = 0; p < 3; ++p) {
        metaEvent(os, "thread_name", kStreamTid + p,
                  std::string("pipe ") + kPipeNames[p] + " (stream)");
        metaEvent(os, "thread_sort_index", kStreamTid + p,
                  format("%d", 2 * p), /*sort_index=*/true);
        if (options.includeStalls) {
            metaEvent(os, "thread_name", kStallTid + p,
                      std::string("pipe ") + kPipeNames[p] +
                          " (stalls)");
            metaEvent(os, "thread_sort_index", kStallTid + p,
                      format("%d", 2 * p + 1), /*sort_index=*/true);
        }
    }
    if (options.includeMemoryPort) {
        metaEvent(os, "thread_name", kMemoryTid, "memory port");
        metaEvent(os, "thread_sort_index", kMemoryTid, "6",
                  /*sort_index=*/true);
    }

    auto span = [&](const char *cat, int tid, const std::string &name,
                    double ts, double dur, const std::string &args,
                    const char *cname = nullptr) {
        os << "    {\"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
           << ", \"cat\": \"" << cat << "\", \"name\": \""
           << jsonEscape(name) << "\", \"ts\": " << cyc(ts)
           << ", \"dur\": " << cyc(dur);
        if (cname != nullptr)
            os << ", \"cname\": \"" << cname << "\"";
        os << ", \"args\": {" << args << "}},\n";
    };

    for (const sim::TimelineEvent &ev : timeline.events()) {
        MACS_ASSERT(ev.pipe >= 0 && ev.pipe < 3,
                    "timeline event without pipe attribution (pc ",
                    ev.pc, ")");
        // Stream span: first element entering .. last element in.
        // args.busy carries the exact pipe-busy charge (rate * VL);
        // the visual span additionally covers mid-stream holds
        // (refresh), so dur >= busy.
        span("stream", kStreamTid + ev.pipe, ev.text, ev.enter,
             ev.streamEnd - ev.enter,
             format("\"pc\": %zu, ", ev.pc) + "\"busy\": " +
                 cyc(ev.busy) +
                 ", \"firstResult\": " + cyc(ev.firstResult) +
                 ", \"complete\": " + cyc(ev.complete));
        if (options.includeStalls && ev.stall > 0.0) {
            // The wait sits immediately before pipe entry.
            span("stall", kStallTid + ev.pipe,
                 sim::stallCauseName(ev.cause), ev.enter - ev.stall,
                 ev.stall, format("\"pc\": %zu", ev.pc),
                 stallColor(ev.cause));
        }
        if (options.includeMemoryPort && ev.pipe == 0) {
            span("memory", kMemoryTid, ev.text, ev.enter,
                 ev.streamEnd - ev.enter,
                 format("\"pc\": %zu", ev.pc));
        }
    }

    // Trailing aggregate block: lets consumers cross-check span sums
    // against the simulator's own accounting without re-running it.
    os << "    {\"ph\": \"M\", \"pid\": 1, \"name\": "
          "\"macs_totals\", \"args\": {\"cycles\": "
       << cyc(stats.cycles) << "}}\n";
    os << "  ],\n";
    os << "  \"displayTimeUnit\": \"ms\",\n";
    os << "  \"otherData\": {\n";
    os << "    \"schema\": \"macs-trace-v1\",\n";
    os << "    \"cycles\": " << cyc(stats.cycles) << ",\n";
    os << "    \"pipeBusy\": [" << cyc(stats.loadStorePipeBusy) << ", "
       << cyc(stats.addPipeBusy) << ", " << cyc(stats.multiplyPipeBusy)
       << "],\n";
    os << "    \"refreshStallCycles\": " << cyc(stats.refreshStallCycles)
       << ",\n";
    os << "    \"bankConflictCycles\": " << cyc(stats.bankConflictCycles)
       << ",\n";
    os << "    \"vectorInstructions\": " << stats.vectorInstructions
       << ",\n";
    os << "    \"timeUnit\": \"cycles (rendered as us)\"\n";
    os << "  }\n}\n";
    return os.str();
}

TraceTotals
summarizeChromeTrace(const std::string &json_text)
{
    JsonValue doc = parseJson(json_text);
    TraceTotals totals;

    const JsonValue &events = doc.at("traceEvents");
    MACS_ASSERT(events.isArray(), "traceEvents must be an array");
    for (size_t i = 0; i < events.size(); ++i) {
        const JsonValue &ev = events.at(i);
        const JsonValue *ph = ev.find("ph");
        if (ph == nullptr || ph->asString() != "X")
            continue;
        const std::string &cat = ev.at("cat").asString();
        long tid = static_cast<long>(ev.at("tid").asDouble());
        if (cat == "stream") {
            MACS_ASSERT(tid >= kStreamTid && tid < kStreamTid + 3,
                        "stream event on unexpected tid ", tid);
            // Sum args.busy in event order: reproduces the
            // simulator's own accumulation order exactly.
            totals.pipeBusy[tid - kStreamTid] +=
                ev.at("args").at("busy").asDouble();
            ++totals.streamEvents;
        } else if (cat == "stall") {
            totals.stall += ev.at("dur").asDouble();
            ++totals.stallEvents;
        }
    }
    totals.cycles = doc.at("otherData").at("cycles").asDouble();
    return totals;
}

} // namespace macs::obs
