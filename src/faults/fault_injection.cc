#include "faults/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

#include "support/hash.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::faults {

namespace {

constexpr const char *kSiteNames[kSiteCount] = {
    "alloc",         "worker-exception", "compute-delay",
    "cache-corrupt", "io-write-fail",    "net-accept",
    "net-read",      "net-write",        "proc-crash",
    "proc-hang",
};

/** splitmix64: high-quality 64-bit mix (Steele et al.). */
uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

const char *
siteName(Site site)
{
    return kSiteNames[static_cast<size_t>(site)];
}

std::optional<Site>
siteFromName(std::string_view name)
{
    for (size_t i = 0; i < kSiteCount; ++i)
        if (name == kSiteNames[i])
            return static_cast<Site>(i);
    return std::nullopt;
}

bool
faultDecision(uint64_t seed, Site site, uint64_t key, double prob)
{
    if (prob <= 0.0)
        return false;
    if (prob >= 1.0)
        return true;
    uint64_t mixed =
        splitmix64(seed ^ fnv1a64(siteName(site)) ^ key);
    // Top 53 bits -> uniform double in [0, 1).
    double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
    return u < prob;
}

FaultPlan
FaultPlan::parse(std::string_view text, Diagnostics &diags)
{
    FaultPlan plan;
    for (const std::string &entry : split(text, ',')) {
        auto fields = split(entry, ':', /*trim=*/true, /*keep_empty=*/true);
        if (fields.size() < 3 || fields.size() > 4) {
            diags.error(detail::concat(
                "fault spec '", entry,
                "' must be site:prob:seed[:param] (",
                fields.size(), " field(s) given)"));
            continue;
        }
        SiteSpec spec;
        auto site = siteFromName(fields[0]);
        if (!site) {
            std::string known;
            for (size_t i = 0; i < kSiteCount; ++i)
                known += detail::concat(i ? ", " : "", kSiteNames[i]);
            diags.error(detail::concat("unknown fault site '", fields[0],
                                       "' (known sites: ", known, ")"));
            continue;
        }
        spec.site = *site;
        double prob = 0.0;
        if (!parseDouble(fields[1], prob) || prob < 0.0 || prob > 1.0) {
            diags.error(detail::concat("fault probability '", fields[1],
                                       "' of site '", fields[0],
                                       "' must be a number in [0, 1]"));
            continue;
        }
        spec.probability = prob;
        long seed = 0;
        if (!parseInt(fields[2], seed) || seed < 0) {
            diags.error(detail::concat("fault seed '", fields[2],
                                       "' of site '", fields[0],
                                       "' must be a non-negative integer"));
            continue;
        }
        spec.seed = static_cast<uint64_t>(seed);
        if (fields.size() == 4) {
            double param = 0.0;
            if (!parseDouble(fields[3], param) || param < 0.0) {
                diags.error(detail::concat(
                    "fault param '", fields[3], "' of site '", fields[0],
                    "' must be a non-negative number"));
                continue;
            }
            spec.param = param;
        }
        plan.add(spec);
    }
    return plan;
}

FaultPlan
FaultPlan::parse(std::string_view text)
{
    Diagnostics diags("MACS_FAULTS");
    FaultPlan plan = parse(text, diags);
    diags.throwIfErrors();
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    const char *env = std::getenv("MACS_FAULTS");
    if (env == nullptr || *env == '\0')
        return {};
    return parse(env);
}

void
FaultPlan::add(const SiteSpec &spec)
{
    size_t i = static_cast<size_t>(spec.site);
    if (!present_[i])
        ++active_;
    present_[i] = true;
    specs_[i] = spec;
}

const SiteSpec *
FaultPlan::spec(Site site) const
{
    size_t i = static_cast<size_t>(site);
    return present_[i] ? &specs_[i] : nullptr;
}

std::string
FaultPlan::describe() const
{
    std::string out;
    for (size_t i = 0; i < kSiteCount; ++i) {
        if (!present_[i])
            continue;
        if (!out.empty())
            out += ',';
        out += format("%s:%g:%llu", kSiteNames[i], specs_[i].probability,
                      static_cast<unsigned long long>(specs_[i].seed));
        if (specs_[i].param != 0.0)
            out += format(":%g", specs_[i].param);
    }
    return out;
}

FaultInjector::FaultInjector(FaultPlan plan, obs::Registry *metrics)
    : plan_(std::move(plan)), metrics_(metrics)
{
}

bool
FaultInjector::shouldFire(Site site, uint64_t key) const
{
    const SiteSpec *spec = plan_.spec(site);
    if (spec == nullptr)
        return false;

    size_t i = static_cast<size_t>(site);
    obs::Registry &reg =
        metrics_ != nullptr ? *metrics_ : obs::Registry::global();
    obs::Counter *evaluated =
        evaluated_[i].load(std::memory_order_acquire);
    if (evaluated == nullptr) {
        // Registry references are stable for its lifetime, and
        // counter() returns the same object for the same series, so a
        // racing initialization stores an identical pointer.
        evaluated = &reg.counter("macs_faults_evaluated_total",
                                 "Fault-site evaluations by site",
                                 obs::Labels{{"site", siteName(site)}});
        evaluated_[i].store(evaluated, std::memory_order_release);
    }
    evaluated->inc();

    if (!faultDecision(spec->seed, site, key, spec->probability))
        return false;

    obs::Counter *fired = fired_[i].load(std::memory_order_acquire);
    if (fired == nullptr) {
        fired = &reg.counter("macs_faults_fired_total",
                             "Injected faults fired by site",
                             obs::Labels{{"site", siteName(site)}});
        fired_[i].store(fired, std::memory_order_release);
    }
    fired->inc();
    return true;
}

bool
FaultInjector::shouldFire(Site site) const
{
    uint64_t n = sequence_[static_cast<size_t>(site)].fetch_add(
        1, std::memory_order_relaxed);
    return shouldFire(site, n);
}

double
FaultInjector::param(Site site, double fallback) const
{
    const SiteSpec *spec = plan_.spec(site);
    return (spec != nullptr && spec->param > 0.0) ? spec->param
                                                  : fallback;
}

void
FaultInjector::maybeFailAlloc(uint64_t key) const
{
    if (shouldFire(Site::AllocFail, key))
        throw std::bad_alloc();
}

void
FaultInjector::maybeThrowWorker(uint64_t key, std::string_view what) const
{
    if (shouldFire(Site::WorkerException, key))
        throw TransientFault(
            detail::concat("injected worker exception (", what, ")"));
}

void
FaultInjector::maybeDelay(uint64_t key,
                          const std::atomic<bool> *cancel) const
{
    if (!shouldFire(Site::ComputeDelay, key))
        return;
    double delay_ms = param(Site::ComputeDelay, 50.0);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double, std::milli>(delay_ms);
    // Sleep in 1 ms slices so a cancelled (deadline-expired) worker
    // can be joined promptly instead of sleeping out the full delay.
    while (std::chrono::steady_clock::now() < deadline) {
        if (cancel != nullptr &&
            cancel->load(std::memory_order_acquire))
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

bool
FaultInjector::shouldCorruptRecord(uint64_t key) const
{
    return shouldFire(Site::CacheCorrupt, key);
}

void
FaultInjector::maybeFailWrite(uint64_t key, std::string_view path) const
{
    if (shouldFire(Site::IoWriteFail, key))
        throw IoError(
            detail::concat("injected I/O write failure ('", path, "')"));
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector injector(FaultPlan::fromEnv());
    return injector;
}

} // namespace macs::faults
