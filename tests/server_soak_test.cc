/**
 * @file
 * Soak tests of the event-driven server core against a LIVE server:
 * many keep-alive connections, slowloris-style trickled headers, and
 * file-descriptor hygiene. These are the properties the socket-free
 * state-machine tests (server_loop_test.cc) cannot observe — that a
 * trickling client is answered 408 at the read deadline WITHOUT
 * pinning a shard (fast clients keep being served meanwhile), and
 * that the process's open-fd count returns to baseline once every
 * connection is gone and the server has drained.
 *
 * Scale note: 1000 connections on loopback; worker/shard counts are
 * explicit because single-CPU hosts exist, and the slow connections
 * carry almost no bytes so the suite stays fast under TSan/ASan.
 */

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/net.h"
#include "server/server.h"

namespace macs::server {
namespace {

namespace fs = std::filesystem;

/** Open fds of this process (via /proc/self/fd). */
size_t
openFdCount()
{
    size_t n = 0;
    for (const auto &entry : fs::directory_iterator("/proc/self/fd"))
        (void)entry, ++n;
    return n;
}

/** Read from @p fd until EOF / timeout and return everything seen. */
std::string
readUntilClosed(int fd, int timeout_ms)
{
    std::string out;
    char buf[4096];
    for (;;) {
        int n = readWithDeadline(fd, buf, sizeof(buf), timeout_ms);
        if (n <= 0)
            break;
        out.append(buf, static_cast<size_t>(n));
    }
    return out;
}

void
waitForConnectionCount(Server &server, size_t want, int timeout_ms)
{
    for (int i = 0; i < timeout_ms / 10; ++i) {
        if (server.connectionCount() == want)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

TEST(SoakSlowClients, TrickledHeadersGet408WithoutPinningShards)
{
    constexpr int kSlow = 1000;

    obs::Registry registry;
    ServerOptions opt;
    opt.host = "127.0.0.1";
    opt.port = 0;
    opt.workers = 2;
    opt.shards = 2;
    opt.maxConnections = 2 * kSlow;
    opt.requestTimeoutMs = 10000; // slowloris 408s fire at +10 s
    opt.metrics = &registry;
    opt.service.metrics = &registry;
    Server server(opt);
    server.start();

    // 1k slowloris connections: each sends a partial header block and
    // then stalls. Under the thread-per-session core this would pin
    // every worker; shards must absorb them all.
    auto t0 = std::chrono::steady_clock::now();
    auto since = [&t0] {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    std::vector<int> slow;
    slow.reserve(kSlow);
    for (int i = 0; i < kSlow; ++i) {
        int fd = tcpConnect("127.0.0.1", server.port(), 2000);
        ASSERT_GE(fd, 0) << "connect " << i;
        ASSERT_TRUE(
            writeAll(fd, "GET /healthz HTTP/1.1\r\nX-Slow: y", 1000));
        slow.push_back(fd);
    }
    // On a host fast enough that no deadline has fired yet, all 1000
    // must be concurrently adopted (sanitizer runs may be slower than
    // the deadline during setup; the 408 contract below still holds).
    if (since() < opt.requestTimeoutMs / 2) {
        waitForConnectionCount(server, kSlow, 5000);
        ASSERT_EQ(server.connectionCount(),
                  static_cast<size_t>(kSlow));
    }

    // Trickle one more byte on a subset: still mid-request, still
    // inside the deadline, still not a complete header block.
    for (int i = 0; i < kSlow; i += 100)
        (void)writeAll(slow[static_cast<size_t>(i)], "y", 1000);

    // While the tricklers stall, a fast client must be served
    // promptly — they hold no shard hostage.
    auto fast_t0 = std::chrono::steady_clock::now();
    HttpClient client("127.0.0.1", server.port());
    ClientResponse resp;
    ASSERT_TRUE(client.request("GET", "/healthz", "", resp));
    EXPECT_EQ(resp.status, 200);
    auto fast_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - fast_t0)
            .count();
    EXPECT_LT(fast_ms, 2000)
        << "fast client was stuck behind slow ones";
    client.close();

    // At the read deadline every trickler must receive an explicit
    // 408 (it is mid-request, so NOT a silent close) and be dropped.
    size_t got408 = 0;
    for (int fd : slow) {
        std::string reply =
            readUntilClosed(fd, 2 * opt.requestTimeoutMs);
        if (reply.find(" 408 ") != std::string::npos)
            ++got408;
        closeFd(fd);
    }
    EXPECT_EQ(got408, static_cast<size_t>(kSlow));

    waitForConnectionCount(server, 0, 10000);
    EXPECT_EQ(server.connectionCount(), 0u);
    server.drain();

    std::string prom = obs::renderPrometheus(registry);
    EXPECT_NE(prom.find("macs_server_shard_connections"),
              std::string::npos);
}

TEST(SoakFdHygiene, OpenFdsReturnToBaselineAfterDrain)
{
    constexpr int kConns = 200;
    size_t baseline = openFdCount();
    {
        obs::Registry registry;
        ServerOptions opt;
        opt.host = "127.0.0.1";
        opt.port = 0;
        opt.workers = 2;
        opt.shards = 2;
        opt.maxConnections = 2 * kConns;
        opt.requestTimeoutMs = 60000; // deadlines must not help here
        opt.metrics = &registry;
        opt.service.metrics = &registry;
        Server server(opt);
        server.start();

        std::vector<int> fds;
        fds.reserve(kConns);
        for (int i = 0; i < kConns; ++i) {
            int fd = tcpConnect("127.0.0.1", server.port(), 2000);
            ASSERT_GE(fd, 0) << "connect " << i;
            fds.push_back(fd);
        }
        waitForConnectionCount(server, kConns, 5000);
        ASSERT_EQ(server.connectionCount(),
                  static_cast<size_t>(kConns));

        // Exercise one real request among the idle herd. Scoped: the
        // client holds its keep-alive connection until destruction,
        // and the reap assertion below wants every peer gone.
        {
            HttpClient client("127.0.0.1", server.port());
            ClientResponse resp;
            ASSERT_TRUE(client.request("GET", "/healthz", "", resp));
            EXPECT_EQ(resp.status, 200);
        }

        // Peers hang up; the shards must reap every fd promptly
        // (EOF, not deadline — the timeout above is a minute).
        for (int fd : fds)
            closeFd(fd);
        waitForConnectionCount(server, 0, 5000);
        EXPECT_EQ(server.connectionCount(), 0u);
        server.drain();
    }
    // Everything the server owned — accepted sockets, listener,
    // epoll fds, wakeup fds — is gone.
    EXPECT_EQ(openFdCount(), baseline);
}

} // namespace
} // namespace macs::server
