file(REMOVE_RECURSE
  "libmacs_calib.a"
)
