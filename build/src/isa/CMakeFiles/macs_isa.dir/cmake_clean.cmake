file(REMOVE_RECURSE
  "CMakeFiles/macs_isa.dir/instruction.cc.o"
  "CMakeFiles/macs_isa.dir/instruction.cc.o.d"
  "CMakeFiles/macs_isa.dir/opcode.cc.o"
  "CMakeFiles/macs_isa.dir/opcode.cc.o.d"
  "CMakeFiles/macs_isa.dir/parser.cc.o"
  "CMakeFiles/macs_isa.dir/parser.cc.o.d"
  "CMakeFiles/macs_isa.dir/program.cc.o"
  "CMakeFiles/macs_isa.dir/program.cc.o.d"
  "libmacs_isa.a"
  "libmacs_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
