#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "lfk/kernels.h"
#include "machine/machine_file.h"
#include "obs/export.h"
#include "obs/json.h"
#include "pipeline/mp_report.h"
#include "pipeline/report.h"
#include "pipeline/sweep.h"
#include "server/event_loop.h"
#include "server/kernel_source.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::server {

namespace {

using Clock = std::chrono::steady_clock;

int
remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    return left > 0 ? static_cast<int>(left) : 0;
}

bool
looksLikeJson(const HttpRequest &request)
{
    if (const std::string *ct = request.header("content-type"))
        if (startsWith(*ct, "application/json"))
            return true;
    std::string_view body = trim(request.body);
    return !body.empty() && body.front() == '{';
}

/**
 * Fold one JSON job envelope ({"kind": "lfk"|"loop"|"asm", ...}) into
 * @p spec. Compile/validation errors go to @p diags; malformed JSON
 * shapes fatal() (the caller maps that to 400).
 */
void
addJobFromJson(const obs::JsonValue &o, long default_trip,
               JobSetSpec &spec, Diagnostics &diags)
{
    std::string kind;
    if (const obs::JsonValue *k = o.find("kind"))
        kind = k->asString();
    else if (o.has("id"))
        kind = "lfk";
    else
        kind = "loop";

    if (kind == "lfk") {
        long id = static_cast<long>(o.at("id").asDouble());
        try {
            (void)lfk::makeKernel(static_cast<int>(id));
        } catch (const FatalError &e) {
            diags.error(e.what());
            return;
        }
        spec.ids.push_back(static_cast<int>(id));
        return;
    }

    long trip = default_trip;
    if (const obs::JsonValue *t = o.find("trip"))
        trip = static_cast<long>(t->asDouble());
    if (trip <= 0) {
        diags.error("'trip' must be positive");
        return;
    }

    if (kind == "loop") {
        std::string label = "<loop>";
        if (const obs::JsonValue *l = o.find("label"))
            label = l->asString();
        model::KernelCase kc;
        if (kernelFromLoopSource(o.at("source").asString(), label,
                                 trip, kc, diags))
            spec.kernels.push_back(std::move(kc));
        return;
    }
    if (kind == "asm") {
        long points = trip;
        if (const obs::JsonValue *p = o.find("points"))
            points = static_cast<long>(p->asDouble());
        std::string label = "<asm>";
        if (const obs::JsonValue *l = o.find("label"))
            label = l->asString();
        model::KernelCase kc;
        if (kernelFromAsmSource(o.at("source").asString(), label,
                                points, kc, diags))
            spec.kernels.push_back(std::move(kc));
        return;
    }
    diags.error(detail::concat("unknown job kind '", kind,
                               "' (known: lfk, loop, asm)"));
}

/**
 * Fold a "sim_tier" name into @p tier. Returns false (with a 400-ready
 * message in @p error) for anything but "", "reference", or "fast".
 */
bool
parseTierArg(const std::string &name, sim::SimTier &tier,
             std::string &error)
{
    if (name.empty() || sim::parseSimTier(name, tier))
        return true;
    error = detail::concat("unknown sim_tier '", name,
                           "' (known: reference, fast)");
    return false;
}

/** Validate every variant name; fills @p message on failure. */
bool
validVariants(const std::vector<std::string> &variants,
              std::string &message)
{
    for (const std::string &v : variants) {
        try {
            (void)machine::MachineConfig::variant(v);
        } catch (const FatalError &e) {
            message = e.what();
            return false;
        }
    }
    return true;
}

} // namespace

std::string
routeLabel(const std::string &path)
{
    if (path == "/healthz" || path == "/metrics" ||
        path == "/version" || path == "/v1/analyze" ||
        path == "/v1/batch" || path == "/v1/sweep" ||
        path == "/v1/multicpu")
        return path;
    return "other";
}

HttpResponse
errorResponse(int status, const std::string &message,
              const Diagnostics *diags)
{
    HttpResponse response;
    response.status = status;
    response.body = errorBody(status, message, diags);
    return response;
}

std::string
errorBody(int status, const std::string &message,
          const Diagnostics *diags)
{
    std::string out;
    out += "{\"schema\": \"macs-error-v1\", \"status\": ";
    out += std::to_string(status);
    out += ", \"error\": \"" + obs::jsonEscape(message) + "\"";
    if (diags != nullptr && !diags->entries().empty()) {
        out += ", \"diagnostics\": [";
        bool first = true;
        for (const Diagnostic &d : diags->entries()) {
            if (!first)
                out += ", ";
            first = false;
            out += "{\"severity\": \"";
            out += diagSeverityName(d.severity);
            out += "\", \"file\": \"" + obs::jsonEscape(d.file) +
                   "\"";
            if (d.loc.valid())
                out += format(", \"line\": %zu, \"col\": %zu",
                              d.loc.line, d.loc.col);
            out += ", \"message\": \"" + obs::jsonEscape(d.message) +
                   "\"}";
        }
        out += "]";
    }
    out += "}\n";
    return out;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service)
{
    size_t workers = options_.workers != 0
                         ? options_.workers
                         : std::max(
                               1u, std::thread::hardware_concurrency());
    pool_ = std::make_unique<pipeline::ThreadPool>(workers);
}

Server::~Server()
{
    drain();
}

obs::Registry &
Server::registry() const
{
    return options_.metrics != nullptr ? *options_.metrics
                                       : obs::Registry::global();
}

const faults::FaultInjector &
Server::injector() const
{
    return options_.faults != nullptr
               ? *options_.faults
               : faults::FaultInjector::global();
}

void
Server::countRequest(const std::string &route, int status)
{
    registry()
        .counter("macs_server_requests_total",
                 "HTTP requests served by route and status",
                 obs::Labels{{"route", route},
                             {"status", std::to_string(status)}})
        .inc();
}

size_t
Server::connectionCount() const
{
    return core_ != nullptr ? core_->connectionCount() : 0;
}

void
Server::start()
{
    // SIGPIPE audit (docs/ROBUSTNESS.md): every socket send in this
    // subsystem passes MSG_NOSIGNAL (net.cc writeAll, event_loop.cc
    // Conn::write), but the poller's self-pipe doorbell and the
    // supervised heartbeat pipe use plain write(2) — install the
    // one-time SIG_IGN here so a vanished peer is always EPIPE, even
    // for embedders that never go through the CLI.
    ignoreSigpipe();

    // Pre-register the stable macs_server_* series (counters at 0, as
    // Prometheus recommends) so a scrape of a fresh server already
    // shows the full family instead of series popping into existence
    // with their first event.
    obs::Registry &reg = registry();
    reg.counter("macs_server_requests_total",
                "HTTP requests served by route and status",
                obs::Labels{{"route", "/healthz"}, {"status", "200"}});
    reg.counter("macs_server_connections_total",
                "Connections accepted");
    for (const char *reason : {"backpressure", "fault"})
        reg.counter("macs_server_rejected_total",
                    "Connections rejected before dispatch, by reason",
                    obs::Labels{{"reason", reason}});
    reg.gauge("macs_server_queue_depth",
              "Accepted sessions waiting for a worker");
    reg.gauge("macs_server_inflight", "Requests currently executing");

    if (options_.core == CoreMode::Evented) {
        size_t shards =
            options_.shards != 0
                ? options_.shards
                : std::min<size_t>(
                      4, std::max(1u,
                                  std::thread::hardware_concurrency()));
        // The Shard constructors pre-register the per-shard series
        // (connection gauges, wakeup counters) at zero.
        core_ = std::make_unique<EventLoopCore>(
            *this, shards,
            options_.pollFallback ? EventPoller::Backend::Poll
                                  : EventPoller::Backend::Default);
        core_->start();
    }

    listener_.open(options_.host, options_.port, 128,
                   options_.reusePort);
    started_.store(true, std::memory_order_release);
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
Server::drain()
{
    requestStop();
    if (drained_.exchange(true))
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    if (core_ != nullptr) {
        // Shards finish in-flight requests (answered `Connection:
        // close`), drop idle connections, and exit; only then is the
        // compute pool idled.
        core_->requestStop();
        core_->join();
    }
    listener_.close();
    if (pool_ != nullptr)
        pool_->waitIdle();
    service_.reapStrays();
}

void
Server::rejectConnection(int fd, const char *reason)
{
    registry()
        .counter("macs_server_rejected_total",
                 "Connections rejected before dispatch, by reason",
                 obs::Labels{{"reason", reason}})
        .inc();
    HttpResponse response;
    response.status = 503;
    response.headers.emplace_back(
        "Retry-After", std::to_string(options_.retryAfterSeconds));
    response.body = errorBody(
        503, detail::concat("connection rejected (", reason,
                            "); retry after ",
                            options_.retryAfterSeconds, "s"));
    // Best-effort: the client may already be gone.
    (void)writeAll(fd, serializeResponse(response, false),
                   options_.writeTimeoutMs);
    closeFd(fd);
}

void
Server::acceptLoop()
{
    while (!stopping()) {
        int fd = listener_.acceptFor(100);
        if (fd == kIoTimeout)
            continue;
        if (fd == kIoError) {
            if (stopping() || !listener_.isOpen())
                break;
            continue;
        }
        registry()
            .counter("macs_server_connections_total",
                     "Connections accepted")
            .inc();
        if (injector().shouldFire(faults::Site::NetAccept)) {
            rejectConnection(fd, "fault");
            continue;
        }
        if (pool_->queuedTasks() >= options_.queueCapacity) {
            rejectConnection(fd, "backpressure");
            continue;
        }
        if (core_ != nullptr) {
            // Evented core: connections are cheap but not free —
            // bound the open-connection count, then hand off.
            if (core_->connectionCount() >= options_.maxConnections) {
                rejectConnection(fd, "backpressure");
                continue;
            }
            core_->adopt(fd);
            continue;
        }
        pool_->submit([this, fd] { runSession(fd); });
        registry()
            .gauge("macs_server_queue_depth",
                   "Accepted sessions waiting for a worker")
            .set(static_cast<double>(pool_->queuedTasks()));
    }
}

bool
Server::deliverResponse(int fd, const HttpResponse &response,
                        bool keep_alive)
{
    if (injector().shouldFire(faults::Site::NetWrite))
        return false; // injected write fault: cut the connection
    return writeAll(fd, serializeResponse(response, keep_alive),
                    options_.writeTimeoutMs);
}

void
Server::runSession(int fd)
{
    registry()
        .gauge("macs_server_queue_depth",
               "Accepted sessions waiting for a worker")
        .set(static_cast<double>(pool_->queuedTasks()));

    RequestParser parser(options_.limits);
    char buf[16384];

    for (;;) {
        // Read one full request. A single deadline bounds both the
        // keep-alive idle wait and the request read, so a slow or
        // torn request cannot pin a worker.
        Clock::time_point deadline =
            Clock::now() +
            std::chrono::milliseconds(options_.requestTimeoutMs);
        while (!parser.complete() && !parser.failed()) {
            int left = remainingMs(deadline);
            if (left == 0) {
                if (!parser.idle()) {
                    HttpResponse r = errorResponse(
                        408, format("request not complete within "
                                    "the %d ms read deadline",
                                    options_.requestTimeoutMs));
                    countRequest("other", 408);
                    (void)deliverResponse(fd, r, false);
                }
                closeFd(fd);
                return;
            }
            int n = readWithDeadline(fd, buf, sizeof(buf),
                                     std::min(left, 100));
            if (n > 0) {
                parser.feed(std::string_view(
                    buf, static_cast<size_t>(n)));
                continue;
            }
            if (n == kIoTimeout) {
                // Draining: drop idle keep-alive connections; let a
                // request that is mid-flight finish within its
                // deadline.
                if (stopping() && parser.idle()) {
                    closeFd(fd);
                    return;
                }
                continue;
            }
            if (n == kIoEof && !parser.idle()) {
                // Torn request: the peer closed mid-message.
                countRequest("other", 408);
                closeFd(fd);
                return;
            }
            closeFd(fd); // EOF between requests, or socket error
            return;
        }

        if (parser.failed()) {
            HttpResponse r = errorResponse(parser.errorStatus(),
                                           parser.errorDetail());
            countRequest("other", r.status);
            (void)deliverResponse(fd, r, false);
            closeFd(fd);
            return;
        }

        HttpRequest request = parser.take();

        if (injector().shouldFire(faults::Site::NetRead)) {
            // Injected read fault: the request is NOT silently
            // dropped — the client gets an explicit retriable 503.
            HttpResponse r = errorResponse(
                503, "transient read fault; retry");
            r.headers.emplace_back(
                "Retry-After",
                std::to_string(options_.retryAfterSeconds));
            countRequest(routeLabel(request.path), 503);
            (void)deliverResponse(fd, r, false);
            closeFd(fd);
            return;
        }

        obs::Gauge &inflight = registry().gauge(
            "macs_server_inflight", "Requests currently executing");
        inflight.add(1.0);
        HttpResponse response;
        try {
            response = handle(request);
        } catch (const std::exception &e) {
            response = errorResponse(500, e.what());
            countRequest(routeLabel(request.path), 500);
        }
        inflight.add(-1.0);

        bool keep = request.keepAlive && !stopping();
        if (!deliverResponse(fd, response, keep) || !keep) {
            closeFd(fd);
            return;
        }
    }
}

HttpResponse
Server::handle(const HttpRequest &request)
{
    HttpResponse response;
    const std::string &path = request.path;
    if (path == "/healthz" || path == "/metrics" ||
        path == "/version") {
        if (request.method != "GET" && request.method != "HEAD") {
            response = errorResponse(
                405, detail::concat("method ", request.method,
                                    " not allowed for ", path,
                                    " (use GET)"));
        } else if (path == "/healthz") {
            response = handleHealth();
        } else if (path == "/metrics") {
            response = handleMetrics();
        } else {
            response = handleVersion();
        }
    } else if (path == "/v1/analyze" || path == "/v1/batch" ||
               path == "/v1/sweep" || path == "/v1/multicpu") {
        if (request.method != "POST") {
            response = errorResponse(
                405, detail::concat("method ", request.method,
                                    " not allowed for ", path,
                                    " (use POST)"));
        } else if (path == "/v1/analyze") {
            response = handleAnalyze(request);
        } else if (path == "/v1/batch") {
            response = handleBatch(request);
        } else if (path == "/v1/multicpu") {
            response = handleMultiCpu(request);
        } else {
            response = handleSweep(request);
        }
    } else {
        response = errorResponse(
            404, detail::concat("no route for '", path,
                                "' (known: /healthz, /metrics, "
                                "/version, /v1/analyze, /v1/batch, "
                                "/v1/sweep, /v1/multicpu)"));
    }
    countRequest(routeLabel(path), response.status);
    return response;
}

HttpResponse
Server::handleHealth() const
{
    HttpResponse response;
    response.body = format(
        "{\"schema\": \"macs-health-v1\", \"status\": \"%s\", "
        "\"workers\": %zu, \"queue_depth\": %zu, "
        "\"cache_entries\": %zu",
        stopping() ? "draining" : "ok", pool_->workerCount(),
        pool_->queuedTasks(), service_.cache().size());
    if (options_.fleet != nullptr)
        response.body += supervisor::renderFleetHealthJson(
            *options_.fleet, options_.workerIndex);
    response.body += "}\n";
    return response;
}

HttpResponse
Server::handleMetrics() const
{
    HttpResponse response;
    response.contentType = "text/plain; version=0.0.4";
    response.body = obs::renderPrometheus(registry());
    if (options_.fleet != nullptr)
        response.body += supervisor::renderFleetMetrics(
            *options_.fleet, options_.workerIndex);
    return response;
}

HttpResponse
Server::handleVersion() const
{
    HttpResponse response;
    response.body = detail::concat(
        "{\"schema\": \"macs-version-v1\", \"version\": \"",
        obs::jsonEscape(options_.versionString),
        "\", \"schemas\": [\"macs-batch-v1\", \"macs-sweep-v1\", "
        "\"macs-analysis-v1\", \"macs-metrics-v1\", \"macs-trace-v1\", "
        "\"macs-mp-v1\", \"macs-error-v1\", \"macs-health-v1\", "
        "\"macs-version-v1\"]}\n");
    return response;
}

HttpResponse
Server::handleAnalyze(const HttpRequest &request)
{
    JobSetSpec spec;
    Diagnostics diags("POST /v1/analyze");

    // ?sim_tier=reference|fast selects the simulator tier (JSON field
    // "sim_tier" overrides). Either tier yields byte-identical
    // reports; the reference tier exists as the differential oracle.
    std::string tier_error;
    if (!parseTierArg(request.queryOr("sim_tier", ""),
                      spec.options.tier, tier_error))
        return errorResponse(400, tier_error);

    if (looksLikeJson(request)) {
        try {
            obs::JsonValue doc = obs::parseJson(request.body);
            if (!doc.isObject())
                return errorResponse(
                    400, "analyze body must be a JSON object");
            addJobFromJson(doc, options_.defaultTrip, spec, diags);
            if (const obs::JsonValue *v = doc.find("variant"))
                spec.variants.push_back(v->asString());
            if (const obs::JsonValue *v = doc.find("vl")) {
                long vl = static_cast<long>(v->asDouble());
                if (vl <= 0)
                    return errorResponse(400,
                                         "'vl' must be positive");
                spec.vls.push_back(static_cast<int>(vl));
            }
            if (const obs::JsonValue *t = doc.find("sim_tier"))
                if (!parseTierArg(t->asString(), spec.options.tier,
                                  tier_error))
                    return errorResponse(400, tier_error);
        } catch (const FatalError &e) {
            return errorResponse(
                400, detail::concat("malformed analyze request: ",
                                    e.what()));
        } catch (const PanicError &e) {
            // JsonValue accessors assert on type mismatches; a
            // wrong-typed field in a CLIENT body is a request-shape
            // error, not a library bug — report 400, not 500.
            return errorResponse(
                400, detail::concat("malformed analyze request: ",
                                    e.what()));
        }
    } else {
        // Raw source body: the loop DSL (or assembly with ?kind=asm)
        // exactly as a .loop file would be given to `macs batch`.
        std::string kind = request.queryOr("kind", "loop");
        long trip = options_.defaultTrip;
        std::string trip_arg = request.queryOr("trip", "");
        if (!trip_arg.empty() &&
            (!parseInt(trip_arg, trip) || trip <= 0))
            return errorResponse(
                400, "query parameter 'trip' must be a positive "
                     "integer");
        if (request.body.empty())
            return errorResponse(400, "analyze body is empty");
        if (kind == "loop") {
            std::string label = request.queryOr("label", "<loop>");
            model::KernelCase kc;
            if (kernelFromLoopSource(request.body, label, trip, kc,
                                     diags))
                spec.kernels.push_back(std::move(kc));
        } else if (kind == "asm") {
            long points = trip;
            std::string pts = request.queryOr("points", "");
            if (!pts.empty() &&
                (!parseInt(pts, points) || points <= 0))
                return errorResponse(
                    400, "query parameter 'points' must be a "
                         "positive integer");
            std::string label = request.queryOr("label", "<asm>");
            model::KernelCase kc;
            if (kernelFromAsmSource(request.body, label, points, kc,
                                    diags))
                spec.kernels.push_back(std::move(kc));
        } else {
            return errorResponse(
                400, detail::concat("unknown kind '", kind,
                                    "' (known: loop, asm)"));
        }
        std::string variant = request.queryOr("variant", "");
        if (!variant.empty())
            spec.variants.push_back(variant);
        std::string vl_arg = request.queryOr("vl", "");
        if (!vl_arg.empty()) {
            long vl = 0;
            if (!parseInt(vl_arg, vl) || vl <= 0)
                return errorResponse(
                    400, "query parameter 'vl' must be a positive "
                         "integer");
            spec.vls.push_back(static_cast<int>(vl));
        }
    }

    if (diags.hasErrors())
        return errorResponse(
            422,
            format("analyze request failed with %zu error(s)",
                   diags.errorCount()),
            &diags);
    std::string variant_error;
    if (!validVariants(spec.variants, variant_error))
        return errorResponse(400, variant_error);
    if (spec.ids.empty() && spec.kernels.empty())
        return errorResponse(400, "request contains no job");

    std::vector<pipeline::BatchJob> jobs = expandJobSet(spec);
    pipeline::BatchResult result = service_.runJobs(jobs, &stop_);

    HttpResponse response;
    bool timing = request.queryOr("timing", "0") == "1";
    response.body = pipeline::renderBatchJson(result, timing);
    response.headers.emplace_back(
        "X-MACS-Exit-Code", std::to_string(result.exitCode()));
    return response;
}

HttpResponse
Server::handleBatch(const HttpRequest &request)
{
    JobSetSpec spec;
    Diagnostics diags("POST /v1/batch");
    bool timing = request.queryOr("timing", "0") == "1";

    std::string tier_error;
    if (!parseTierArg(request.queryOr("sim_tier", ""),
                      spec.options.tier, tier_error))
        return errorResponse(400, tier_error);

    try {
        obs::JsonValue doc = obs::parseJson(request.body);
        if (!doc.isObject())
            return errorResponse(400,
                                 "batch body must be a JSON object");

        long trip = options_.defaultTrip;
        if (const obs::JsonValue *t = doc.find("trip")) {
            trip = static_cast<long>(t->asDouble());
            if (trip <= 0)
                return errorResponse(400, "'trip' must be positive");
        }
        if (const obs::JsonValue *r = doc.find("repeat")) {
            spec.repeat = static_cast<long>(r->asDouble());
            if (spec.repeat < 1)
                return errorResponse(400,
                                     "'repeat' must be positive");
        }
        if (const obs::JsonValue *ids = doc.find("ids")) {
            for (size_t i = 0; i < ids->size(); ++i) {
                long id =
                    static_cast<long>(ids->at(i).asDouble());
                try {
                    (void)lfk::makeKernel(static_cast<int>(id));
                    spec.ids.push_back(static_cast<int>(id));
                } catch (const FatalError &e) {
                    diags.error(e.what());
                }
            }
        }
        if (const obs::JsonValue *jobs = doc.find("jobs"))
            for (size_t i = 0; i < jobs->size(); ++i)
                addJobFromJson(jobs->at(i), trip, spec, diags);
        if (const obs::JsonValue *vs = doc.find("variants"))
            for (size_t i = 0; i < vs->size(); ++i)
                spec.variants.push_back(vs->at(i).asString());
        if (const obs::JsonValue *vls = doc.find("vls")) {
            for (size_t i = 0; i < vls->size(); ++i) {
                long vl =
                    static_cast<long>(vls->at(i).asDouble());
                if (vl <= 0)
                    return errorResponse(
                        400, "'vls' entries must be positive");
                spec.vls.push_back(static_cast<int>(vl));
            }
        }
        if (const obs::JsonValue *t = doc.find("sim_tier"))
            if (!parseTierArg(t->asString(), spec.options.tier,
                              tier_error))
                return errorResponse(400, tier_error);
        if (const obs::JsonValue *tm = doc.find("timing"))
            timing = tm->asBool();
    } catch (const FatalError &e) {
        return errorResponse(
            400,
            detail::concat("malformed batch request: ", e.what()));
    } catch (const PanicError &e) {
        // Type-mismatched fields assert inside JsonValue; map them to
        // 400 like any other malformed client body (see handleAnalyze).
        return errorResponse(
            400,
            detail::concat("malformed batch request: ", e.what()));
    }

    if (diags.hasErrors())
        return errorResponse(
            422,
            format("batch request failed with %zu error(s)",
                   diags.errorCount()),
            &diags);
    std::string variant_error;
    if (!validVariants(spec.variants, variant_error))
        return errorResponse(400, variant_error);
    if (spec.ids.empty() && spec.kernels.empty())
        return errorResponse(400, "batch contains no jobs");

    std::vector<pipeline::BatchJob> jobs = expandJobSet(spec);
    pipeline::BatchResult result = service_.runJobs(jobs, &stop_);

    HttpResponse response;
    response.body = pipeline::renderBatchJson(result, timing);
    response.headers.emplace_back(
        "X-MACS-Exit-Code", std::to_string(result.exitCode()));
    return response;
}

HttpResponse
Server::handleSweep(const HttpRequest &request)
{
    // Body: {"machines": [{"text": "<machine file>", "name"?: ...} |
    // {"variant": "baseline"}], "ids"?: [...], "jobs"?: [...],
    // "trip"?: N, "vl"?: N, "sim_tier"?: "reference"|"fast",
    // "timing"?: bool}. Kernels default to the full LFK set, like
    // `macs sweep`; machine texts are parsed with the same
    // multi-error machinery as .machine files, so a 422 carries every
    // problem in every machine, file:line:col included.
    pipeline::SweepRequest sweep;
    JobSetSpec spec;
    Diagnostics diags("POST /v1/sweep");
    bool timing = request.queryOr("timing", "0") == "1";

    std::string tier_error;
    if (!parseTierArg(request.queryOr("sim_tier", ""),
                      sweep.options.tier, tier_error))
        return errorResponse(400, tier_error);

    try {
        obs::JsonValue doc = obs::parseJson(request.body);
        if (!doc.isObject())
            return errorResponse(400,
                                 "sweep body must be a JSON object");

        long trip = options_.defaultTrip;
        if (const obs::JsonValue *t = doc.find("trip")) {
            trip = static_cast<long>(t->asDouble());
            if (trip <= 0)
                return errorResponse(400, "'trip' must be positive");
        }
        if (const obs::JsonValue *v = doc.find("vl")) {
            long vl = static_cast<long>(v->asDouble());
            if (vl <= 0)
                return errorResponse(400, "'vl' must be positive");
            sweep.vectorLength = static_cast<int>(vl);
        }
        const obs::JsonValue *machines = doc.find("machines");
        if (machines == nullptr || machines->size() == 0)
            return errorResponse(
                400, "sweep needs a non-empty 'machines' array");
        for (size_t i = 0; i < machines->size(); ++i) {
            const obs::JsonValue &m = machines->at(i);
            if (const obs::JsonValue *variant = m.find("variant")) {
                std::string name = variant->asString();
                try {
                    sweep.machines.push_back(
                        {name, "built-in variant", "<builtin>",
                         machine::MachineConfig::variant(name)});
                } catch (const FatalError &e) {
                    diags.error(e.what());
                }
                continue;
            }
            const obs::JsonValue *text = m.find("text");
            if (text == nullptr) {
                diags.error(format("machines[%zu] needs 'text' (an "
                                   "inline machine description) or "
                                   "'variant'",
                                   i));
                continue;
            }
            std::string source = format("machines[%zu]", i);
            machine::MachineFile mf;
            if (!machine::parseMachineDescription(text->asString(),
                                                  source, mf, diags))
                continue;
            if (const obs::JsonValue *n = m.find("name"))
                mf.name = n->asString();
            sweep.machines.push_back({mf.name, mf.description, source,
                                      mf.config});
        }
        if (const obs::JsonValue *ids = doc.find("ids")) {
            for (size_t i = 0; i < ids->size(); ++i) {
                long id = static_cast<long>(ids->at(i).asDouble());
                try {
                    (void)lfk::makeKernel(static_cast<int>(id));
                    spec.ids.push_back(static_cast<int>(id));
                } catch (const FatalError &e) {
                    diags.error(e.what());
                }
            }
        }
        if (const obs::JsonValue *jobs = doc.find("jobs"))
            for (size_t i = 0; i < jobs->size(); ++i)
                addJobFromJson(jobs->at(i), trip, spec, diags);
        if (const obs::JsonValue *t = doc.find("sim_tier"))
            if (!parseTierArg(t->asString(), sweep.options.tier,
                              tier_error))
                return errorResponse(400, tier_error);
        if (const obs::JsonValue *tm = doc.find("timing"))
            timing = tm->asBool();
    } catch (const FatalError &e) {
        return errorResponse(
            400,
            detail::concat("malformed sweep request: ", e.what()));
    } catch (const PanicError &e) {
        // Type-mismatched fields assert inside JsonValue; map them to
        // 400 like any other malformed client body (see handleAnalyze).
        return errorResponse(
            400,
            detail::concat("malformed sweep request: ", e.what()));
    }

    // Kernel rows: explicit ids, then compiled jobs; the full LFK set
    // when neither was given (the machines are the interesting axis).
    if (spec.ids.empty() && spec.kernels.empty())
        spec.ids = lfk::lfkIds();
    for (int id : spec.ids)
        sweep.kernels.push_back(
            lfk::toKernelCase(lfk::makeKernel(id)));
    for (model::KernelCase &kc : spec.kernels)
        sweep.kernels.push_back(std::move(kc));

    if (!pipeline::validateSweep(sweep, diags) || diags.hasErrors())
        return errorResponse(
            422,
            format("sweep request failed with %zu error(s)",
                   diags.errorCount()),
            &diags);

    pipeline::SweepResult result = pipeline::runSweep(
        sweep, [this](const std::vector<pipeline::BatchJob> &jobs) {
            return service_.runJobs(jobs, &stop_);
        });

    HttpResponse response;
    response.body = pipeline::renderSweepJson(result, timing);
    response.headers.emplace_back(
        "X-MACS-Exit-Code", std::to_string(result.exitCode()));
    return response;
}

HttpResponse
Server::handleMultiCpu(const HttpRequest &request)
{
    // Body: {"kernel"?: N (default 1), "cpus"?: N (default: all),
    // "mix"?: "independent"|"lockstep"|"strip", "engine"?:
    // "coupled"|"analytic", "variant"?: built-in machine variant}.
    // The report (schema "macs-mp-v1") is a pure function of the
    // request, so responses memo-cache under mpCacheKey() and are
    // byte-identical at any worker count.
    pipeline::MpRequest req;
    try {
        if (!request.body.empty()) {
            obs::JsonValue doc = obs::parseJson(request.body);
            if (!doc.isObject())
                return errorResponse(
                    400, "multicpu body must be a JSON object");
            if (const obs::JsonValue *k = doc.find("kernel"))
                req.kernelId = static_cast<int>(k->asDouble());
            if (const obs::JsonValue *c = doc.find("cpus")) {
                long cpus = static_cast<long>(c->asDouble());
                if (cpus < 1)
                    return errorResponse(400,
                                         "'cpus' must be positive");
                req.cpus = static_cast<int>(cpus);
            }
            if (const obs::JsonValue *m = doc.find("mix"))
                if (!lfk::parseMpMix(m->asString(), req.mix))
                    return errorResponse(
                        400, detail::concat(
                                 "unknown mix '", m->asString(),
                                 "' (known: independent, lockstep, "
                                 "strip)"));
            if (const obs::JsonValue *e = doc.find("engine"))
                if (!pipeline::parseMpEngine(e->asString(),
                                             req.engine))
                    return errorResponse(
                        400, detail::concat(
                                 "unknown engine '", e->asString(),
                                 "' (known: coupled, analytic)"));
            if (const obs::JsonValue *v = doc.find("variant")) {
                req.machineName = v->asString();
                req.config =
                    machine::MachineConfig::variant(req.machineName);
            }
        }

        std::string key = pipeline::mpCacheKey(req);
        {
            std::lock_guard<std::mutex> lock(mpCacheMutex_);
            auto it = mpCache_.find(key);
            if (it != mpCache_.end()) {
                HttpResponse response;
                response.body = it->second;
                return response;
            }
        }
        pipeline::MpAnalysis analysis = pipeline::runMpAnalysis(req);
        HttpResponse response;
        response.body = pipeline::renderMpJson(analysis);
        {
            std::lock_guard<std::mutex> lock(mpCacheMutex_);
            mpCache_.emplace(std::move(key), response.body);
        }
        return response;
    } catch (const FatalError &e) {
        // Bad kernel ids, impossible CPU counts, unknown variants,
        // strip-mining a hand-assembled kernel: request errors.
        return errorResponse(
            400,
            detail::concat("malformed multicpu request: ", e.what()));
    } catch (const PanicError &e) {
        // Type-mismatched fields assert inside JsonValue; map them to
        // 400 like any other malformed client body (see handleAnalyze).
        return errorResponse(
            400,
            detail::concat("malformed multicpu request: ", e.what()));
    }
}

} // namespace macs::server
