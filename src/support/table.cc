#include "support/table.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"
#include "support/strings.h"

namespace macs {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    MACS_ASSERT(!header_.empty(), "table needs at least one column");
    aligns_.assign(header_.size(), Align::Right);
    aligns_[0] = Align::Left;
}

void
Table::setAlign(size_t col, Align align)
{
    MACS_ASSERT(col < aligns_.size(), "column out of range");
    aligns_[col] = align;
}

void
Table::addRow(std::vector<std::string> row)
{
    MACS_ASSERT(row.size() == header_.size(),
                "row arity ", row.size(), " != header arity ",
                header_.size());
    rows_.push_back(std::move(row));
}

void
Table::addSeparator()
{
    separators_.push_back(rows_.size());
}

std::string
Table::render() const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto pad = [&](const std::string &s, size_t c) {
        std::string out;
        size_t fill = width[c] - s.size();
        if (aligns_[c] == Align::Right)
            out.append(fill, ' ');
        out += s;
        if (aligns_[c] == Align::Left)
            out.append(fill, ' ');
        return out;
    };

    std::ostringstream os;
    auto rule = [&] {
        for (size_t c = 0; c < width.size(); ++c) {
            os << std::string(width[c] + 2, '-');
            if (c + 1 < width.size())
                os << '+';
        }
        os << '\n';
    };

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << ' ' << pad(row[c], c) << ' ';
            if (c + 1 < row.size())
                os << '|';
        }
        os << '\n';
    };

    emitRow(header_);
    rule();
    for (size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
            separators_.end()) {
            rule();
        }
        emitRow(rows_[r]);
    }
    return os.str();
}

std::string
Table::renderCsv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << quote(row[c]);
        }
        os << '\n';
    };
    emitRow(header_);
    for (const auto &row : rows_)
        emitRow(row);
    return os.str();
}

std::string
Table::num(double v, int decimals)
{
    return format("%.*f", decimals, v);
}

std::string
Table::num(long v)
{
    return format("%ld", v);
}

} // namespace macs
