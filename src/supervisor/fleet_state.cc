#include "supervisor/fleet_state.h"

#include <cerrno>
#include <cstring>
#include <new>
#include <sys/mman.h>

#include "support/logging.h"
#include "support/strings.h"

namespace macs::supervisor {

static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "fleet state atomics must be lock-free: they live in "
              "shared memory crossing a process boundary");
static_assert(std::atomic<int32_t>::is_always_lock_free,
              "fleet state atomics must be lock-free: they live in "
              "shared memory crossing a process boundary");

const char *
workerStateName(WorkerState state)
{
    switch (state) {
    case WorkerState::Empty:
        return "empty";
    case WorkerState::Starting:
        return "starting";
    case WorkerState::Serving:
        return "serving";
    case WorkerState::Backoff:
        return "backoff";
    case WorkerState::Abandoned:
        return "abandoned";
    case WorkerState::Draining:
        return "draining";
    case WorkerState::Drained:
        return "drained";
    }
    return "unknown";
}

uint32_t
FleetState::aliveCount() const
{
    uint32_t alive = 0;
    uint32_t n = processes.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < n && i < kMaxWorkers; ++i) {
        WorkerState s = slots[i].workerState();
        if (s == WorkerState::Starting || s == WorkerState::Serving)
            ++alive;
    }
    return alive;
}

uint32_t
FleetState::totalRestarts() const
{
    uint32_t total = 0;
    uint32_t n = processes.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < n && i < kMaxWorkers; ++i)
        total += slots[i].restarts.load(std::memory_order_acquire);
    return total;
}

FleetState *
createSharedFleetState()
{
    void *mem = ::mmap(nullptr, sizeof(FleetState),
                       PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED)
        fatal("supervisor: cannot map shared fleet state: ",
              std::strerror(errno));
    return new (mem) FleetState();
}

void
destroySharedFleetState(FleetState *state)
{
    if (state == nullptr)
        return;
    state->~FleetState();
    ::munmap(state, sizeof(FleetState));
}

std::string
renderFleetMetrics(const FleetState &state, int self_slot)
{
    uint32_t n = state.processes.load(std::memory_order_acquire);
    std::string out;
    out.reserve(1024);

    out += "# HELP macs_supervisor_degraded Fleet degraded: a worker "
           "slot exhausted its restart budget\n"
           "# TYPE macs_supervisor_degraded gauge\n";
    out += format("macs_supervisor_degraded %u\n",
                  state.degraded.load(std::memory_order_acquire));
    out += "# HELP macs_supervisor_draining Rolling SIGTERM drain in "
           "progress\n"
           "# TYPE macs_supervisor_draining gauge\n";
    out += format("macs_supervisor_draining %u\n",
                  state.draining.load(std::memory_order_acquire));
    out += "# HELP macs_supervisor_processes Configured worker "
           "process count\n"
           "# TYPE macs_supervisor_processes gauge\n";
    out += format("macs_supervisor_processes %u\n", n);
    out += "# HELP macs_supervisor_workers_alive Workers currently "
           "starting or serving\n"
           "# TYPE macs_supervisor_workers_alive gauge\n";
    out += format("macs_supervisor_workers_alive %u\n",
                  state.aliveCount());

    out += "# HELP macs_supervisor_worker_up Worker slot liveness "
           "(1 = starting/serving)\n"
           "# TYPE macs_supervisor_worker_up gauge\n";
    for (uint32_t i = 0; i < n && i < kMaxWorkers; ++i) {
        WorkerState s = state.slots[i].workerState();
        bool up = s == WorkerState::Starting ||
                  s == WorkerState::Serving;
        out += format("macs_supervisor_worker_up{worker=\"%u\"} %d\n",
                      i, up ? 1 : 0);
    }
    out += "# HELP macs_supervisor_restarts_total Worker restarts "
           "by slot (crash + hang)\n"
           "# TYPE macs_supervisor_restarts_total counter\n";
    for (uint32_t i = 0; i < n && i < kMaxWorkers; ++i)
        out += format(
            "macs_supervisor_restarts_total{worker=\"%u\"} %u\n", i,
            state.slots[i].restarts.load(std::memory_order_acquire));
    out += "# HELP macs_supervisor_crashes_total Worker exits by "
           "signal or nonzero code, by slot\n"
           "# TYPE macs_supervisor_crashes_total counter\n";
    for (uint32_t i = 0; i < n && i < kMaxWorkers; ++i)
        out += format(
            "macs_supervisor_crashes_total{worker=\"%u\"} %u\n", i,
            state.slots[i].crashes.load(std::memory_order_acquire));
    out += "# HELP macs_supervisor_hangs_total Missed-heartbeat "
           "watchdog kills, by slot\n"
           "# TYPE macs_supervisor_hangs_total counter\n";
    for (uint32_t i = 0; i < n && i < kMaxWorkers; ++i)
        out += format(
            "macs_supervisor_hangs_total{worker=\"%u\"} %u\n", i,
            state.slots[i].hangs.load(std::memory_order_acquire));

    if (self_slot >= 0) {
        out += "# HELP macs_supervisor_self_worker Slot index of the "
               "worker answering this scrape\n"
               "# TYPE macs_supervisor_self_worker gauge\n";
        out += format("macs_supervisor_self_worker %d\n", self_slot);
    }
    return out;
}

std::string
renderFleetHealthJson(const FleetState &state, int self_slot)
{
    return format(", \"worker\": %d, \"processes\": %u, "
                  "\"alive\": %u, \"restarts\": %u, "
                  "\"degraded\": %s",
                  self_slot,
                  state.processes.load(std::memory_order_acquire),
                  state.aliveCount(), state.totalRestarts(),
                  state.isDegraded() ? "true" : "false");
}

} // namespace macs::supervisor
