/**
 * @file
 * Machine-description file tests (docs/MACHINES.md).
 *
 * The load-bearing property is the DIFFERENTIAL ORACLE: parsing
 * machines/c240.machine must reproduce the built-in C-240 table
 * field-for-field (golden_report_test additionally pins that batch
 * reports through the parsed config are byte-identical). The negative
 * corpus (tests/corpus/bad_machine/) pins multi-error recovery: every
 * problem in a file is reported, with file:line:col.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "isa/opcode.h"
#include "lfk/kernels.h"
#include "machine/machine_file.h"
#include "macs/chime.h"
#include "macs/hierarchy.h"
#include "pipeline/pipeline.h"
#include "support/diag.h"
#include "support/strings.h"

namespace macs::machine {
namespace {

using pipeline::BatchEngine;

std::string
machinePath(const std::string &file)
{
    return std::string(MACS_MACHINE_DIR) + "/" + file;
}

std::string
corpusPath(const std::string &rel)
{
    return std::string(MACS_CORPUS_DIR) + "/" + rel;
}

MachineFile
parseOk(const std::string &text, const std::string &file = "<test>")
{
    MachineFile mf;
    Diagnostics diags;
    bool ok = parseMachineDescription(text, file, mf, diags);
    EXPECT_TRUE(ok) << diags.render();
    return mf;
}

Diagnostics
parseBad(const std::string &text, const std::string &file = "<test>")
{
    MachineFile mf;
    Diagnostics diags;
    EXPECT_FALSE(parseMachineDescription(text, file, mf, diags));
    EXPECT_TRUE(diags.hasErrors());
    return diags;
}

// --- the differential oracle -----------------------------------------

TEST(MachineFileOracle, C240FileEqualsBuiltInTable)
{
    MachineConfig parsed = MachineConfig::fromFile(
        machinePath("c240.machine"));
    MachineConfig builtin = MachineConfig::convexC240();

    // fingerprint() serializes every timing-relevant field, so equal
    // fingerprints is exhaustive field equality.
    EXPECT_EQ(parsed.fingerprint(), builtin.fingerprint());
    EXPECT_EQ(parsed.contentHash(), builtin.contentHash());

    // Spot-check representative fields directly, so a future
    // fingerprint() bug cannot mask a real mismatch.
    EXPECT_EQ(parsed.clockMhz, builtin.clockMhz);
    EXPECT_EQ(parsed.maxVectorLength, builtin.maxVectorLength);
    EXPECT_EQ(parsed.cpus, builtin.cpus);
    EXPECT_EQ(parsed.memory.banks, builtin.memory.banks);
    EXPECT_EQ(parsed.memory.arbitrationRestartCycles,
              builtin.memory.arbitrationRestartCycles);
    EXPECT_EQ(parsed.memory.refreshPeriodCycles,
              builtin.memory.refreshPeriodCycles);
    EXPECT_EQ(parsed.chaining.maxReadsPerPair,
              builtin.chaining.maxReadsPerPair);
    EXPECT_EQ(parsed.chaining.fpAddMulShared,
              builtin.chaining.fpAddMulShared);
    EXPECT_EQ(parsed.scalar.loadMissLatency,
              builtin.scalar.loadMissLatency);
    EXPECT_EQ(parsed.scalarCache.lines, builtin.scalarCache.lines);
    EXPECT_EQ(parsed.refreshPenaltyFactor,
              builtin.refreshPenaltyFactor);
    ASSERT_EQ(parsed.vectorTiming.size(),
              builtin.vectorTiming.size());
    for (const auto &[op, t] : builtin.vectorTiming) {
        const VectorTiming &p = parsed.timing(op);
        EXPECT_EQ(p.x, t.x) << isa::opcodeInfo(op).mnemonic;
        EXPECT_EQ(p.y, t.y) << isa::opcodeInfo(op).mnemonic;
        EXPECT_EQ(p.z, t.z) << isa::opcodeInfo(op).mnemonic;
        EXPECT_EQ(p.bubble, t.bubble) << isa::opcodeInfo(op).mnemonic;
    }
}

TEST(MachineFileOracle, ShippedVariantsParseAndDiffer)
{
    Diagnostics diags;
    std::vector<std::string> files =
        listMachineFiles(MACS_MACHINE_DIR, diags);
    ASSERT_FALSE(diags.hasErrors()) << diags.render();
    ASSERT_GE(files.size(), 5u) << "expected c240 + >=4 variants";
    EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));

    // Every shipped file parses cleanly, names are unique, and every
    // variant differs from the baseline in content (hash included).
    MachineConfig baseline = MachineConfig::convexC240();
    std::set<std::string> names;
    std::set<uint64_t> hashes;
    for (const std::string &path : files) {
        MachineFile mf;
        Diagnostics d;
        ASSERT_TRUE(loadMachineFile(path, mf, d))
            << path << "\n" << d.render();
        EXPECT_TRUE(names.insert(mf.name).second)
            << "duplicate machine name " << mf.name;
        EXPECT_TRUE(hashes.insert(mf.config.contentHash()).second)
            << mf.name << " aliases another machine's content hash";
        if (mf.name != "c240") {
            EXPECT_NE(mf.config.fingerprint(), baseline.fingerprint())
                << mf.name << " should differ from the baseline";
        }
    }
}

// fingerprint() and contentHash() must agree on what "equal" means:
// this is the guard that keeps a new config field from being added to
// one but not the other (the memo cache keys on contentHash).
TEST(MachineFileOracle, FingerprintEqualIffContentHashEqual)
{
    Diagnostics diags;
    std::vector<MachineConfig> configs{MachineConfig::convexC240(),
                                       MachineConfig::noBubbles(),
                                       MachineConfig::noRefresh(),
                                       MachineConfig::noChaining(),
                                       MachineConfig::noScalarCache(),
                                       MachineConfig::withBanks(64)};
    for (const std::string &path :
         listMachineFiles(MACS_MACHINE_DIR, diags))
        configs.push_back(MachineConfig::fromFile(path));
    for (size_t i = 0; i < configs.size(); ++i) {
        for (size_t j = 0; j < configs.size(); ++j) {
            bool fp_eq = configs[i].fingerprint() ==
                         configs[j].fingerprint();
            bool h_eq = configs[i].contentHash() ==
                        configs[j].contentHash();
            EXPECT_EQ(fp_eq, h_eq) << i << " vs " << j;
        }
    }
}

// --- memo-cache key collision (satellite: content hash, not name) ----

TEST(MachineFileCache, SameNameDifferentConstantsCannotAlias)
{
    // Two machines that SHARE a name but differ in one constant must
    // produce different pipeline cache keys: the key is a content
    // hash of the resolved config, never the name string.
    MachineFile a = parseOk("[machine]\nname = twin\n"
                            "[memory]\nbanks = 32\n");
    MachineFile b = parseOk("[machine]\nname = twin\n"
                            "[memory]\nbanks = 64\n");
    ASSERT_EQ(a.name, b.name);
    EXPECT_NE(a.config.contentHash(), b.config.contentHash());

    lfk::Kernel k = lfk::makeKernel(1);
    pipeline::BatchJob ja, jb;
    ja.label = jb.label = k.name;
    ja.configName = jb.configName = "twin"; // the aliasing name
    ja.kernel = jb.kernel = lfk::toKernelCase(k);
    ja.config = a.config;
    jb.config = b.config;
    EXPECT_NE(BatchEngine::keyOf(ja), BatchEngine::keyOf(jb));

    // And the new chaining knob must reach the key too.
    pipeline::BatchJob jc = ja;
    jc.config.chaining.fpAddMulShared = true;
    EXPECT_NE(BatchEngine::keyOf(ja), BatchEngine::keyOf(jc));
}

// --- parser behavior --------------------------------------------------

TEST(MachineFileParser, DefaultsAndStemName)
{
    MachineFile mf;
    Diagnostics diags;
    ASSERT_TRUE(parseMachineDescription("[machine]\n",
                                        "machines/foo.machine", mf,
                                        diags))
        << diags.render();
    EXPECT_EQ(mf.name, "foo"); // file stem when no name key
    // All-defaults config equals a default-constructed MachineConfig.
    EXPECT_EQ(mf.config.fingerprint(), MachineConfig{}.fingerprint());
}

TEST(MachineFileParser, CpusKeyParsesAndReachesContentHash)
{
    // The multi-CPU count is a [machine] key with range [1, 64]; it
    // must flow into both fingerprint() and contentHash() (it keys
    // the mp memo cache), and the C-3800-ish variant ships with 8.
    MachineFile two = parseOk("[machine]\ncpus = 2\n");
    EXPECT_EQ(two.config.cpus, 2);
    MachineFile four = parseOk("[machine]\ncpus = 4\n");
    EXPECT_EQ(four.config.cpus, 4);
    EXPECT_NE(two.config.contentHash(), four.config.contentHash());
    EXPECT_NE(two.config.fingerprint(), four.config.fingerprint());

    MachineConfig c3800 = MachineConfig::fromFile(
        machinePath("c3800ish.machine"));
    EXPECT_EQ(c3800.cpus, 8);

    MachineFile arb = parseOk(
        "[memory]\narbitration-restart-cycles = 9\n");
    EXPECT_EQ(arb.config.memory.arbitrationRestartCycles, 9);
    EXPECT_NE(arb.config.contentHash(),
              MachineConfig{}.contentHash());
}

TEST(MachineFileParser, BooleanSpellings)
{
    MachineFile mf = parseOk("[memory]\nrefresh-enabled = off\n"
                             "[chaining]\nenabled = 1\n"
                             "enforce-pair-limits = TRUE\n"
                             "fp-add-mul-shared = on\n"
                             "[scalar-cache]\nenabled = false\n");
    EXPECT_FALSE(mf.config.memory.refreshEnabled);
    EXPECT_TRUE(mf.config.chaining.chainingEnabled);
    EXPECT_TRUE(mf.config.chaining.enforcePairLimits);
    EXPECT_TRUE(mf.config.chaining.fpAddMulShared);
    EXPECT_FALSE(mf.config.scalarCache.enabled);
}

TEST(MachineFileParser, ReportsEveryErrorWithLineAndColumn)
{
    Diagnostics diags = parseBad("[machine]\n"
                                 "name = ok\n"
                                 "clock-mhz = fast\n"   // line 3
                                 "volts = 5\n"          // line 4
                                 "[memory]\n"
                                 "banks = 99999999\n"); // line 6
    ASSERT_EQ(diags.errorCount(), 3u) << diags.render();
    EXPECT_EQ(diags.entries()[0].loc.line, 3u);
    EXPECT_EQ(diags.entries()[0].loc.col, 13u); // points at 'fast'
    EXPECT_EQ(diags.entries()[1].loc.line, 4u);
    EXPECT_EQ(diags.entries()[2].loc.line, 6u);
    // The rendered report carries file:line:col for every entry.
    std::string rendered = diags.render();
    EXPECT_NE(rendered.find("<test>:3:13"), std::string::npos)
        << rendered;
    EXPECT_NE(rendered.find("<test>:4:9"), std::string::npos)
        << rendered;
    EXPECT_NE(rendered.find("<test>:6:9"), std::string::npos)
        << rendered;
}

TEST(MachineFileParser, FromFileThrowsDiagnosticError)
{
    EXPECT_THROW(MachineConfig::fromFile(
                     corpusPath("bad_machine/torn.machine")),
                 DiagnosticError);
    EXPECT_THROW(MachineConfig::fromFile("/nonexistent/x.machine"),
                 DiagnosticError);
}

TEST(MachineFileParser, ErrorCascadeIsCapped)
{
    std::string text = "[machine]\n";
    for (int i = 0; i < 100; ++i)
        text += format("bogus-key-%d = 1\n", i);
    Diagnostics diags = parseBad(text);
    // The parser stops at the Diagnostics cascade cap instead of
    // reporting all 100 bogus keys.
    EXPECT_EQ(diags.errorCount(), diags.maxErrors);
    EXPECT_EQ(diags.entries().size(), diags.maxErrors);
}

// --- the negative corpus ----------------------------------------------

struct BadCase
{
    const char *file;
    size_t errors;                  ///< exact expected error count
    std::vector<size_t> lines;      ///< every expected error line
};

class BadMachineCorpus : public ::testing::TestWithParam<BadCase>
{
};

TEST_P(BadMachineCorpus, ReportsAllErrorsWithLocations)
{
    const BadCase &c = GetParam();
    std::string path = corpusPath(std::string("bad_machine/") +
                                  c.file);
    MachineFile mf;
    Diagnostics diags;
    EXPECT_FALSE(loadMachineFile(path, mf, diags)) << path;
    EXPECT_EQ(diags.errorCount(), c.errors) << diags.render();
    std::vector<size_t> got;
    for (const Diagnostic &d : diags.entries())
        if (d.severity == DiagSeverity::Error) {
            EXPECT_TRUE(d.loc.valid()) << d.render();
            EXPECT_GT(d.loc.col, 0u) << d.render();
            EXPECT_EQ(d.file, path);
            got.push_back(d.loc.line);
        }
    EXPECT_EQ(got, c.lines) << diags.render();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BadMachineCorpus,
    ::testing::Values(
        BadCase{"unknown_keys.machine", 4, {6, 10, 11, 14}},
        BadCase{"bad_banks.machine", 4, {7, 8, 9, 13}},
        BadCase{"duplicate_sections.machine", 3, {6, 11, 12}},
        BadCase{"torn.machine", 4, {1, 3, 7, 8}},
        BadCase{"bad_timing.machine", 5, {8, 9, 10, 11, 12}},
        BadCase{"bad_cpus.machine", 5, {5, 8, 9, 11, 12}}),
    [](const auto &info) {
        std::string name = info.param.file;
        return name.substr(0, name.find('.'));
    });

// --- the 2-pipe knob reaches the chime partitioner --------------------

TEST(MachineFileModel, SharedFpPipeSplitsAddMulChimes)
{
    // LFK7 packs adds and multiplies into shared chimes on the
    // 3-pipe baseline; with fp-add-mul-shared they cannot share, so
    // the partition must grow and the MACS bound must rise.
    lfk::Kernel k = lfk::makeKernel(7);
    MachineConfig base = MachineConfig::convexC240();
    MachineConfig shared = base;
    shared.chaining.fpAddMulShared = true;

    auto chimes3 = model::partitionChimes(k.program.instrs(),
                                          base.chaining);
    auto chimes2 = model::partitionChimes(k.program.instrs(),
                                          shared.chaining);
    EXPECT_GT(chimes2.size(), chimes3.size());

    model::KernelCase kc = lfk::toKernelCase(k);
    model::KernelAnalysis a3 = model::analyzeKernel(kc, base);
    model::KernelAnalysis a2 = model::analyzeKernel(kc, shared);
    EXPECT_GT(a2.macs.cpl, a3.macs.cpl);
    // The simulated runs must slow down too (the simulator pipe
    // model honors the knob, not just the bound).
    EXPECT_GE(a2.tP, a3.tP);
}

} // namespace
} // namespace macs::machine
