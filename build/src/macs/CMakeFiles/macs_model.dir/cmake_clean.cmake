file(REMOVE_RECURSE
  "CMakeFiles/macs_model.dir/ax_transform.cc.o"
  "CMakeFiles/macs_model.dir/ax_transform.cc.o.d"
  "CMakeFiles/macs_model.dir/bounds.cc.o"
  "CMakeFiles/macs_model.dir/bounds.cc.o.d"
  "CMakeFiles/macs_model.dir/chime.cc.o"
  "CMakeFiles/macs_model.dir/chime.cc.o.d"
  "CMakeFiles/macs_model.dir/hierarchy.cc.o"
  "CMakeFiles/macs_model.dir/hierarchy.cc.o.d"
  "CMakeFiles/macs_model.dir/macs_bound.cc.o"
  "CMakeFiles/macs_model.dir/macs_bound.cc.o.d"
  "CMakeFiles/macs_model.dir/macsd.cc.o"
  "CMakeFiles/macs_model.dir/macsd.cc.o.d"
  "CMakeFiles/macs_model.dir/report_md.cc.o"
  "CMakeFiles/macs_model.dir/report_md.cc.o.d"
  "CMakeFiles/macs_model.dir/workload.cc.o"
  "CMakeFiles/macs_model.dir/workload.cc.o.d"
  "libmacs_model.a"
  "libmacs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
