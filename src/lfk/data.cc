#include "lfk/data.h"

#include <cmath>

#include "support/strings.h"

namespace macs::lfk {

std::vector<double>
testVector(size_t n, uint64_t seed, double lo, double hi)
{
    std::vector<double> out(n);
    uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    for (size_t i = 0; i < n; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        double u = static_cast<double>((state >> 11) & 0xFFFFFFFFFFFFF) /
                   static_cast<double>(0x10000000000000);
        out[i] = lo + u * (hi - lo);
    }
    return out;
}

namespace {

bool
closeEnough(double got, double want, double rel_tol)
{
    double mag = std::max(std::abs(got), std::abs(want));
    return std::abs(got - want) <= rel_tol * std::max(mag, 1.0);
}

} // namespace

std::string
compareArray(const sim::Simulator &sim, const std::string &symbol,
             const std::vector<double> &expected, double rel_tol)
{
    auto got = sim.memory().readDoubles(symbol, expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        if (!closeEnough(got[i], expected[i], rel_tol)) {
            return format("%s[%zu]: got %.17g, expected %.17g",
                          symbol.c_str(), i, got[i], expected[i]);
        }
    }
    return {};
}

std::string
compareCell(const sim::Simulator &sim, const std::string &symbol,
            double expected, double rel_tol)
{
    double got = sim.memory().readDoubles(symbol, 1)[0];
    if (!closeEnough(got, expected, rel_tol)) {
        return format("%s: got %.17g, expected %.17g", symbol.c_str(),
                      got, expected);
    }
    return {};
}

} // namespace macs::lfk
