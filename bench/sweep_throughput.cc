/**
 * @file
 * Throughput of `macs sweep` on a machine grid (docs/MACHINES.md).
 *
 * The grid is the five shipped machine files plus synthesized bank
 * variants (>= 8 machines total) crossed with the full LFK kernel set
 * — every cell a distinct (kernel, machine) analysis, so unlike the
 * batch bench there is almost no memoizable duplication and worker
 * scaling carries the whole speedup. Per worker count we print
 * cells/sec and speedup vs the 1-worker run, and compare the rendered
 * JSON byte-for-byte against the 1-worker report (determinism).
 *
 * `--json PATH` writes the machine-readable summary consumed by
 * scripts/perf_gate.py (schema "macs-bench-sweep-v1"). Gated metric:
 * the 4-worker speedup ratio, which is host-speed independent.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "machine/machine_file.h"
#include "pipeline/report.h"
#include "pipeline/sweep.h"
#include "support/diag.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

using namespace macs;

/** Shipped machine files + synthesized bank variants (>= 8 total). */
pipeline::SweepRequest
gridRequest()
{
    pipeline::SweepRequest request;
    Diagnostics diags;
    for (const std::string &path :
         machine::listMachineFiles(MACS_MACHINE_DIR, diags)) {
        machine::MachineFile mf;
        Diagnostics d;
        if (!machine::loadMachineFile(path, mf, d))
            fatal("bench machine file: ", d.render());
        request.machines.push_back(
            {mf.name, mf.description, path, mf.config});
    }
    if (diags.hasErrors())
        fatal(diags.render());
    for (int banks : {8, 16, 128}) {
        pipeline::SweepMachine m;
        m.name = format("c240-%dbank-synth", banks);
        m.description = format("synthesized %d-bank variant", banks);
        m.source = "<synthesized>";
        m.config = machine::MachineConfig::withBanks(banks);
        request.machines.push_back(std::move(m));
    }
    MACS_ASSERT(request.machines.size() >= 8,
                "sweep bench wants >= 8 machines, got ",
                request.machines.size());
    for (int id : lfk::lfkIds())
        request.kernels.push_back(
            lfk::toKernelCase(lfk::makeKernel(id)));
    return request;
}

struct Sample
{
    pipeline::SweepResult result;
    double wallUs = 0.0;
};

/** Median-of-N sweep at @p workers; fresh engine (cold cache) per rep. */
Sample
medianSweep(const pipeline::SweepRequest &request, size_t workers,
            int reps)
{
    std::vector<Sample> runs;
    std::vector<double> walls;
    for (int rep = 0; rep < reps; ++rep) {
        pipeline::EngineOptions opt;
        opt.workers = workers;
        pipeline::BatchEngine engine(opt);
        Sample s;
        s.result = pipeline::runSweep(request, engine);
        s.wallUs = s.result.stats.wallUs;
        walls.push_back(s.wallUs);
        runs.push_back(std::move(s));
    }
    double mid = bench::median(walls);
    size_t pick = 0;
    for (size_t i = 1; i < runs.size(); ++i)
        if (std::abs(runs[i].wallUs - mid) <
            std::abs(runs[pick].wallUs - mid))
            pick = i;
    return std::move(runs[pick]);
}

bool
writeJson(const std::string &path, double speedup4, double speedup8,
          double warm_ratio, double serial_cells_per_sec,
          double cells)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n"
        << "  \"schema\": \"macs-bench-sweep-v1\",\n"
        << "  \"gated\": {\n"
        << format("    \"sweep_speedup_4_workers\": %.3f,\n",
                  speedup4)
        << format("    \"sweep_warm_vs_cold_ratio\": %.3f\n",
                  warm_ratio)
        << "  },\n"
        << "  \"informative\": {\n"
        << format("    \"sweep_speedup_8_workers\": %.3f,\n", speedup8)
        << format("    \"serial_cells_per_sec\": %.1f,\n",
                  serial_cells_per_sec)
        << format("    \"grid_cells\": %.0f\n", cells)
        << "  }\n"
        << "}\n";
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: sweep_throughput [--json PATH]\n");
            return 1;
        }
    }

    pipeline::SweepRequest request = gridRequest();
    double cells = static_cast<double>(request.machines.size() *
                                       request.kernels.size());
    std::printf("=== Sweep throughput: %zu machines x %zu kernels "
                "(%0.f cells, all unique) ===\n\n",
                request.machines.size(), request.kernels.size(),
                cells);
    std::printf("hardware threads: %u\n\n",
                std::thread::hardware_concurrency());

    // Untimed warm-up: page faults, allocator growth, code warm-up
    // land in no sample (see pipeline_throughput.cc).
    {
        pipeline::BatchEngine warm;
        (void)pipeline::runSweep(request, warm);
    }

    constexpr int kReps = 5;
    Sample serial = medianSweep(request, 1, kReps);
    std::string golden_bytes =
        pipeline::renderSweepJson(serial.result);
    double serial_cps = cells / (serial.wallUs / 1e6);
    std::printf("serial: %s\n\n",
                pipeline::renderStatsLine(serial.result.stats).c_str());

    Table t({"workers", "cells/s", "wall ms", "speedup",
             "identical bytes"});
    double speedup4 = 0.0, speedup8 = 0.0;
    for (size_t workers : {1u, 2u, 4u, 8u}) {
        Sample s = medianSweep(request, workers, kReps);
        std::string bytes = pipeline::renderSweepJson(s.result);
        bool same = bytes == golden_bytes;
        double speedup = serial.wallUs / s.wallUs;
        if (workers == 4)
            speedup4 = speedup;
        if (workers == 8)
            speedup8 = speedup;
        t.addRow({Table::num((long)workers),
                  Table::num(cells / (s.wallUs / 1e6), 1),
                  Table::num(s.wallUs / 1000.0, 1),
                  Table::num(speedup, 2), same ? "yes" : "NO"});
        if (!same) {
            std::printf("ERROR: sweep bytes differ at %zu workers\n",
                        workers);
            return 1;
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("4-worker speedup target (>= 2.5x): %s\n\n",
                speedup4 >= 2.5 ? "met" : "NOT met on this host");

    // Warm-vs-cold on ONE engine: a repeated sweep is pure memo-cache
    // hits (same content hashes), so this ratio is core-count
    // independent — the host-portable half of the gate.
    double warm_ratio = 0.0;
    {
        pipeline::BatchEngine engine;
        Sample cold;
        cold.result = pipeline::runSweep(request, engine);
        cold.wallUs = cold.result.stats.wallUs;
        std::vector<double> walls;
        for (int rep = 0; rep < kReps; ++rep) {
            pipeline::SweepResult warm =
                pipeline::runSweep(request, engine);
            MACS_ASSERT(warm.stats.cacheHits == warm.stats.jobs,
                        "warm sweep should be all cache hits");
            if (pipeline::renderSweepJson(warm) != golden_bytes) {
                std::printf("ERROR: warm sweep bytes differ\n");
                return 1;
            }
            walls.push_back(warm.stats.wallUs);
        }
        warm_ratio = cold.wallUs / bench::median(walls);
        std::printf("warm (memoized) rerun: %.1fx faster than cold\n\n",
                    warm_ratio);
    }

    std::printf(
        "Every cell of the grid is a unique (kernel, machine)\n"
        "analysis — the memo cache cannot collapse any of it — so the\n"
        "speedup here is pure worker-pool scaling, and the JSON bytes\n"
        "are identical at every worker count (sorted machine axis,\n"
        "submission-ordered results).\n");

    if (!json_path.empty() &&
        !writeJson(json_path, speedup4, speedup8, warm_ratio,
                   serial_cps, cells)) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    return 0;
}
