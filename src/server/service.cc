#include "server/service.h"

#include <chrono>
#include <future>
#include <utility>

#include "lfk/kernels.h"
#include "support/strings.h"

namespace macs::server {

namespace {

using pipeline::AnalysisCache;
using pipeline::BatchEngine;
using pipeline::BatchJob;
using pipeline::BatchResult;
using pipeline::CacheKey;
using pipeline::JobResult;

double
nowUs()
{
    auto d = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double, std::micro>(d).count();
}

/** Same log-spaced edges as the batch engine (10us .. 1s). */
const double kUsEdges[] = {10.0,    100.0,    1000.0,
                           10000.0, 100000.0, 1000000.0};

} // namespace

std::vector<BatchJob>
expandJobSet(const JobSetSpec &spec)
{
    std::vector<std::string> variants = spec.variants;
    if (variants.empty())
        variants.push_back("baseline");
    std::vector<int> vls = spec.vls;
    if (vls.empty())
        vls.push_back(0); // machine default

    std::vector<BatchJob> jobs;
    for (long rep = 0; rep < spec.repeat; ++rep) {
        for (const std::string &variant : variants) {
            machine::MachineConfig cfg =
                machine::MachineConfig::variant(variant);
            for (int vl : vls) {
                for (int id : spec.ids) {
                    lfk::Kernel k = lfk::makeKernel(id);
                    BatchJob job;
                    job.label = k.name;
                    if (vl > 0)
                        job.label += format("@vl%d", vl);
                    job.configName = variant;
                    job.kernel = lfk::toKernelCase(k);
                    job.config = cfg;
                    job.options = spec.options;
                    job.vectorLength = vl;
                    jobs.push_back(std::move(job));
                }
                for (const model::KernelCase &kc : spec.kernels) {
                    BatchJob job;
                    job.label = kc.name;
                    if (vl > 0)
                        job.label += format("@vl%d", vl);
                    job.configName = variant;
                    job.kernel = kc;
                    job.config = cfg;
                    job.options = spec.options;
                    job.vectorLength = vl;
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    return jobs;
}

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(options)
{
    cache_.setCapacity(options_.cacheCapacity);
    cache_.attachMetrics(&registry());
    if (options_.checkpoint != nullptr && options_.useCache)
        options_.checkpoint->seedInto(cache_);
}

AnalysisService::~AnalysisService()
{
    reapStrays();
}

obs::Registry &
AnalysisService::registry() const
{
    return options_.metrics != nullptr ? *options_.metrics
                                       : obs::Registry::global();
}

void
AnalysisService::reapStrays()
{
    std::vector<std::thread> strays;
    {
        std::lock_guard<std::mutex> lock(straysMu_);
        strays.swap(strays_);
    }
    for (std::thread &t : strays)
        t.join();
}

/**
 * The service twin of BatchEngine::computeWithDeadline: run the
 * guarded compute on a side thread, wait at most jobTimeoutMs (or
 * until @p cancel — server drain — fires), then signal cancellation,
 * park the thread on strays_, and fail with DeadlineExceeded.
 */
AnalysisCache::Value
AnalysisService::computeWithDeadline(const BatchJob &job,
                                     const CacheKey &key,
                                     int &attempts,
                                     const std::atomic<bool> *cancel)
{
    struct State
    {
        std::promise<AnalysisCache::Value> result;
        std::atomic<bool> cancel{false};
        std::atomic<int> attempts{1};
    };
    auto state = std::make_shared<State>();
    std::future<AnalysisCache::Value> future =
        state->result.get_future();

    pipeline::GuardedComputeOptions copt;
    copt.maxRetries = options_.maxRetries;
    copt.retryBackoffUs = options_.retryBackoffUs;
    copt.faults = options_.faults;
    copt.metrics = options_.metrics;

    std::thread worker([&job, key, state, copt] {
        try {
            state->result.set_value(pipeline::computeAnalysisGuarded(
                job, key, copt, state->attempts, &state->cancel));
        } catch (...) {
            state->result.set_exception(std::current_exception());
        }
    });

    // Wait in 1 ms slices so a server drain (@p cancel) is observed
    // promptly, not only at deadline expiry.
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(options_.jobTimeoutMs);
    bool expired = false;
    for (;;) {
        auto left = deadline - std::chrono::steady_clock::now();
        if (left <= std::chrono::steady_clock::duration::zero()) {
            expired = true;
            break;
        }
        auto slice = std::chrono::milliseconds(1);
        auto wait = left < std::chrono::steady_clock::duration(slice)
                        ? left
                        : std::chrono::steady_clock::duration(slice);
        if (future.wait_for(wait) == std::future_status::ready)
            break;
        if (cancel != nullptr &&
            cancel->load(std::memory_order_acquire)) {
            expired = true;
            break;
        }
    }
    if (!expired) {
        worker.join();
        attempts = state->attempts.load(std::memory_order_relaxed);
        return future.get(); // rethrows the worker's exception
    }

    state->cancel.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(straysMu_);
        strays_.push_back(std::move(worker));
    }
    attempts = state->attempts.load(std::memory_order_relaxed);
    registry()
        .counter("macs_retry_timeouts_total",
                 "Jobs whose wall-clock deadline expired")
        .inc();
    throw pipeline::DeadlineExceeded(
        format("job '%s' exceeded its %g ms deadline",
               job.displayLabel().c_str(), options_.jobTimeoutMs));
}

void
AnalysisService::runOne(const BatchJob &job, JobResult &out,
                        const std::atomic<bool> *cancel)
{
    double start_us = nowUs();

    auto compute = [&](int &attempts_out) -> AnalysisCache::Value {
        if (options_.jobTimeoutMs > 0.0)
            return computeWithDeadline(job, out.key, attempts_out,
                                       cancel);
        pipeline::GuardedComputeOptions copt;
        copt.maxRetries = options_.maxRetries;
        copt.retryBackoffUs = options_.retryBackoffUs;
        copt.faults = options_.faults;
        copt.metrics = options_.metrics;
        std::atomic<int> attempts{1};
        try {
            AnalysisCache::Value v = pipeline::computeAnalysisGuarded(
                job, out.key, copt, attempts, cancel);
            attempts_out = attempts.load(std::memory_order_relaxed);
            return v;
        } catch (...) {
            attempts_out = attempts.load(std::memory_order_relaxed);
            throw;
        }
    };

    try {
        if (!options_.useCache) {
            double c0 = nowUs();
            out.analysis = compute(out.timing.attempts);
            out.timing.computeUs = nowUs() - c0;
        } else {
            AnalysisCache::Claim claim = cache_.claim(out.key);
            if (claim.owner()) {
                double c0 = nowUs();
                bool computed = false;
                try {
                    claim.promise->set_value(
                        compute(out.timing.attempts));
                    computed = true;
                } catch (...) {
                    claim.promise->set_exception(
                        std::current_exception());
                }
                if (computed && options_.checkpoint != nullptr)
                    options_.checkpoint->append(out.key,
                                                *claim.future.get());
                out.timing.computeUs = nowUs() - c0;
            } else {
                out.timing.cacheHit = true;
            }
            // get() rethrows the owner's exception for every waiter.
            out.analysis = claim.future.get();
        }
    } catch (...) {
        out.analysis = nullptr;
        out.errorKind = pipeline::classifyError(
            std::current_exception(), out.error);
    }
    out.timing.totalUs = nowUs() - start_us;
}

BatchResult
AnalysisService::runJobs(const std::vector<BatchJob> &jobs,
                         const std::atomic<bool> *cancel)
{
    BatchResult result;
    result.results.resize(jobs.size());
    result.stats.workers = 1; // inline on the calling thread
    result.stats.jobs = jobs.size();
    if (jobs.empty())
        return result;

    double t0 = nowUs();
    for (size_t i = 0; i < jobs.size(); ++i) {
        JobResult &out = result.results[i];
        out.label = jobs[i].displayLabel();
        out.configName = jobs[i].configName;
        out.vectorLength = jobs[i].vectorLength > 0
                               ? jobs[i].vectorLength
                               : jobs[i].config.maxVectorLength;
        out.clockMhz = jobs[i].config.clockMhz;
        out.key = BatchEngine::keyOf(jobs[i]);
        runOne(jobs[i], out, cancel);
    }
    result.stats.wallUs = nowUs() - t0;

    for (size_t i = 0; i < result.results.size(); ++i) {
        const JobResult &r = result.results[i];
        result.stats.computeUs += r.timing.computeUs;
        result.stats.queueWaitUs += r.timing.queueWaitUs;
        if (r.timing.cacheHit)
            ++result.stats.cacheHits;
        else
            ++result.stats.cacheMisses;
        if (!r.ok()) {
            ++result.stats.failures;
            result.errors.push_back({i, r.label, r.configName,
                                     r.errorKind, r.error,
                                     r.timing.attempts});
        }
    }

    // The same macs_pipeline_* series the batch engine publishes, so
    // a /metrics scrape of a serving process shows pipeline activity
    // with identical names and semantics.
    obs::Registry &reg = registry();
    reg.counter("macs_pipeline_jobs_total",
                "Batch jobs completed by outcome",
                obs::Labels{{"result", "ok"}})
        .inc(static_cast<double>(result.stats.jobs -
                                 result.stats.failures));
    reg.counter("macs_pipeline_jobs_total",
                "Batch jobs completed by outcome",
                obs::Labels{{"result", "error"}})
        .inc(static_cast<double>(result.stats.failures));
    reg.counter("macs_pipeline_cache_total",
                "Memoization cache lookups by outcome",
                obs::Labels{{"event", "hit"}})
        .inc(static_cast<double>(result.stats.cacheHits));
    reg.counter("macs_pipeline_cache_total",
                "Memoization cache lookups by outcome",
                obs::Labels{{"event", "miss"}})
        .inc(static_cast<double>(result.stats.cacheMisses));
    obs::Histogram &compute = reg.histogram(
        "macs_pipeline_compute_us",
        "Per-job analysis compute time (cache hits excluded)",
        kUsEdges);
    for (const JobResult &r : result.results)
        if (!r.timing.cacheHit)
            compute.observe(r.timing.computeUs);

    return result;
}

} // namespace macs::server
