# Empty dependencies file for figure3_runtimes.
# This may be replaced when dependencies are built.
