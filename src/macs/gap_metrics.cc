#include "macs/gap_metrics.h"

namespace macs::model {

GapAttribution
gapAttribution(const KernelAnalysis &a)
{
    GapAttribution g;
    g.kernel = a.name;
    g.tMA = a.maBound.bound;
    g.tMAC = a.macBound.bound;
    g.tMACS = a.macs.cpl;
    g.tSim = a.tP;
    g.compilerGap = g.tMAC - g.tMA;
    g.scheduleGap = g.tMACS - g.tMAC;
    g.unmodeledGap = g.tSim - g.tMACS;
    g.chimes = a.macs.chimes.size();
    return g;
}

void
recordGapMetrics(obs::Registry &reg, const KernelAnalysis &a,
                 const std::string &config, const std::string &label)
{
    GapAttribution g = gapAttribution(a);
    obs::Labels base{{"kernel", label.empty() ? a.name : label},
                     {"config", config}};

    auto level = [&](const char *name, double cpl) {
        obs::Labels l = base;
        l.set("level", name);
        reg.gauge("macs_model_level_cpl",
                  "MACS hierarchy level in cycles per loop iteration",
                  l)
            .set(cpl);
    };
    level("ma", g.tMA);
    level("mac", g.tMAC);
    level("macs", g.tMACS);
    level("sim", g.tSim);

    auto gap = [&](const char *layer, double cpl) {
        obs::Labels l = base;
        l.set("layer", layer);
        reg.gauge("macs_model_gap_cpl",
                  "Per-layer performance gap in CPL "
                  "(compiler: MAC-MA, schedule: MACS-MAC, "
                  "unmodeled: sim-MACS)",
                  l)
            .set(cpl);
    };
    gap("compiler", g.compilerGap);
    gap("schedule", g.scheduleGap);
    gap("unmodeled", g.unmodeledGap);

    reg.gauge("macs_model_macs_coverage_ratio",
              "Fraction of measured time the MACS bound explains",
              base)
        .set(g.macsCoverage());
    reg.gauge("macs_model_chime_count",
              "Chime partitions of the scheduled inner loop", base)
        .set(static_cast<double>(g.chimes));
}

} // namespace macs::model
