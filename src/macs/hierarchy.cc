#include "macs/hierarchy.h"

#include <algorithm>
#include <sstream>

#include "macs/ax_transform.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::model {

double
KernelAnalysis::cpf(double cpl) const
{
    MACS_ASSERT(sourceFlopsPerPoint > 0, "kernel has no source flops");
    return cpl / static_cast<double>(sourceFlopsPerPoint);
}

namespace {

/**
 * Measured cycles normalized to CPL. The bounds express cycles per
 * *source* iteration (one result point): t_MACS divides the strip cost
 * by VL, so measured times divide total cycles by total points.
 */
double
normalizeCpl(double cycles, long points)
{
    MACS_ASSERT(points > 0, "kernel case needs a positive point count");
    return cycles / static_cast<double>(points);
}

sim::RunStats
runProgram(const isa::Program &prog, const KernelCase &kernel,
           const machine::MachineConfig &config,
           const sim::SimOptions &options)
{
    sim::Simulator simulator(config, prog, options);
    if (kernel.setup)
        kernel.setup(simulator);
    return simulator.run();
}

} // namespace

std::string
fingerprint(const KernelCase &kernel)
{
    std::string out;
    out += "kernel " + kernel.name + "\n";
    out += format("ma fa=%d fm=%d l=%d s=%d\n", kernel.ma.fAdd,
                  kernel.ma.fMul, kernel.ma.loads, kernel.ma.stores);
    out += format("flops=%d points=%ld\n", kernel.sourceFlopsPerPoint,
                  kernel.points);
    out += kernel.program.toString();
    return out;
}

KernelAnalysis
analyzeKernel(const KernelCase &kernel,
              const machine::MachineConfig &config,
              const sim::SimOptions &options)
{
    MACS_ASSERT(kernel.sourceFlopsPerPoint > 0,
                "kernel '", kernel.name, "' needs sourceFlopsPerPoint");
    MACS_ASSERT(kernel.points > 0, "kernel '", kernel.name,
                "' needs points");

    KernelAnalysis a;
    a.name = kernel.name;
    a.ma = kernel.ma;
    a.sourceFlopsPerPoint = kernel.sourceFlopsPerPoint;
    a.points = kernel.points;

    // Bounds from the compiled inner loop.
    auto body = kernel.program.innerLoop();
    a.mac = countAssembly(body);
    a.maBound = pipeBound(kernel.ma);
    a.macBound = pipeBound(a.mac);
    a.macs = evaluateMacs(body, config, config.maxVectorLength);
    a.macsFOnly = evaluateMacsFOnly(body, config, config.maxVectorLength);
    a.macsMOnly = evaluateMacsMOnly(body, config, config.maxVectorLength);

    // Measured times: full, A-process, X-process.
    a.fullStats = runProgram(kernel.program, kernel, config, options);
    isa::Program a_prog = makeAProcess(kernel.program);
    isa::Program x_prog = makeXProcess(kernel.program);
    a.aStats = runProgram(a_prog, kernel, config, options);
    a.xStats = runProgram(x_prog, kernel, config, options);

    a.tP = normalizeCpl(a.fullStats.cycles, kernel.points);
    a.tA = normalizeCpl(a.aStats.cycles, kernel.points);
    a.tX = normalizeCpl(a.xStats.cycles, kernel.points);
    return a;
}

std::string
renderReport(const KernelAnalysis &a, const machine::MachineConfig &config)
{
    std::ostringstream os;
    auto pct = [](double lo, double hi) {
        return hi > 0.0 ? 100.0 * lo / hi : 0.0;
    };

    os << "=== " << a.name << " — MACS performance hierarchy ===\n";
    os << format("workload MA : f_a=%d f_m=%d l=%d s=%d\n", a.ma.fAdd,
                 a.ma.fMul, a.ma.loads, a.ma.stores);
    os << format("workload MAC: f_a=%d f_m=%d l=%d s=%d\n", a.mac.fAdd,
                 a.mac.fMul, a.mac.loads, a.mac.stores);

    os << format("\n%-28s %8s %8s\n", "level", "CPL", "CPF");
    auto row = [&](const char *label, double cpl) {
        os << format("%-28s %8.3f %8.3f\n", label, cpl, a.cpf(cpl));
    };
    row("t_MA   (machine+app)", a.maBound.bound);
    row("t_MAC  (+compiler)", a.macBound.bound);
    row("t_MACS (+schedule)", a.macs.cpl);
    row("t_p    (measured)", a.tP);
    os << format("%-28s %8.3f %8.3f  (model t_MACS^m %.3f)\n",
                 "t_A    (access-only)", a.tA, a.cpf(a.tA),
                 a.macsMOnly.cpl);
    os << format("%-28s %8.3f %8.3f  (model t_MACS^f %.3f)\n",
                 "t_X    (execute-only)", a.tX, a.cpf(a.tX),
                 a.macsFOnly.cpl);
    os << format("\nbound coverage: MA %.1f%%  MAC %.1f%%  MACS %.1f%% "
                 "of measured t_p\n",
                 pct(a.maBound.bound, a.tP), pct(a.macBound.bound, a.tP),
                 pct(a.macs.cpl, a.tP));
    os << format("MFLOPS (measured): %.2f\n",
                 config.clockMhz / a.actualCpf());
    if (a.fullStats.scalarMemAccesses) {
        os << format(
            "scalar memory: %llu accesses (%llu cache hits, %llu "
            "misses)\n",
            (unsigned long long)a.fullStats.scalarMemAccesses,
            (unsigned long long)a.fullStats.scalarCacheHits,
            (unsigned long long)a.fullStats.scalarCacheMisses);
    }

    // ---- section 4.4 style diagnosis ----
    os << "\ndiagnosis:\n";
    bool any = false;

    if (a.macBound.bound > a.maBound.bound + 1e-9) {
        any = true;
        os << format(
            "  - MAC > MA: the compiler inserted %d extra vector memory "
            "op(s)\n    (shifted operand reuse reloaded instead of kept "
            "in registers)\n",
            a.mac.tM() - a.ma.tM() + (a.mac.tF() - a.ma.tF()));
    }
    if (a.macsFOnly.cpl - a.macBound.tF > 1.0) {
        any = true;
        os << "  - t_MACS^f - t_f' > 1: additions and multiplications "
              "are not\n    perfectly overlapped in the chimes (extra "
              "FP chime)\n";
    }
    if (a.macs.cpl > a.macsMOnly.cpl + 1.0 &&
        a.macs.cpl > static_cast<double>(a.macBound.bound) + 1.0) {
        any = true;
        os << "  - t_MACS well above t_m': chime structure is "
              "fragmented\n    (scalar memory accesses splitting "
              "chimes, or port-limited chaining)\n";
    }
    double overlap_hi = a.tA + a.tX;
    double overlap_lo = std::max(a.tA, a.tX);
    if (a.tP > 0.9 * overlap_hi && overlap_lo < 0.8 * overlap_hi) {
        any = true;
        os << "  - t_p near t_A + t_X: the access and execute processes "
              "overlap poorly\n";
    } else if (a.tP < 1.1 * overlap_lo && a.tA > 1.5 * a.tX) {
        any = true;
        os << "  - t_p near t_A >> t_X: performance is bottlenecked in "
              "the A-process (memory)\n";
    } else if (a.tP < 1.1 * overlap_lo && a.tX > 1.5 * a.tA) {
        any = true;
        os << "  - t_p near t_X >> t_A: performance is bottlenecked in "
              "the X-process (FP pipes)\n";
    }
    if (a.tP > 1.15 * a.macs.cpl) {
        any = true;
        double avg_vl =
            a.fullStats.vectorInstructions
                ? static_cast<double>(a.fullStats.vectorElements) /
                      static_cast<double>(a.fullStats.vectorInstructions)
                : 0.0;
        os << format(
            "  - t_p >> t_MACS: unmodeled run time dominates (avg "
            "VL=%.1f%s;\n    check outer-loop overhead, short vectors, "
            "memory strides)\n",
            avg_vl,
            avg_vl < 0.75 * config.maxVectorLength ? ", short vectors"
                                                   : "");
    }
    if (!any)
        os << "  - delivered performance is close to the modeled "
              "bounds; remaining gaps\n    are startup and refresh "
              "effects\n";
    return os.str();
}

} // namespace macs::model
