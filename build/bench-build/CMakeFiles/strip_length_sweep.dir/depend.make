# Empty dependencies file for strip_length_sweep.
# This may be replaced when dependencies are built.
