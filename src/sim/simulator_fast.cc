/**
 * @file
 * The fast tier: chime-batched execution of the C-240 simulator
 * (docs/SIMULATOR.md).
 *
 * The reference tier (simulator.cc) interprets one element at a time:
 * every dynamic instruction re-resolves its timing parameters from the
 * config map, materializes operand lists on the heap, and walks vector
 * elements through out-of-line per-word memory accessors and a nested
 * opcode switch. This tier executes the same model chime-at-a-time:
 *
 *  - the program is predecoded ONCE, at Simulator construction, into a
 *    flat DecodedInstr table (timing parameters, pipe index, pair port
 *    usage, resolved branch targets, static address parts, operand
 *    ready-time pointers straight into Impl — no register-class
 *    switches in the hot loop);
 *  - the in-flight stream set lives in a fixed-capacity inline array
 *    (the pruning invariant below bounds it), so the steady-state
 *    dispatch loop performs zero heap allocations;
 *  - memory streams are rated from a bank-busy schedule precomputed at
 *    construction (bank_model.h strideRateTable) and fed through
 *    MemoryPort::serviceStreamWithRate;
 *  - functional execution of a chime is one batched kernel per opcode
 *    over bulk MemoryImage word spans (one bounds check per stream).
 *
 * Bit-exactness contract: every floating-point timing expression below
 * is transcribed verbatim from Simulator::runReference() and evaluated
 * in the same order, so RunStats, Timeline, and StallProfile output is
 * bit-identical (tests/sim_differential_test.cc holds both tiers to
 * this). Change the reference and this file together.
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "sim/bank_model.h"
#include "sim/simulator.h"
#include "sim/simulator_impl.h"
#include "support/logging.h"

namespace macs::sim {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::RegClass;
using machine::VectorTiming;

namespace {

/** Ready-time target for operands without one (invalid or vector
 *  register slots): the reference's readyAt() returns 0.0 for these. */
constexpr double kZeroReady = 0.0;

/** Dense dispatch class replacing the interpreter's opcode switches. */
enum class ExecKind : uint8_t
{
    VecLoad,
    VecStore,
    VecAdd,
    VecSub,
    VecMul,
    VecDiv,
    VecNeg,
    VecSum,
    ScalarLoad,
    ScalarStore,
    IntAlu,
    FpAlu,
    Mov,
    Compare,
    CondBranch,
    Jump,
    NoOp,
};

ExecKind
kindOf(Opcode op)
{
    switch (op) {
      case Opcode::VLd:
      case Opcode::VLdS:
        return ExecKind::VecLoad;
      case Opcode::VSt:
      case Opcode::VStS:
        return ExecKind::VecStore;
      case Opcode::VAdd:
        return ExecKind::VecAdd;
      case Opcode::VSub:
        return ExecKind::VecSub;
      case Opcode::VMul:
        return ExecKind::VecMul;
      case Opcode::VDiv:
        return ExecKind::VecDiv;
      case Opcode::VNeg:
        return ExecKind::VecNeg;
      case Opcode::VSum:
        return ExecKind::VecSum;
      case Opcode::SLd:
        return ExecKind::ScalarLoad;
      case Opcode::SSt:
        return ExecKind::ScalarStore;
      case Opcode::SAdd:
      case Opcode::SSub:
      case Opcode::SMul:
        return ExecKind::IntAlu;
      case Opcode::SFAdd:
      case Opcode::SFSub:
      case Opcode::SFMul:
      case Opcode::SFDiv:
        return ExecKind::FpAlu;
      case Opcode::SMov:
        return ExecKind::Mov;
      case Opcode::SLt:
      case Opcode::SLe:
        return ExecKind::Compare;
      case Opcode::BrT:
      case Opcode::BrF:
        return ExecKind::CondBranch;
      case Opcode::Jmp:
        return ExecKind::Jump;
      case Opcode::Nop:
        return ExecKind::NoOp;
    }
    panic("kindOf on unknown opcode");
}

} // namespace

/**
 * One predecoded static instruction. Everything a dynamic execution
 * needs that does not depend on register values is resolved here, once
 * per program instead of once per dynamic instruction: the timing
 * parameters (a std::map lookup in the reference), the vector operand
 * lists (heap-allocated std::vector<Reg> per dynamic instruction in
 * the reference), pair port usage, branch targets (a string map
 * lookup per taken branch), the data-symbol part of effective
 * addresses (a string map lookup per memory access), and operand
 * ready-time locations (a register-class switch per query in the
 * reference) resolved to pointers into the owning Simulator's Impl.
 */
struct DecodedInstr
{
    ExecKind kind = ExecKind::NoOp;
    Opcode op = Opcode::Nop;
    bool isVector = false;
    bool isVecMem = false;
    bool isVecFloat = false;
    bool hasImm = false;
    /** 0 = unit stride, 1 = stride in src1 (VLdS), 2 = src2 (VStS). */
    uint8_t strideSrc = 0;
    uint8_t pipe = 0;
    int64_t imm = 0;

    // Operand register copies; rawOf()/setIntReg() on these replicate
    // the interpreter's value accesses exactly.
    Reg dst, src1, src2;

    // Ready-time slots of {src1, src2, mem.base, dst} inside Impl
    // (kZeroReady when the operand has none).
    const double *ready1 = &kZeroReady;
    const double *ready2 = &kZeroReady;
    const double *readyMem = &kZeroReady;
    const double *readyDst = &kZeroReady;

    VectorTiming tim;
    /** Vector registers among {src1, src2}, in that order. */
    int vreads[2] = {-1, -1};
    int numVreads = 0;
    /** dst when it is a vector register, else -1. */
    int vwrite = -1;
    std::array<int, isa::kNumVectorPairs> pairReads{};
    std::array<int, isa::kNumVectorPairs> pairWrites{};

    /** mem.offset + symbolBase(mem.symbol); add the base register. */
    int64_t memStatic = 0;
    int memBaseIdx = -1;

    /** Resolved branch target instruction index. */
    size_t target = 0;

    /** Disassembly, materialized only when tracing or profiling. */
    std::string text;
};

struct FastProgram
{
    std::vector<DecodedInstr> instrs;
    /** Bank-busy schedule: stream rate per |stride| % banks residue. */
    std::vector<double> strideRates;
    double unitRate = 1.0;
    uint64_t banks = 1;
};

/**
 * Predecode a validated program. Program::validate() has already
 * checked every branch target and data symbol (including ones on
 * never-executed paths), so eager resolution here cannot introduce a
 * failure the reference tier would not also hit at the same fatal().
 */
void
Simulator::buildFastProgram(bool want_text)
{
    Impl &st = *impl_;
    const isa::Program &program = program_;
    const machine::MachineConfig &config = config_;
    const MemoryImage &memory = memory_;
    auto fp = std::make_shared<FastProgram>();
    fp->strideRates = strideRateTable(config.memory);
    fp->banks = static_cast<uint64_t>(config.memory.banks);
    fp->unitRate = fp->strideRates[1 % fp->banks];

    auto readyPtr = [&st](const Reg &r) -> const double * {
        switch (r.cls) {
          case RegClass::Scalar:
            return &st.sReady[r.index];
          case RegClass::Address:
            return &st.aReady[r.index];
          case RegClass::Vl:
            return &st.vlReadyAt;
          default:
            return &kZeroReady;
        }
    };

    const auto &instrs = program.instrs();
    fp->instrs.resize(instrs.size());
    for (size_t i = 0; i < instrs.size(); ++i) {
        const Instruction &in = instrs[i];
        DecodedInstr &d = fp->instrs[i];
        d.kind = kindOf(in.op);
        d.op = in.op;
        d.isVector = in.isVector();
        d.isVecMem = in.isVectorMemory();
        d.isVecFloat = in.isVectorFloat();
        d.hasImm = in.hasImm;
        d.imm = in.imm;
        d.dst = in.dst;
        d.src1 = in.src1;
        d.src2 = in.src2;
        d.ready1 = readyPtr(in.src1);
        d.ready2 = readyPtr(in.src2);
        d.readyMem = readyPtr(in.mem.base);
        d.readyDst = readyPtr(in.dst);
        if (want_text)
            d.text = in.toString();

        if (in.op == Opcode::VLdS)
            d.strideSrc = 1;
        else if (in.op == Opcode::VStS)
            d.strideSrc = 2;

        if (d.isVecMem || in.isScalarMemory()) {
            d.memStatic = in.mem.offset;
            if (!in.mem.symbol.empty())
                d.memStatic += static_cast<int64_t>(
                    memory.symbolBase(in.mem.symbol));
            d.memBaseIdx = in.mem.base.valid() ? in.mem.base.index : -1;
        }
        if (in.isBranch())
            d.target = program.labelIndex(in.target);

        if (d.isVector) {
            d.tim = config.timing(in.op);
            d.pipe = static_cast<uint8_t>(
                pipeIndex(in.pipe(), config.chaining));
            for (const Reg &r : in.vectorReads()) {
                d.vreads[d.numVreads++] = r.index;
                ++d.pairReads[r.pair()];
            }
            for (const Reg &r : in.vectorWrites()) {
                d.vwrite = r.index;
                ++d.pairWrites[r.pair()];
            }
        }
    }
    st.fastProg = std::move(fp);
}

RunStats
Simulator::runFast()
{
    Impl &st = *impl_;
    MACS_ASSERT(st.fastProg != nullptr,
                "fast tier run without a predecoded program");
    const FastProgram &fp = *st.fastProg;
    const std::vector<DecodedInstr> &prog = fp.instrs;
    MemoryPort port(config_.memory, options_.memoryContentionFactor);
    RunStats stats;

    // Hoisted configuration: no map or indirection in the hot loop.
    const machine::ChainingConfig chain = config_.chaining;
    const machine::ScalarTiming sc = config_.scalar;
    const machine::ScalarCacheConfig cache_cfg = config_.scalarCache;

    const double unit_rate = fp.unitRate;
    const uint64_t banks = fp.banks;
    auto strideRateOf = [&](int64_t stride_words) {
        return fp.strideRates[static_cast<uint64_t>(
                                  std::llabs(stride_words)) %
                              banks];
    };

    // In-flight vector stream set, inline and fixed-capacity.
    //
    // Pruning invariant: entries are pruned at base_enter =
    // issue_start + X of the instruction being dispatched. base_enter
    // equals issueFree and is monotone nondecreasing, and every pair
    // port query runs at times >= the current base_enter, so a pruned
    // entry (streamEnd <= base_enter) can never affect a later tally —
    // the tally loop skips entries with streamEnd <= enter anyway.
    // This matches the reference tier's results exactly (its more
    // conservative prune keeps different entries, but every entry kept
    // by one tier and not the other is provably dead at all future
    // query times; see docs/SIMULATOR.md).
    //
    // Capacity: after pipe p's k+2'nd instruction reaches dispatch,
    // its base_enter >= pipes[p].issueGate = enter of instruction k+1
    // >= streamEnd of instruction k (tailgate), so at most the last
    // two streams per pipe survive a prune: <= 6 live entries across
    // the three pipes plus the one being dispatched. 16 is headroom.
    constexpr int kMaxActive = 16;
    std::array<Impl::ActiveVector, kMaxActive> active;
    int num_active = 0;

    // --- helpers (identical expressions to the reference tier) ----------

    auto rawOf = [&](const Reg &r) -> uint64_t {
        switch (r.cls) {
          case RegClass::Scalar:
            return st.sRaw[r.index];
          case RegClass::Address:
            return static_cast<uint64_t>(st.aVal[r.index]);
          case RegClass::Vl:
            return static_cast<uint64_t>(st.vl);
          default:
            panic("rawOf on invalid register");
        }
    };

    auto intOf = [&](const Reg &r) {
        return static_cast<int64_t>(rawOf(r));
    };

    auto setIntReg = [&](const Reg &r, int64_t v, double ready) {
        switch (r.cls) {
          case RegClass::Scalar:
            st.sRaw[r.index] = static_cast<uint64_t>(v);
            st.sReady[r.index] = ready;
            break;
          case RegClass::Address:
            st.aVal[r.index] = v;
            st.aReady[r.index] = ready;
            break;
          case RegClass::Vl:
            st.vl = static_cast<int>(std::clamp<int64_t>(
                v, 1, config_.maxVectorLength));
            st.vlReadyAt = ready;
            break;
          default:
            panic("setIntReg on invalid register");
        }
        st.bump(ready);
    };

    auto effAddr = [&](const DecodedInstr &d) -> uint64_t {
        int64_t addr = d.memStatic;
        if (d.memBaseIdx >= 0)
            addr += st.aVal[d.memBaseIdx];
        MACS_ASSERT(addr >= 0, "negative effective address");
        return static_cast<uint64_t>(addr);
    };

    auto pairPortEarliest = [&](double from,
                                const std::array<int, 4> &my_reads,
                                const std::array<int, 4> &my_writes) {
        if (!chain.enforcePairLimits)
            return from;
        // One instruction alone (<= 2 reads, 1 write, ISA-checked)
        // cannot exceed the pair limits, so an empty active set never
        // conflicts — the dominant case once streams drain.
        if (num_active == 0)
            return from;
        double enter = from;
        for (int guard = 0; guard < 256; ++guard) {
            std::array<int, 4> reads = my_reads;
            std::array<int, 4> writes = my_writes;
            bool conflict = false;
            double next_free = std::numeric_limits<double>::infinity();
            for (int k = 0; k < num_active; ++k) {
                const Impl::ActiveVector &a = active[k];
                if (a.streamEnd <= enter)
                    continue;
                for (int p = 0; p < 4; ++p) {
                    reads[p] += a.pairReads[p];
                    writes[p] += a.pairWrites[p];
                }
            }
            for (int p = 0; p < 4; ++p) {
                bool uses = my_reads[p] || my_writes[p];
                if (!uses)
                    continue;
                if (reads[p] > chain.maxReadsPerPair ||
                    writes[p] > chain.maxWritesPerPair) {
                    conflict = true;
                    for (int k = 0; k < num_active; ++k) {
                        const Impl::ActiveVector &a = active[k];
                        if (a.streamEnd > enter &&
                            (a.pairReads[p] || a.pairWrites[p]))
                            next_free = std::min(next_free, a.streamEnd);
                    }
                }
            }
            if (!conflict)
                return enter;
            MACS_ASSERT(std::isfinite(next_free),
                        "pair port conflict with no active stream");
            enter = next_free;
        }
        panic("pair port arbitration did not converge");
    };

    // Unordered compaction: pairPortEarliest only sums counts and
    // takes a min over the set, so removal order is irrelevant.
    auto pruneActive = [&](double now) {
        for (int i = 0; i < num_active;) {
            if (active[i].streamEnd <= now)
                active[i] = active[--num_active];
            else
                ++i;
        }
    };

    // Batched elementwise kernel: the broadcast operand (if any) is
    // read once outside the loop; per-element values and evaluation
    // order are exactly the reference interpreter's.
    auto runBinary = [&](const DecodedInstr &d, int n, auto op) {
        double *__restrict out = st.vdata[d.dst.index].data();
        const bool v1 = d.src1.isVector();
        const bool v2 = d.src2.isVector();
        if (v1 && v2) {
            const double *a = st.vdata[d.src1.index].data();
            const double *b = st.vdata[d.src2.index].data();
            for (int i = 0; i < n; ++i)
                out[i] = op(a[i], b[i]);
        } else if (v1) {
            const double *a = st.vdata[d.src1.index].data();
            const double b = std::bit_cast<double>(rawOf(d.src2));
            for (int i = 0; i < n; ++i)
                out[i] = op(a[i], b);
        } else if (v2) {
            const double a = std::bit_cast<double>(rawOf(d.src1));
            const double *b = st.vdata[d.src2.index].data();
            for (int i = 0; i < n; ++i)
                out[i] = op(a, b[i]);
        } else {
            // validate() requires a vector source; unreachable, but
            // mirror the interpreter for safety.
            const double r = op(std::bit_cast<double>(rawOf(d.src1)),
                                std::bit_cast<double>(rawOf(d.src2)));
            for (int i = 0; i < n; ++i)
                out[i] = r;
        }
    };

    // --- main loop ------------------------------------------------------

    size_t pc = 0;
    while (pc < prog.size()) {
        if (stats.instructions >= options_.maxInstructions)
            fatal("instruction budget exceeded (", options_.maxInstructions,
                  "); infinite loop?");
        ++stats.instructions;

        const DecodedInstr &d = prog[pc];

        if (d.isVector) {
            ++stats.vectorInstructions;
            const VectorTiming &tim = d.tim;
            const int p = d.pipe;
            const int n = st.vl;

            double issue_start = std::max(
                {st.issueFree, st.pipes[p].issueGate, *d.ready1,
                 *d.ready2, *d.readyMem, st.vlReadyAt});
            if (d.kind == ExecKind::VecSum)
                issue_start = std::max(issue_start, *d.readyDst);
            st.issueFree = issue_start + tim.x;

            const double base_enter = issue_start + tim.x;
            double enter = base_enter;
            double rate = tim.z;
            double producer_complete = 0.0;
            StallCause stall_cause = StallCause::None;
            auto raise = [&](double t, StallCause cause) {
                if (t > enter) {
                    enter = t;
                    stall_cause = cause;
                }
            };

            // Chaining / interlocks on vector sources.
            for (int k = 0; k < d.numVreads; ++k) {
                auto &vt = st.vtime[d.vreads[k]];
                if (vt.complete > enter) {
                    if (chain.chainingEnabled) {
                        raise(vt.firstResult, StallCause::Chain);
                        rate = std::max(rate, vt.rate);
                        producer_complete =
                            std::max(producer_complete, vt.complete);
                    } else {
                        raise(vt.complete, StallCause::Chain);
                    }
                }
            }
            // WAW/WAR interlocks on the vector destination.
            if (d.vwrite >= 0) {
                auto &vt = st.vtime[d.vwrite];
                if (vt.complete > enter) {
                    if (rate >= vt.rate)
                        raise(vt.enter + 1.0, StallCause::Interlock);
                    else
                        raise(vt.streamEnd, StallCause::Interlock);
                }
                if (vt.hasActiveReaders(enter)) {
                    if (rate >= vt.minReadRate)
                        raise(vt.lastReadEnter + 1.0,
                              StallCause::Interlock);
                    else
                        raise(vt.lastReadStreamEnd,
                              StallCause::Interlock);
                }
            }

            raise(st.pipes[p].lastStreamEnd +
                      st.pipes[p].pendingBubble + tim.bubble,
                  StallCause::Tailgate);

            pruneActive(base_enter);
            raise(pairPortEarliest(enter, d.pairReads, d.pairWrites),
                  StallCause::PairPort);

            double stream_end;
            int64_t stride_words = 1;
            if (d.isVecMem) {
                if (d.strideSrc == 1)
                    stride_words = intOf(d.src1);
                else if (d.strideSrc == 2)
                    stride_words = intOf(d.src2);
                const double srate = strideRateOf(stride_words);
                StreamTiming mt =
                    port.serviceStreamWithRate(enter, n, srate, rate);
                raise(mt.enter, StallCause::MemoryPort);
                rate = mt.rate;
                stream_end = mt.streamEnd;
                stats.refreshStallCycles += mt.refreshStall;
                stats.portBusyCycles += mt.streamEnd - mt.enter;
                stats.bankConflictCycles += (srate - unit_rate) * n;
                stats.memoryElements += static_cast<uint64_t>(n);
            } else {
                stream_end = enter + rate * n;
            }

            double first_result = enter + tim.y;
            double complete = stream_end + tim.y;
            if (producer_complete > 0.0)
                complete = std::max(complete, producer_complete + tim.y);

            for (int k = 0; k < d.numVreads; ++k) {
                auto &vt = st.vtime[d.vreads[k]];
                vt.lastReadEnter = std::max(vt.lastReadEnter, enter);
                vt.lastReadStreamEnd =
                    std::max(vt.lastReadStreamEnd, stream_end);
                vt.minReadRate = std::min(vt.minReadRate, rate);
            }
            if (d.vwrite >= 0) {
                auto &vt = st.vtime[d.vwrite];
                vt.enter = enter;
                vt.firstResult = first_result;
                vt.streamEnd = stream_end;
                vt.complete = std::max(complete, vt.complete + 1.0);
                vt.rate = rate;
                vt.lastReadEnter = 0.0;
                vt.lastReadStreamEnd = 0.0;
                vt.minReadRate = 1e18;
            }
            if (d.kind == ExecKind::VecSum)
                st.sReady[d.dst.index] = complete;

            st.pipes[p].lastStreamEnd = stream_end;
            st.pipes[p].issueGate = enter;
            st.pipes[p].pendingBubble = 0.0;
            for (int q = 0; q < 3; ++q)
                if (q != p)
                    st.pipes[q].pendingBubble += tim.bubble;
            MACS_ASSERT(num_active < kMaxActive,
                        "active stream set overflow");
            active[num_active++] = {enter, stream_end, d.pairReads,
                                    d.pairWrites};
            st.bump(complete);

            double busy = rate * n;
            if (p == 0)
                stats.loadStorePipeBusy += busy;
            else if (p == 1)
                stats.addPipeBusy += busy;
            else
                stats.multiplyPipeBusy += busy;
            stats.vectorElements += static_cast<uint64_t>(n);
            if (d.isVecFloat)
                stats.flops += static_cast<uint64_t>(n);

            // ---- functional execution (batched kernels) ----
            switch (d.kind) {
              case ExecKind::VecLoad: {
                uint64_t addr = effAddr(d);
                const uint64_t *src =
                    memory_.streamWords(addr, n, stride_words);
                double *dstv = st.vdata[d.dst.index].data();
                if (stride_words == 1)
                    std::memcpy(dstv, src,
                                static_cast<size_t>(n) * 8);
                else
                    for (int i = 0; i < n; ++i)
                        dstv[i] = std::bit_cast<double>(
                            src[static_cast<int64_t>(i) * stride_words]);
                break;
              }
              case ExecKind::VecStore: {
                uint64_t addr = effAddr(d);
                uint64_t *dstm =
                    memory_.streamWordsMut(addr, n, stride_words);
                const double *srcv = st.vdata[d.src1.index].data();
                if (stride_words == 1)
                    std::memcpy(dstm, srcv,
                                static_cast<size_t>(n) * 8);
                else
                    for (int i = 0; i < n; ++i)
                        dstm[static_cast<int64_t>(i) * stride_words] =
                            std::bit_cast<uint64_t>(srcv[i]);
                // One cache-range invalidation per stream.
                int64_t span = static_cast<int64_t>(n - 1) * stride_words;
                uint64_t lo = addr, hi = addr + 8;
                if (span >= 0)
                    hi = addr + static_cast<uint64_t>(span) * 8 + 8;
                else
                    lo = addr + static_cast<uint64_t>(span) * 8;
                st.invalidateCacheRange(cache_cfg, lo, hi);
                break;
              }
              case ExecKind::VecAdd:
                runBinary(d, n, [](double a, double b) { return a + b; });
                break;
              case ExecKind::VecSub:
                runBinary(d, n, [](double a, double b) { return a - b; });
                break;
              case ExecKind::VecMul:
                runBinary(d, n, [](double a, double b) { return a * b; });
                break;
              case ExecKind::VecDiv:
                runBinary(d, n, [](double a, double b) { return a / b; });
                break;
              case ExecKind::VecNeg: {
                double *__restrict out = st.vdata[d.dst.index].data();
                const double *a = st.vdata[d.src1.index].data();
                for (int i = 0; i < n; ++i)
                    out[i] = -a[i];
                break;
              }
              case ExecKind::VecSum: {
                // Sequential: FP addition order is part of the
                // bit-exactness contract.
                const double *a = st.vdata[d.src1.index].data();
                double sum = 0.0;
                for (int i = 0; i < n; ++i)
                    sum += a[i];
                double old =
                    std::bit_cast<double>(st.sRaw[d.dst.index]);
                st.sRaw[d.dst.index] =
                    std::bit_cast<uint64_t>(old + sum);
                break;
              }
              default:
                panic("unhandled vector opcode");
            }

            if (options_.trace) {
                timeline_.record({pc, d.text, issue_start, enter,
                                  first_result, stream_end, complete, p,
                                  busy, enter - base_enter, stall_cause});
            }
            if (options_.profile) {
                profile_.record(pc, d.text, enter - base_enter,
                                stall_cause);
            }
            ++pc;
            continue;
        }

        // ---- scalar / control ----
        ++stats.scalarInstructions;
        double issue_start =
            std::max({st.issueFree, *d.ready1, *d.ready2, *d.readyMem});
        double issue_done = issue_start + sc.issueCycles;
        st.issueFree = issue_done;
        st.bump(issue_done);

        switch (d.kind) {
          case ExecKind::ScalarLoad: {
            ++stats.scalarMemAccesses;
            ScalarAccessTiming at = port.serviceScalar(issue_done);
            stats.portBusyCycles += at.done - at.start;
            uint64_t addr = effAddr(d);
            bool hit = st.cacheAccess(cache_cfg, addr);
            if (hit)
                ++stats.scalarCacheHits;
            else
                ++stats.scalarCacheMisses;
            double ready =
                at.start + (hit ? sc.loadLatency : sc.loadMissLatency);
            setIntReg(d.dst,
                      static_cast<int64_t>(memory_.readWord(addr)),
                      ready);
            ++pc;
            break;
          }
          case ExecKind::ScalarStore: {
            ++stats.scalarMemAccesses;
            issue_start = std::max(issue_start, *d.ready1);
            ScalarAccessTiming at = port.serviceScalar(issue_done);
            stats.portBusyCycles += at.done - at.start;
            uint64_t addr = effAddr(d);
            memory_.writeWord(addr, rawOf(d.src1));
            st.invalidateCacheRange(cache_cfg, addr, addr + 8);
            st.bump(at.done);
            ++pc;
            break;
          }
          case ExecKind::IntAlu: {
            int64_t a, b;
            if (!d.src2.valid()) {
                a = intOf(d.dst);
                b = d.hasImm ? d.imm : intOf(d.src1);
            } else {
                a = d.hasImm ? d.imm : intOf(d.src1);
                b = intOf(d.src2);
            }
            int64_t r = 0;
            switch (d.op) {
              case Opcode::SAdd:
                r = a + b;
                break;
              case Opcode::SSub:
                r = a - b;
                break;
              default:
                r = a * b;
                break;
            }
            setIntReg(d.dst, r, issue_start + sc.aluLatency);
            ++pc;
            break;
          }
          case ExecKind::FpAlu: {
            double a = std::bit_cast<double>(rawOf(d.src1));
            double b = std::bit_cast<double>(rawOf(d.src2));
            double r = 0.0;
            switch (d.op) {
              case Opcode::SFAdd:
                r = a + b;
                break;
              case Opcode::SFSub:
                r = a - b;
                break;
              case Opcode::SFMul:
                r = a * b;
                break;
              default:
                r = a / b;
                break;
            }
            int latency = d.op == Opcode::SFDiv ? sc.fpDivLatency
                                                : sc.fpLatency;
            setIntReg(d.dst,
                      static_cast<int64_t>(std::bit_cast<uint64_t>(r)),
                      issue_start + latency);
            ++pc;
            break;
          }
          case ExecKind::Mov: {
            int64_t v = d.hasImm ? d.imm : intOf(d.src1);
            setIntReg(d.dst, v, issue_start + sc.aluLatency);
            ++pc;
            break;
          }
          case ExecKind::Compare: {
            int64_t a = d.hasImm ? d.imm : intOf(d.src1);
            int64_t b = intOf(d.src2);
            st.flag = (d.op == Opcode::SLt) ? (a < b) : (a <= b);
            st.flagReadyAt = issue_start + sc.aluLatency;
            ++pc;
            break;
          }
          case ExecKind::CondBranch: {
            issue_start = std::max(issue_start, st.flagReadyAt);
            bool taken = (d.op == Opcode::BrT) ? st.flag : !st.flag;
            if (taken) {
                ++stats.branchesTaken;
                st.issueFree = issue_start + sc.branchResolveCycles;
                pc = d.target;
            } else {
                st.issueFree = issue_start + sc.issueCycles;
                ++pc;
            }
            st.bump(st.issueFree);
            break;
          }
          case ExecKind::Jump: {
            ++stats.branchesTaken;
            st.issueFree = issue_start + sc.branchResolveCycles;
            st.bump(st.issueFree);
            pc = d.target;
            break;
          }
          case ExecKind::NoOp:
            ++pc;
            break;
          default:
            panic("unhandled scalar opcode");
        }
    }

    stats.cycles = std::max(st.maxTime, port.freeAt());
    return stats;
}

} // namespace macs::sim
