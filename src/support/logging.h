/**
 * @file
 * Status and error reporting in the gem5 style.
 *
 * Two terminating reporters are provided with distinct purposes:
 *
 *  - panic():  something happened that should never happen regardless of
 *              what the user does, i.e., a bug in this library. Throws
 *              PanicError (so tests can assert on it) after printing.
 *  - fatal():  the run cannot continue due to a user-level problem (bad
 *              configuration, malformed assembly, invalid arguments).
 *              Throws FatalError.
 *
 * Non-terminating reporters:
 *
 *  - warn():   functionality may be modeled approximately; results are
 *              still produced.
 *  - inform(): normal operating status for the user.
 */

#ifndef MACS_SUPPORT_LOGGING_H
#define MACS_SUPPORT_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace macs {

/** Thrown by panic(): an internal invariant was violated (library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): a user-level error prevents continuing. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

/** Assemble a single message string from heterogeneous pieces. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Print a labeled message to stderr (implementation in logging.cc). */
void emit(const char *label, const std::string &msg);

/** Whether warn()/inform() output is currently enabled. */
bool verboseEnabled();

} // namespace detail

/** Report an internal library bug and throw PanicError. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("panic", msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("fatal", msg);
    throw FatalError(msg);
}

/** Warn about approximate or suspicious modeling; execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (detail::verboseEnabled())
        detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Report normal status to the user; execution continues. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (detail::verboseEnabled())
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Globally enable or disable warn()/inform() output (default: enabled). */
void setVerbose(bool enabled);

/**
 * Check an internal invariant; panic with the stringized condition and
 * an optional message when it does not hold.
 */
#define MACS_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::macs::panic("assertion failed: ", #cond, " ", ##__VA_ARGS__); \
        }                                                                   \
    } while (0)

} // namespace macs

#endif // MACS_SUPPORT_LOGGING_H
