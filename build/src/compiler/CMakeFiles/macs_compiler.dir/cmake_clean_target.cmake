file(REMOVE_RECURSE
  "libmacs_compiler.a"
)
