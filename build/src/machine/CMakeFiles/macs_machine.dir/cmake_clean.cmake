file(REMOVE_RECURSE
  "CMakeFiles/macs_machine.dir/machine_config.cc.o"
  "CMakeFiles/macs_machine.dir/machine_config.cc.o.d"
  "libmacs_machine.a"
  "libmacs_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
