#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace macs {

namespace {

std::atomic<bool> verbose{true};

/**
 * Serializes reporter output. The batch pipeline runs analyses on
 * worker threads, and while a single fprintf is atomic on POSIX
 * streams, keeping an explicit lock (a) guarantees whole-message
 * ordering on every platform and (b) gives ThreadSanitizer a clear
 * happens-before edge for the tests/pipeline_test.cc logging hammer.
 */
std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

namespace detail {

void
emit(const char *label, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(emitMutex());
    std::fprintf(stderr, "%s: %s\n", label, msg.c_str());
}

bool
verboseEnabled()
{
    return verbose.load(std::memory_order_relaxed);
}

} // namespace detail

void
setVerbose(bool enabled)
{
    verbose.store(enabled, std::memory_order_relaxed);
}

} // namespace macs
