# Empty dependencies file for ax_test.
# This may be replaced when dependencies are built.
