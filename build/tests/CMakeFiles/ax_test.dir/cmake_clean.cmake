file(REMOVE_RECURSE
  "CMakeFiles/ax_test.dir/ax_test.cc.o"
  "CMakeFiles/ax_test.dir/ax_test.cc.o.d"
  "ax_test"
  "ax_test.pdb"
  "ax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
