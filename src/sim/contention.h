/**
 * @file
 * Multi-processor memory contention model (paper section 4.2 and
 * Figure 3's "multiple process" series).
 *
 * The C-240's four CPUs share the 32-bank memory. The paper reports
 * that under a realistic multi-user load (load average 5.1) a port
 * sustains one access per 56-64 ns instead of the 40 ns peak, i.e., a
 * 1.4x-1.6x slowdown of the memory stream, which surfaces as roughly a
 * 20% run-time degradation for independent programs (much of the
 * slowdown is masked by non-memory work). Four processes of the same
 * executable tend to fall into lock step and suffer only 5-10%.
 *
 * We model contention as a rate multiplier on the memory port,
 * calibrated to those observations, and expose a bank-utilization
 * queueing estimate for what-if studies with other bank counts.
 */

#ifndef MACS_SIM_CONTENTION_H
#define MACS_SIM_CONTENTION_H

#include "machine/machine_config.h"

namespace macs::sim {

/** How competing processes interleave their memory traffic. */
enum class WorkloadMix
{
    Independent, ///< unrelated programs; random bank interleaving
    LockStep,    ///< same executable on all CPUs; phase-locked access
};

/**
 * Memory stream rate multiplier (>= 1) when @p active_cpus CPUs
 * compete. Calibrated to the paper's 56-64 ns observation at four
 * active CPUs for Independent, 5-10% overall for LockStep.
 */
double contentionFactor(int active_cpus, WorkloadMix mix);

/**
 * Queueing-theoretic estimate of the same multiplier from the memory
 * geometry: with A active CPUs each issuing up to one access per cycle
 * over B banks of busy time T, per-bank utilization is rho = A*T/B and
 * the expected wait grows as rho/(1-rho) (M/D/1), saturating at the
 * bank service bound. Used by bank-count ablations.
 */
double contentionFactorQueueing(int active_cpus,
                                const machine::MemoryConfig &mem);

} // namespace macs::sim

#endif // MACS_SIM_CONTENTION_H
