
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cc" "src/compiler/CMakeFiles/macs_compiler.dir/analysis.cc.o" "gcc" "src/compiler/CMakeFiles/macs_compiler.dir/analysis.cc.o.d"
  "/root/repo/src/compiler/ast.cc" "src/compiler/CMakeFiles/macs_compiler.dir/ast.cc.o" "gcc" "src/compiler/CMakeFiles/macs_compiler.dir/ast.cc.o.d"
  "/root/repo/src/compiler/codegen.cc" "src/compiler/CMakeFiles/macs_compiler.dir/codegen.cc.o" "gcc" "src/compiler/CMakeFiles/macs_compiler.dir/codegen.cc.o.d"
  "/root/repo/src/compiler/interpreter.cc" "src/compiler/CMakeFiles/macs_compiler.dir/interpreter.cc.o" "gcc" "src/compiler/CMakeFiles/macs_compiler.dir/interpreter.cc.o.d"
  "/root/repo/src/compiler/loop_parser.cc" "src/compiler/CMakeFiles/macs_compiler.dir/loop_parser.cc.o" "gcc" "src/compiler/CMakeFiles/macs_compiler.dir/loop_parser.cc.o.d"
  "/root/repo/src/compiler/scheduler.cc" "src/compiler/CMakeFiles/macs_compiler.dir/scheduler.cc.o" "gcc" "src/compiler/CMakeFiles/macs_compiler.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/macs/CMakeFiles/macs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/macs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/macs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/macs_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/macs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lfk/CMakeFiles/macs_paperref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
