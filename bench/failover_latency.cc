/**
 * @file
 * Failover latency of a supervised `macs serve --processes N` fleet
 * (docs/SERVER.md "Multi-process serving"), measured from outside the
 * process boundary.
 *
 * Unlike the other benches this one does NOT host its own server: a
 * supervisor fork()s single-threaded, and a bench that is already
 * running client threads cannot safely become one. Instead it drives
 * an EXTERNal fleet — typically booted by scripts/chaos.sh under a
 * seeded proc-crash/proc-hang plan — and reports what a client
 * actually experiences while the supervisor kill -9s and restarts
 * workers underneath the load:
 *
 *  - every request must eventually land a 200 (bounded retries over
 *    reconnecting keep-alive connections; the kernel re-hashes each
 *    reconnect onto a surviving SO_REUSEPORT listener),
 *  - every response body must be byte-identical to the first body
 *    observed for the same LFK id (worker processes are replicas:
 *    which incarnation answers must be unobservable),
 *  - p50/p99/max request latency, where the max is the failover
 *    cost: a request that rode a dying worker and was re-driven.
 *
 * Exit 0 iff all requests landed with identical bodies; nonzero
 * otherwise — chaos.sh uses this as its 1k-connection load proof.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

using namespace macs;
using Clock = std::chrono::steady_clock;

/** The request mix: a small rotating LFK id set. */
const int kIds[] = {1, 2, 3};
constexpr size_t kIdCount = sizeof(kIds) / sizeof(kIds[0]);

std::string
bodyFor(int id)
{
    return "{\"kind\": \"lfk\", \"id\": " + std::to_string(id) + "}";
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    long port = 0, requests = 1000, clients = 16, timeout = 10000;
    long attempts = 10;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](long &out) {
            if (i + 1 >= argc || !parseInt(argv[++i], out)) {
                std::fprintf(stderr, "%s expects a number\n",
                             a.c_str());
                std::exit(1);
            }
        };
        if (a == "--port") {
            next(port);
        } else if (a == "--host" && i + 1 < argc) {
            host = argv[++i];
        } else if (a == "--requests") {
            next(requests);
        } else if (a == "--clients") {
            next(clients);
        } else if (a == "--timeout") {
            next(timeout);
        } else if (a == "--retry") {
            next(attempts);
        } else {
            std::fprintf(
                stderr,
                "usage: failover_latency --port N [--host H] "
                "[--requests N] [--clients N] [--retry N] "
                "[--timeout MS]\n");
            return 1;
        }
    }
    if (port <= 0 || requests < 1 || clients < 1 ||
        clients > requests) {
        std::fprintf(stderr,
                     "failover_latency: --port is required and "
                     "1 <= --clients <= --requests\n");
        return 1;
    }

    // Golden bodies: one fault-free-ish fetch per id up front. Even
    // if a kill lands during this warm-up the retry makes the fetch
    // itself deterministic — every worker renders identical bytes.
    std::string golden[kIdCount];
    {
        server::HttpClient client(host, static_cast<int>(port),
                                  static_cast<int>(timeout));
        for (size_t i = 0; i < kIdCount; ++i) {
            server::ClientResponse resp;
            if (!client.requestWithRetry(
                    "POST", "/v1/analyze", bodyFor(kIds[i]), resp,
                    static_cast<int>(attempts)) ||
                resp.status != 200) {
                std::fprintf(stderr,
                             "failover_latency: golden fetch for id "
                             "%d failed\n",
                             kIds[i]);
                return 1;
            }
            golden[i] = resp.body;
        }
    }

    std::vector<std::vector<double>> lat(
        static_cast<size_t>(clients));
    std::atomic<size_t> dropped{0}, mismatched{0}, retried{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    size_t per_client = static_cast<size_t>(requests) /
                        static_cast<size_t>(clients);
    size_t extra = static_cast<size_t>(requests) %
                   static_cast<size_t>(clients);

    Clock::time_point begin = Clock::now();
    for (size_t c = 0; c < static_cast<size_t>(clients); ++c) {
        size_t n = per_client + (c < extra ? 1 : 0);
        threads.emplace_back([&, c, n] {
            server::HttpClient client(host, static_cast<int>(port),
                                      static_cast<int>(timeout));
            lat[c].reserve(n);
            for (size_t i = 0; i < n; ++i) {
                size_t idx = (c + i) % kIdCount;
                server::ClientResponse resp;
                Clock::time_point t0 = Clock::now();
                bool ok = client.requestWithRetry(
                    "POST", "/v1/analyze", bodyFor(kIds[idx]), resp,
                    static_cast<int>(attempts), /*backoff_ms=*/5);
                Clock::time_point t1 = Clock::now();
                if (!ok || resp.status != 200) {
                    dropped.fetch_add(1);
                    continue;
                }
                if (resp.body != golden[idx]) {
                    mismatched.fetch_add(1);
                    continue;
                }
                double us =
                    std::chrono::duration<double, std::micro>(t1 - t0)
                        .count();
                // Heuristic failover marker: a request that took
                // longer than one retry backoff almost certainly
                // re-drove after a worker died under it.
                if (us > 5000.0)
                    retried.fetch_add(1);
                lat[c].push_back(us);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    double wall_s =
        std::chrono::duration<double>(Clock::now() - begin).count();

    std::vector<double> all;
    for (const auto &v : lat)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());

    Table t({"requests", "landed", "dropped", "mismatched", "req/s",
             "p50 us", "p99 us", "max us"});
    t.addRow({Table::num(requests), Table::num((long)all.size()),
              Table::num((long)dropped.load()),
              Table::num((long)mismatched.load()),
              Table::num(wall_s > 0.0
                             ? static_cast<double>(all.size()) / wall_s
                             : 0.0,
                         1),
              Table::num(percentile(all, 0.50), 0),
              Table::num(percentile(all, 0.99), 0),
              Table::num(all.empty() ? 0.0 : all.back(), 0)});
    std::printf("=== failover latency: %ld clients x POST "
                "/v1/analyze against %s:%ld ===\n\n%s\n",
                clients, host.c_str(), port, t.render().c_str());
    std::printf("slow (>5 ms, likely re-driven) requests: %zu\n",
                retried.load());

    if (dropped.load() != 0 || mismatched.load() != 0) {
        std::printf("ERROR: %zu dropped, %zu mismatched — the fleet "
                    "failed to mask worker deaths\n",
                    dropped.load(), mismatched.load());
        return 1;
    }
    std::printf("every request landed byte-identical across worker "
                "restarts\n");
    return 0;
}
