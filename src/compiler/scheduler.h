/**
 * @file
 * Chime-aware list scheduler: reorders the vector instructions of one
 * loop-body iteration to minimize the number of chimes (paper section
 * 3.3/3.4 — this is the "S" the MACS bound is sensitive to).
 *
 * The scheduler builds a dependence DAG (register RAW/WAR/WAW over
 * vector and scalar registers, conservative same-symbol memory
 * ordering), then greedily packs chimes: each chime takes at most one
 * instruction per pipe, respects the vector-register-pair port limits,
 * and permits intra-chime RAW dependences (operand chaining). In-loop
 * scalar loads and literal moves stay glued immediately before their
 * consuming vector instruction; because a scalar memory access splits
 * any chime containing a vector memory access, nodes with glued scalar
 * loads are only placed into chimes without one.
 */

#ifndef MACS_COMPILER_SCHEDULER_H
#define MACS_COMPILER_SCHEDULER_H

#include <span>
#include <vector>

#include "isa/instruction.h"
#include "machine/machine_config.h"

namespace macs::compiler {

/**
 * Reorder @p body (the computational part of one iteration: vector
 * instructions plus any glued scalar loads/moves, no loop control).
 * The result computes the same values in any sequential execution.
 */
std::vector<isa::Instruction>
scheduleBody(std::span<const isa::Instruction> body,
             const machine::ChainingConfig &rules);

/**
 * Latency-aware list scheduler for *scalar-mode* loop bodies: reorders
 * scalar instructions (loads, FP, stores) respecting register and
 * same-symbol memory dependences so that loads issue ahead of their
 * consumers and independent (e.g. unrolled) iterations overlap in the
 * ASU pipelines. Returns the body unchanged if it contains any vector
 * instruction.
 */
std::vector<isa::Instruction>
scheduleScalarBody(std::span<const isa::Instruction> body,
                   const machine::ScalarTiming &timing);

} // namespace macs::compiler

#endif // MACS_COMPILER_SCHEDULER_H
