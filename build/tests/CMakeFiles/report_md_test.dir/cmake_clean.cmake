file(REMOVE_RECURSE
  "CMakeFiles/report_md_test.dir/report_md_test.cc.o"
  "CMakeFiles/report_md_test.dir/report_md_test.cc.o.d"
  "report_md_test"
  "report_md_test.pdb"
  "report_md_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_md_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
