#include "server/connection.h"

#include "support/logging.h"

namespace macs::server {

const char *
connStateName(Connection::State state)
{
    switch (state) {
    case Connection::State::ReadHeaders: return "READ_HEADERS";
    case Connection::State::ReadBody: return "READ_BODY";
    case Connection::State::Compute: return "COMPUTE";
    case Connection::State::Write: return "WRITE";
    case Connection::State::Closed: return "CLOSED";
    }
    return "?";
}

Connection::State
Connection::state() const
{
    if (closed_)
        return State::Closed;
    if (pendingOutput() > 0)
        return State::Write;
    if (computing_)
        return State::Compute;
    return parser_.inBody() ? State::ReadBody : State::ReadHeaders;
}

Connection::ReadEvent
Connection::onReadable(ByteIo &io)
{
    if (closed_)
        return ReadEvent::IoError;
    // One request in flight per connection: while a response is being
    // computed or written, arriving bytes stay in the kernel buffer
    // (and any already-buffered pipelined bytes stay in the parser).
    if (computing_ || pendingOutput() > 0)
        return ReadEvent::NeedMore;

    for (;;) {
        if (parser_.failed())
            return ReadEvent::ParseError;
        if (parser_.complete()) {
            request_ = parser_.take();
            computing_ = true;
            return ReadEvent::RequestReady;
        }
        char buf[16384];
        int n = io.read(buf, sizeof(buf));
        if (n > 0) {
            parser_.feed(
                std::string_view(buf, static_cast<size_t>(n)));
            continue;
        }
        if (n == ByteIo::kWouldBlock)
            return ReadEvent::NeedMore;
        if (n == 0)
            return parser_.idle() ? ReadEvent::PeerClosed
                                  : ReadEvent::TornRequest;
        return ReadEvent::IoError;
    }
}

HttpRequest
Connection::takeRequest()
{
    MACS_ASSERT(computing_,
                "takeRequest() without a RequestReady event");
    return std::move(request_);
}

void
Connection::queueResponse(const HttpResponse &response,
                          bool keep_alive)
{
    MACS_ASSERT(pendingOutput() == 0,
                "queueResponse() while a response is still flushing");
    out_ = serializeResponse(response, keep_alive);
    outOff_ = 0;
    keepAliveAfterWrite_ = keep_alive;
    computing_ = false;
}

Connection::WriteEvent
Connection::onWritable(ByteIo &io)
{
    if (closed_)
        return WriteEvent::IoError;
    while (outOff_ < out_.size()) {
        int n = io.write(out_.data() + outOff_, out_.size() - outOff_);
        if (n > 0) {
            outOff_ += static_cast<size_t>(n);
            continue;
        }
        if (n == ByteIo::kWouldBlock)
            return WriteEvent::Blocked;
        return WriteEvent::IoError;
    }
    out_.clear();
    outOff_ = 0;
    if (!keepAliveAfterWrite_) {
        closed_ = true;
        return WriteEvent::Closing;
    }
    // Keep-alive reset: back to READ_HEADERS. The parser may already
    // hold (part of) a pipelined next request; the caller re-runs
    // onReadable() to pick it up without waiting for a new edge.
    return WriteEvent::KeepAlive;
}

} // namespace macs::server
