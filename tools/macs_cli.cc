/**
 * @file
 * macs — command-line front end to the library.
 *
 *   macs kernels                         list the LFK workloads
 *   macs analyze <id>                    hierarchy report for one LFK
 *   macs compile <file> [opts]           DSL loop -> assembly + bounds
 *       --trip N        iterations (default 512)
 *       --array n:w     declare array n with w words (repeatable)
 *       --scalar        compile for the scalar unit
 *   macs bounds <file.s>                 MAC/MACS/MACS-D of assembly
 *   macs simulate <file.s> [--trace]     run assembly on the C-240
 *
 * Assembly files use the syntax of isa/parser.h; loop files use the
 * DSL of compiler/loop_parser.h.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "isa/parser.h"
#include "lfk/kernels.h"
#include "macs/hierarchy.h"
#include "macs/macsd.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"
#include "support/logging.h"
#include "support/strings.h"

namespace {

using namespace macs;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "'");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

int
cmdKernels()
{
    std::printf("%-6s %-4s %-8s %-6s %s\n", "name", "flop", "points",
                "t_MA", "description");
    for (int id : lfk::lfkIds()) {
        lfk::Kernel k = lfk::makeKernel(id);
        std::printf("%-6s %-4d %-8ld %-6d %s\n", k.name.c_str(),
                    k.flopsPerPoint, k.points,
                    std::max(k.ma.tF(), k.ma.tM()), k.description.c_str());
    }
    for (int id : lfk::scalarLfkIds()) {
        lfk::Kernel k = lfk::makeKernel(id);
        std::printf("%-6s %-4d %-8ld %-6s %s\n", k.name.c_str(),
                    k.flopsPerPoint, k.points, "-", k.description.c_str());
    }
    return 0;
}

int
cmdAnalyze(const std::string &arg)
{
    long id = 0;
    if (!parseInt(arg, id))
        fatal("analyze expects an LFK number, got '", arg, "'");
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    lfk::Kernel k = lfk::makeKernel(static_cast<int>(id));
    std::printf("%s — %s\n%s\n", k.name.c_str(), k.description.c_str(),
                k.sourceText.c_str());
    model::KernelAnalysis a =
        model::analyzeKernel(lfk::toKernelCase(k), cfg);
    std::printf("%s", model::renderReport(a, cfg).c_str());
    return 0;
}

int
cmdCompile(const std::vector<std::string> &args)
{
    if (args.empty())
        fatal("compile expects a loop file");
    compiler::CompileOptions opt;
    opt.tripCount = 512;
    std::string path = args[0];
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--trip" && i + 1 < args.size()) {
            long trip = 0;
            if (!parseInt(args[++i], trip))
                fatal("--trip expects a number");
            opt.tripCount = trip;
        } else if (args[i] == "--array" && i + 1 < args.size()) {
            auto parts = split(args[++i], ':');
            long words = 0;
            if (parts.size() != 2 || !parseInt(parts[1], words))
                fatal("--array expects name:words");
            opt.arrays.push_back(
                {parts[0], static_cast<size_t>(words)});
        } else if (args[i] == "--scalar") {
            opt.vectorize = false;
        } else if (args[i] == "--unroll" && i + 1 < args.size()) {
            long u = 0;
            if (!parseInt(args[++i], u))
                fatal("--unroll expects a number");
            opt.unroll = static_cast<int>(u);
        } else {
            fatal("unknown compile option '", args[i], "'");
        }
    }

    compiler::Loop loop = compiler::parseLoop(readFile(path));
    if (opt.arrays.empty()) {
        // Undeclared arrays default to a generous extent.
        compiler::SourceAnalysis sa = compiler::analyzeSource(loop);
        (void)sa;
        for (const auto &s : loop.stmts) {
            if (s.arrayDst)
                opt.arrays.push_back({s.dstName, 1u << 16});
        }
        // Conservatively declare every identifier-like array too: the
        // compiler reports missing ones, so rely on --array for those.
    }

    compiler::CompileResult res = compiler::compile(loop, opt);
    std::printf("%s", res.program.toString().c_str());

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    model::PipeBound ma = model::pipeBound(res.analysis.ma);
    model::PipeBound mac = model::pipeBound(res.macCounts);
    std::printf("\n; t_MA  = %.0f CPL\n; t_MAC = %.0f CPL\n", ma.bound,
                mac.bound);
    if (opt.vectorize) {
        model::MacsResult macs =
            model::evaluateMacs(res.program.innerLoop(), cfg);
        std::printf("; t_MACS = %.3f CPL (%zu chimes)\n", macs.cpl,
                    macs.chimes.size());
    }
    return 0;
}

int
cmdBounds(const std::string &path)
{
    isa::Program prog = isa::assemble(readFile(path));
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    auto body = prog.innerLoop();

    model::WorkloadCounts mac = model::countAssembly(body);
    model::PipeBound b = model::pipeBound(mac);
    model::MacsResult macs = model::evaluateMacs(body, cfg);
    model::MacsDResult d = model::evaluateMacsD(prog, cfg);

    std::printf("workload (MAC): f_a=%d f_m=%d l=%d s=%d\n", mac.fAdd,
                mac.fMul, mac.loads, mac.stores);
    std::printf("t_MAC    = %.0f CPL\n", b.bound);
    std::printf("t_MACS   = %.3f CPL\n", macs.cpl);
    std::printf("t_MACS-D = %.3f CPL (worst memory rate %.2f "
                "cycles/element)\n",
                d.macs.cpl, d.worstMemoryRate);
    std::printf("chimes:\n%s",
                model::renderChimes(body, macs.chimes).c_str());
    return 0;
}

int
cmdSimulate(const std::vector<std::string> &args)
{
    if (args.empty())
        fatal("simulate expects an assembly file");
    bool trace = false, profile = false;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--trace")
            trace = true;
        else if (args[i] == "--profile")
            profile = true;
        else
            fatal("unknown simulate option '", args[i], "'");
    }
    isa::Program prog = isa::assemble(readFile(args[0]));
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::SimOptions opt;
    opt.trace = trace;
    opt.profile = profile;
    sim::Simulator s(cfg, prog, opt);
    sim::RunStats st = s.run();
    std::printf("cycles              %.1f (%.2f us at %.0f MHz)\n",
                st.cycles, st.cycles * cfg.clockNs() / 1000.0,
                cfg.clockMhz);
    std::printf("instructions        %llu (%llu vector, %llu scalar)\n",
                (unsigned long long)st.instructions,
                (unsigned long long)st.vectorInstructions,
                (unsigned long long)st.scalarInstructions);
    std::printf("vector elements     %llu (%llu flops, %llu memory)\n",
                (unsigned long long)st.vectorElements,
                (unsigned long long)st.flops,
                (unsigned long long)st.memoryElements);
    std::printf("refresh stalls      %.0f cycles\n",
                st.refreshStallCycles);
    if (st.flops)
        std::printf("performance         %.3f CPF = %.2f MFLOPS\n",
                    st.cpf(), st.mflops(cfg.clockMhz));
    if (trace)
        std::printf("\n%s", s.timeline().render(32).c_str());
    if (profile)
        std::printf("\nstall attribution:\n%s",
                    s.profile().render().c_str());
    return 0;
}

void
usage()
{
    std::printf(
        "usage: macs <command> [args]\n"
        "  kernels                 list the LFK workloads\n"
        "  analyze <id>            MACS hierarchy report for one LFK\n"
        "  compile <file> [opts]   compile a DSL loop "
        "(--trip N, --array n:w, --scalar, --unroll N)\n"
        "  bounds <file.s>         MAC/MACS/MACS-D bounds of assembly\n"
        "  simulate <file.s>       run assembly on the simulated C-240 "
        "[--trace] [--profile]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::vector<std::string> args(argv + 2, argv + argc);
    std::string cmd = argv[1];
    try {
        if (cmd == "kernels")
            return cmdKernels();
        if (cmd == "analyze" && !args.empty())
            return cmdAnalyze(args[0]);
        if (cmd == "compile")
            return cmdCompile(args);
        if (cmd == "bounds" && !args.empty())
            return cmdBounds(args[0]);
        if (cmd == "simulate")
            return cmdSimulate(args);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "macs: %s\n", e.what());
        return 1;
    }
    usage();
    return 2;
}
