/**
 * @file
 * generate_report — run the whole case study and write the markdown
 * reproduction record.
 *
 *   generate_report [output.md] [--variant baseline|no-bubbles|
 *                                no-refresh|no-chaining]
 *
 * Defaults to paper_vs_measured.md on the baseline C-240. Non-baseline
 * variants omit the paper columns (the published numbers only apply to
 * the real machine).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "lfk/kernels.h"
#include "macs/report_md.h"
#include "machine/machine_config.h"
#include "support/logging.h"

int
main(int argc, char **argv)
{
    using namespace macs;

    std::string out_path = "paper_vs_measured.md";
    std::string variant = "baseline";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--variant") == 0 && i + 1 < argc)
            variant = argv[++i];
        else
            out_path = argv[i];
    }

    machine::MachineConfig cfg;
    if (variant == "baseline")
        cfg = machine::MachineConfig::convexC240();
    else if (variant == "no-bubbles")
        cfg = machine::MachineConfig::noBubbles();
    else if (variant == "no-refresh")
        cfg = machine::MachineConfig::noRefresh();
    else if (variant == "no-chaining")
        cfg = machine::MachineConfig::noChaining();
    else
        fatal("unknown variant '", variant, "'");

    std::map<int, model::KernelAnalysis> analyses;
    for (int id : lfk::lfkIds()) {
        lfk::Kernel k = lfk::makeKernel(id);
        analyses.emplace(id,
                         model::analyzeKernel(lfk::toKernelCase(k), cfg));
        std::printf("analyzed %s\n", k.name.c_str());
    }

    std::string report = model::renderMarkdownReport(
        analyses, cfg, variant == "baseline");
    std::ofstream out(out_path);
    if (!out)
        fatal("cannot write '", out_path, "'");
    out << report;
    std::printf("wrote %s (%zu bytes, variant %s)\n", out_path.c_str(),
                report.size(), variant.c_str());
    return 0;
}
