/**
 * @file
 * Architecture ablations (our extension in the paper's section 5
 * spirit — "pinpoint what improvements might be most effective in the
 * machine"): measured CPF per kernel under machine variants, and a
 * bank-count sweep for stride-sensitive access patterns.
 */

#include <cstdio>

#include "bench_util.h"
#include "isa/parser.h"
#include "sim/simulator.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

double
measureCpf(int id, const macs::machine::MachineConfig &cfg)
{
    using namespace macs;
    lfk::Kernel k = lfk::makeKernel(id);
    sim::Simulator s(cfg, k.program);
    k.setup(s);
    return s.run().cycles / static_cast<double>(k.points) /
           k.flopsPerPoint;
}

} // namespace

int
main()
{
    using namespace macs;
    using namespace macs::bench;

    std::printf("=== Machine ablations: measured CPF per variant "
                "===\n\n");

    machine::MachineConfig base = machine::MachineConfig::convexC240();
    machine::MachineConfig fast_mul = base;
    fast_mul.setTiming(isa::Opcode::VMul, {2, 10, 1.0, 1});
    machine::MachineConfig no_pairs = base;
    no_pairs.chaining.enforcePairLimits = false;

    Table t({"LFK", "baseline", "no bubbles", "no refresh",
             "no chaining", "no pair limits", "no scalar cache",
             "mul Y=10"});
    for (int id : lfk::lfkIds()) {
        t.addRow({"LFK" + std::to_string(id),
                  Table::num(measureCpf(id, base)),
                  Table::num(measureCpf(
                      id, machine::MachineConfig::noBubbles())),
                  Table::num(measureCpf(
                      id, machine::MachineConfig::noRefresh())),
                  Table::num(measureCpf(
                      id, machine::MachineConfig::noChaining())),
                  Table::num(measureCpf(id, no_pairs)),
                  Table::num(measureCpf(
                      id, machine::MachineConfig::noScalarCache())),
                  Table::num(measureCpf(id, fast_mul))});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Takeaways: bubbles and refresh each cost a few percent on\n"
        "memory-saturated loops; chaining is worth 2-3x on chained\n"
        "chimes (the paper's Cray-2 contrast); the register-pair port\n"
        "limits rarely bind once the scheduler spreads pairs; losing\n"
        "the ASU cache hurts exactly the scalar-heavy kernels\n"
        "(LFK 2/4/6/8) whose outer loops reload state every pass.\n\n");

    // ---- bank-count sweep for strided access -------------------------
    std::printf("=== Bank-count sweep: strided stream cycles/element "
                "===\n\n");
    Table b({"stride", "8 banks", "16 banks", "32 banks", "64 banks"});
    for (int stride : {1, 2, 4, 8, 16, 32}) {
        std::vector<std::string> row = {Table::num((long)stride)};
        for (int banks : {8, 16, 32, 64}) {
            machine::MachineConfig cfg =
                machine::MachineConfig::withBanks(banks);
            cfg.memory.refreshEnabled = false;
            isa::Program p = isa::assemble(format(
                R"(
.comm data,%d
    mov #%d,s1
    mov #128,s6
    mov s6,VL
    lds.l data,s1,v0
    lds.l data,s1,v1
)",
                128 * stride + 16, stride));
            sim::Simulator s(cfg, p);
            row.push_back(Table::num(s.run().cycles / 256.0, 2));
        }
        b.addRow(row);
    }
    std::printf("%s\n", b.render().c_str());
    std::printf(
        "A stride sharing a large factor with the bank count collapses\n"
        "throughput to bankBusy/period (stride 32 on 32 banks: 8\n"
        "cycles/element); doubling the banks restores it, quantifying\n"
        "the 'fifth degree of freedom D' the paper proposes for data\n"
        "decomposition.\n");
    return 0;
}
