file(REMOVE_RECURSE
  "libmacs_model.a"
)
