#include "compiler/ast.h"

#include <sstream>

#include "support/logging.h"
#include "support/strings.h"

namespace macs::compiler {

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->number = number;
    e->name = name;
    e->coef = coef;
    e->offset = offset;
    if (lhs)
        e->lhs = lhs->clone();
    if (rhs)
        e->rhs = rhs->clone();
    return e;
}

ExprPtr
number(double v)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Number;
    e->number = v;
    return e;
}

ExprPtr
scalar(std::string name)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Scalar;
    e->name = std::move(name);
    return e;
}

ExprPtr
array(std::string name, long coef, long offset)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Array;
    e->name = std::move(name);
    e->coef = coef;
    e->offset = offset;
    return e;
}

namespace {

ExprPtr
binary(Expr::Kind k, ExprPtr a, ExprPtr b)
{
    MACS_ASSERT(a && b, "binary expression needs two operands");
    auto e = std::make_unique<Expr>();
    e->kind = k;
    e->lhs = std::move(a);
    e->rhs = std::move(b);
    return e;
}

} // namespace

ExprPtr
add(ExprPtr a, ExprPtr b)
{
    return binary(Expr::Kind::Add, std::move(a), std::move(b));
}

ExprPtr
sub(ExprPtr a, ExprPtr b)
{
    return binary(Expr::Kind::Sub, std::move(a), std::move(b));
}

ExprPtr
mul(ExprPtr a, ExprPtr b)
{
    return binary(Expr::Kind::Mul, std::move(a), std::move(b));
}

ExprPtr
div(ExprPtr a, ExprPtr b)
{
    return binary(Expr::Kind::Div, std::move(a), std::move(b));
}

ExprPtr
neg(ExprPtr a)
{
    MACS_ASSERT(a, "negation needs an operand");
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Neg;
    e->lhs = std::move(a);
    return e;
}

bool
Stmt::isReduction() const
{
    return reductionTerm() != nullptr;
}

const Expr *
Stmt::reductionTerm() const
{
    if (arrayDst || !rhs)
        return nullptr;
    // dst = dst + term  or  dst = term + dst  or  dst = dst - term.
    if (rhs->kind != Expr::Kind::Add && rhs->kind != Expr::Kind::Sub)
        return nullptr;
    const Expr *l = rhs->lhs.get();
    const Expr *r = rhs->rhs.get();
    auto is_acc = [&](const Expr *e) {
        return e->kind == Expr::Kind::Scalar && e->name == dstName;
    };
    if (is_acc(l))
        return r;
    if (rhs->kind == Expr::Kind::Add && is_acc(r))
        return l;
    return nullptr;
}

std::string
toString(const Expr &e)
{
    switch (e.kind) {
      case Expr::Kind::Number:
        return format("%g", e.number);
      case Expr::Kind::Scalar:
        return e.name;
      case Expr::Kind::Array: {
        std::string idx;
        if (e.coef == 1)
            idx = "k";
        else
            idx = format("%ld*k", e.coef);
        if (e.offset > 0)
            idx += format("+%ld", e.offset);
        else if (e.offset < 0)
            idx += format("%ld", e.offset);
        return e.name + "(" + idx + ")";
      }
      case Expr::Kind::Add:
        return "(" + toString(*e.lhs) + " + " + toString(*e.rhs) + ")";
      case Expr::Kind::Sub:
        return "(" + toString(*e.lhs) + " - " + toString(*e.rhs) + ")";
      case Expr::Kind::Mul:
        return "(" + toString(*e.lhs) + "*" + toString(*e.rhs) + ")";
      case Expr::Kind::Div:
        return "(" + toString(*e.lhs) + "/" + toString(*e.rhs) + ")";
      case Expr::Kind::Neg:
        return "(-" + toString(*e.lhs) + ")";
    }
    panic("unreachable expression kind");
}

std::string
Loop::toString() const
{
    std::ostringstream os;
    os << "DO " << var;
    if (stride != 1)
        os << " BY " << stride;
    os << '\n';
    for (const auto &s : stmts) {
        os << "  ";
        if (s.arrayDst) {
            Expr ref;
            ref.kind = Expr::Kind::Array;
            ref.name = s.dstName;
            ref.coef = s.dstCoef;
            ref.offset = s.dstOffset;
            os << compiler::toString(ref);
        } else {
            os << s.dstName;
        }
        os << " = " << compiler::toString(*s.rhs) << '\n';
    }
    os << "END\n";
    return os.str();
}

} // namespace macs::compiler
