#include "support/math_util.h"

#include <cmath>

#include "support/logging.h"

namespace macs {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
harmonicMean(std::span<const double> xs)
{
    MACS_ASSERT(!xs.empty(), "harmonic mean of empty set");
    double inv = 0.0;
    for (double x : xs) {
        MACS_ASSERT(x > 0.0, "harmonic mean requires positive values");
        inv += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / inv;
}

LinearFit
fitLine(std::span<const double> xs, std::span<const double> ys)
{
    MACS_ASSERT(xs.size() == ys.size(), "fitLine size mismatch");
    MACS_ASSERT(xs.size() >= 2, "fitLine needs at least two points");

    double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    double denom = n * sxx - sx * sx;
    MACS_ASSERT(std::abs(denom) > 1e-12, "fitLine degenerate x values");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    for (size_t i = 0; i < xs.size(); ++i) {
        double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
        fit.rss += r * r;
    }
    return fit;
}

unsigned long
gcd(unsigned long a, unsigned long b)
{
    while (b != 0) {
        unsigned long t = a % b;
        a = b;
        b = t;
    }
    return a;
}

double
roundTo(double v, int decimals)
{
    double scale = std::pow(10.0, decimals);
    return std::round(v * scale) / scale;
}

} // namespace macs
