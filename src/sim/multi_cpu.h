/**
 * @file
 * Multi-processor experiment driver: N programs sharing the C-240's
 * banked memory (paper section 4.2 / Figure 3's multi-process runs).
 *
 * Rather than fixing a contention factor a priori, the driver solves
 * for it: each CPU's memory-stream slowdown is a function of how much
 * memory traffic the *other* CPUs actually generate, and their traffic
 * in turn depends on their own slowdown. Iterating
 *
 *     factor_i = 1 + alpha * sum_{j != i} utilization_j
 *
 * to a fixed point (utilization_j = fraction of CPU j's run time its
 * memory port streams) converges in a few rounds because higher
 * factors stretch run time and lower utilization. alpha is calibrated
 * so four fully memory-bound processes land in the paper's 56-64 ns
 * per-access band (alpha = 0.15 independent, 0.05 lock step).
 */

#ifndef MACS_SIM_MULTI_CPU_H
#define MACS_SIM_MULTI_CPU_H

#include <functional>
#include <vector>

#include "isa/program.h"
#include "machine/machine_config.h"
#include "sim/contention.h"
#include "sim/simulator.h"

namespace macs::sim {

/** One CPU's workload in a multi-processor run. */
struct CpuJob
{
    const isa::Program *program = nullptr;
    std::function<void(Simulator &)> setup;
};

/** Converged state of a multi-processor run. */
struct MultiCpuResult
{
    std::vector<RunStats> stats;        ///< per CPU, final iteration
    std::vector<double> utilization;    ///< memory-port busy fraction
    std::vector<double> factor;         ///< converged stream slowdowns
    int iterations = 0;                 ///< fixed-point rounds used
    bool converged = false;
};

/** Options for runMultiCpu(). */
struct MultiCpuOptions
{
    WorkloadMix mix = WorkloadMix::Independent;
    int maxIterations = 12;
    double tolerance = 1e-3; ///< max |factor change| to accept
};

/**
 * Run every job to completion repeatedly, solving the contention
 * fixed point described in the file comment. The job count may not
 * exceed the machine's CPU count (MachineConfig::cpus; four on the
 * C-240).
 */
MultiCpuResult runMultiCpu(const std::vector<CpuJob> &jobs,
                           const machine::MachineConfig &config,
                           const MultiCpuOptions &options = {});

} // namespace macs::sim

#endif // MACS_SIM_MULTI_CPU_H
