file(REMOVE_RECURSE
  "CMakeFiles/decompose_data.dir/decompose_data.cpp.o"
  "CMakeFiles/decompose_data.dir/decompose_data.cpp.o.d"
  "decompose_data"
  "decompose_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompose_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
