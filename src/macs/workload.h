/**
 * @file
 * Workload characterization: the operation counts that parameterize the
 * MA and MAC bounds (paper section 3.1).
 *
 * MA counts come from the high-level source (see compiler::analyzeSource
 * for automatic derivation with perfect index analysis); MAC counts are
 * taken from the compiled inner loop body with countAssembly().
 */

#ifndef MACS_MACS_WORKLOAD_H
#define MACS_MACS_WORKLOAD_H

#include <span>

#include "isa/instruction.h"

namespace macs::model {

/**
 * Per-iteration operation counts of a vectorized inner loop.
 *
 * fAdd / fMul are vector FP operations on the add and multiply pipes
 * respectively; loads / stores are vector memory operations.
 */
struct WorkloadCounts
{
    int fAdd = 0;
    int fMul = 0;
    int loads = 0;
    int stores = 0;

    bool operator==(const WorkloadCounts &) const = default;

    /** Total FP operations per iteration. */
    int flops() const { return fAdd + fMul; }
    /** FP-pipe time bound t_f = max(f_a, f_m) in CPL. */
    int tF() const { return fAdd > fMul ? fAdd : fMul; }
    /** Memory-port time bound t_m = l + s in CPL. */
    int tM() const { return loads + stores; }
};

/**
 * Count the vector operations of a compiled loop body (the MAC
 * workload). Scalar instructions are ignored; reductions and negations
 * count as add-pipe FP operations, divisions as multiply-pipe.
 */
WorkloadCounts countAssembly(std::span<const isa::Instruction> body);

} // namespace macs::model

#endif // MACS_MACS_WORKLOAD_H
