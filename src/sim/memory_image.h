/**
 * @file
 * Functional memory for the simulator: a flat word-addressed store with
 * a symbol table mapping a program's data symbols to base addresses.
 *
 * All data is held as 64-bit words (the C-240 memory word). Doubles and
 * integers are bit-cast in and out; the simulator's scalar registers
 * hold raw 64-bit patterns, so loads and stores are type-agnostic.
 */

#ifndef MACS_SIM_MEMORY_IMAGE_H
#define MACS_SIM_MEMORY_IMAGE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.h"
#include "support/logging.h"

namespace macs::sim {

/** Byte-addressed (8-byte-word-backed) simulated memory. */
class MemoryImage
{
  public:
    /**
     * Lay out the program's data symbols contiguously in declaration
     * order, each aligned to a 64-byte boundary, and zero-fill.
     */
    explicit MemoryImage(const isa::Program &prog);

    /** Base byte address of @p symbol; fatal() when undeclared. */
    uint64_t symbolBase(const std::string &symbol) const;

    /** Total allocated bytes. */
    uint64_t sizeBytes() const { return words_.size() * 8; }

    /** Read the 64-bit word at byte address @p addr (must be aligned). */
    uint64_t readWord(uint64_t addr) const;
    /** Write the 64-bit word at byte address @p addr. */
    void writeWord(uint64_t addr, uint64_t value);

    /** Read a double at byte address @p addr. */
    double readDouble(uint64_t addr) const;
    /** Write a double at byte address @p addr. */
    void writeDouble(uint64_t addr, double value);

    /**
     * Direct word storage for a whole vector stream: element i of the
     * stream lives at the returned pointer + i * stride_words. The
     * full strided range [addr, addr + (elements-1)*stride*8] is
     * bounds- and alignment-checked up front; a violating stream
     * walks its elements in order so the fatal() carries exactly the
     * address the per-element interpreter path would report. Used by
     * the simulator's fast tier to batch loads/stores (one check per
     * chime instead of one per element). @{
     */
    const uint64_t *
    streamWords(uint64_t addr, int elements,
                int64_t stride_words) const
    {
        // Inline fast path: one range/alignment check per chime. The
        // fast tier calls this from its dispatch loop, so the common
        // in-bounds case must not pay an out-of-line call.
        MACS_ASSERT(elements > 0, "empty stream span");
        uint64_t last =
            addr +
            static_cast<uint64_t>(
                static_cast<int64_t>(elements - 1) * stride_words) *
                8;
        if (addr % 8 == 0 && addr / 8 < words_.size() &&
            last % 8 == 0 && last / 8 < words_.size())
            return words_.data() + addr / 8;
        return streamWordsSlow(addr, elements, stride_words);
    }
    uint64_t *
    streamWordsMut(uint64_t addr, int elements, int64_t stride_words)
    {
        return const_cast<uint64_t *>(
            streamWords(addr, elements, stride_words));
    }
    /** @} */

    /** Typed array views over a symbol, for initializing workloads. @{ */
    void fillDoubles(const std::string &symbol,
                     const std::vector<double> &values);
    void fillWords(const std::string &symbol,
                   const std::vector<int64_t> &values);
    std::vector<double> readDoubles(const std::string &symbol,
                                    size_t count, size_t first = 0) const;
    /** @} */

  private:
    uint64_t wordIndex(uint64_t addr) const;
    /** Failure path of streamWords: report the first bad address. */
    [[noreturn]] const uint64_t *
    streamWordsSlow(uint64_t addr, int elements,
                    int64_t stride_words) const;

    std::vector<uint64_t> words_;
    std::map<std::string, uint64_t> bases_;
};

} // namespace macs::sim

#endif // MACS_SIM_MEMORY_IMAGE_H
