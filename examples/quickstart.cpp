/**
 * @file
 * Quickstart: write a loop in the DSL, compile it with the
 * vectorizing compiler, compute the MACS bounds hierarchy, and run it
 * on the simulated Convex C-240 — the complete happy path of the
 * library in ~80 lines.
 */

#include <cstdio>
#include <vector>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "macs/bounds.h"
#include "macs/chime.h"
#include "macs/macs_bound.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"

int
main()
{
    using namespace macs;

    // 1. A daxpy-like loop in the Fortran-flavored DSL.
    const char *source = "DO k\n y(k) = y(k) + a*x(k)\nEND";
    compiler::Loop loop = compiler::parseLoop(source);
    std::printf("source:\n%s\n", loop.toString().c_str());

    // 2. Compile for 1000 points.
    compiler::CompileOptions opt;
    opt.tripCount = 1000;
    opt.arrays = {{"x", 1024}, {"y", 1024}};
    compiler::CompileResult compiled = compiler::compile(loop, opt);
    std::printf("compiled inner loop:\n");
    for (const auto &in : compiled.program.innerLoop())
        std::printf("    %s\n", in.toString().c_str());

    // 3. The bounds hierarchy on the paper's Convex C-240.
    machine::MachineConfig c240 = machine::MachineConfig::convexC240();
    auto body = compiled.program.innerLoop();
    model::PipeBound ma = model::pipeBound(compiled.analysis.ma);
    model::PipeBound mac = model::pipeBound(compiled.macCounts);
    model::MacsResult macs = model::evaluateMacs(body, c240);
    int flops = compiled.analysis.ma.flops();
    std::printf("\nbounds: t_MA = %.0f CPL, t_MAC = %.0f CPL, "
                "t_MACS = %.3f CPL (%.3f CPF)\n",
                ma.bound, mac.bound, macs.cpl, macs.cpl / flops);
    std::printf("chime structure:\n%s",
                model::renderChimes(body, macs.chimes).c_str());

    // 4. Run it and compare delivered performance with the bounds.
    sim::Simulator sim(c240, compiled.program);
    std::vector<double> x(1024), y(1024);
    for (size_t i = 0; i < x.size(); ++i) {
        x[i] = 0.001 * static_cast<double>(i);
        y[i] = 1.0;
    }
    sim.memory().fillDoubles("x", x);
    sim.memory().fillDoubles("y", y);
    sim.memory().fillDoubles("scalar_a", {2.0});
    sim::RunStats stats = sim.run();

    double cpl = stats.cycles / 1000.0;
    std::printf("\nmeasured: %.0f cycles for 1000 points = %.3f CPL "
                "(%.3f CPF, %.2f MFLOPS at 25 MHz)\n",
                stats.cycles, cpl, cpl / flops,
                stats.mflops(c240.clockMhz));

    // 5. And the answers are right.
    double y10 = sim.memory().readDoubles("y", 1, 10)[0];
    std::printf("y[10] = %.3f (expected %.3f)\n", y10,
                1.0 + 2.0 * 0.010);
    return 0;
}
