#include "sim/mp/coupled.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "support/logging.h"

namespace macs::sim::mp {

CoupledResult
runCoupled(const std::vector<CoupledJob> &jobs,
           const machine::MachineConfig &config,
           const CoupledOptions &options)
{
    MACS_ASSERT(!jobs.empty(), "runCoupled needs at least one job");
    MACS_ASSERT(static_cast<int>(jobs.size()) <= config.cpus,
                "more jobs than the machine has CPUs");
    for (const CoupledJob &job : jobs)
        MACS_ASSERT(job.program != nullptr,
                    "runCoupled job without a program");

    int cpus = static_cast<int>(jobs.size());
    SharedMemorySystem shared(config.memory, cpus);
    for (int i = 0; i < cpus; ++i) {
        shared.setTimeSkewCycles(i, jobs[static_cast<size_t>(i)]
                                        .timeSkewCycles);
        shared.setAddressSkewWords(i, jobs[static_cast<size_t>(i)]
                                          .addressSkewWords);
    }

    CoupledResult result;
    result.cpus.resize(static_cast<size_t>(cpus));
    std::vector<std::exception_ptr> errors(
        static_cast<size_t>(cpus));

    auto runCpu = [&](int i) {
        const CoupledJob &job = jobs[static_cast<size_t>(i)];
        CoupledCpuResult &out = result.cpus[static_cast<size_t>(i)];
        try {
            SimOptions opts;
            opts.tier = SimTier::Reference; // externalPort contract
            opts.externalPort = &shared.port(i);
            opts.trace = options.trace;
            opts.profile = options.profile;
            opts.maxInstructions = options.maxInstructions;
            Simulator sim(config, *job.program, opts);
            if (job.setup)
                job.setup(sim);
            out.stats = sim.run();
            out.timeline = sim.timeline();
            out.profile = sim.profile();
            out.label = job.label;
        } catch (...) {
            errors[static_cast<size_t>(i)] = std::current_exception();
        }
        // Unblock peers waiting on this CPU's horizon — on failure
        // too, or the whole fleet deadlocks on a dead CPU.
        shared.finish(i);
    };

    if (cpus == 1) {
        // Degenerate case on the calling thread: keeps 1-CPU runs
        // usable in contexts that must not spawn (and bit-identical
        // to the plain Simulator either way).
        runCpu(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<size_t>(cpus));
        for (int i = 0; i < cpus; ++i)
            threads.emplace_back(runCpu, i);
        for (std::thread &t : threads)
            t.join();
    }

    // Deterministic error surfacing: the lowest-index failure wins.
    for (std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);

    for (int i = 0; i < cpus; ++i) {
        CoupledCpuResult &out = result.cpus[static_cast<size_t>(i)];
        out.shared = shared.cpuStats(i);
        result.makespanCycles =
            std::max(result.makespanCycles,
                     jobs[static_cast<size_t>(i)].timeSkewCycles +
                         out.stats.cycles);
    }
    return result;
}

} // namespace macs::sim::mp
