# Empty dependencies file for lfk_test.
# This may be replaced when dependencies are built.
