/**
 * @file
 * The MACS bound (paper section 3.4): schedule-specific steady-state
 * cost of one vectorized inner loop iteration.
 *
 * Evaluation:
 *  1. partition the compiled loop body into chimes (chime.h);
 *  2. cost each chime as Z_base * VL + sum of member bubbles B_i
 *     (equation 13, Z_base = 1);
 *  3. instructions with Z > 1 (reductions, divisions) occupy their pipe
 *     for Z*VL cycles; the overhang beyond their chime is charged only
 *     where the following chimes (cyclically, since the loop repeats)
 *     re-use that pipe sooner than the overhang drains — this models
 *     the paper's "masked by other instructions" footnote and its
 *     reduction special cases;
 *  4. runs of consecutive memory chimes long enough to cover a refresh
 *     period are multiplied by the refresh penalty factor (1.02); runs
 *     are evaluated cyclically because the loop repeats, so a loop
 *     whose chimes all touch memory is penalized regardless of length;
 *  5. t_MACS = total cycles / VL, in CPL.
 *
 * The reduced bounds of section 3.4 are evaluated by deleting the
 * vector memory operations (t_MACS^f, models the X-process) or the
 * vector FP operations (t_MACS^m, models the A-process) before
 * partitioning.
 */

#ifndef MACS_MACS_MACS_BOUND_H
#define MACS_MACS_MACS_BOUND_H

#include <map>
#include <span>
#include <vector>

#include "isa/instruction.h"
#include "machine/machine_config.h"
#include "macs/chime.h"

namespace macs::model {

/** Result of a MACS bound evaluation. */
struct MacsResult
{
    std::vector<Chime> chimes;
    std::vector<double> chimeCycles; ///< per-chime cost incl. overhang
    double rawCycles = 0.0;  ///< sum of chime costs before refresh
    double cycles = 0.0;     ///< after the refresh penalty
    double cpl = 0.0;        ///< cycles / VL
    int vectorLength = 0;
};

/**
 * Evaluate t_MACS on a compiled inner loop body.
 *
 * @param z_override optional per-instruction Z replacements (body
 *        index -> cycles/element), used by the MACS-D bound to charge
 *        decomposition-degraded memory rates.
 */
MacsResult evaluateMacs(std::span<const isa::Instruction> body,
                        const machine::MachineConfig &config,
                        int vector_length = isa::kMaxVectorLength,
                        const std::map<size_t, double> *z_override =
                            nullptr);

/** t_MACS^f: vector memory operations deleted (execute process). */
MacsResult evaluateMacsFOnly(std::span<const isa::Instruction> body,
                             const machine::MachineConfig &config,
                             int vector_length = isa::kMaxVectorLength);

/** t_MACS^m: vector FP operations deleted (access process). */
MacsResult evaluateMacsMOnly(std::span<const isa::Instruction> body,
                             const machine::MachineConfig &config,
                             int vector_length = isa::kMaxVectorLength);

/** Copy of @p body without vector memory instructions. */
std::vector<isa::Instruction>
stripVectorMem(std::span<const isa::Instruction> body);

/** Copy of @p body without vector FP instructions. */
std::vector<isa::Instruction>
stripVectorFp(std::span<const isa::Instruction> body);

} // namespace macs::model

#endif // MACS_MACS_MACS_BOUND_H
