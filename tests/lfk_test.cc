/**
 * @file
 * LFK workload tests: every kernel validates, runs, produces correct
 * numerical results against its reference implementation, and carries
 * the MA workload of the paper's Table 2.
 */

#include <gtest/gtest.h>

#include "lfk/data.h"
#include "isa/parser.h"
#include "lfk/kernels.h"
#include "support/logging.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"

namespace macs::lfk {
namespace {

class LfkKernel : public ::testing::TestWithParam<int>
{
  protected:
    Kernel kernel_ = makeKernel(GetParam());
    machine::MachineConfig cfg_ = machine::MachineConfig::convexC240();
};

TEST_P(LfkKernel, ProgramValidates)
{
    kernel_.program.validate();
    EXPECT_FALSE(kernel_.program.empty());
    EXPECT_EQ(kernel_.id, GetParam());
    EXPECT_EQ(kernel_.name, "LFK" + std::to_string(GetParam()));
}

TEST_P(LfkKernel, HasInnerLoop)
{
    auto body = kernel_.program.innerLoop();
    EXPECT_GT(body.size(), 2u);
}

TEST_P(LfkKernel, MetadataIsConsistent)
{
    EXPECT_GT(kernel_.points, 0);
    EXPECT_EQ(kernel_.flopsPerPoint, kernel_.ma.flops());
    EXPECT_FALSE(kernel_.description.empty());
    EXPECT_FALSE(kernel_.sourceText.empty());
    EXPECT_TRUE(kernel_.setup);
    EXPECT_TRUE(kernel_.check);
}

TEST_P(LfkKernel, FunctionalResultsMatchReference)
{
    sim::Simulator sim(cfg_, kernel_.program);
    kernel_.setup(sim);
    sim::RunStats st = sim.run();
    EXPECT_GT(st.cycles, 0.0);
    std::string err = kernel_.check(sim);
    EXPECT_TRUE(err.empty()) << err;
}

TEST_P(LfkKernel, ExecutedFlopsMatchSourceCount)
{
    sim::Simulator sim(cfg_, kernel_.program);
    kernel_.setup(sim);
    sim::RunStats st = sim.run();
    // The MAC workload adds memory operations, never arithmetic, so
    // the executed vector FP element count equals points x flops/point
    // (LFK4 is the exception: the compiler's negate adds one add-pipe
    // op per element, and its final VL=1 updates add a few).
    double expected = static_cast<double>(kernel_.points) *
                      kernel_.flopsPerPoint;
    double actual = static_cast<double>(st.flops);
    EXPECT_GE(actual, expected);
    EXPECT_LE(actual, expected * 1.6 + 16.0);
}

TEST_P(LfkKernel, DeterministicAcrossRuns)
{
    sim::Simulator s1(cfg_, kernel_.program);
    kernel_.setup(s1);
    double c1 = s1.run().cycles;
    Kernel again = makeKernel(GetParam());
    sim::Simulator s2(cfg_, again.program);
    again.setup(s2);
    double c2 = s2.run().cycles;
    EXPECT_DOUBLE_EQ(c1, c2);
}

INSTANTIATE_TEST_SUITE_P(AllLfk, LfkKernel,
                         ::testing::ValuesIn(lfkIds()),
                         [](const auto &info) {
                             return "LFK" + std::to_string(info.param);
                         });

// ------------------------------------------------ Table 2 MA workloads

struct MaCase
{
    int id;
    model::WorkloadCounts ma;
};

class Table2Workload : public ::testing::TestWithParam<MaCase>
{
};

TEST_P(Table2Workload, MaCountsMatchPaperAnchors)
{
    Kernel k = makeKernel(GetParam().id);
    EXPECT_EQ(k.ma, GetParam().ma)
        << "fAdd/fMul/loads/stores = " << k.ma.fAdd << "/" << k.ma.fMul
        << "/" << k.ma.loads << "/" << k.ma.stores;
}

// MA workloads reconstructed from the paper's Tables 3-4 anchors
// (t_f = max(f_a, f_m), t_m = l + s, CPF normalization by f_a + f_m).
INSTANTIATE_TEST_SUITE_P(
    Paper, Table2Workload,
    ::testing::Values(MaCase{1, {2, 3, 2, 1}},   // t_f=3, t_m=3
                      MaCase{2, {2, 2, 4, 1}},   // t_f=2, t_m=5
                      MaCase{3, {1, 1, 2, 0}},   // t_f=1, t_m=2
                      MaCase{4, {1, 1, 2, 0}},
                      MaCase{6, {1, 1, 2, 0}},
                      MaCase{7, {8, 8, 3, 1}},   // t_f=8, t_m=4
                      MaCase{8, {21, 15, 9, 6}}, // t_f=21, t_m=15
                      MaCase{9, {9, 8, 10, 1}},  // t_f=9, t_m=11
                      MaCase{10, {9, 0, 10, 10}},
                      MaCase{12, {1, 0, 1, 1}}),
    [](const auto &info) {
        return "LFK" + std::to_string(info.param.id);
    });

// ------------------------------------------------ misc registry

TEST(LfkRegistry, TenKernelsInTableOrder)
{
    auto ids = lfkIds();
    std::vector<int> expected = {1, 2, 3, 4, 6, 7, 8, 9, 10, 12};
    EXPECT_EQ(ids, expected);
    EXPECT_EQ(makeAllKernels().size(), 10u);
}

TEST(LfkRegistry, UnknownKernelIsFatal)
{
    EXPECT_THROW(makeKernel(13), FatalError);
    EXPECT_THROW(makeKernel(0), FatalError);
    EXPECT_THROW(makeKernel(-1), FatalError);
}

TEST(LfkRegistry, ScalarRecurrenceKernelsAvailable)
{
    EXPECT_EQ(scalarLfkIds(), (std::vector<int>{5, 11}));
    for (int id : scalarLfkIds()) {
        Kernel k = makeKernel(id);
        // Scalar-mode code: no vector instructions at all.
        for (const auto &in : k.program.instrs())
            EXPECT_FALSE(in.isVector()) << in.toString();
    }
}

class ScalarLfkKernel : public ::testing::TestWithParam<int>
{
};

TEST_P(ScalarLfkKernel, RecurrenceComputesCorrectly)
{
    Kernel k = makeKernel(GetParam());
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator s(cfg, k.program);
    k.setup(s);
    sim::RunStats st = s.run();
    EXPECT_GT(st.cycles, 0.0);
    EXPECT_EQ(st.vectorInstructions, 0u);
    std::string err = k.check(s);
    EXPECT_TRUE(err.empty()) << err;
}

INSTANTIATE_TEST_SUITE_P(Recurrences, ScalarLfkKernel,
                         ::testing::ValuesIn(scalarLfkIds()),
                         [](const auto &info) {
                             return "LFK" + std::to_string(info.param);
                         });

TEST(LfkRegistry, ToKernelCaseCopiesMetadata)
{
    Kernel k = makeLfk1();
    model::KernelCase c = toKernelCase(k);
    EXPECT_EQ(c.name, "LFK1");
    EXPECT_EQ(c.ma, k.ma);
    EXPECT_EQ(c.sourceFlopsPerPoint, 5);
    EXPECT_EQ(c.points, 990);
    EXPECT_TRUE(c.setup);
}

TEST(LfkRegistry, PaperListingMatchesCompiledLfk1Workload)
{
    // The compiler's LFK1 must reproduce the paper listing's MAC
    // workload (same operation mix, modulo instruction order).
    Kernel k = makeLfk1();
    isa::Program paper = isa::assemble(lfk1PaperListing());
    auto mine = model::countAssembly(k.program.innerLoop());
    auto ref = model::countAssembly(paper.innerLoop());
    EXPECT_EQ(mine, ref);
}

TEST(LfkData, TestVectorDeterministicAndBounded)
{
    auto a = testVector(64, 7, 0.5, 1.5);
    auto b = testVector(64, 7, 0.5, 1.5);
    EXPECT_EQ(a, b);
    for (double v : a) {
        EXPECT_GE(v, 0.5);
        EXPECT_LT(v, 1.5);
    }
    auto c = testVector(64, 8, 0.5, 1.5);
    EXPECT_NE(a, c);
}

} // namespace
} // namespace macs::lfk
