#include "sim/bank_model.h"

#include <algorithm>
#include <cstdlib>

#include "support/logging.h"
#include "support/math_util.h"

namespace macs::sim {

namespace {

/** Bank index of a word address. */
size_t
bankOf(int64_t word, int banks)
{
    int64_t b = word % banks;
    if (b < 0)
        b += banks;
    return static_cast<size_t>(b);
}

} // namespace

BankSimResult
simulateBankStream(const machine::MemoryConfig &config, int elements,
                   int64_t stride, uint64_t start_word)
{
    MACS_ASSERT(elements > 0, "empty stream");
    MACS_ASSERT(config.banks > 0, "need at least one bank");

    std::vector<double> bank_free(static_cast<size_t>(config.banks),
                                  0.0);
    double t = 0.0;
    double first_issue = -1.0;
    double prev_issue = 0.0;
    // Track the issue time of the element one period ago to estimate
    // the sustained rate from the tail of the stream.
    std::vector<double> issues;
    issues.reserve(static_cast<size_t>(elements));

    for (int i = 0; i < elements; ++i) {
        int64_t word = static_cast<int64_t>(start_word) +
                       static_cast<int64_t>(i) * stride;
        size_t bank = bankOf(word, config.banks);
        double issue = std::max(t, bank_free[bank]);
        if (first_issue < 0)
            first_issue = issue;
        bank_free[bank] = issue + config.bankBusyCycles;
        t = issue + 1.0; // port: at most one request per cycle
        prev_issue = issue;
        issues.push_back(issue);
    }

    BankSimResult res;
    res.cycles = prev_issue + config.bankBusyCycles - first_issue;
    // Sustained rate: slope over the second half of the stream.
    size_t half = issues.size() / 2;
    if (issues.size() >= 4 && issues.size() - half >= 2) {
        res.sustainedRate =
            (issues.back() - issues[half]) /
            static_cast<double>(issues.size() - 1 - half);
    } else {
        res.sustainedRate = res.cycles / elements;
    }
    // Transient: how much the whole stream exceeds the steady slope.
    res.transientCycles =
        (issues.back() - issues.front()) -
        res.sustainedRate * static_cast<double>(issues.size() - 1);
    return res;
}

double
simulateInterleavedStreams(const machine::MemoryConfig &config,
                           int elements, int64_t stride_a,
                           uint64_t start_a, int64_t stride_b,
                           uint64_t start_b)
{
    MACS_ASSERT(elements > 0, "empty stream");
    std::vector<double> bank_free(static_cast<size_t>(config.banks),
                                  0.0);
    double t = 0.0;
    double last = 0.0;
    for (int i = 0; i < elements; ++i) {
        for (int which = 0; which < 2; ++which) {
            int64_t base = which == 0 ? static_cast<int64_t>(start_a)
                                      : static_cast<int64_t>(start_b);
            int64_t stride = which == 0 ? stride_a : stride_b;
            size_t bank =
                bankOf(base + static_cast<int64_t>(i) * stride,
                       config.banks);
            double issue = std::max(t, bank_free[bank]);
            bank_free[bank] = issue + config.bankBusyCycles;
            t = issue + 1.0;
            last = issue;
        }
    }
    return last + config.bankBusyCycles;
}

std::vector<double>
strideRateTable(const machine::MemoryConfig &config)
{
    // Same closed form as MemoryPort::strideRate, evaluated once per
    // residue class: the fast tier's whole bank-busy schedule.
    std::vector<double> table(static_cast<size_t>(config.banks));
    for (uint64_t s = 0; s < static_cast<uint64_t>(config.banks); ++s) {
        if (s == 0) {
            table[s] = static_cast<double>(config.bankBusyCycles);
            continue;
        }
        uint64_t distinct =
            static_cast<uint64_t>(config.banks) /
            gcd(static_cast<uint64_t>(config.banks), s);
        double min_rate =
            static_cast<double>(config.bankBusyCycles) /
            static_cast<double>(distinct);
        table[s] = std::max(1.0, min_rate);
    }
    return table;
}

} // namespace macs::sim
