/**
 * @file
 * Numeric helpers: means used by the paper's summary rows (arithmetic
 * mean of CPF, harmonic-mean MFLOPS) and the linear least-squares fit
 * used by the calibration framework to derive X/Y/Z parameters.
 */

#ifndef MACS_SUPPORT_MATH_UTIL_H
#define MACS_SUPPORT_MATH_UTIL_H

#include <cstddef>
#include <span>

namespace macs {

/** Arithmetic mean; @returns 0 for an empty span. */
double mean(std::span<const double> xs);

/** Harmonic mean; panics on non-positive inputs. */
double harmonicMean(std::span<const double> xs);

/**
 * Result of fitting y = slope * x + intercept by least squares.
 * rss is the residual sum of squares.
 */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double rss = 0.0;
};

/**
 * Least-squares fit of y against x.
 * @pre xs.size() == ys.size() && xs.size() >= 2
 */
LinearFit fitLine(std::span<const double> xs, std::span<const double> ys);

/** Greatest common divisor of non-negative integers. */
unsigned long gcd(unsigned long a, unsigned long b);

/** Round to @p decimals fraction digits (ties away from zero). */
double roundTo(double v, int decimals);

} // namespace macs

#endif // MACS_SUPPORT_MATH_UTIL_H
