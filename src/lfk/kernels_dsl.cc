/**
 * @file
 * LFK kernels whose inner loop is a single counted DO loop, compiled
 * from the loop DSL: LFK 1, 3, 7, 8, 9, 12.
 */

#include "lfk/kernels.h"

#include <cmath>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "lfk/data.h"
#include "support/logging.h"

namespace macs::lfk {

namespace {

using compiler::CompileOptions;
using compiler::CompileResult;

/** Compile a DSL kernel and fill the program-derived Kernel fields. */
Kernel
compileKernel(int id, const std::string &dsl, CompileOptions opt)
{
    // (vector or scalar mode per opt.vectorize)
    compiler::Loop loop = compiler::parseLoop(dsl);
    CompileResult res = compiler::compile(loop, opt);
    Kernel k;
    k.id = id;
    k.name = "LFK" + std::to_string(id);
    k.sourceText = dsl;
    k.ma = res.analysis.ma;
    k.flopsPerPoint = k.ma.flops();
    k.points = opt.tripCount;
    k.program = std::move(res.program);
    k.remake = [id, dsl, opt](long trip) {
        MACS_ASSERT(trip > 0, "strip-mined trip count must be positive");
        CompileOptions o = opt;
        o.tripCount = trip;
        return compileKernel(id, dsl, o);
    };
    return k;
}

/** Strip-order accumulation matching VSum semantics. */
double
stripSum(const std::vector<double> &terms, double init, int vl = 128)
{
    double acc = init;
    for (size_t base = 0; base < terms.size();
         base += static_cast<size_t>(vl)) {
        double partial = 0.0;
        size_t end =
            std::min(terms.size(), base + static_cast<size_t>(vl));
        for (size_t i = base; i < end; ++i)
            partial += terms[i];
        acc += partial;
    }
    return acc;
}

} // namespace

Kernel
makeLfk1()
{
    const long n = 990;
    const double q = 1.5, r = 0.75, t = 0.35;

    CompileOptions opt;
    opt.tripCount = n;
    opt.arrays = {{"x", 1024}, {"y", 1024}, {"zx", 1024}};
    Kernel k = compileKernel(
        1, "DO k\n x(k) = q + y(k)*(r*zx(k+10) + t*zx(k+11))\nEND", opt);
    k.description = "hydro fragment";

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("y", testVector(1024, 101));
        s.memory().fillDoubles("zx", testVector(1024, 102));
        s.memory().fillDoubles("scalar_q", {q});
        s.memory().fillDoubles("scalar_r", {r});
        s.memory().fillDoubles("scalar_t", {t});
    };
    k.check = [=](const sim::Simulator &s) {
        auto y = testVector(1024, 101);
        auto zx = testVector(1024, 102);
        std::vector<double> expect(n);
        for (long i = 0; i < n; ++i)
            expect[i] = q + y[i] * (r * zx[i + 10] + t * zx[i + 11]);
        return compareArray(s, "x", expect);
    };
    return k;
}

Kernel
makeLfk3()
{
    const long n = 1001;
    const double q0 = 0.0;

    CompileOptions opt;
    opt.tripCount = n;
    opt.arrays = {{"x", 1024}, {"z", 1024}};
    Kernel k = compileKernel(3, "DO k\n q = q + z(k)*x(k)\nEND", opt);
    k.description = "inner product";

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("x", testVector(1024, 301));
        s.memory().fillDoubles("z", testVector(1024, 302));
        s.memory().fillDoubles("scalar_q", {q0});
    };
    k.check = [=](const sim::Simulator &s) {
        auto x = testVector(1024, 301);
        auto z = testVector(1024, 302);
        std::vector<double> terms(n);
        for (long i = 0; i < n; ++i)
            terms[i] = z[i] * x[i];
        return compareCell(s, "scalar_q", stripSum(terms, q0));
    };
    return k;
}

Kernel
makeLfk5()
{
    // Tri-diagonal elimination, below diagonal: a true recurrence the
    // paper's vectorizer must reject; compiled for the scalar unit.
    const long n = 1000;

    CompileOptions opt;
    opt.tripCount = n;
    opt.vectorize = false;
    opt.arrays = {{"x", 1024}, {"y", 1032}, {"z", 1032}};
    Kernel k = compileKernel(
        5, "DO k\n x(k+1) = z(k+1)*(y(k+1) - x(k))\nEND", opt);
    k.description = "tri-diagonal elimination (scalar recurrence)";

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("x", testVector(1024, 501));
        s.memory().fillDoubles("y", testVector(1032, 502));
        s.memory().fillDoubles("z", testVector(1032, 503, 0.2, 0.9));
    };
    k.check = [=](const sim::Simulator &s) {
        auto x = testVector(1024, 501);
        auto y = testVector(1032, 502);
        auto z = testVector(1032, 503, 0.2, 0.9);
        for (long i = 0; i < n; ++i)
            x[i + 1] = z[i + 1] * (y[i + 1] - x[i]);
        return compareArray(s, "x", x);
    };
    return k;
}

Kernel
makeLfk11()
{
    // First sum (prefix sum): the other excluded recurrence.
    const long n = 1000;

    CompileOptions opt;
    opt.tripCount = n;
    opt.vectorize = false;
    opt.arrays = {{"x", 1024}, {"y", 1032}};
    Kernel k =
        compileKernel(11, "DO k\n x(k+1) = x(k) + y(k+1)\nEND", opt);
    k.description = "first sum (scalar recurrence)";

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("x", testVector(1024, 1101));
        s.memory().fillDoubles("y", testVector(1032, 1102));
    };
    k.check = [=](const sim::Simulator &s) {
        auto x = testVector(1024, 1101);
        auto y = testVector(1032, 1102);
        for (long i = 0; i < n; ++i)
            x[i + 1] = x[i] + y[i + 1];
        return compareArray(s, "x", x);
    };
    return k;
}

Kernel
makeLfk7()
{
    const long n = 990;
    const double q = 0.5, r = 0.75, t = 0.35;

    CompileOptions opt;
    opt.tripCount = n;
    opt.arrays = {
        {"x", 1024}, {"y", 1024}, {"z", 1024}, {"u", 1024}};
    Kernel k = compileKernel(
        7,
        "DO k\n"
        " x(k) = u(k) + r*(z(k) + r*y(k))"
        " + t*(u(k+3) + r*(u(k+2) + r*u(k+1))"
        " + t*(u(k+6) + q*(u(k+5) + q*u(k+4))))\n"
        "END",
        opt);
    k.description = "equation of state fragment";

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("y", testVector(1024, 701));
        s.memory().fillDoubles("z", testVector(1024, 702));
        s.memory().fillDoubles("u", testVector(1024, 703));
        s.memory().fillDoubles("scalar_q", {q});
        s.memory().fillDoubles("scalar_r", {r});
        s.memory().fillDoubles("scalar_t", {t});
    };
    k.check = [=](const sim::Simulator &s) {
        auto y = testVector(1024, 701);
        auto z = testVector(1024, 702);
        auto u = testVector(1024, 703);
        std::vector<double> expect(n);
        for (long i = 0; i < n; ++i) {
            expect[i] =
                u[i] + r * (z[i] + r * y[i]) +
                t * (u[i + 3] + r * (u[i + 2] + r * u[i + 1]) +
                     t * (u[i + 6] + q * (u[i + 5] + q * u[i + 4])));
        }
        return compareArray(s, "x", expect);
    };
    return k;
}

Kernel
makeLfk8()
{
    // One kx sweep of the ADI kernel: ky = 2..100 on u(5,101,2)
    // column-major planes, kx = 2. The u*n symbols are the nl1 plane,
    // u*m the nl2 plane; indices are (kx-1) + 5*(ky-1) = 5k+6 at
    // ky = k+2.
    const long trip = 99;
    const double a11 = 0.10, a12 = 0.15, a13 = 0.20;
    const double a21 = 0.12, a22 = 0.17, a23 = 0.22;
    const double a31 = 0.14, a32 = 0.19, a33 = 0.24;
    const double sig = 0.25;

    CompileOptions opt;
    opt.tripCount = trip;
    opt.arrays = {{"u1n", 512}, {"u2n", 512}, {"u3n", 512},
                  {"u1m", 512}, {"u2m", 512}, {"u3m", 512},
                  {"du1", 128}, {"du2", 128}, {"du3", 128}};
    Kernel k = compileKernel(
        8,
        "DO k\n"
        " du1(k+1) = u1n(5*k+11) - u1n(5*k+1)\n"
        " du2(k+1) = u2n(5*k+11) - u2n(5*k+1)\n"
        " du3(k+1) = u3n(5*k+11) - u3n(5*k+1)\n"
        " u1m(5*k+6) = u1n(5*k+6) + a11*du1(k+1) + a12*du2(k+1)"
        " + a13*du3(k+1)"
        " + sig*(u1n(5*k+7) - 2.0*u1n(5*k+6) + u1n(5*k+5))\n"
        " u2m(5*k+6) = u2n(5*k+6) + a21*du1(k+1) + a22*du2(k+1)"
        " + a23*du3(k+1)"
        " + sig*(u2n(5*k+7) - 2.0*u2n(5*k+6) + u2n(5*k+5))\n"
        " u3m(5*k+6) = u3n(5*k+6) + a31*du1(k+1) + a32*du2(k+1)"
        " + a33*du3(k+1)"
        " + sig*(u3n(5*k+7) - 2.0*u3n(5*k+6) + u3n(5*k+5))\n"
        "END",
        opt);
    k.description = "ADI integration (one kx sweep)";

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("u1n", testVector(512, 801));
        s.memory().fillDoubles("u2n", testVector(512, 802));
        s.memory().fillDoubles("u3n", testVector(512, 803));
        for (const char *name :
             {"scalar_a11", "scalar_a12", "scalar_a13", "scalar_a21",
              "scalar_a22", "scalar_a23", "scalar_a31", "scalar_a32",
              "scalar_a33", "scalar_sig"}) {
            double v = 0.0;
            std::string n2 = name;
            if (n2 == "scalar_a11") v = a11;
            else if (n2 == "scalar_a12") v = a12;
            else if (n2 == "scalar_a13") v = a13;
            else if (n2 == "scalar_a21") v = a21;
            else if (n2 == "scalar_a22") v = a22;
            else if (n2 == "scalar_a23") v = a23;
            else if (n2 == "scalar_a31") v = a31;
            else if (n2 == "scalar_a32") v = a32;
            else if (n2 == "scalar_a33") v = a33;
            else v = sig;
            s.memory().fillDoubles(name, {v});
        }
    };
    k.check = [=](const sim::Simulator &s) {
        auto u1 = testVector(512, 801);
        auto u2 = testVector(512, 802);
        auto u3 = testVector(512, 803);
        std::vector<double> du1(trip), du2(trip), du3(trip);
        std::vector<double> m1(trip), m2(trip), m3(trip);
        for (long i = 0; i < trip; ++i) {
            du1[i] = u1[5 * i + 11] - u1[5 * i + 1];
            du2[i] = u2[5 * i + 11] - u2[5 * i + 1];
            du3[i] = u3[5 * i + 11] - u3[5 * i + 1];
            m1[i] = u1[5 * i + 6] + a11 * du1[i] + a12 * du2[i] +
                    a13 * du3[i] +
                    sig * (u1[5 * i + 7] - 2.0 * u1[5 * i + 6] +
                           u1[5 * i + 5]);
            m2[i] = u2[5 * i + 6] + a21 * du1[i] + a22 * du2[i] +
                    a23 * du3[i] +
                    sig * (u2[5 * i + 7] - 2.0 * u2[5 * i + 6] +
                           u2[5 * i + 5]);
            m3[i] = u3[5 * i + 6] + a31 * du1[i] + a32 * du2[i] +
                    a33 * du3[i] +
                    sig * (u3[5 * i + 7] - 2.0 * u3[5 * i + 6] +
                           u3[5 * i + 5]);
        }
        // du arrays are written at index k+1 and m-planes at 5k+6.
        auto got_du1 = s.memory().readDoubles("du1", trip, 1);
        for (long i = 0; i < trip; ++i)
            if (std::abs(got_du1[i] - du1[i]) > 1e-9)
                return std::string("du1 mismatch at ") +
                       std::to_string(i);
        for (long i = 0; i < trip; ++i) {
            double g1 = s.memory().readDoubles("u1m", 1, 5 * i + 6)[0];
            double g2 = s.memory().readDoubles("u2m", 1, 5 * i + 6)[0];
            double g3 = s.memory().readDoubles("u3m", 1, 5 * i + 6)[0];
            if (std::abs(g1 - m1[i]) > 1e-9 ||
                std::abs(g2 - m2[i]) > 1e-9 ||
                std::abs(g3 - m3[i]) > 1e-9)
                return std::string("u*m mismatch at ") +
                       std::to_string(i);
        }
        return std::string();
    };
    return k;
}

Kernel
makeLfk9()
{
    // Integrate predictors: px(25,101), i is the loop variable, row
    // indices fixed; element (j, i) maps to px[25*(i-1) + (j-1)],
    // i.e., px(25k + j-1) at 0-based k.
    const long n = 101;
    const double c0 = 1.2, dm22 = 0.11, dm23 = 0.13, dm24 = 0.17,
                 dm25 = 0.19, dm26 = 0.23, dm27 = 0.29, dm28 = 0.31;

    CompileOptions opt;
    opt.tripCount = n;
    opt.arrays = {{"px", 2560}};
    Kernel k = compileKernel(
        9,
        "DO k\n"
        " px(25*k) = dm28*px(25*k+12) + dm27*px(25*k+11)"
        " + dm26*px(25*k+10) + dm25*px(25*k+9) + dm24*px(25*k+8)"
        " + dm23*px(25*k+7) + dm22*px(25*k+6)"
        " + c0*(px(25*k+4) + px(25*k+5)) + px(25*k+2)\n"
        "END",
        opt);
    k.description = "integrate predictors";

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("px", testVector(2560, 901));
        s.memory().fillDoubles("scalar_c0", {c0});
        s.memory().fillDoubles("scalar_dm22", {dm22});
        s.memory().fillDoubles("scalar_dm23", {dm23});
        s.memory().fillDoubles("scalar_dm24", {dm24});
        s.memory().fillDoubles("scalar_dm25", {dm25});
        s.memory().fillDoubles("scalar_dm26", {dm26});
        s.memory().fillDoubles("scalar_dm27", {dm27});
        s.memory().fillDoubles("scalar_dm28", {dm28});
    };
    k.check = [=](const sim::Simulator &s) {
        auto px = testVector(2560, 901);
        for (long i = 0; i < n; ++i) {
            double expect =
                dm28 * px[25 * i + 12] + dm27 * px[25 * i + 11] +
                dm26 * px[25 * i + 10] + dm25 * px[25 * i + 9] +
                dm24 * px[25 * i + 8] + dm23 * px[25 * i + 7] +
                dm22 * px[25 * i + 6] +
                c0 * (px[25 * i + 4] + px[25 * i + 5]) + px[25 * i + 2];
            double got = s.memory().readDoubles("px", 1, 25 * i)[0];
            if (std::abs(got - expect) > 1e-9)
                return std::string("px mismatch at ") + std::to_string(i);
        }
        return std::string();
    };
    return k;
}

Kernel
makeLfk12()
{
    const long n = 1000;

    CompileOptions opt;
    opt.tripCount = n;
    opt.arrays = {{"x", 1024}, {"y", 1032}};
    Kernel k = compileKernel(12, "DO k\n x(k) = y(k+1) - y(k)\nEND", opt);
    k.description = "first difference";

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("y", testVector(1032, 1201));
    };
    k.check = [=](const sim::Simulator &s) {
        auto y = testVector(1032, 1201);
        std::vector<double> expect(n);
        for (long i = 0; i < n; ++i)
            expect[i] = y[i + 1] - y[i];
        return compareArray(s, "x", expect);
    };
    return k;
}

} // namespace macs::lfk
