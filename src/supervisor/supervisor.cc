#include "supervisor/supervisor.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>

#include "support/logging.h"

namespace macs::supervisor {

namespace {

/** Supervision tick: bounds heartbeat/exit/restart latency. */
constexpr int kTickMs = 20;

void
logf(bool verbose, const char *fmt, ...)
{
    if (!verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
}

} // namespace

Supervisor::Supervisor(SupervisorOptions options,
                       WorkerMain worker_main,
                       std::function<void()> on_ready)
    : options_(std::move(options)), workerMain_(std::move(worker_main)),
      onReady_(std::move(on_ready))
{
    MACS_ASSERT(options_.processes >= 1 &&
                    options_.processes <= kMaxWorkers,
                "supervisor needs 1..", kMaxWorkers,
                " worker processes");
    MACS_ASSERT(workerMain_ != nullptr,
                "supervisor needs a worker main");
    fleet_ = createSharedFleetState();
    fleet_->processes.store(
        static_cast<uint32_t>(options_.processes),
        std::memory_order_release);
    slots_.resize(static_cast<size_t>(options_.processes));
}

Supervisor::~Supervisor()
{
    for (Slot &slot : slots_)
        closeSlotPipe(slot);
    destroySharedFleetState(fleet_);
}

void
Supervisor::setState(int index, WorkerState state)
{
    fleet_->slots[index].state.store(static_cast<uint32_t>(state),
                                     std::memory_order_release);
}

void
Supervisor::closeSlotPipe(Slot &slot)
{
    if (slot.pipeFd >= 0) {
        ::close(slot.pipeFd);
        slot.pipeFd = -1;
    }
}

void
Supervisor::spawn(int index)
{
    Slot &slot = slots_[static_cast<size_t>(index)];
    int pfd[2];
    if (::pipe(pfd) != 0)
        fatal("supervisor: pipe(): ", std::strerror(errno));
    // Read end is drained non-blockingly from the supervision loop.
    ::fcntl(pfd[0], F_SETFL,
            ::fcntl(pfd[0], F_GETFL, 0) | O_NONBLOCK);

    int incarnation = slot.nextIncarnation++;
    pid_t pid = ::fork();
    if (pid < 0) {
        // Treat a failed fork like an instant crash: backoff, budget.
        ::close(pfd[0]);
        ::close(pfd[1]);
        logf(options_.verbose,
             "macs serve: supervisor: fork() for worker %d failed: "
             "%s\n",
             index, std::strerror(errno));
        onWorkerDeath(index, 0x7f00);
        return;
    }
    if (pid == 0) {
        // Child: keep only this slot's write end. Every read end —
        // including our own and those of previously forked siblings —
        // belongs to the supervisor.
        ::close(pfd[0]);
        for (const Slot &other : slots_)
            if (other.pipeFd >= 0)
                ::close(other.pipeFd);
        WorkerContext ctx;
        ctx.slot = index;
        ctx.incarnation = incarnation;
        ctx.heartbeatFd = pfd[1];
        ctx.heartbeatIntervalMs = options_.heartbeatIntervalMs;
        ctx.fleet = fleet_;
        int rc = 1;
        try {
            rc = workerMain_(ctx);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "macs serve: worker %d: %s\n", index,
                         e.what());
            rc = 1;
        }
        // _exit: no atexit / static destructors — the child shares
        // the parent's address-space snapshot and must not tear down
        // state the supervisor still owns.
        ::_exit(rc);
    }

    ::close(pfd[1]);
    slot.pid = pid;
    slot.pipeFd = pfd[0];
    slot.ready = false;
    slot.hangKill = false;
    slot.lastBeat = Clock::now();
    fleet_->slots[index].pid.store(static_cast<int32_t>(pid),
                                   std::memory_order_release);
    fleet_->slots[index].incarnation.store(
        static_cast<uint32_t>(incarnation),
        std::memory_order_release);
    setState(index, WorkerState::Starting);
    logf(options_.verbose,
         "macs serve: supervisor: worker %d up (pid %d, "
         "incarnation %d)\n",
         index, static_cast<int>(pid), incarnation);
}

void
Supervisor::drainHeartbeats()
{
    char buf[256];
    for (size_t i = 0; i < slots_.size(); ++i) {
        Slot &slot = slots_[i];
        if (slot.pipeFd < 0)
            continue;
        ssize_t n;
        bool beat = false;
        while ((n = ::read(slot.pipeFd, buf, sizeof(buf))) > 0)
            beat = true;
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR)
            continue; // broken pipe end: the exit path handles it
        if (!beat)
            continue;
        slot.lastBeat = Clock::now();
        if (!slot.ready) {
            slot.ready = true;
            setState(static_cast<int>(i), WorkerState::Serving);
        }
    }
}

void
Supervisor::onWorkerDeath(int index, int status)
{
    Slot &slot = slots_[static_cast<size_t>(index)];
    slot.pid = -1;
    closeSlotPipe(slot);
    fleet_->slots[index].pid.store(0, std::memory_order_release);

    if (slot.hangKill)
        fleet_->slots[index].hangs.fetch_add(
            1, std::memory_order_acq_rel);
    else
        fleet_->slots[index].crashes.fetch_add(
            1, std::memory_order_acq_rel);

    const char *how =
        slot.hangKill ? "hung (missed heartbeats)"
        : WIFSIGNALED(status)
            ? "killed by signal"
            : "exited";
    int detail = slot.hangKill ? 0
                 : WIFSIGNALED(status) ? WTERMSIG(status)
                                       : WEXITSTATUS(status);

    if (options_.restart.exhausted(slot.restarts)) {
        slot.abandoned = true;
        setState(index, WorkerState::Abandoned);
        logf(options_.verbose,
             "macs serve: supervisor: worker %d %s (%d); restart "
             "budget (%d) exhausted — slot abandoned\n",
             index, how, detail, options_.restart.budget);
        if (!allDead())
            fleet_->degraded.store(1, std::memory_order_release);
        return;
    }

    int delay = options_.restart.backoffMs(slot.restarts);
    slot.restarts++;
    fleet_->slots[index].restarts.fetch_add(
        1, std::memory_order_acq_rel);
    slot.restartAt =
        Clock::now() + std::chrono::milliseconds(delay);
    setState(index, WorkerState::Backoff);
    logf(options_.verbose,
         "macs serve: supervisor: worker %d %s (%d); restart %d/%d "
         "in %d ms\n",
         index, how, detail, slot.restarts,
         options_.restart.budget, delay);
}

void
Supervisor::reapExits()
{
    for (;;) {
        int status = 0;
        pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            return;
        for (size_t i = 0; i < slots_.size(); ++i)
            if (slots_[i].pid == pid) {
                onWorkerDeath(static_cast<int>(i), status);
                break;
            }
    }
}

void
Supervisor::checkLiveness(Clock::time_point now)
{
    auto deadline =
        std::chrono::milliseconds(options_.livenessTimeoutMs);
    for (size_t i = 0; i < slots_.size(); ++i) {
        Slot &slot = slots_[i];
        if (slot.pid <= 0 || slot.hangKill)
            continue;
        if (now - slot.lastBeat < deadline)
            continue;
        // Hang: the process exists but stopped beating. SIGKILL it;
        // the reap on a later tick counts the death as a hang and
        // schedules the restart.
        slot.hangKill = true;
        ::kill(slot.pid, SIGKILL);
    }
}

void
Supervisor::restartDue(Clock::time_point now)
{
    if (fleet_->isDraining())
        return;
    for (size_t i = 0; i < slots_.size(); ++i) {
        Slot &slot = slots_[i];
        if (slot.pid > 0 || slot.abandoned)
            continue;
        if (now >= slot.restartAt)
            spawn(static_cast<int>(i));
    }
}

bool
Supervisor::allDead() const
{
    return std::all_of(slots_.begin(), slots_.end(),
                       [](const Slot &s) {
                           return s.pid <= 0 && s.abandoned;
                       });
}

bool
Supervisor::allReady() const
{
    return std::all_of(slots_.begin(), slots_.end(),
                       [](const Slot &s) { return s.ready; });
}

int
Supervisor::rollingDrain()
{
    fleet_->draining.store(1, std::memory_order_release);
    logf(options_.verbose,
         "macs serve: supervisor: rolling drain...\n");
    bool clean = true;
    for (size_t i = 0; i < slots_.size(); ++i) {
        Slot &slot = slots_[i];
        if (slot.pid <= 0) {
            closeSlotPipe(slot);
            continue;
        }
        setState(static_cast<int>(i), WorkerState::Draining);
        ::kill(slot.pid, SIGTERM);
        // Wait for THIS worker to finish its in-flight requests and
        // flush its journal before moving to the next, so the rest of
        // the fleet keeps serving for as long as possible.
        auto kill_at =
            Clock::now() +
            std::chrono::milliseconds(options_.drainTimeoutMs);
        int status = 0;
        for (;;) {
            pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
            if (r == slot.pid)
                break;
            if (r < 0 && errno == ECHILD) {
                status = 0;
                break;
            }
            if (Clock::now() >= kill_at) {
                ::kill(slot.pid, SIGKILL);
                ::waitpid(slot.pid, &status, 0);
                break;
            }
            ::poll(nullptr, 0, kTickMs);
        }
        bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        clean = clean && ok;
        logf(options_.verbose,
             "macs serve: supervisor: worker %zu drained%s\n", i,
             ok ? "" : " UNCLEANLY");
        slot.pid = -1;
        fleet_->slots[i].pid.store(0, std::memory_order_release);
        setState(static_cast<int>(i), WorkerState::Drained);
        closeSlotPipe(slot);
    }
    return clean ? kExitClean : kExitServiceLost;
}

int
Supervisor::run()
{
    Clock::time_point started = Clock::now();
    for (int i = 0; i < options_.processes; ++i)
        spawn(i);

    std::vector<pollfd> pfds;
    for (;;) {
        // Wait on every live heartbeat pipe (POLLIN also wakes the
        // loop promptly on child exit via POLLHUP).
        pfds.clear();
        for (const Slot &slot : slots_)
            if (slot.pipeFd >= 0)
                pfds.push_back(pollfd{slot.pipeFd, POLLIN, 0});
        ::poll(pfds.empty() ? nullptr : pfds.data(),
               static_cast<nfds_t>(pfds.size()), kTickMs);

        drainHeartbeats();
        reapExits();
        Clock::time_point now = Clock::now();
        checkLiveness(now);
        restartDue(now);

        if (!readySignaled_ && allReady()) {
            readySignaled_ = true;
            if (onReady_)
                onReady_();
        }

        if (allDead()) {
            logf(options_.verbose,
                 "macs serve: supervisor: every worker slot is dead "
                 "— service lost\n");
            return kExitServiceLost;
        }
        bool stop =
            options_.stopFlag != nullptr && *options_.stopFlag != 0;
        if (!stop && options_.drainAfterMs > 0 &&
            now - started >=
                std::chrono::milliseconds(options_.drainAfterMs))
            stop = true;
        if (stop) {
            int rc = rollingDrain();
            logf(options_.verbose,
                 "macs serve: supervisor: drained %s\n",
                 rc == kExitClean ? "cleanly" : "with failures");
            return rc;
        }
    }
}

} // namespace macs::supervisor
