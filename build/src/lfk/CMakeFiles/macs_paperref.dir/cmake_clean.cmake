file(REMOVE_RECURSE
  "CMakeFiles/macs_paperref.dir/paper_reference.cc.o"
  "CMakeFiles/macs_paperref.dir/paper_reference.cc.o.d"
  "libmacs_paperref.a"
  "libmacs_paperref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_paperref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
