#include "support/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace macs {

std::string_view
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string>
split(std::string_view s, char sep, bool trim_fields, bool keep_empty)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t pos = s.find(sep, start);
        std::string_view field = (pos == std::string_view::npos)
                                     ? s.substr(start)
                                     : s.substr(start, pos - start);
        if (trim_fields)
            field = trim(field);
        if (keep_empty || !field.empty())
            out.emplace_back(field);
        if (pos == std::string_view::npos)
            break;
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        // vsnprintf writes the terminator into needed+1 bytes; data() of a
        // non-const string is writable through size() since C++11 and the
        // terminator slot is writable since C++17.
        std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                       args_copy);
    }
    va_end(args_copy);
    return out;
}

bool
parseInt(std::string_view s, long &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

bool
parseDouble(std::string_view s, double &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

} // namespace macs
