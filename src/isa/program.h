/**
 * @file
 * Program container: an instruction sequence with labels and data
 * symbols, plus queries used by the analysis layers (inner-loop
 * extraction, validation, pretty printing).
 */

#ifndef MACS_ISA_PROGRAM_H
#define MACS_ISA_PROGRAM_H

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace macs::isa {

/** A named data region of @p words 64-bit words in simulated memory. */
struct DataSymbol
{
    std::string name;
    size_t words = 0;
};

/**
 * An assembled program.
 *
 * Labels attach to the instruction index that follows them. Data
 * symbols name arrays; the simulator lays them out contiguously in
 * declaration order (8-byte words) and resolves MemRef::symbol against
 * that layout.
 */
class Program
{
  public:
    Program() = default;

    /** Append an instruction; returns its index. */
    size_t append(Instruction instr);

    /** Attach @p name to the next appended instruction. */
    void label(const std::string &name);

    /** Declare a data region. Re-declaring an existing name is fatal. */
    void defineData(const std::string &name, size_t words);

    const std::vector<Instruction> &instrs() const { return instrs_; }
    std::vector<Instruction> &instrs() { return instrs_; }
    const std::vector<DataSymbol> &dataSymbols() const { return symbols_; }
    const std::map<std::string, size_t> &labels() const { return labels_; }

    bool empty() const { return instrs_.empty(); }
    size_t size() const { return instrs_.size(); }

    /** Index of @p name; fatal() when the label is unknown. */
    size_t labelIndex(const std::string &name) const;

    /** True when @p name labels an instruction. */
    bool hasLabel(const std::string &name) const;

    /** True when @p name names a data region. */
    bool hasDataSymbol(const std::string &name) const;

    /**
     * Instructions of the innermost loop body.
     *
     * The innermost loop is identified as the last backward conditional
     * branch in the program together with its target: the body is
     * [target, branch] inclusive. fatal() when the program has no
     * backward conditional branch.
     */
    std::span<const Instruction> innerLoop() const;

    /** Like innerLoop(), but returns {begin, end} instruction indices
     *  (end exclusive). */
    std::pair<size_t, size_t> innerLoopRange() const;

    /**
     * Check structural invariants: branch targets resolve, memory
     * symbols are declared, register operand classes match opcode
     * signatures. fatal() with a description on the first violation.
     */
    void validate() const;

    /** Render the program as assembly text. */
    std::string toString() const;

  private:
    std::vector<Instruction> instrs_;
    std::map<std::string, size_t> labels_;
    std::vector<DataSymbol> symbols_;
};

} // namespace macs::isa

#endif // MACS_ISA_PROGRAM_H
