/**
 * @file
 * Robustness tests (docs/ROBUSTNESS.md): deterministic fault
 * injection, the retry/deadline behavior of the hardened BatchEngine,
 * checkpoint/resume including corrupt- and torn-record recovery, and
 * the multi-error diagnostics corpus (tests/corpus/bad/).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/loop_parser.h"
#include "faults/fault_injection.h"
#include "isa/parser.h"
#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "obs/metrics.h"
#include "pipeline/checkpoint.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "support/diag.h"

#ifndef MACS_CORPUS_DIR
#define MACS_CORPUS_DIR "tests/corpus"
#endif

namespace macs {
namespace {

using faults::FaultInjector;
using faults::FaultPlan;
using faults::Site;
using pipeline::BatchEngine;
using pipeline::BatchJob;
using pipeline::BatchResult;
using pipeline::CacheKey;
using pipeline::CheckpointJournal;
using pipeline::EngineOptions;
using pipeline::ErrorKind;

BatchJob
jobFor(int id)
{
    lfk::Kernel k = lfk::makeKernel(id);
    BatchJob job;
    job.label = k.name;
    job.kernel = lfk::toKernelCase(k);
    job.config = machine::MachineConfig::convexC240();
    return job;
}

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Blank `#` comments to end of line, preserving line/col positions
 *  (mirrors what the CLI does before handing .loop text to the
 *  parser; the DSL itself has no comment syntax). */
std::string
stripLoopComments(std::string text)
{
    bool in_comment = false;
    for (char &c : text) {
        if (c == '\n')
            in_comment = false;
        else if (c == '#')
            in_comment = true;
        if (in_comment)
            c = ' ';
    }
    return text;
}

double
counterValue(obs::Registry &reg, const std::string &name,
             const obs::Labels &labels)
{
    for (const obs::Sample &s : reg.snapshot())
        if (s.name == name && s.labels == labels)
            return s.value;
    return 0.0;
}

std::string
tempPath(const std::string &name)
{
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

// ---------------------------------------------------------------------
// Fault-injection decisions.
// ---------------------------------------------------------------------

TEST(FaultsTest, DecisionIsDeterministicAndProbabilityShaped)
{
    // Pure function of (seed, site, key): repeated calls agree.
    for (uint64_t key = 0; key < 64; ++key)
        EXPECT_EQ(faults::faultDecision(42, Site::WorkerException, key, 0.5),
                  faults::faultDecision(42, Site::WorkerException, key, 0.5));

    // Degenerate probabilities.
    int always = 0, never = 0;
    for (uint64_t key = 0; key < 256; ++key) {
        never += faults::faultDecision(7, Site::AllocFail, key, 0.0);
        always += faults::faultDecision(7, Site::AllocFail, key, 1.0);
    }
    EXPECT_EQ(never, 0);
    EXPECT_EQ(always, 256);

    // Frequency tracks the probability (loose bounds; the decision is
    // deterministic, so this can never flake).
    int fired = 0;
    for (uint64_t key = 0; key < 10000; ++key)
        fired += faults::faultDecision(1234, Site::ComputeDelay, key, 0.3);
    EXPECT_GT(fired, 2000);
    EXPECT_LT(fired, 4000);

    // Different sites decorrelate even with equal seed and key.
    int diverged = 0;
    for (uint64_t key = 0; key < 256; ++key)
        diverged +=
            faults::faultDecision(9, Site::AllocFail, key, 0.5) !=
            faults::faultDecision(9, Site::IoWriteFail, key, 0.5);
    EXPECT_GT(diverged, 0);
}

TEST(FaultsTest, PlanParsesAndDescribesRoundTrip)
{
    FaultPlan plan =
        FaultPlan::parse("worker-exception:0.25:42,compute-delay:1:7:25");
    ASSERT_NE(plan.spec(Site::WorkerException), nullptr);
    EXPECT_DOUBLE_EQ(plan.spec(Site::WorkerException)->probability, 0.25);
    EXPECT_EQ(plan.spec(Site::WorkerException)->seed, 42u);
    ASSERT_NE(plan.spec(Site::ComputeDelay), nullptr);
    EXPECT_DOUBLE_EQ(plan.spec(Site::ComputeDelay)->param, 25.0);
    EXPECT_EQ(plan.spec(Site::AllocFail), nullptr);

    FaultPlan again = FaultPlan::parse(plan.describe());
    EXPECT_EQ(again.describe(), plan.describe());
}

TEST(FaultsTest, PlanParseReportsEveryErrorAndKeepsGoodEntries)
{
    Diagnostics diags("MACS_FAULTS");
    FaultPlan plan = FaultPlan::parse(
        "bogus-site:0.5:1,worker-exception:1.5:3,alloc,compute-delay:1:7",
        diags);

    // Every malformed entry is reported (unknown site, probability out
    // of range, missing fields)...
    EXPECT_GE(diags.errorCount(), 3u) << diags.render();
    // ...and skipped, while the well-formed entry still takes effect.
    EXPECT_EQ(plan.spec(Site::WorkerException), nullptr);
    EXPECT_EQ(plan.spec(Site::AllocFail), nullptr);
    ASSERT_NE(plan.spec(Site::ComputeDelay), nullptr);
    EXPECT_DOUBLE_EQ(plan.spec(Site::ComputeDelay)->probability, 1.0);
}

TEST(FaultsTest, InjectorPublishesEvaluatedAndFiredCounters)
{
    obs::Registry reg;
    FaultInjector inj(FaultPlan::parse("worker-exception:1:1"), &reg);
    EXPECT_TRUE(inj.shouldFire(Site::WorkerException, 1));
    EXPECT_TRUE(inj.shouldFire(Site::WorkerException, 2));
    EXPECT_FALSE(inj.shouldFire(Site::AllocFail, 1)); // not in the plan

    EXPECT_DOUBLE_EQ(
        counterValue(reg, "macs_faults_evaluated_total",
                     obs::Labels{{"site", "worker-exception"}}),
        2.0);
    EXPECT_DOUBLE_EQ(counterValue(reg, "macs_faults_fired_total",
                                  obs::Labels{{"site", "worker-exception"}}),
                     2.0);
}

// ---------------------------------------------------------------------
// Engine retry / deadline behavior.
// ---------------------------------------------------------------------

TEST(FaultsTest, TransientFaultIsRetriedThenSucceeds)
{
    BatchJob job = jobFor(1);
    CacheKey key = BatchEngine::keyOf(job);

    // Find a seed whose plan fires on the first attempt of this job
    // but not on the retry. The decision is pure, so the search result
    // is stable and the engine behavior is fully predictable.
    uint64_t seed = 0;
    for (uint64_t s = 1; s < 50000 && seed == 0; ++s) {
        bool first = faults::faultDecision(
            s, Site::WorkerException, BatchEngine::attemptKey(key, 0), 0.6);
        bool second = faults::faultDecision(
            s, Site::WorkerException, BatchEngine::attemptKey(key, 1), 0.6);
        if (first && !second)
            seed = s;
    }
    ASSERT_NE(seed, 0u);

    obs::Registry reg;
    FaultPlan plan;
    plan.add({Site::WorkerException, 0.6, seed, 0.0});
    FaultInjector inj(plan, &reg);

    EngineOptions opt;
    opt.workers = 2;
    opt.maxRetries = 2;
    opt.retryBackoffUs = 0.0;
    opt.faults = &inj;
    opt.metrics = &reg;
    BatchEngine engine(opt);
    BatchResult r = engine.run({job});

    ASSERT_TRUE(r.results[0].ok()) << r.results[0].error;
    EXPECT_EQ(r.results[0].timing.attempts, 2);
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_TRUE(r.errors.empty());
    EXPECT_DOUBLE_EQ(
        counterValue(reg, "macs_retry_attempts_total", obs::Labels{}), 1.0);
}

TEST(FaultsTest, ExhaustedRetriesAreReportedTransient)
{
    obs::Registry reg;
    FaultInjector inj(FaultPlan::parse("worker-exception:1:1"), &reg);

    EngineOptions opt;
    opt.workers = 1;
    opt.maxRetries = 1;
    opt.retryBackoffUs = 0.0;
    opt.faults = &inj;
    opt.metrics = &reg;
    BatchEngine engine(opt);
    BatchResult r = engine.run({jobFor(1)});

    ASSERT_FALSE(r.results[0].ok());
    EXPECT_EQ(r.results[0].errorKind, ErrorKind::Transient);
    EXPECT_EQ(r.results[0].timing.attempts, 2); // initial + 1 retry
    EXPECT_NE(r.results[0].error.find("injected worker exception"),
              std::string::npos)
        << r.results[0].error;

    // Error manifest and the 0/2/3 exit-code contract.
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_EQ(r.errors[0].jobIndex, 0u);
    EXPECT_EQ(r.errors[0].kind, ErrorKind::Transient);
    EXPECT_EQ(r.errors[0].attempts, 2);
    EXPECT_EQ(r.exitCode(), 3); // every job failed

    EXPECT_DOUBLE_EQ(
        counterValue(reg, "macs_retry_exhausted_total", obs::Labels{}), 1.0);
}

TEST(FaultsTest, PermanentErrorIsNeverRetried)
{
    BatchJob bad = jobFor(1);
    bad.kernel.points = 0; // analyzeKernel() rejects this (fatal)

    obs::Registry reg;
    EngineOptions opt;
    opt.workers = 1;
    opt.maxRetries = 3;
    opt.retryBackoffUs = 0.0;
    opt.metrics = &reg;
    BatchEngine engine(opt);
    BatchResult r = engine.run({bad, jobFor(3)});

    ASSERT_FALSE(r.results[0].ok());
    EXPECT_EQ(r.results[0].errorKind, ErrorKind::Permanent);
    EXPECT_EQ(r.results[0].timing.attempts, 1); // no retry
    EXPECT_TRUE(r.results[1].ok());
    EXPECT_EQ(r.exitCode(), 2); // partial failure
    EXPECT_DOUBLE_EQ(
        counterValue(reg, "macs_retry_attempts_total", obs::Labels{}), 0.0);
}

TEST(FaultsTest, InjectedAllocFailureIsTransient)
{
    obs::Registry reg;
    FaultInjector inj(FaultPlan::parse("alloc:1:3"), &reg);
    EngineOptions opt;
    opt.workers = 1;
    opt.maxRetries = 0;
    opt.faults = &inj;
    opt.metrics = &reg;
    BatchEngine engine(opt);
    BatchResult r = engine.run({jobFor(1)});
    ASSERT_FALSE(r.results[0].ok());
    EXPECT_EQ(r.results[0].errorKind, ErrorKind::Transient);
    EXPECT_NE(r.results[0].error.find("alloc"), std::string::npos)
        << r.results[0].error;
}

TEST(FaultsTest, DeadlineExpiryIsReportedAsTimeout)
{
    obs::Registry reg;
    // Every compute sleeps 500 ms; the job deadline is 25 ms.
    FaultInjector inj(FaultPlan::parse("compute-delay:1:5:500"), &reg);
    EngineOptions opt;
    opt.workers = 2;
    opt.maxRetries = 0;
    opt.jobTimeoutMs = 25.0;
    opt.faults = &inj;
    opt.metrics = &reg;
    {
        BatchEngine engine(opt);
        BatchResult r = engine.run({jobFor(1)});
        ASSERT_FALSE(r.results[0].ok());
        EXPECT_EQ(r.results[0].errorKind, ErrorKind::Timeout);
        EXPECT_NE(r.results[0].error.find("deadline"), std::string::npos)
            << r.results[0].error;
        ASSERT_EQ(r.errors.size(), 1u);
        EXPECT_EQ(r.errors[0].kind, ErrorKind::Timeout);
        EXPECT_EQ(r.exitCode(), 3);
        EXPECT_DOUBLE_EQ(
            counterValue(reg, "macs_retry_timeouts_total", obs::Labels{}),
            1.0);
    } // engine destruction must join the reaped worker cleanly
}

// ---------------------------------------------------------------------
// Checkpoint journal.
// ---------------------------------------------------------------------

TEST(FaultsTest, AnalysisSerializationRoundTripsByteExactly)
{
    BatchEngine engine(EngineOptions{.workers = 1});
    BatchResult r = engine.run({jobFor(7)});
    ASSERT_TRUE(r.results[0].ok());
    const model::KernelAnalysis &a = *r.results[0].analysis;

    std::string text = pipeline::serializeAnalysis(a);
    model::KernelAnalysis back;
    ASSERT_TRUE(pipeline::deserializeAnalysis(text, back));
    EXPECT_EQ(pipeline::serializeAnalysis(back), text);
    EXPECT_EQ(back.name, a.name);
    EXPECT_EQ(back.macs.cpl, a.macs.cpl);
    EXPECT_EQ(back.tP, a.tP);

    // Malformed payloads are rejected, not mis-parsed.
    EXPECT_FALSE(pipeline::deserializeAnalysis("", back));
    EXPECT_FALSE(pipeline::deserializeAnalysis("not-a-checkpoint", back));
    EXPECT_FALSE(pipeline::deserializeAnalysis(
        text.substr(0, text.size() / 2), back));
    EXPECT_FALSE(pipeline::deserializeAnalysis(text + "trailing", back));
}

TEST(FaultsTest, CheckpointResumeSkipsCompletedJobs)
{
    std::string path = tempPath("macs_faults_resume.journal");
    obs::Registry reg;

    // First run: compute two jobs and journal them.
    {
        CheckpointJournal journal(path, &reg);
        EXPECT_EQ(journal.open().loaded, 0u);
        EngineOptions opt;
        opt.workers = 2;
        opt.metrics = &reg;
        opt.checkpoint = &journal;
        BatchEngine engine(opt);
        BatchResult r = engine.run({jobFor(1), jobFor(7)});
        ASSERT_EQ(r.exitCode(), 0);
        EXPECT_EQ(journal.entryCount(), 2u);
    }

    // Second run, fresh engine: the journaled jobs are cache hits and
    // only the new job is computed.
    CheckpointJournal journal(path, &reg);
    CheckpointJournal::LoadStats stats = journal.open();
    EXPECT_EQ(stats.loaded, 2u);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_EQ(stats.torn, 0u);

    EngineOptions opt;
    opt.workers = 2;
    opt.metrics = &reg;
    opt.checkpoint = &journal;
    BatchEngine engine(opt);
    std::vector<BatchJob> jobs = {jobFor(1), jobFor(7), jobFor(12)};
    BatchResult resumed = engine.run(jobs);
    ASSERT_EQ(resumed.exitCode(), 0);
    EXPECT_EQ(resumed.stats.cacheHits, 2u);
    EXPECT_EQ(resumed.stats.cacheMisses, 1u);
    EXPECT_EQ(journal.entryCount(), 3u);

    // The resumed result set is byte-identical to a clean computation.
    BatchEngine clean(EngineOptions{.workers = 2, .metrics = &reg});
    BatchResult fresh = clean.run(jobs);
    EXPECT_EQ(pipeline::renderBatchJson(resumed, false),
              pipeline::renderBatchJson(fresh, false));

    std::remove(path.c_str());
}

TEST(FaultsTest, CorruptRecordIsDetectedAndSkipped)
{
    std::string path = tempPath("macs_faults_corrupt.journal");
    obs::Registry reg;
    {
        CheckpointJournal journal(path, &reg);
        journal.open();
        EngineOptions opt;
        opt.workers = 1;
        opt.metrics = &reg;
        opt.checkpoint = &journal;
        BatchEngine engine(opt);
        ASSERT_EQ(engine.run({jobFor(1), jobFor(7)}).exitCode(), 0);
    }

    // Flip one byte inside the last payload.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        auto size = static_cast<long>(f.tellg());
        ASSERT_GT(size, 10);
        f.seekp(size - 4);
        f.put('!');
    }

    CheckpointJournal journal(path, &reg);
    CheckpointJournal::LoadStats stats = journal.open();
    EXPECT_EQ(stats.loaded, 1u);
    EXPECT_GE(stats.corrupt, 1u);
    EXPECT_EQ(journal.entryCount(), 1u);

    // The engine recomputes the lost job and the batch still succeeds.
    EngineOptions opt;
    opt.workers = 1;
    opt.metrics = &reg;
    opt.checkpoint = &journal;
    BatchEngine engine(opt);
    BatchResult r = engine.run({jobFor(1), jobFor(7)});
    EXPECT_EQ(r.exitCode(), 0);
    EXPECT_EQ(r.stats.cacheHits + r.stats.cacheMisses, 2u);
    EXPECT_EQ(r.stats.cacheMisses, 1u);
    std::remove(path.c_str());
}

TEST(FaultsTest, TornTailRecordIsSkipped)
{
    std::string path = tempPath("macs_faults_torn.journal");
    obs::Registry reg;
    {
        CheckpointJournal journal(path, &reg);
        journal.open();
        EngineOptions opt;
        opt.workers = 1;
        opt.metrics = &reg;
        opt.checkpoint = &journal;
        BatchEngine engine(opt);
        ASSERT_EQ(engine.run({jobFor(1), jobFor(7)}).exitCode(), 0);
    }

    // Simulate a kill mid-append: drop the last 40 bytes.
    std::string data = readFileOrDie(path);
    ASSERT_GT(data.size(), 40u);
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(data.data(), static_cast<long>(data.size() - 40));
    }

    CheckpointJournal journal(path, &reg);
    CheckpointJournal::LoadStats stats = journal.open();
    EXPECT_EQ(stats.loaded, 1u);
    EXPECT_EQ(stats.torn, 1u);
    EXPECT_EQ(stats.corrupt, 0u);
    std::remove(path.c_str());
}

TEST(FaultsTest, InjectedRecordCorruptionIsCaughtOnReload)
{
    std::string path = tempPath("macs_faults_inj_corrupt.journal");
    obs::Registry reg;
    FaultInjector inj(FaultPlan::parse("cache-corrupt:1:13"), &reg);
    {
        CheckpointJournal journal(path, &reg, &inj);
        journal.open();
        EngineOptions opt;
        opt.workers = 1;
        opt.metrics = &reg;
        opt.faults = &inj;
        opt.checkpoint = &journal;
        BatchEngine engine(opt);
        // The run itself succeeds; only the journal is silently bad.
        ASSERT_EQ(engine.run({jobFor(1), jobFor(7)}).exitCode(), 0);
    }

    CheckpointJournal verify(path, &reg); // no injector: honest reload
    CheckpointJournal::LoadStats stats = verify.open();
    EXPECT_EQ(stats.loaded, 0u);
    EXPECT_EQ(stats.corrupt, 2u);
    std::remove(path.c_str());
}

TEST(FaultsTest, AppendFailureDegradesGracefully)
{
    std::string path = tempPath("macs_faults_appendfail.journal");
    obs::Registry reg;
    FaultInjector inj(FaultPlan::parse("io-write-fail:1:11"), &reg);
    {
        CheckpointJournal journal(path, &reg, &inj);
        journal.open();
        EngineOptions opt;
        opt.workers = 1;
        opt.metrics = &reg;
        opt.faults = &inj;
        opt.checkpoint = &journal;
        BatchEngine engine(opt);
        // A broken journal must never fail the batch.
        BatchResult r = engine.run({jobFor(1), jobFor(7)});
        EXPECT_EQ(r.exitCode(), 0);
    }
    EXPECT_DOUBLE_EQ(counterValue(reg, "macs_checkpoint_records_total",
                                  obs::Labels{{"event", "append_failed"}}),
                     2.0);

    CheckpointJournal verify(path, &reg);
    EXPECT_EQ(verify.open().loaded, 0u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Multi-error diagnostics (tests/corpus/bad/).
// ---------------------------------------------------------------------

TEST(FaultsTest, LoopCorpusReportsEveryError)
{
    const std::string path =
        std::string(MACS_CORPUS_DIR) + "/bad/multi_error.loop";
    std::string text = stripLoopComments(readFileOrDie(path));

    Diagnostics diags;
    diags.setSource(text, "multi_error.loop");
    compiler::parseLoop(text, diags);

    std::string report = diags.render();
    EXPECT_GE(diags.errorCount(), 3u) << report;
    EXPECT_NE(report.find("expected ')' near '='"), std::string::npos)
        << report;
    EXPECT_NE(report.find("index variable 'j' is not the loop "
                          "variable 'k'"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("unexpected character '$'"), std::string::npos)
        << report;
    // Positions and snippets are attached.
    EXPECT_NE(report.find("multi_error.loop:8:"), std::string::npos)
        << report;
    EXPECT_NE(report.find('^'), std::string::npos) << report;

    EXPECT_THROW(diags.throwIfErrors(), DiagnosticError);
    EXPECT_THROW(diags.throwIfErrors(), FatalError); // legacy contract
}

TEST(FaultsTest, LoopCorpusBadNumbersAndStride)
{
    const std::string path =
        std::string(MACS_CORPUS_DIR) + "/bad/bad_numbers.loop";
    std::string text = stripLoopComments(readFileOrDie(path));

    Diagnostics diags;
    diags.setSource(text, "bad_numbers.loop");
    compiler::parseLoop(text, diags);

    std::string report = diags.render();
    EXPECT_GE(diags.errorCount(), 3u) << report;
    EXPECT_NE(report.find("stride must be nonzero"), std::string::npos)
        << report;
    EXPECT_NE(report.find("bad number '1.2.3'"), std::string::npos)
        << report;
    EXPECT_NE(report.find("index variable 'j' is not the loop "
                          "variable 'i'"),
              std::string::npos)
        << report;
}

TEST(FaultsTest, AsmCorpusReportsEveryError)
{
    const std::string path =
        std::string(MACS_CORPUS_DIR) + "/bad/multi_error.s";
    std::string text = readFileOrDie(path);

    Diagnostics diags;
    diags.setSource(text, "multi_error.s");
    isa::assemble(text, diags);

    std::string report = diags.render();
    EXPECT_GE(diags.errorCount(), 3u) << report;
    EXPECT_NE(report.find(".comm needs name,words"), std::string::npos)
        << report;
    EXPECT_NE(report.find("unknown mnemonic 'frobnicate'"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("needs mem,reg"), std::string::npos) << report;
}

TEST(FaultsTest, DiagnosticsCascadeIsCapped)
{
    Diagnostics diags;
    for (int i = 0; i < 100; ++i)
        diags.error(detail::concat("error #", i));
    EXPECT_TRUE(diags.atErrorLimit());
    EXPECT_EQ(diags.errorCount(), diags.maxErrors);
    EXPECT_NE(diags.render().find("further diagnostics suppressed"),
              std::string::npos);
    // maxErrors errors + exactly one suppression note.
    EXPECT_EQ(diags.entries().size(), diags.maxErrors + 1);
}

} // namespace
} // namespace macs
