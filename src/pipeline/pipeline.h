/**
 * @file
 * BatchEngine — the parallel batch-analysis pipeline.
 *
 * Takes a set of BatchJobs and evaluates the full MACS hierarchy
 * (bounds + simulated full/A/X runs, model::analyzeKernel) for each
 * across a fixed-size worker thread pool, memoizing results in an
 * AnalysisCache keyed on (program hash, machine hash, options hash).
 *
 * Guarantees (see docs/PIPELINE.md for the full contract):
 *  - DETERMINISM: results are returned in submission order and every
 *    analysis value is a pure function of the job content, so the
 *    result set — and any report rendered from it without timing
 *    sections — is byte-identical for any worker count, including 1.
 *  - SINGLE COMPUTATION: duplicate jobs (same cache key) are computed
 *    once per engine lifetime; later submissions are cache hits, also
 *    across successive run() calls on the same engine.
 *  - ISOLATION OF FAILURE: a failing job (fatal()/panic() from the
 *    analysis stack) is reported in its JobResult::error; other jobs
 *    are unaffected.
 *
 * Perf counters: each JobResult carries queue wait / compute time /
 * cache hit, and BatchResult::stats aggregates them. These are
 * scheduling-dependent and excluded from deterministic report output.
 */

#ifndef MACS_PIPELINE_PIPELINE_H
#define MACS_PIPELINE_PIPELINE_H

#include <cstddef>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "pipeline/cache.h"
#include "pipeline/job.h"
#include "pipeline/thread_pool.h"

namespace macs::pipeline {

/** Engine construction options. */
struct EngineOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    size_t workers = 0;
    /** Disable memoization (every job recomputes). For baselines. */
    bool useCache = true;
    /**
     * Metrics registry the engine publishes `macs_pipeline_*` series
     * to after every run() (queue wait, compute time, cache hit/miss,
     * worker utilization — see docs/OBSERVABILITY.md). nullptr means
     * obs::Registry::global(); tests pass a private registry. These
     * are scheduling-dependent observability data and never feed the
     * deterministic reports.
     */
    obs::Registry *metrics = nullptr;
};

class BatchEngine
{
  public:
    explicit BatchEngine(EngineOptions options = {});
    ~BatchEngine();

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;

    /**
     * Run every job and return results in submission order. May be
     * called repeatedly; the cache persists across calls. Empty job
     * sets return immediately.
     */
    BatchResult run(const std::vector<BatchJob> &jobs);

    /** The memo cache (counters persist across run() calls). */
    const AnalysisCache &cache() const { return cache_; }

    size_t workerCount() const { return pool_.workerCount(); }

    /** Compute the memoization key of @p job (exposed for tests). */
    static CacheKey keyOf(const BatchJob &job);

  private:
    void runOne(const BatchJob &job, JobResult &out,
                double enqueue_us);
    void publishMetrics(const BatchResult &result) const;

    EngineOptions options_;
    ThreadPool pool_;
    AnalysisCache cache_;
};

/** Convenience: analyze the ten paper kernels on @p config. @{ */
std::vector<BatchJob>
paperJobSet(const machine::MachineConfig &config,
            const std::string &config_name = "baseline");
/** @} */

} // namespace macs::pipeline

#endif // MACS_PIPELINE_PIPELINE_H
