# Empty dependencies file for decompose_data.
# This may be replaced when dependencies are built.
