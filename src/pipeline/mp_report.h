/**
 * @file
 * Shared front end for the multi-CPU engines (docs/MULTICPU.md):
 * `macs mp` and the server's POST /v1/multicpu both run an MpRequest
 * through here so the CLI and HTTP answers are byte-identical.
 *
 * Two engines answer the same question ("what happens when this LFK
 * shares the banks with its P-1 neighbours?"):
 *  - coupled: the cycle-coupled simulator (sim/mp/runCoupled) — every
 *    delay emerges from shared bank reservations;
 *  - analytic: the contention fixed point (sim/runMultiCpu) — the
 *    cheap calibrated tier, cross-checked against coupled runs.
 *
 * Both renderers are deterministic: every number is a pure function
 * of the request (the coupled engine commits accesses in a global
 * (time, cpu) order), so renderMpJson() is byte-identical for any
 * worker count and safe to memo-cache under mpCacheKey().
 */

#ifndef MACS_PIPELINE_MP_REPORT_H
#define MACS_PIPELINE_MP_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "lfk/mp_workload.h"
#include "machine/machine_config.h"
#include "macs/contention_level.h"

namespace macs::pipeline {

/** Which multi-CPU engine answers the request. */
enum class MpEngine
{
    Coupled,  ///< cycle-coupled shared banks (sim/mp/)
    Analytic, ///< calibrated contention fixed point (sim/multi_cpu.h)
};

/** Canonical engine name ("coupled" / "analytic"). */
const char *mpEngineName(MpEngine engine);

/** Parse an engine name; false (out untouched) on anything else. */
bool parseMpEngine(const std::string &text, MpEngine &out);

/** One multi-CPU run request (CLI flags or HTTP body fields). */
struct MpRequest
{
    int kernelId = 1;
    lfk::MpMix mix = lfk::MpMix::Independent;
    int cpus = 0; ///< 0 = all of the machine's CPUs
    MpEngine engine = MpEngine::Coupled;
    machine::MachineConfig config = machine::MachineConfig::convexC240();
    std::string machineName = "c240";
};

/** One CPU's outcome inside the fleet. */
struct MpCpuRow
{
    std::string label;
    double cycles = 0.0;
    double degradation = 0.0;  ///< cycles / solo - 1
    double perAccessNs = 0.0;  ///< port-occupancy per access
    uint64_t collisions = 0;   ///< coupled engine only
    double foreignDelayCycles = 0.0; ///< coupled engine only
};

/** The full analysis a request produces. */
struct MpAnalysis
{
    int kernelId = 1;
    std::string kernel; ///< "LFK1", ...
    lfk::MpMix mix = lfk::MpMix::Independent;
    int cpus = 1;
    MpEngine engine = MpEngine::Coupled;
    std::string machineName;
    double clockNs = 0.0;

    double soloCycles = 0.0;     ///< one CPU, uncontended
    double makespanCycles = 0.0; ///< last CPU drained (global clock)
    double meanCycles = 0.0;
    double meanDegradation = 0.0;
    double meanPerAccessNs = 0.0;
    uint64_t collisions = 0;

    std::vector<MpCpuRow> cpuRows;

    /**
     * The MACS C level for this fleet: t_MACS^C with the calibrated
     * factor and the measured-under-contention time fed back as t_C.
     * Absent (hasLevel false) for the strip mix — a split kernel is
     * not P competing instances of the bound's workload.
     */
    bool hasLevel = false;
    model::ContentionLevel level;
};

/**
 * Run @p request through the selected engine. fatal() on an invalid
 * CPU count for the machine, on strip-mining a hand-assembled kernel,
 * and on `strip` under the analytic engine (the fixed point has no
 * notion of a split kernel); unknown kernel ids panic in makeKernel.
 */
MpAnalysis runMpAnalysis(const MpRequest &request);

/**
 * Memo-cache key: engine, kernel, mix, CPU count, and the machine's
 * contentHash() — two machines differing in any timing constant can
 * never alias an entry (the engine tier is part of the key, so a
 * coupled result is never served for an analytic request).
 */
std::string mpCacheKey(const MpRequest &request);

/** Render as JSON (schema "macs-mp-v1"), deterministic bytes. */
std::string renderMpJson(const MpAnalysis &analysis);

/** Render as a human-readable table + C-level block. */
std::string renderMpText(const MpAnalysis &analysis);

} // namespace macs::pipeline

#endif // MACS_PIPELINE_MP_REPORT_H
