/**
 * @file
 * Two-pass assembler for the textual Convex-style assembly used in the
 * paper's listings.
 *
 * Accepted syntax (one item per line, ';' starts a comment):
 *
 *   .comm name,words          declare a data region of 64-bit words
 *   label:                    attach a label (may share a line with an
 *                             instruction)
 *   mnemonic op1,op2,...      instruction
 *
 * Operands:
 *   v0..v7, s0..s7, a0..a7, VL    registers
 *   #123, #-4, #0x10              immediates
 *   sym+off(aN), off(aN), sym     memory references (byte offsets)
 *
 * The paper's unsuffixed scalar forms ("add #1024,a5") are accepted as
 * aliases of add.w/sub.w/mul.w/ld.w/st.w; "ld.l"/"st.l" with a scalar
 * or address register operand are likewise treated as scalar accesses.
 */

#ifndef MACS_ISA_PARSER_H
#define MACS_ISA_PARSER_H

#include <string>
#include <string_view>

#include "isa/program.h"
#include "support/diag.h"

namespace macs::isa {

/**
 * Assemble @p text into a Program, recovering at instruction (line)
 * boundaries: every syntax error is recorded in @p diags with its
 * line number and source snippet, the offending line is skipped, and
 * assembly continues. The returned program is partial (and NOT
 * validate()d) when diags.hasErrors(); callers must check.
 */
Program assemble(std::string_view text, Diagnostics &diags);

/**
 * Convenience wrapper: assemble and throw DiagnosticError (a
 * FatalError carrying ALL collected errors, not just the first) on
 * any syntax error. The returned program has been validate()d.
 */
Program assemble(std::string_view text);

/**
 * Parse a single memory operand ("sym+off(aN)").
 * @retval true on success
 */
bool parseMemRef(std::string_view text, MemRef &out);

} // namespace macs::isa

#endif // MACS_ISA_PARSER_H
