# Empty dependencies file for table5_ax.
# This may be replaced when dependencies are built.
