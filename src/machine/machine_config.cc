#include "machine/machine_config.h"

#include "support/hash.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::machine {

using isa::Opcode;

const VectorTiming &
MachineConfig::timing(Opcode op) const
{
    MACS_ASSERT(isa::isVectorOp(op), "timing() on non-vector opcode");
    auto it = vectorTiming.find(op);
    if (it != vectorTiming.end())
        return it->second;
    static const VectorTiming fallback{};
    return fallback;
}

void
MachineConfig::setTiming(Opcode op, const VectorTiming &t)
{
    MACS_ASSERT(isa::isVectorOp(op), "setTiming() on non-vector opcode");
    vectorTiming[op] = t;
}

MachineConfig
MachineConfig::convexC240()
{
    MachineConfig m;
    // Paper Table 1: Vector Instruction Execution Times (VL = 128).
    //                          X     Y     Z     B
    m.vectorTiming[Opcode::VLd] = {2, 10, 1.00, 2};
    m.vectorTiming[Opcode::VLdS] = {2, 10, 1.00, 2};
    m.vectorTiming[Opcode::VSt] = {2, 10, 1.00, 4};
    m.vectorTiming[Opcode::VStS] = {2, 10, 1.00, 4};
    m.vectorTiming[Opcode::VAdd] = {2, 10, 1.00, 1};
    m.vectorTiming[Opcode::VSub] = {2, 10, 1.00, 1};
    m.vectorTiming[Opcode::VMul] = {2, 12, 1.00, 1};
    // Divide: extended per-element time; may be masked by other work.
    m.vectorTiming[Opcode::VDiv] = {2, 72, 4.00, 21};
    // Reduction: Z between 1.39 and 1.43 in calibration; the paper sets
    // Z conservatively to 1.35 and B to 0 due to the uncertainty.
    m.vectorTiming[Opcode::VSum] = {2, 10, 1.35, 0};
    m.vectorTiming[Opcode::VNeg] = {2, 10, 1.00, 1};
    return m;
}

MachineConfig
MachineConfig::noBubbles()
{
    MachineConfig m = convexC240();
    for (auto &[op, t] : m.vectorTiming)
        t.bubble = 0.0;
    return m;
}

MachineConfig
MachineConfig::noRefresh()
{
    MachineConfig m = convexC240();
    m.memory.refreshEnabled = false;
    m.refreshPenaltyFactor = 1.0;
    return m;
}

MachineConfig
MachineConfig::noChaining()
{
    MachineConfig m = convexC240();
    m.chaining.chainingEnabled = false;
    return m;
}

MachineConfig
MachineConfig::noScalarCache()
{
    MachineConfig m = convexC240();
    m.scalarCache.enabled = false;
    return m;
}

MachineConfig
MachineConfig::variant(const std::string &name)
{
    if (name == "baseline")
        return convexC240();
    if (name == "no-bubbles")
        return noBubbles();
    if (name == "no-refresh")
        return noRefresh();
    if (name == "no-chaining")
        return noChaining();
    if (name == "no-scalar-cache")
        return noScalarCache();
    fatal("unknown machine variant '", name,
          "' (known: baseline, no-bubbles, no-refresh, no-chaining, "
          "no-scalar-cache)");
}

std::string
MachineConfig::fingerprint() const
{
    // Keep this exhaustive: every field that can change a bound or a
    // simulated cycle count must appear, otherwise the pipeline cache
    // could alias two distinct machines. Formatting uses %.17g so the
    // doubles round-trip exactly.
    std::string out;
    out += format("clock=%.17g vl=%d cpus=%d\n", clockMhz,
                  maxVectorLength, cpus);
    out += format("mem banks=%d busy=%d word=%d refp=%d refd=%d "
                  "refen=%d arb=%d\n",
                  memory.banks, memory.bankBusyCycles, memory.wordBytes,
                  memory.refreshPeriodCycles,
                  memory.refreshDurationCycles,
                  memory.refreshEnabled ? 1 : 0,
                  memory.arbitrationRestartCycles);
    out += format("chain en=%d rd=%d wr=%d enforce=%d smemsplit=%d "
                  "fpshared=%d\n",
                  chaining.chainingEnabled ? 1 : 0,
                  chaining.maxReadsPerPair, chaining.maxWritesPerPair,
                  chaining.enforcePairLimits ? 1 : 0,
                  chaining.scalarMemSplitsChimes ? 1 : 0,
                  chaining.fpAddMulShared ? 1 : 0);
    out += format("scalar issue=%d alu=%d ld=%d ldmiss=%d st=%d br=%d "
                  "viss=%d fp=%d fpdiv=%d\n",
                  scalar.issueCycles, scalar.aluLatency,
                  scalar.loadLatency, scalar.loadMissLatency,
                  scalar.storeCycles, scalar.branchResolveCycles,
                  scalar.vectorIssueCycles, scalar.fpLatency,
                  scalar.fpDivLatency);
    out += format("scache en=%d lines=%d words=%d\n",
                  scalarCache.enabled ? 1 : 0, scalarCache.lines,
                  scalarCache.lineWords);
    out += format("refresh pf=%.17g thr=%.17g\n", refreshPenaltyFactor,
                  refreshRunThresholdCycles);
    // std::map iterates in key order, so the listing is canonical.
    for (const auto &[op, t] : vectorTiming) {
        out += format("op %s x=%.17g y=%.17g z=%.17g b=%.17g\n",
                      isa::opcodeInfo(op).mnemonic, t.x, t.y, t.z,
                      t.bubble);
    }
    return out;
}

uint64_t
MachineConfig::contentHash() const
{
    // Hash every field fingerprint() serializes, directly, without
    // building the string: this runs once per job on the pipeline
    // hot path (~2us vs ~45us for format+hash of the full text).
    uint64_t h = fnv1a64("macs-machine-v1");
    h = hashValue(h, clockMhz);
    h = hashValue(h, maxVectorLength);
    h = hashValue(h, cpus);
    h = hashValue(h, memory.banks);
    h = hashValue(h, memory.bankBusyCycles);
    h = hashValue(h, memory.wordBytes);
    h = hashValue(h, memory.refreshPeriodCycles);
    h = hashValue(h, memory.refreshDurationCycles);
    h = hashValue(h, memory.refreshEnabled);
    h = hashValue(h, memory.arbitrationRestartCycles);
    h = hashValue(h, chaining.chainingEnabled);
    h = hashValue(h, chaining.maxReadsPerPair);
    h = hashValue(h, chaining.maxWritesPerPair);
    h = hashValue(h, chaining.enforcePairLimits);
    h = hashValue(h, chaining.scalarMemSplitsChimes);
    h = hashValue(h, chaining.fpAddMulShared);
    h = hashValue(h, scalar.issueCycles);
    h = hashValue(h, scalar.aluLatency);
    h = hashValue(h, scalar.loadLatency);
    h = hashValue(h, scalar.loadMissLatency);
    h = hashValue(h, scalar.storeCycles);
    h = hashValue(h, scalar.branchResolveCycles);
    h = hashValue(h, scalar.vectorIssueCycles);
    h = hashValue(h, scalar.fpLatency);
    h = hashValue(h, scalar.fpDivLatency);
    h = hashValue(h, scalarCache.enabled);
    h = hashValue(h, scalarCache.lines);
    h = hashValue(h, scalarCache.lineWords);
    h = hashValue(h, refreshPenaltyFactor);
    h = hashValue(h, refreshRunThresholdCycles);
    for (const auto &[op, t] : vectorTiming) { // ordered map
        h = hashValue(h, static_cast<int>(op));
        h = hashValue(h, t.x);
        h = hashValue(h, t.y);
        h = hashValue(h, t.z);
        h = hashValue(h, t.bubble);
    }
    return h;
}

MachineConfig
MachineConfig::withBanks(int banks)
{
    MACS_ASSERT(banks > 0, "bank count must be positive");
    MachineConfig m = convexC240();
    m.memory.banks = banks;
    return m;
}

} // namespace macs::machine
