/**
 * @file
 * The shared multi-CPU front end (pipeline/mp_report.h): request
 * validation, byte-deterministic rendering, cache-key separation of
 * every request axis, and the analytic-vs-coupled cross-check the
 * two-tier design promises.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "machine/machine_config.h"
#include "pipeline/mp_report.h"
#include "support/logging.h"

namespace macs::pipeline {
namespace {

MpRequest
request(int kernel, int cpus, lfk::MpMix mix, MpEngine engine)
{
    MpRequest r;
    r.kernelId = kernel;
    r.cpus = cpus;
    r.mix = mix;
    r.engine = engine;
    return r;
}

TEST(MpReport, EngineNamesRoundTrip)
{
    for (MpEngine e : {MpEngine::Coupled, MpEngine::Analytic}) {
        MpEngine parsed;
        ASSERT_TRUE(parseMpEngine(mpEngineName(e), parsed));
        EXPECT_EQ(parsed, e);
    }
    MpEngine out;
    EXPECT_FALSE(parseMpEngine("quantum", out));
    EXPECT_FALSE(parseMpEngine("", out));
}

TEST(MpReport, JsonIsByteDeterministic)
{
    MpRequest req = request(1, 4, lfk::MpMix::Independent,
                            MpEngine::Coupled);
    std::string a = renderMpJson(runMpAnalysis(req));
    std::string b = renderMpJson(runMpAnalysis(req));
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"schema\": \"macs-mp-v1\""),
              std::string::npos);
    EXPECT_NE(a.find("\"contention\""), std::string::npos);
}

TEST(MpReport, CacheKeySeparatesEveryAxis)
{
    std::set<std::string> keys;
    for (MpEngine e : {MpEngine::Coupled, MpEngine::Analytic})
        for (int cpus : {1, 2, 4})
            for (lfk::MpMix mix :
                 {lfk::MpMix::Independent, lfk::MpMix::LockStep})
                for (int kernel : {1, 3})
                    keys.insert(mpCacheKey(
                        request(kernel, cpus, mix, e)));
    EXPECT_EQ(keys.size(), 2u * 3u * 2u * 2u);

    // A machine differing in any constant gets its own key.
    MpRequest tweaked = request(1, 4, lfk::MpMix::Independent,
                                MpEngine::Coupled);
    tweaked.config.memory.banks = 64;
    EXPECT_NE(mpCacheKey(tweaked),
              mpCacheKey(request(1, 4, lfk::MpMix::Independent,
                                 MpEngine::Coupled)));

    // cpus = 0 means "all of them" and keys like the explicit count.
    MpRequest all = request(1, 0, lfk::MpMix::Independent,
                            MpEngine::Coupled);
    EXPECT_EQ(mpCacheKey(all),
              mpCacheKey(request(1, all.config.cpus,
                                 lfk::MpMix::Independent,
                                 MpEngine::Coupled)));
}

TEST(MpReport, AnalyticCrossChecksCoupled)
{
    // The two tiers answer the same question from opposite ends: the
    // fixed point from calibration, the coupled engine from emergent
    // bank conflicts. At the saturated 4-CPU point they must agree on
    // the shape: both degrade substantially and land within a few
    // percent of each other's per-access time.
    MpAnalysis coupled = runMpAnalysis(
        request(1, 4, lfk::MpMix::Independent, MpEngine::Coupled));
    MpAnalysis analytic = runMpAnalysis(
        request(1, 4, lfk::MpMix::Independent, MpEngine::Analytic));
    EXPECT_GT(coupled.meanDegradation, 0.2);
    EXPECT_GT(analytic.meanDegradation, 0.2);
    EXPECT_LT(std::abs(coupled.meanPerAccessNs -
                       analytic.meanPerAccessNs) /
                  coupled.meanPerAccessNs,
              0.10);
}

TEST(MpReport, OneCpuIsDegenerate)
{
    for (MpEngine e : {MpEngine::Coupled, MpEngine::Analytic}) {
        MpAnalysis a = runMpAnalysis(
            request(1, 1, lfk::MpMix::Independent, e));
        EXPECT_DOUBLE_EQ(a.meanCycles, a.soloCycles) << mpEngineName(e);
        EXPECT_DOUBLE_EQ(a.meanDegradation, 0.0) << mpEngineName(e);
        EXPECT_EQ(a.collisions, 0u) << mpEngineName(e);
        ASSERT_TRUE(a.hasLevel);
        EXPECT_DOUBLE_EQ(a.level.factor, 1.0) << mpEngineName(e);
    }
}

TEST(MpReport, StripHasNoContentionLevel)
{
    MpAnalysis a = runMpAnalysis(
        request(1, 4, lfk::MpMix::Strip, MpEngine::Coupled));
    EXPECT_FALSE(a.hasLevel);
    EXPECT_LT(a.makespanCycles, a.soloCycles) << "no speedup";
    std::string json = renderMpJson(a);
    EXPECT_EQ(json.find("\"contention\""), std::string::npos);
    EXPECT_NE(json.find("LFK1[1/4]"), std::string::npos);
}

TEST(MpReport, TextRenderMentionsTheStory)
{
    MpAnalysis a = runMpAnalysis(
        request(1, 4, lfk::MpMix::Independent, MpEngine::Coupled));
    std::string text = renderMpText(a);
    for (const char *needle :
         {"LFK1", "independent", "coupled", "ns/access", "collisions",
          "t_MACS^C"})
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(MpReport, InvalidRequestsFail)
{
    EXPECT_THROW(runMpAnalysis(request(1, 5, lfk::MpMix::Independent,
                                       MpEngine::Coupled)),
                 FatalError);
    EXPECT_THROW(runMpAnalysis(request(1, 4, lfk::MpMix::Strip,
                                       MpEngine::Analytic)),
                 FatalError);
    // LFK2 is hand-assembled: no remake, so no strip-mining.
    EXPECT_THROW(runMpAnalysis(request(2, 4, lfk::MpMix::Strip,
                                       MpEngine::Coupled)),
                 FatalError);
}

} // namespace
} // namespace macs::pipeline
