#include "macs/workload.h"

namespace macs::model {

WorkloadCounts
countAssembly(std::span<const isa::Instruction> body)
{
    WorkloadCounts c;
    for (const auto &in : body) {
        switch (in.info().kind) {
          case isa::OpKind::VectorLoad:
            ++c.loads;
            break;
          case isa::OpKind::VectorStore:
            ++c.stores;
            break;
          case isa::OpKind::VectorFpAdd:
            ++c.fAdd;
            break;
          case isa::OpKind::VectorFpMul:
            ++c.fMul;
            break;
          default:
            break;
        }
    }
    return c;
}

} // namespace macs::model
