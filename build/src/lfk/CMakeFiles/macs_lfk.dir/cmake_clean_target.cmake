file(REMOVE_RECURSE
  "libmacs_lfk.a"
)
