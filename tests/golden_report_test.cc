/**
 * @file
 * Golden-file regression tests for the batch pipeline reporters.
 *
 * The canonical `macs batch` JSON and markdown outputs for LFK 1, 7
 * and 12 are checked into tests/golden/ and compared byte-for-byte
 * against freshly rendered reports — at several worker counts, which
 * simultaneously pins the determinism guarantee (report bytes must
 * not depend on scheduling).
 *
 * To regenerate after an intentional model change:
 *     UPDATE_GOLDEN=1 ./build/tests/golden_report_test
 * then review the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "machine/machine_file.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"

#ifndef MACS_GOLDEN_DIR
#error "MACS_GOLDEN_DIR must be defined by the build"
#endif

namespace macs::pipeline {
namespace {

const int kGoldenKernels[] = {1, 7, 12};

std::string
goldenPath(const std::string &name)
{
    return std::string(MACS_GOLDEN_DIR) + "/" + name;
}

bool
updateRequested()
{
    const char *env = std::getenv("UPDATE_GOLDEN");
    return env != nullptr && env[0] != '\0' &&
           std::string(env) != "0";
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << content;
}

std::vector<BatchJob>
goldenJobs(machine::MachineConfig cfg =
               machine::MachineConfig::convexC240())
{
    std::vector<BatchJob> jobs;
    for (int id : kGoldenKernels) {
        lfk::Kernel k = lfk::makeKernel(id);
        BatchJob job;
        job.label = k.name;
        job.kernel = lfk::toKernelCase(k);
        job.config = cfg;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

BatchResult
renderedBatch(size_t workers)
{
    EngineOptions opt;
    opt.workers = workers;
    BatchEngine engine(opt);
    return engine.run(goldenJobs());
}

void
compareAgainstGolden(const std::string &file, const std::string &got)
{
    std::string path = goldenPath(file);
    if (updateRequested()) {
        writeFile(path, got);
        SUCCEED() << "updated " << path;
        return;
    }
    std::string want = readFileOrEmpty(path);
    ASSERT_FALSE(want.empty())
        << path << " is missing or empty; run with UPDATE_GOLDEN=1 "
        << "to (re)create it";
    // Byte-for-byte: any diff is a behavior change that must be
    // reviewed (rerun with UPDATE_GOLDEN=1 when intentional).
    EXPECT_EQ(want, got) << "report bytes differ from " << path;
}

TEST(GoldenReportTest, BatchJsonMatchesGolden)
{
    BatchResult r = renderedBatch(1);
    ASSERT_EQ(r.stats.failures, 0u);
    compareAgainstGolden("batch_lfk_1_7_12.json",
                         renderBatchJson(r, /*include_timing=*/false));
}

TEST(GoldenReportTest, BatchMarkdownMatchesGolden)
{
    BatchResult r = renderedBatch(1);
    ASSERT_EQ(r.stats.failures, 0u);
    compareAgainstGolden("batch_lfk_1_7_12.md",
                         renderBatchMarkdown(r, false));
}

TEST(GoldenReportTest, GoldenBytesIndependentOfWorkerCount)
{
    // Worker counts beyond the job count stress the scheduler most.
    std::string serial_json = renderBatchJson(renderedBatch(1), false);
    for (size_t workers : {2u, 4u, 8u}) {
        BatchResult r = renderedBatch(workers);
        EXPECT_EQ(serial_json, renderBatchJson(r, false))
            << "JSON report bytes changed at " << workers
            << " workers";
    }
    // And the golden file itself matches what any worker count makes.
    if (!updateRequested()) {
        std::string want =
            readFileOrEmpty(goldenPath("batch_lfk_1_7_12.json"));
        ASSERT_FALSE(want.empty());
        EXPECT_EQ(want, serial_json);
    }
}

// Differential oracle (docs/MACHINES.md): running the golden batch
// through the PARSED machines/c240.machine instead of the built-in
// table must reproduce the goldens byte-for-byte. A drift in either
// the parser or the shipped file shows up as a report diff here.
TEST(GoldenReportTest, ParsedC240FileReproducesGoldens)
{
    machine::MachineConfig parsed = machine::MachineConfig::fromFile(
        std::string(MACS_MACHINE_DIR) + "/c240.machine");
    EngineOptions opt;
    opt.workers = 1;
    BatchEngine engine(opt);
    BatchResult r = engine.run(goldenJobs(parsed));
    ASSERT_EQ(r.stats.failures, 0u);
    if (updateRequested())
        GTEST_SKIP() << "goldens are owned by the built-in-table run";
    std::string want_json =
        readFileOrEmpty(goldenPath("batch_lfk_1_7_12.json"));
    std::string want_md =
        readFileOrEmpty(goldenPath("batch_lfk_1_7_12.md"));
    ASSERT_FALSE(want_json.empty());
    ASSERT_FALSE(want_md.empty());
    EXPECT_EQ(want_json, renderBatchJson(r, false))
        << "parsed c240.machine diverged from the built-in table";
    EXPECT_EQ(want_md, renderBatchMarkdown(r, false));
}

} // namespace
} // namespace macs::pipeline
