#include "sim/memory_port.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "support/logging.h"
#include "support/math_util.h"

namespace macs::sim {

MemoryPort::MemoryPort(const machine::MemoryConfig &config,
                       double contention_factor)
    : config_(config), contention_(contention_factor)
{
    MACS_ASSERT(contention_ >= 1.0, "contention factor must be >= 1");
}

double
MemoryPort::strideRate(int64_t stride_words) const
{
    uint64_t s = static_cast<uint64_t>(std::llabs(stride_words)) %
                 static_cast<uint64_t>(config_.banks);
    if (s == 0) {
        // Every access hits the same bank: limited by bank busy time.
        return static_cast<double>(config_.bankBusyCycles);
    }
    uint64_t distinct =
        static_cast<uint64_t>(config_.banks) /
        gcd(static_cast<uint64_t>(config_.banks), s);
    double min_rate =
        static_cast<double>(config_.bankBusyCycles) /
        static_cast<double>(distinct);
    return std::max(1.0, min_rate);
}

double
MemoryPort::refreshStall(double begin, double end) const
{
    if (!config_.refreshEnabled || end <= begin)
        return 0.0;
    // Count refresh boundaries in (begin, end]; each steals the full
    // refresh duration from the stream. Because the stall itself
    // extends the busy window, iterate until no new boundary is hit.
    double period = config_.refreshPeriodCycles;
    double duration = config_.refreshDurationCycles;
    double stall = 0.0;
    long first = static_cast<long>(std::floor(begin / period)) + 1;
    long last = static_cast<long>(std::floor((end + stall) / period));
    while (true) {
        long count = std::max(0L, last - first + 1);
        double new_stall = duration * static_cast<double>(count);
        long new_last =
            static_cast<long>(std::floor((end + new_stall) / period));
        if (new_last == last) {
            stall = new_stall;
            break;
        }
        last = new_last;
    }
    return stall;
}

StreamTiming
MemoryPort::serviceStream(double earliest, int elements,
                          int64_t stride_words, double rate_floor)
{
    MACS_ASSERT(elements > 0, "empty vector stream");
    StreamTiming t;
    double prev_busy_end = free_at_;
    t.enter = std::max(earliest, free_at_);
    if (config_.refreshEnabled) {
        // A refresh in progress when the stream wants to start delays
        // it: an 8-cycle refresh cannot hide in the few-cycle bubble
        // between back-to-back streams. Boundaries at or before the
        // previous stream's end were already charged to that stream;
        // boundaries while the port was idle long before this stream
        // are masked.
        double period = config_.refreshPeriodCycles;
        double duration = config_.refreshDurationCycles;
        double boundary = std::floor(t.enter / period) * period;
        if (boundary > prev_busy_end && boundary + duration > t.enter) {
            // Full-duration charge: once a refresh interrupts pending
            // traffic the controller restarts the access stream after
            // the complete refresh (the paper conjectures a similar
            // handshaking restart penalty for stalled instructions).
            t.enter += duration;
            t.refreshStall += duration;
        }
    }
    t.rate = std::max(rate_floor, strideRate(stride_words) * contention_);
    double nominal_end = t.enter + t.rate * elements;
    double in_stream = refreshStall(t.enter, nominal_end);
    t.refreshStall += in_stream;
    t.streamEnd = nominal_end + in_stream;
    free_at_ = t.streamEnd;
    refresh_stall_total_ += t.refreshStall;
    return t;
}

ScalarAccessTiming
MemoryPort::serviceScalar(double earliest)
{
    ScalarAccessTiming t;
    t.start = std::max(earliest, free_at_);
    // One access: the port is reusable after a couple of cycles; the
    // bank stays busy longer but back-to-back same-bank scalar traffic
    // is negligible in the studied loops.
    t.done = t.start + 2.0 * contention_;
    free_at_ = t.done;
    return t;
}

} // namespace macs::sim
