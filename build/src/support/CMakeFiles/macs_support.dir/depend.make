# Empty dependencies file for macs_support.
# This may be replaced when dependencies are built.
