/**
 * @file
 * Machine sweep — evaluate kernels across a grid of machine
 * descriptions (docs/MACHINES.md) on the batch pipeline.
 *
 * A sweep is a per-kernel × per-machine matrix of MACS analyses. The
 * machine axis is SORTED BY NAME before any job is built, so the
 * matrix is invariant to the order machine files appear on the command
 * line or in a request body; the kernel axis keeps caller order. Jobs
 * run on the existing BatchEngine (CLI) or AnalysisService (server),
 * inheriting their determinism contract: every cell is a pure function
 * of (kernel, machine config, sim options), so the rendered matrix is
 * byte-identical at any worker count. The memo cache keys on the
 * CONTENT hash of each resolved config (MachineConfig::contentHash),
 * never on machine names, so two files sharing a name but differing
 * in any constant cannot alias.
 */

#ifndef MACS_PIPELINE_SWEEP_H
#define MACS_PIPELINE_SWEEP_H

#include <functional>
#include <string>
#include <vector>

#include "pipeline/job.h"
#include "pipeline/pipeline.h"
#include "support/diag.h"

namespace macs::pipeline {

/** One machine column of the sweep matrix. */
struct SweepMachine
{
    std::string name;        ///< unique within one sweep
    std::string description; ///< from the machine file (may be empty)
    std::string source;      ///< file path or "<inline>" / "<builtin>"
    machine::MachineConfig config;
};

/** Everything a sweep evaluates. */
struct SweepRequest
{
    std::vector<SweepMachine> machines;
    std::vector<model::KernelCase> kernels; ///< row order is kept
    sim::SimOptions options;
    /** VL override applied to every cell; 0 keeps each machine's VL. */
    int vectorLength = 0;
};

/** The sweep matrix: cells[kernel][machine], machines name-sorted. */
struct SweepResult
{
    std::vector<SweepMachine> machines;
    std::vector<std::string> kernelNames;
    std::vector<std::vector<JobResult>> cells;
    BatchStats stats;

    /** Same 0/2/3 contract as BatchResult (docs/ROBUSTNESS.md). */
    int exitCode() const
    {
        if (stats.failures == 0)
            return 0;
        return stats.failures >= stats.jobs ? 3 : 2;
    }
};

/**
 * Validate the machine axis of @p request: at least one machine, at
 * least one kernel, and no duplicate machine names (two DIFFERENT
 * configs under one name would render an ambiguous matrix column —
 * the cache cannot alias them, but a reader could). Errors go to
 * @p diags; returns false when any were added.
 */
bool validateSweep(const SweepRequest &request, Diagnostics &diags);

/**
 * Executor a sweep runs its jobs on: BatchEngine::run or
 * AnalysisService::runJobs. Must return results in submission order.
 */
using SweepRunner =
    std::function<BatchResult(const std::vector<BatchJob> &)>;

/**
 * Run @p request on @p runner and assemble the matrix. Machines are
 * name-sorted first; jobs are submitted row-major (kernel-major), so
 * results map back positionally. validateSweep() must have passed.
 */
SweepResult runSweep(const SweepRequest &request,
                     const SweepRunner &runner);

/** Convenience overload: run on a BatchEngine. */
SweepResult runSweep(const SweepRequest &request, BatchEngine &engine);

/**
 * Render the matrix as markdown: a machine legend, one t_MACS (CPL)
 * bound matrix, one predicted-MFLOPS matrix, and a failures section.
 * Deterministic unless @p include_timing adds the stats line.
 */
std::string renderSweepMarkdown(const SweepResult &result,
                                bool include_timing = false);

/**
 * Render the matrix as JSON (schema "macs-sweep-v1"): the machine
 * legend (with content hashes), the kernel list, and one cell object
 * per (kernel, machine) carrying the CPL bounds hierarchy. %.6f
 * rendering keeps the document deterministic.
 */
std::string renderSweepJson(const SweepResult &result,
                            bool include_timing = false);

} // namespace macs::pipeline

#endif // MACS_PIPELINE_SWEEP_H
