/**
 * @file
 * Job model of the batch-analysis pipeline.
 *
 * A BatchJob names one (kernel, machine, vector length, sim options)
 * point of the MACS evaluation space. The engine (pipeline.h) runs the
 * full hierarchy — MA/MAC/MACS bounds plus the simulated full, A- and
 * X-process codes — for every job across a fixed-size worker pool,
 * memoizing on content hashes so duplicated work is computed once.
 *
 * Per-job and per-batch perf counters live here too; reporters
 * (report.h) surface them when timing output is requested. Timing
 * fields are scheduling-dependent and are therefore excluded from the
 * deterministic report sections (see docs/PIPELINE.md).
 */

#ifndef MACS_PIPELINE_JOB_H
#define MACS_PIPELINE_JOB_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine_config.h"
#include "macs/hierarchy.h"
#include "sim/simulator.h"

namespace macs::pipeline {

/** One unit of analysis work. */
struct BatchJob
{
    /** Display label; defaults to the kernel name when empty. */
    std::string label;
    /** Human-readable machine tag (e.g. "baseline", "no-chaining"). */
    std::string configName = "baseline";

    model::KernelCase kernel;
    machine::MachineConfig config;
    sim::SimOptions options;

    /**
     * Strip length / vector length override; 0 keeps
     * config.maxVectorLength. Applied to both the bounds and the
     * simulator via a config copy.
     */
    int vectorLength = 0;

    /** The label shown in reports. */
    const std::string &displayLabel() const
    {
        return label.empty() ? kernel.name : label;
    }
};

/** Memoization key of one job (content hashes; see docs/PIPELINE.md). */
struct CacheKey
{
    uint64_t program = 0; ///< hash of model::fingerprint(kernel)
    uint64_t machine = 0; ///< hash of effective config fingerprint
    uint64_t options = 0; ///< hash of sim::fingerprint(options)

    auto operator<=>(const CacheKey &) const = default;
};

/** Scheduling-dependent perf counters of one executed job. */
struct JobTiming
{
    bool cacheHit = false;   ///< result came from the memo cache
    double queueWaitUs = 0.0;///< submit -> worker pickup
    double computeUs = 0.0;  ///< analysis time (0 for pure cache hits)
    double totalUs = 0.0;    ///< pickup -> result available
    int attempts = 1;        ///< compute attempts (retries + 1)
};

/**
 * Failure classification of a job (docs/ROBUSTNESS.md):
 *  - Permanent: fatal()/panic() from the analysis stack — retrying a
 *    deterministic computation would fail again.
 *  - Transient: TransientFault / IoError / bad_alloc — retried with
 *    backoff; reported only when the retry budget is exhausted.
 *  - Timeout: the per-job wall-clock deadline expired.
 */
enum class ErrorKind : uint8_t
{
    None,
    Permanent,
    Transient,
    Timeout,
};

/** Canonical name ("permanent" / "transient" / "timeout" / "none"). */
const char *errorKindName(ErrorKind kind);

/** Outcome of one job: analysis result or an error, plus counters. */
struct JobResult
{
    std::string label;
    std::string configName;
    int vectorLength = 0;    ///< effective VL used
    double clockMhz = 0.0;   ///< machine clock (for MFLOPS rendering)
    CacheKey key;

    /** Null when the job failed; see @ref error. */
    std::shared_ptr<const model::KernelAnalysis> analysis;
    /** Empty on success, else the fatal()/panic() message. */
    std::string error;
    /** Classification of @ref error (None on success). */
    ErrorKind errorKind = ErrorKind::None;

    JobTiming timing;

    bool ok() const { return analysis != nullptr; }
};

/** One entry of the batch error manifest (submission-ordered). */
struct ErrorRecord
{
    size_t jobIndex = 0;     ///< index into BatchResult::results
    std::string label;
    std::string configName;
    ErrorKind kind = ErrorKind::Permanent;
    std::string message;
    int attempts = 1;
};

/** Aggregate counters of one BatchEngine::run(). */
struct BatchStats
{
    size_t jobs = 0;
    size_t workers = 0;
    size_t cacheHits = 0;
    size_t cacheMisses = 0;
    size_t failures = 0;
    double wallUs = 0.0;        ///< submit of first -> completion of last
    double computeUs = 0.0;     ///< sum of per-job compute time
    double queueWaitUs = 0.0;   ///< sum of per-job queue wait

    double jobsPerSec() const
    {
        return wallUs > 0.0 ? 1e6 * static_cast<double>(jobs) / wallUs
                            : 0.0;
    }
};

/** Everything BatchEngine::run() returns. */
struct BatchResult
{
    /** One entry per submitted job, in submission order (always). */
    std::vector<JobResult> results;
    /** One entry per failed job, in submission order (the manifest). */
    std::vector<ErrorRecord> errors;
    BatchStats stats;

    /**
     * Exit-code contract of `macs batch` (docs/ROBUSTNESS.md):
     * 0 = every job succeeded, 2 = partial failure (some results are
     * valid), 3 = total failure (no job produced a result).
     */
    int exitCode() const
    {
        if (stats.failures == 0)
            return 0;
        return stats.failures >= stats.jobs ? 3 : 2;
    }
};

} // namespace macs::pipeline

#endif // MACS_PIPELINE_JOB_H
