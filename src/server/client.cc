#include "server/client.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <thread>

#include "server/net.h"
#include "support/strings.h"

namespace macs::server {

namespace {

std::string
lowerCopy(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

} // namespace

const std::string *
ClientResponse::header(const std::string &name) const
{
    for (const auto &[k, v] : headers)
        if (k == name)
            return &v;
    return nullptr;
}

HttpClient::HttpClient(std::string host, int port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeoutMs_(timeout_ms)
{
}

HttpClient::~HttpClient()
{
    close();
}

void
HttpClient::close()
{
    closeFd(fd_);
    fd_ = -1;
    leftover_.clear();
}

bool
HttpClient::ensureConnected()
{
    if (fd_ >= 0)
        return true;
    fd_ = tcpConnect(host_, port_, timeoutMs_);
    leftover_.clear();
    return fd_ >= 0;
}

bool
HttpClient::readResponse(ClientResponse &out)
{
    out = ClientResponse{};
    std::string buf = std::move(leftover_);
    leftover_.clear();

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs_);
    auto timeLeft = [&]() -> int {
        auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        return ms > 0 ? static_cast<int>(ms) : 0;
    };
    char chunk[16384];

    // Header block.
    size_t head_end;
    while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
        int left = timeLeft();
        if (left == 0)
            return false;
        int n = readWithDeadline(fd_, chunk, sizeof(chunk), left);
        if (n <= 0)
            return false;
        buf.append(chunk, static_cast<size_t>(n));
    }
    std::string head = buf.substr(0, head_end);
    buf.erase(0, head_end + 4);

    // Status line: HTTP/1.1 NNN Reason
    size_t eol = head.find("\r\n");
    std::string status_line = head.substr(0, eol);
    size_t sp1 = status_line.find(' ');
    if (sp1 == std::string::npos)
        return false;
    long status = 0;
    size_t sp2 = status_line.find(' ', sp1 + 1);
    if (!parseInt(status_line.substr(sp1 + 1, sp2 - sp1 - 1), status))
        return false;
    out.status = static_cast<int>(status);

    // Header fields (lower-cased names).
    std::string rest =
        eol == std::string::npos ? std::string() : head.substr(eol + 2);
    for (const std::string &line : split(rest, '\n')) {
        std::string_view l = trim(line);
        size_t colon = l.find(':');
        if (colon == std::string_view::npos || colon == 0)
            continue;
        out.headers.emplace_back(
            lowerCopy(l.substr(0, colon)),
            std::string(trim(l.substr(colon + 1))));
    }

    // Body: the server always frames with Content-Length.
    size_t length = 0;
    if (const std::string *cl = out.header("content-length")) {
        long n = 0;
        if (!parseInt(*cl, n) || n < 0)
            return false;
        length = static_cast<size_t>(n);
    }
    while (buf.size() < length) {
        int left = timeLeft();
        if (left == 0)
            return false;
        int n = readWithDeadline(fd_, chunk, sizeof(chunk), left);
        if (n <= 0)
            return false;
        buf.append(chunk, static_cast<size_t>(n));
    }
    out.body = buf.substr(0, length);
    leftover_ = buf.substr(length); // pipelined next-response bytes

    bool close_conn = false;
    if (const std::string *conn = out.header("connection"))
        close_conn = lowerCopy(*conn) == "close";
    if (close_conn)
        close();
    return true;
}

bool
HttpClient::request(const std::string &method,
                    const std::string &target,
                    const std::string &body, ClientResponse &out,
                    const std::string &content_type)
{
    if (!ensureConnected())
        return false;

    std::string msg;
    msg.reserve(body.size() + 256);
    msg += method + " " + target + " HTTP/1.1\r\n";
    msg += "Host: " + host_ + "\r\n";
    if (!body.empty() || method == "POST" || method == "PUT") {
        msg += "Content-Type: " + content_type + "\r\n";
        msg += format("Content-Length: %zu\r\n", body.size());
    }
    msg += "\r\n";
    msg += body;

    if (!writeAll(fd_, msg, timeoutMs_)) {
        close();
        return false;
    }
    if (!readResponse(out)) {
        close();
        return false;
    }
    return true;
}

bool
HttpClient::requestWithRetry(const std::string &method,
                             const std::string &target,
                             const std::string &body,
                             ClientResponse &out, int attempts,
                             int backoff_ms)
{
    int sleep_ms = backoff_ms;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sleep_ms));
            // Cap the doubling: a client riding out a supervised
            // worker restart should re-probe at least once a second
            // rather than back off past the restart window.
            sleep_ms = std::min(sleep_ms * 2, 1000);
        }
        if (!request(method, target, body, out))
            continue; // transport failure (e.g. injected net-write)
        if (out.status != 503)
            return true;
        close(); // the server closes 503 connections; mirror it
    }
    return false;
}

} // namespace macs::server
