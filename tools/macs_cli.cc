/**
 * @file
 * macs — command-line front end to the library.
 *
 *   macs kernels                         list the LFK workloads
 *   macs analyze <id>                    hierarchy report for one LFK
 *   macs mp [id] [opts]                  multi-CPU contention run
 *       --kernel N      LFK id (or give it positionally; default 1)
 *       --cpus N        fleet size (default: the machine's CPUs)
 *       --mix M         independent (default) / lockstep / strip
 *       --engine E      coupled (default) / analytic
 *       --machine F     .machine file (default: built-in C-240)
 *       --json PATH     write schema macs-mp-v1 ('-' for stdout)
 *   macs compile <file> [opts]           DSL loop -> assembly + bounds
 *       --trip N        iterations (default 512)
 *       --array n:w     declare array n with w words (repeatable)
 *       --scalar        compile for the scalar unit
 *   macs bounds <file.s>                 MAC/MACS/MACS-D of assembly
 *   macs simulate <file.s> [--trace]     run assembly on the C-240
 *   macs trace <kernel> [opts]           Chrome trace of one run
 *       <kernel>        lfk1 / 7 / file.s
 *       --chrome PATH   write Chrome trace JSON ('-' for stdout),
 *                       self-checked against the simulator totals
 *       --metrics PATH  write macs_sim_* metrics JSON
 *       --variant V     machine variant (default baseline)
 *   macs batch [ids|files] [opts]        parallel batch analysis
 *       --workers N     worker threads (default: hardware)
 *       --variant V     machine variant (repeatable)
 *       --vl N          strip/vector length override (repeatable)
 *       --repeat N      submit the job set N times (cache demo)
 *       --trip N        iterations for .loop file jobs (default 512)
 *       --json PATH     write the JSON report ('-' for stdout)
 *       --md PATH       write the markdown report ('-' for stdout)
 *       --timing        include scheduling-dependent stats sections
 *       --no-cache      disable memoization
 *       --metrics PATH  write gap-attribution metrics JSON
 *                       (byte-identical for any --workers value)
 *       --checkpoint F  crash-safe journal: resume completed jobs
 *                       from F, append each new analysis
 *       --job-timeout M per-job wall-clock deadline in ms (0 = off)
 *       --retries N     retry budget for transient faults (default 2)
 *       --faults SPEC   fault plan (same grammar as MACS_FAULTS)
 *       --sim-tier T    simulator tier: fast (default) or reference
 *                       (bit-identical results; docs/SIMULATOR.md)
 *   macs sweep [ids|files] [opts]        kernel x machine sweep matrix
 *       --machines P    .machine file or directory of them
 *                       (repeatable; docs/MACHINES.md)
 *       --variant V     add a built-in variant column (repeatable)
 *       --workers N     worker threads (default: hardware)
 *       --vl N          strip/vector length override for every cell
 *       --trip N        iterations for .loop file jobs (default 512)
 *       --json PATH     write the JSON matrix ('-' for stdout)
 *       --md PATH       write the markdown matrix ('-' for stdout)
 *       --timing        include scheduling-dependent stats
 *       --no-cache      disable memoization
 *       --sim-tier T    simulator tier: fast (default) or reference
 *   macs serve [opts]                    HTTP analysis server
 *       --port N        listen port (0 = ephemeral; default 8080)
 *       --port-file F   write the bound port to F (for scripts)
 *       --workers N     compute workers (default: hardware)
 *       --queue N       pending-compute bound before 503 (default 64)
 *       --shards N      event-loop shards (0 = auto; default 0)
 *       --core MODE     evented (default) or threaded (legacy)
 *       --max-connections N  open-connection bound before 503
 *       --cache-cap N   LRU bound of the shared cache (default 1024)
 *       --processes N   SO_REUSEPORT worker processes under a
 *                       supervisor (default 1 = no supervisor)
 *       --heartbeat-ms N   worker heartbeat interval (default 100)
 *       --liveness-ms N    missed-heartbeat kill deadline (2000)
 *       --restart-budget N per-slot restarts before the slot is
 *                          abandoned and the fleet degrades (8)
 *       --drain-timeout N  per-worker drain grace in ms (30000)
 *       SIGTERM/SIGINT  graceful drain, exit 0 (docs/SERVER.md);
 *                       supervised fleets drain worker-by-worker and
 *                       exit 4 only when every slot is dead
 *   macs http <method> <target> [opts]   client for `macs serve`
 *   macs version                         build + schema versions
 *
 * Batch exit codes (docs/ROBUSTNESS.md): 0 = all jobs succeeded,
 * 2 = partial failure, 3 = total failure; 1 = invocation error.
 * `macs serve` reports the same contract per request in the
 * X-MACS-Exit-Code response header.
 *
 * Assembly files use the syntax of isa/parser.h; loop files use the
 * DSL of compiler/loop_parser.h. Positional batch arguments ending in
 * .loop are analyzed alongside (or instead of) the LFK set; all input
 * paths are validated before any worker starts.
 */

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "faults/fault_injection.h"
#include "isa/parser.h"
#include "lfk/kernels.h"
#include "macs/gap_metrics.h"
#include "macs/hierarchy.h"
#include "macs/macsd.h"
#include "machine/machine_config.h"
#include "machine/machine_file.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sim_metrics.h"
#include "obs/trace_export.h"
#include "pipeline/checkpoint.h"
#include "pipeline/mp_report.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "pipeline/sweep.h"
#include "server/client.h"
#include "server/kernel_source.h"
#include "server/server.h"
#include "supervisor/proc_faults.h"
#include "supervisor/supervisor.h"
#include "sim/simulator.h"
#include "support/diag.h"
#include "support/logging.h"
#include "support/strings.h"

namespace {

using namespace macs;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "': ", std::strerror(errno));
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

int
cmdKernels()
{
    std::printf("%-6s %-4s %-8s %-6s %s\n", "name", "flop", "points",
                "t_MA", "description");
    for (int id : lfk::lfkIds()) {
        lfk::Kernel k = lfk::makeKernel(id);
        std::printf("%-6s %-4d %-8ld %-6d %s\n", k.name.c_str(),
                    k.flopsPerPoint, k.points,
                    std::max(k.ma.tF(), k.ma.tM()), k.description.c_str());
    }
    for (int id : lfk::scalarLfkIds()) {
        lfk::Kernel k = lfk::makeKernel(id);
        std::printf("%-6s %-4d %-8ld %-6s %s\n", k.name.c_str(),
                    k.flopsPerPoint, k.points, "-", k.description.c_str());
    }
    return 0;
}

int
cmdAnalyze(const std::string &arg)
{
    long id = 0;
    if (!parseInt(arg, id))
        fatal("analyze expects an LFK number, got '", arg, "'");
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    lfk::Kernel k = lfk::makeKernel(static_cast<int>(id));
    std::printf("%s — %s\n%s\n", k.name.c_str(), k.description.c_str(),
                k.sourceText.c_str());
    model::KernelAnalysis a =
        model::analyzeKernel(lfk::toKernelCase(k), cfg);
    std::printf("%s", model::renderReport(a, cfg).c_str());
    return 0;
}

int
cmdMp(const std::vector<std::string> &args)
{
    pipeline::MpRequest req;
    std::string json_path;
    bool have_kernel = false;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *what) -> const std::string & {
            if (i + 1 >= args.size())
                fatal(what, " expects an argument");
            return args[++i];
        };
        if (a == "--kernel") {
            long id = 0;
            if (!parseInt(next("--kernel"), id))
                fatal("--kernel expects an LFK number");
            req.kernelId = static_cast<int>(id);
            have_kernel = true;
        } else if (a == "--cpus") {
            long n = 0;
            if (!parseInt(next("--cpus"), n) || n < 1)
                fatal("--cpus expects a positive CPU count");
            req.cpus = static_cast<int>(n);
        } else if (a == "--mix") {
            const std::string &m = next("--mix");
            if (!lfk::parseMpMix(m, req.mix))
                fatal("unknown mix '", m,
                      "' (known: independent, lockstep, strip)");
        } else if (a == "--engine") {
            const std::string &e = next("--engine");
            if (!pipeline::parseMpEngine(e, req.engine))
                fatal("unknown engine '", e,
                      "' (known: coupled, analytic)");
        } else if (a == "--machine") {
            const std::string &path = next("--machine");
            machine::MachineFile mf;
            Diagnostics diags("macs mp");
            if (!machine::loadMachineFile(path, mf, diags))
                diags.throwIfErrors();
            req.config = mf.config;
            req.machineName = mf.name;
        } else if (a == "--json") {
            json_path = next("--json");
        } else if (!have_kernel && !a.empty() && a[0] != '-') {
            long id = 0;
            if (!parseInt(a, id))
                fatal("mp expects an LFK number, got '", a, "'");
            req.kernelId = static_cast<int>(id);
            have_kernel = true;
        } else {
            fatal("unknown mp option '", a, "'");
        }
    }

    pipeline::MpAnalysis analysis = pipeline::runMpAnalysis(req);
    if (!json_path.empty()) {
        std::string body = pipeline::renderMpJson(analysis);
        if (json_path == "-") {
            std::fputs(body.c_str(), stdout);
        } else {
            std::ofstream out(json_path);
            if (!out)
                fatal("cannot write '", json_path,
                      "': ", std::strerror(errno));
            out << body;
        }
    } else {
        std::fputs(pipeline::renderMpText(analysis).c_str(), stdout);
    }
    return 0;
}

int
cmdCompile(const std::vector<std::string> &args)
{
    if (args.empty())
        fatal("compile expects a loop file");
    compiler::CompileOptions opt;
    opt.tripCount = 512;
    std::string path = args[0];
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--trip" && i + 1 < args.size()) {
            long trip = 0;
            if (!parseInt(args[++i], trip))
                fatal("--trip expects a number");
            opt.tripCount = trip;
        } else if (args[i] == "--array" && i + 1 < args.size()) {
            auto parts = split(args[++i], ':');
            long words = 0;
            if (parts.size() != 2 || !parseInt(parts[1], words))
                fatal("--array expects name:words");
            opt.arrays.push_back(
                {parts[0], static_cast<size_t>(words)});
        } else if (args[i] == "--scalar") {
            opt.vectorize = false;
        } else if (args[i] == "--unroll" && i + 1 < args.size()) {
            long u = 0;
            if (!parseInt(args[++i], u))
                fatal("--unroll expects a number");
            opt.unroll = static_cast<int>(u);
        } else {
            fatal("unknown compile option '", args[i], "'");
        }
    }

    compiler::Loop loop = compiler::parseLoop(readFile(path));
    if (opt.arrays.empty()) {
        // Undeclared arrays default to a generous extent.
        compiler::SourceAnalysis sa = compiler::analyzeSource(loop);
        (void)sa;
        for (const auto &s : loop.stmts) {
            if (s.arrayDst)
                opt.arrays.push_back({s.dstName, 1u << 16});
        }
        // Conservatively declare every identifier-like array too: the
        // compiler reports missing ones, so rely on --array for those.
    }

    compiler::CompileResult res = compiler::compile(loop, opt);
    std::printf("%s", res.program.toString().c_str());

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    model::PipeBound ma = model::pipeBound(res.analysis.ma);
    model::PipeBound mac = model::pipeBound(res.macCounts);
    std::printf("\n; t_MA  = %.0f CPL\n; t_MAC = %.0f CPL\n", ma.bound,
                mac.bound);
    if (opt.vectorize) {
        model::MacsResult macs =
            model::evaluateMacs(res.program.innerLoop(), cfg);
        std::printf("; t_MACS = %.3f CPL (%zu chimes)\n", macs.cpl,
                    macs.chimes.size());
    }
    return 0;
}

int
cmdBounds(const std::string &path)
{
    isa::Program prog = isa::assemble(readFile(path));
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    auto body = prog.innerLoop();

    model::WorkloadCounts mac = model::countAssembly(body);
    model::PipeBound b = model::pipeBound(mac);
    model::MacsResult macs = model::evaluateMacs(body, cfg);
    model::MacsDResult d = model::evaluateMacsD(prog, cfg);

    std::printf("workload (MAC): f_a=%d f_m=%d l=%d s=%d\n", mac.fAdd,
                mac.fMul, mac.loads, mac.stores);
    std::printf("t_MAC    = %.0f CPL\n", b.bound);
    std::printf("t_MACS   = %.3f CPL\n", macs.cpl);
    std::printf("t_MACS-D = %.3f CPL (worst memory rate %.2f "
                "cycles/element)\n",
                d.macs.cpl, d.worstMemoryRate);
    std::printf("chimes:\n%s",
                model::renderChimes(body, macs.chimes).c_str());
    return 0;
}

int
cmdSimulate(const std::vector<std::string> &args)
{
    if (args.empty())
        fatal("simulate expects an assembly file");
    bool trace = false, profile = false;
    for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--trace")
            trace = true;
        else if (args[i] == "--profile")
            profile = true;
        else
            fatal("unknown simulate option '", args[i], "'");
    }
    isa::Program prog = isa::assemble(readFile(args[0]));
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::SimOptions opt;
    opt.trace = trace;
    opt.profile = profile;
    sim::Simulator s(cfg, prog, opt);
    sim::RunStats st = s.run();
    std::printf("cycles              %.1f (%.2f us at %.0f MHz)\n",
                st.cycles, st.cycles * cfg.clockNs() / 1000.0,
                cfg.clockMhz);
    std::printf("instructions        %llu (%llu vector, %llu scalar)\n",
                (unsigned long long)st.instructions,
                (unsigned long long)st.vectorInstructions,
                (unsigned long long)st.scalarInstructions);
    std::printf("vector elements     %llu (%llu flops, %llu memory)\n",
                (unsigned long long)st.vectorElements,
                (unsigned long long)st.flops,
                (unsigned long long)st.memoryElements);
    std::printf("refresh stalls      %.0f cycles\n",
                st.refreshStallCycles);
    if (st.flops)
        std::printf("performance         %.3f CPF = %.2f MFLOPS\n",
                    st.cpf(), st.mflops(cfg.clockMhz));
    if (trace)
        std::printf("\n%s", s.timeline().render(32).c_str());
    if (profile)
        std::printf("\nstall attribution:\n%s",
                    s.profile().render().c_str());
    return 0;
}

machine::MachineConfig variantConfig(const std::string &name);
void writeReport(const std::string &path, const std::string &text);

/**
 * `macs trace <kernel>`: run one kernel with tracing + profiling and
 * summarize where cycles went; --chrome writes the Chrome trace JSON
 * (chrome://tracing, Perfetto) and self-checks it: the per-pipe
 * busy-span sums recovered from the written file must equal the
 * simulator's RunStats exactly.
 */
int
cmdTrace(const std::vector<std::string> &args)
{
    if (args.empty())
        fatal("trace expects a kernel: lfk<N>, <N>, or a .s file");
    std::string spec = args[0];
    std::string chrome_path, metrics_path, variant = "baseline";
    for (size_t i = 1; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *what) -> const std::string & {
            if (i + 1 >= args.size())
                fatal(what, " expects an argument");
            return args[++i];
        };
        if (a == "--chrome")
            chrome_path = next("--chrome");
        else if (a == "--metrics")
            metrics_path = next("--metrics");
        else if (a == "--variant")
            variant = next("--variant");
        else
            fatal("unknown trace option '", a, "'");
    }

    // Resolve the kernel: "lfk1" / "1" name an LFK workload (with its
    // canonical data setup); anything ending in .s is an assembly file.
    machine::MachineConfig cfg = variantConfig(variant);
    isa::Program prog;
    std::string name;
    std::function<void(sim::Simulator &)> setup;
    if (spec.size() > 2 && spec.substr(spec.size() - 2) == ".s") {
        prog = isa::assemble(readFile(spec));
        name = spec;
    } else {
        std::string t = toLower(spec);
        if (t.rfind("lfk", 0) == 0)
            t = t.substr(3);
        long id = 0;
        if (!parseInt(t, id))
            fatal("trace expects lfk<N>, <N>, or a .s file, got '",
                  spec, "'");
        lfk::Kernel k = lfk::makeKernel(static_cast<int>(id));
        prog = k.program;
        name = k.name;
        setup = k.setup;
    }

    sim::SimOptions opt;
    opt.trace = true;
    opt.profile = true;
    sim::Simulator s(cfg, prog, opt);
    if (setup)
        setup(s);
    sim::RunStats st = s.run();

    std::printf("%s on %s: %.1f cycles, %llu vector instructions\n",
                name.c_str(), variant.c_str(), st.cycles,
                (unsigned long long)st.vectorInstructions);
    static const char *const pipe_names[3] = {"load/store", "add",
                                              "multiply"};
    for (int p = 0; p < 3; ++p)
        std::printf("  pipe %-10s busy %10.1f cycles (%5.1f%%)\n",
                    pipe_names[p], st.pipeBusy(p),
                    st.cycles > 0.0
                        ? 100.0 * st.pipeBusy(p) / st.cycles
                        : 0.0);
    std::printf("  refresh stalls  %10.1f cycles\n",
                st.refreshStallCycles);
    std::printf("  bank conflicts  %10.1f cycles\n",
                st.bankConflictCycles);
    if (!s.profile().empty())
        std::printf("\nstall attribution:\n%s",
                    s.profile().render().c_str());

    if (!chrome_path.empty()) {
        obs::TraceExportOptions topt;
        topt.processName = "macs " + name + " (" + variant + ")";
        std::string json =
            obs::renderChromeTrace(s.timeline(), st, topt);
        writeReport(chrome_path, json);
        // Self-check the written document: re-parse and re-sum. Any
        // deviation from the simulator's accounting is a bug.
        obs::TraceTotals totals = obs::summarizeChromeTrace(json);
        for (int p = 0; p < 3; ++p) {
            if (totals.pipeBusy[p] != st.pipeBusy(p))
                panic("trace self-check failed: pipe ", p,
                      " busy sum ", totals.pipeBusy[p],
                      " != simulator ", st.pipeBusy(p));
        }
        std::fprintf(stderr,
                     "self-check ok: %zu spans, per-pipe busy sums "
                     "match the simulator exactly\n",
                     totals.streamEvents);
    }
    if (!metrics_path.empty()) {
        obs::Registry reg;
        obs::Labels labels{{"kernel", name}, {"config", variant}};
        obs::recordRunStats(reg, st, labels);
        obs::recordStallProfile(reg, s.profile(), labels);
        writeReport(metrics_path, obs::renderJson(reg));
    }
    return 0;
}

machine::MachineConfig
variantConfig(const std::string &name)
{
    // One resolver shared with `macs serve` (docs/SERVER.md): the CLI
    // and the HTTP endpoints accept exactly the same variant names.
    return machine::MachineConfig::variant(name);
}

void
writeReport(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '", path, "'");
    out << text;
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", path.c_str(),
                 text.size());
}

/**
 * Compile one `.loop` DSL file into a KernelCase for the batch via
 * the same helper `macs serve` uses for HTTP loop sources
 * (server/kernel_source.h), so a loop sent over HTTP is compiled
 * byte-identically to the same file given here. Parse and compile
 * errors go to @p diags; returns false on failure.
 */
bool
loopFileKernel(const std::string &path, long trip,
               model::KernelCase &out, Diagnostics &diags)
{
    std::string text;
    {
        std::ifstream in(path);
        if (!in) {
            diags.error(detail::concat("cannot open '", path,
                                       "': ", std::strerror(errno)));
            return false;
        }
        std::ostringstream os;
        os << in.rdbuf();
        text = os.str();
    }
    return server::kernelFromLoopSource(text, path, trip, out, diags);
}

int
cmdBatch(const std::vector<std::string> &args)
{
    std::vector<int> ids(lfk::lfkIds());
    std::vector<std::string> variants, loop_files;
    std::vector<int> vls;
    std::string json_path, md_path, metrics_path, checkpoint_path;
    std::string fault_spec;
    long workers = 0, repeat = 1, retries = 2, trip = 512;
    long cache_cap = 0;
    double job_timeout_ms = 0.0;
    bool timing = false, use_cache = true, ids_given = false;
    sim::SimTier sim_tier = sim::SimOptions{}.tier;

    // Collect EVERY argument error before giving up, compiler-style.
    Diagnostics diags("macs batch");
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *what) -> const std::string & {
            static const std::string empty;
            if (i + 1 >= args.size()) {
                diags.error(
                    detail::concat(what, " expects an argument"));
                return empty;
            }
            return args[++i];
        };
        if (a == "--workers") {
            if (!parseInt(next("--workers"), workers) || workers < 0)
                diags.error("--workers expects a non-negative number");
        } else if (a == "--variant") {
            variants.push_back(next("--variant"));
        } else if (a == "--vl") {
            long vl = 0;
            if (!parseInt(next("--vl"), vl) || vl <= 0)
                diags.error("--vl expects a positive number");
            else
                vls.push_back(static_cast<int>(vl));
        } else if (a == "--repeat") {
            if (!parseInt(next("--repeat"), repeat) || repeat < 1)
                diags.error("--repeat expects a positive number");
        } else if (a == "--trip") {
            if (!parseInt(next("--trip"), trip) || trip < 1)
                diags.error("--trip expects a positive number");
        } else if (a == "--retries") {
            if (!parseInt(next("--retries"), retries) || retries < 0)
                diags.error("--retries expects a non-negative number");
        } else if (a == "--cache-cap") {
            if (!parseInt(next("--cache-cap"), cache_cap) ||
                cache_cap < 0)
                diags.error(
                    "--cache-cap expects a non-negative number");
        } else if (a == "--job-timeout") {
            if (!parseDouble(next("--job-timeout"), job_timeout_ms) ||
                job_timeout_ms < 0.0)
                diags.error(
                    "--job-timeout expects a non-negative number of "
                    "milliseconds");
        } else if (a == "--checkpoint") {
            checkpoint_path = next("--checkpoint");
        } else if (a == "--faults") {
            fault_spec = next("--faults");
        } else if (a == "--sim-tier") {
            const std::string &name = next("--sim-tier");
            if (!sim::parseSimTier(name, sim_tier))
                diags.error("--sim-tier expects 'reference' or "
                            "'fast'");
        } else if (a == "--json") {
            json_path = next("--json");
        } else if (a == "--md") {
            md_path = next("--md");
        } else if (a == "--metrics") {
            metrics_path = next("--metrics");
        } else if (a == "--timing") {
            timing = true;
        } else if (a == "--no-cache") {
            use_cache = false;
        } else if (a == "all") {
            ids = lfk::lfkIds();
            ids_given = true;
        } else if (a.size() > 5 &&
                   a.compare(a.size() - 5, 5, ".loop") == 0) {
            loop_files.push_back(a);
        } else if (startsWith(a, "--")) {
            diags.error(
                detail::concat("unknown batch option '", a, "'"));
        } else {
            // A comma-separated LFK id list, e.g. "1,7,12".
            std::vector<int> parsed;
            bool ok = true;
            for (const auto &part : split(a, ',')) {
                long id = 0;
                if (!parseInt(part, id)) {
                    diags.error(detail::concat(
                        "batch expects LFK ids, 'all', or .loop "
                        "files, got '",
                        a, "'"));
                    ok = false;
                    break;
                }
                parsed.push_back(static_cast<int>(id));
            }
            if (ok) {
                // Accumulate across arguments so `macs batch 1 2 3`
                // and `macs batch 1,2,3` mean the same job set (the
                // first id list still replaces the all-kernels
                // default).
                if (!ids_given)
                    ids.clear();
                ids.insert(ids.end(), parsed.begin(), parsed.end());
                ids_given = true;
            }
        }
    }
    for (const std::string &variant : variants) {
        try {
            (void)variantConfig(variant);
        } catch (const FatalError &e) {
            diags.error(e.what());
        }
    }
    // A fault plan given on the command line is validated here too, so
    // a bad spec is reported alongside every other argument problem.
    faults::FaultPlan fault_plan;
    if (!fault_spec.empty())
        fault_plan = faults::FaultPlan::parse(fault_spec, diags);
    diags.throwIfErrors();

    // VALIDATE EVERY INPUT PATH before spinning up workers: a missing
    // or malformed file is reported together with all the others, not
    // by dying on the first mid-batch.
    if (loop_files.empty() == false && !ids_given)
        ids.clear(); // file jobs given, no explicit ids: files only
    std::vector<model::KernelCase> file_kernels;
    for (const std::string &path : loop_files) {
        model::KernelCase kc;
        if (loopFileKernel(path, trip, kc, diags))
            file_kernels.push_back(std::move(kc));
    }
    diags.throwIfErrors();

    if (variants.empty())
        variants.push_back("baseline");
    if (vls.empty())
        vls.push_back(0); // machine default

    std::vector<pipeline::BatchJob> jobs;
    for (long rep = 0; rep < repeat; ++rep) {
        for (const std::string &variant : variants) {
            machine::MachineConfig cfg = variantConfig(variant);
            for (int vl : vls) {
                for (int id : ids) {
                    lfk::Kernel k = lfk::makeKernel(id);
                    pipeline::BatchJob job;
                    job.label = k.name;
                    if (vl > 0)
                        job.label += format("@vl%d", vl);
                    job.configName = variant;
                    job.kernel = lfk::toKernelCase(k);
                    job.config = cfg;
                    job.options.tier = sim_tier;
                    job.vectorLength = vl;
                    jobs.push_back(std::move(job));
                }
                for (const model::KernelCase &kc : file_kernels) {
                    pipeline::BatchJob job;
                    job.label = kc.name;
                    if (vl > 0)
                        job.label += format("@vl%d", vl);
                    job.configName = variant;
                    job.kernel = kc;
                    job.config = cfg;
                    job.options.tier = sim_tier;
                    job.vectorLength = vl;
                    jobs.push_back(std::move(job));
                }
            }
        }
    }

    pipeline::EngineOptions opt;
    opt.workers = static_cast<size_t>(workers);
    opt.useCache = use_cache;
    opt.maxRetries = static_cast<int>(retries);
    opt.jobTimeoutMs = job_timeout_ms;
    opt.cacheCapacity = static_cast<size_t>(cache_cap);

    std::unique_ptr<faults::FaultInjector> injector;
    if (!fault_spec.empty()) {
        injector =
            std::make_unique<faults::FaultInjector>(fault_plan);
        opt.faults = injector.get();
    }

    std::unique_ptr<pipeline::CheckpointJournal> journal;
    if (!checkpoint_path.empty()) {
        // The journal consults the same injector as the engine for
        // its cache-corrupt / io-write-fail sites.
        journal = std::make_unique<pipeline::CheckpointJournal>(
            checkpoint_path, nullptr,
            injector != nullptr ? injector.get()
                                : &faults::FaultInjector::global());
        pipeline::CheckpointJournal::LoadStats ls = journal->open();
        if (ls.loaded + ls.corrupt + ls.torn > 0)
            std::fprintf(stderr,
                         "checkpoint '%s': %zu record(s) resumed, "
                         "%zu corrupt, %zu torn\n",
                         checkpoint_path.c_str(), ls.loaded,
                         ls.corrupt, ls.torn);
        opt.checkpoint = journal.get();
    }

    pipeline::BatchEngine engine(opt);
    pipeline::BatchResult result = engine.run(jobs);

    if (json_path.empty() && md_path.empty() && metrics_path.empty())
        md_path = "-"; // default: markdown on stdout
    if (!json_path.empty())
        writeReport(json_path,
                    pipeline::renderBatchJson(result, timing));
    if (!md_path.empty())
        writeReport(md_path,
                    pipeline::renderBatchMarkdown(result, timing));
    if (!metrics_path.empty()) {
        // Gap attribution as macs_model_* gauges. Recorded into a
        // fresh registry from the analysis results only — a pure
        // function of the job content, so the bytes are identical for
        // any --workers value (the engine's scheduling metrics go to
        // the global registry, not here).
        obs::Registry reg;
        for (const pipeline::JobResult &r : result.results)
            if (r.ok())
                model::recordGapMetrics(reg, *r.analysis, r.configName,
                                        r.label);
        writeReport(metrics_path, obs::renderJson(reg));
    }
    std::fprintf(stderr, "%s\n",
                 pipeline::renderStatsLine(result.stats).c_str());

    // The error manifest: every failed job, its classification, and
    // how many attempts it was given.
    if (!result.errors.empty()) {
        std::fprintf(stderr,
                     "error manifest (%zu of %zu job(s) failed):\n",
                     result.errors.size(), result.stats.jobs);
        for (const pipeline::ErrorRecord &e : result.errors)
            std::fprintf(
                stderr, "  job #%zu %s [%s]: %s (%s, %d attempt%s)\n",
                e.jobIndex, e.label.c_str(), e.configName.c_str(),
                e.message.c_str(), pipeline::errorKindName(e.kind),
                e.attempts, e.attempts == 1 ? "" : "s");
    }
    // Exit-code contract (docs/ROBUSTNESS.md): 0 clean, 2 partial
    // failure (some valid results), 3 total failure.
    return result.exitCode();
}

int
cmdSweep(const std::vector<std::string> &args)
{
    std::vector<int> ids(lfk::lfkIds());
    std::vector<std::string> machine_args, variants, loop_files;
    std::string json_path, md_path;
    long workers = 0, trip = 512, vl = 0, cache_cap = 0;
    bool timing = false, use_cache = true, ids_given = false;
    sim::SimTier sim_tier = sim::SimOptions{}.tier;

    // Collect EVERY argument error before giving up, compiler-style.
    Diagnostics diags("macs sweep");
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *what) -> const std::string & {
            static const std::string empty;
            if (i + 1 >= args.size()) {
                diags.error(
                    detail::concat(what, " expects an argument"));
                return empty;
            }
            return args[++i];
        };
        if (a == "--machines") {
            machine_args.push_back(next("--machines"));
        } else if (a == "--variant") {
            variants.push_back(next("--variant"));
        } else if (a == "--workers") {
            if (!parseInt(next("--workers"), workers) || workers < 0)
                diags.error("--workers expects a non-negative number");
        } else if (a == "--vl") {
            if (!parseInt(next("--vl"), vl) || vl <= 0)
                diags.error("--vl expects a positive number");
        } else if (a == "--trip") {
            if (!parseInt(next("--trip"), trip) || trip < 1)
                diags.error("--trip expects a positive number");
        } else if (a == "--cache-cap") {
            if (!parseInt(next("--cache-cap"), cache_cap) ||
                cache_cap < 0)
                diags.error(
                    "--cache-cap expects a non-negative number");
        } else if (a == "--sim-tier") {
            const std::string &name = next("--sim-tier");
            if (!sim::parseSimTier(name, sim_tier))
                diags.error("--sim-tier expects 'reference' or "
                            "'fast'");
        } else if (a == "--json") {
            json_path = next("--json");
        } else if (a == "--md") {
            md_path = next("--md");
        } else if (a == "--timing") {
            timing = true;
        } else if (a == "--no-cache") {
            use_cache = false;
        } else if (a == "all") {
            ids = lfk::lfkIds();
            ids_given = true;
        } else if (a.size() > 8 &&
                   a.compare(a.size() - 8, 8, ".machine") == 0) {
            machine_args.push_back(a);
        } else if (a.size() > 5 &&
                   a.compare(a.size() - 5, 5, ".loop") == 0) {
            loop_files.push_back(a);
        } else if (startsWith(a, "--")) {
            diags.error(
                detail::concat("unknown sweep option '", a, "'"));
        } else {
            std::vector<int> parsed;
            bool ok = true;
            for (const auto &part : split(a, ',')) {
                long id = 0;
                if (!parseInt(part, id)) {
                    diags.error(detail::concat(
                        "sweep expects LFK ids, 'all', .loop files, "
                        "or .machine files, got '",
                        a, "'"));
                    ok = false;
                    break;
                }
                parsed.push_back(static_cast<int>(id));
            }
            if (ok) {
                if (!ids_given)
                    ids.clear();
                ids.insert(ids.end(), parsed.begin(), parsed.end());
                ids_given = true;
            }
        }
    }
    if (machine_args.empty() && variants.empty())
        diags.error("sweep needs at least one --machines FILE|DIR "
                    "or --variant NAME");
    diags.throwIfErrors();

    // Expand directories to their *.machine files (sorted), then
    // parse and validate EVERY machine before any job runs; a
    // malformed file is reported alongside all the others.
    std::vector<std::string> machine_paths;
    for (const std::string &arg : machine_args) {
        std::error_code ec;
        if (std::filesystem::is_directory(arg, ec)) {
            for (const std::string &p :
                 machine::listMachineFiles(arg, diags))
                machine_paths.push_back(p);
        } else {
            machine_paths.push_back(arg);
        }
    }
    pipeline::SweepRequest request;
    for (const std::string &path : machine_paths) {
        machine::MachineFile mf;
        if (machine::loadMachineFile(path, mf, diags))
            request.machines.push_back({mf.name, mf.description, path,
                                        mf.config});
    }
    for (const std::string &variant : variants) {
        try {
            request.machines.push_back(
                {variant, "built-in variant", "<builtin>",
                 variantConfig(variant)});
        } catch (const FatalError &e) {
            diags.error(e.what());
        }
    }
    std::vector<model::KernelCase> file_kernels;
    for (const std::string &path : loop_files) {
        model::KernelCase kc;
        if (loopFileKernel(path, trip, kc, diags))
            file_kernels.push_back(std::move(kc));
    }
    if (loop_files.empty() == false && !ids_given)
        ids.clear(); // file kernels given, no explicit ids: files only
    for (int id : ids)
        request.kernels.push_back(lfk::toKernelCase(lfk::makeKernel(id)));
    for (model::KernelCase &kc : file_kernels)
        request.kernels.push_back(std::move(kc));
    request.options.tier = sim_tier;
    request.vectorLength = static_cast<int>(vl);
    if (!pipeline::validateSweep(request, diags) || diags.hasErrors())
        diags.throwIfErrors();

    pipeline::EngineOptions opt;
    opt.workers = static_cast<size_t>(workers);
    opt.useCache = use_cache;
    opt.cacheCapacity = static_cast<size_t>(cache_cap);
    pipeline::BatchEngine engine(opt);
    pipeline::SweepResult result = pipeline::runSweep(request, engine);

    if (json_path.empty() && md_path.empty())
        md_path = "-"; // default: markdown on stdout
    if (!json_path.empty())
        writeReport(json_path,
                    pipeline::renderSweepJson(result, timing));
    if (!md_path.empty())
        writeReport(md_path,
                    pipeline::renderSweepMarkdown(result, timing));
    std::fprintf(stderr, "%s\n",
                 pipeline::renderStatsLine(result.stats).c_str());
    return result.exitCode();
}

#ifndef MACS_VERSION_STRING
#define MACS_VERSION_STRING "dev"
#endif

int
cmdVersion()
{
    // Build version plus every stable schema this binary emits, so a
    // consumer can check compatibility before parsing any output.
    std::printf("macs %s\n", MACS_VERSION_STRING);
    std::printf("schemas: macs-batch-v1, macs-sweep-v1, "
                "macs-analysis-v1, macs-metrics-v1, macs-trace-v1, "
                "macs-mp-v1, macs-error-v1, macs-health-v1, "
                "macs-version-v1\n");
    return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void
onStopSignal(int)
{
    g_stop_requested = 1;
}

int
cmdServe(const std::vector<std::string> &args)
{
    std::string host = "127.0.0.1", checkpoint_path, fault_spec;
    std::string port_file, core = "evented";
    long port = 8080, workers = 0, queue = 64, cache_cap = 1024;
    long request_timeout = 5000, retries = 2, trip = 512;
    long max_body = 0, shards = 0, max_conns = 4096;
    long processes = 1, heartbeat_ms = 100, liveness_ms = 2000;
    long restart_budget = 8, drain_timeout = 30000;
    double job_timeout_ms = 0.0;

    Diagnostics diags("macs serve");
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *what) -> const std::string & {
            static const std::string empty;
            if (i + 1 >= args.size()) {
                diags.error(
                    detail::concat(what, " expects an argument"));
                return empty;
            }
            return args[++i];
        };
        if (a == "--host") {
            host = next("--host");
        } else if (a == "--port") {
            if (!parseInt(next("--port"), port) || port < 0 ||
                port > 65535)
                diags.error("--port expects a port number (0 = "
                            "ephemeral)");
        } else if (a == "--port-file") {
            port_file = next("--port-file");
        } else if (a == "--workers") {
            if (!parseInt(next("--workers"), workers) || workers < 0)
                diags.error("--workers expects a non-negative number");
        } else if (a == "--queue") {
            if (!parseInt(next("--queue"), queue) || queue < 1)
                diags.error("--queue expects a positive number");
        } else if (a == "--shards") {
            if (!parseInt(next("--shards"), shards) || shards < 0)
                diags.error("--shards expects a non-negative number "
                            "(0 = auto)");
        } else if (a == "--processes") {
            if (!parseInt(next("--processes"), processes) ||
                processes < 1 || processes > supervisor::kMaxWorkers)
                diags.error(format(
                    "--processes expects a number in [1, %d]",
                    supervisor::kMaxWorkers));
        } else if (a == "--heartbeat-ms") {
            if (!parseInt(next("--heartbeat-ms"), heartbeat_ms) ||
                heartbeat_ms < 1)
                diags.error("--heartbeat-ms expects a positive number "
                            "of milliseconds");
        } else if (a == "--liveness-ms") {
            if (!parseInt(next("--liveness-ms"), liveness_ms) ||
                liveness_ms < 1)
                diags.error("--liveness-ms expects a positive number "
                            "of milliseconds");
        } else if (a == "--restart-budget") {
            if (!parseInt(next("--restart-budget"), restart_budget) ||
                restart_budget < 0)
                diags.error(
                    "--restart-budget expects a non-negative number");
        } else if (a == "--drain-timeout") {
            if (!parseInt(next("--drain-timeout"), drain_timeout) ||
                drain_timeout < 1)
                diags.error("--drain-timeout expects a positive "
                            "number of milliseconds");
        } else if (a == "--max-connections") {
            if (!parseInt(next("--max-connections"), max_conns) ||
                max_conns < 1)
                diags.error(
                    "--max-connections expects a positive number");
        } else if (a == "--core") {
            core = next("--core");
            if (core != "evented" && core != "threaded")
                diags.error("--core expects 'evented' or 'threaded'");
        } else if (a == "--cache-cap") {
            if (!parseInt(next("--cache-cap"), cache_cap) ||
                cache_cap < 0)
                diags.error(
                    "--cache-cap expects a non-negative number");
        } else if (a == "--request-timeout") {
            if (!parseInt(next("--request-timeout"),
                          request_timeout) ||
                request_timeout < 1)
                diags.error("--request-timeout expects a positive "
                            "number of milliseconds");
        } else if (a == "--job-timeout") {
            if (!parseDouble(next("--job-timeout"), job_timeout_ms) ||
                job_timeout_ms < 0.0)
                diags.error(
                    "--job-timeout expects a non-negative number of "
                    "milliseconds");
        } else if (a == "--retries") {
            if (!parseInt(next("--retries"), retries) || retries < 0)
                diags.error("--retries expects a non-negative number");
        } else if (a == "--trip") {
            if (!parseInt(next("--trip"), trip) || trip < 1)
                diags.error("--trip expects a positive number");
        } else if (a == "--max-body") {
            if (!parseInt(next("--max-body"), max_body) ||
                max_body < 1)
                diags.error(
                    "--max-body expects a positive number of bytes");
        } else if (a == "--checkpoint") {
            checkpoint_path = next("--checkpoint");
        } else if (a == "--faults") {
            fault_spec = next("--faults");
        } else {
            diags.error(
                detail::concat("unknown serve option '", a, "'"));
        }
    }
    if (liveness_ms <= heartbeat_ms)
        diags.error("--liveness-ms must exceed --heartbeat-ms");
    faults::FaultPlan fault_plan;
    if (!fault_spec.empty())
        fault_plan = faults::FaultPlan::parse(fault_spec, diags);
    diags.throwIfErrors();

    // Socket sends pass MSG_NOSIGNAL, but the supervised heartbeat
    // pipe uses plain write(2): a vanished peer must be EPIPE, never
    // a process-killing SIGPIPE.
    server::ignoreSigpipe();

    // Options shared by the single-process server and every
    // supervised worker; the caller plugs in the per-process bits
    // (port, fleet, injector, journal).
    auto makeOptions = [&](faults::FaultInjector *inj,
                           pipeline::CheckpointJournal *jr) {
        server::ServerOptions opt;
        opt.host = host;
        opt.port = static_cast<int>(port);
        opt.workers = static_cast<size_t>(workers);
        opt.queueCapacity = static_cast<size_t>(queue);
        opt.core = core == "threaded" ? server::CoreMode::Threaded
                                      : server::CoreMode::Evented;
        opt.shards = static_cast<size_t>(shards);
        opt.maxConnections = static_cast<size_t>(max_conns);
        opt.requestTimeoutMs = static_cast<int>(request_timeout);
        opt.defaultTrip = trip;
        opt.versionString = MACS_VERSION_STRING;
        if (max_body > 0)
            opt.limits.maxBodyBytes = static_cast<size_t>(max_body);
        opt.service.maxRetries = static_cast<int>(retries);
        opt.service.jobTimeoutMs = job_timeout_ms;
        opt.service.cacheCapacity = static_cast<size_t>(cache_cap);
        opt.service.checkpoint = jr;
        opt.service.faults = inj;
        opt.faults = inj;
        return opt;
    };
    auto openJournal =
        [&](const std::string &path, const faults::FaultInjector *inj)
        -> std::unique_ptr<pipeline::CheckpointJournal> {
        auto journal = std::make_unique<pipeline::CheckpointJournal>(
            path, nullptr,
            inj != nullptr ? inj : &faults::FaultInjector::global());
        pipeline::CheckpointJournal::LoadStats ls = journal->open();
        if (ls.loaded + ls.corrupt + ls.torn > 0)
            std::fprintf(stderr,
                         "checkpoint '%s': %zu record(s) resumed, "
                         "%zu corrupt, %zu torn\n",
                         path.c_str(), ls.loaded, ls.corrupt,
                         ls.torn);
        return journal;
    };

    // Graceful drain on SIGTERM/SIGINT (docs/SERVER.md): the handler
    // only flips an atomic flag; this thread notices it, stops
    // accepting, lets every in-flight request finish, and exits 0.
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);

    if (processes > 1) {
        // Supervised fleet (docs/SERVER.md "Multi-process serving").
        // A SO_REUSEPORT holder socket resolves an ephemeral --port 0
        // to the concrete port every worker must share; it never
        // accepts, and is closed the moment the whole fleet is ready
        // (on_ready below) — before the port file invites clients in.
        server::Listener holder;
        holder.open(host, static_cast<int>(port), 1, true);
        const int fleet_port = holder.boundPort();

        supervisor::SupervisorOptions sup;
        sup.processes = static_cast<int>(processes);
        sup.heartbeatIntervalMs = static_cast<int>(heartbeat_ms);
        sup.livenessTimeoutMs = static_cast<int>(liveness_ms);
        sup.restart.budget = static_cast<int>(restart_budget);
        sup.drainTimeoutMs = static_cast<int>(drain_timeout);
        sup.stopFlag = &g_stop_requested;

        auto worker_main =
            [&](const supervisor::WorkerContext &ctx) -> int {
            // Child process. The inherited stop flag and holder fd
            // belong to the supervisor's story: reset ours, drop the
            // holder.
            g_stop_requested = 0;
            holder.close();

            std::unique_ptr<faults::FaultInjector> winjector;
            if (!fault_spec.empty())
                winjector =
                    std::make_unique<faults::FaultInjector>(fault_plan);
            supervisor::armProcFaults(
                winjector != nullptr ? *winjector
                                     : faults::FaultInjector::global(),
                ctx.slot, ctx.incarnation);

            // Per-worker journal: a shared append-only file would
            // interleave records across processes.
            std::unique_ptr<pipeline::CheckpointJournal> wjournal;
            if (!checkpoint_path.empty())
                wjournal = openJournal(
                    detail::concat(checkpoint_path, ".w",
                                   std::to_string(ctx.slot)),
                    winjector.get());

            server::ServerOptions wopt =
                makeOptions(winjector.get(), wjournal.get());
            wopt.port = fleet_port;
            wopt.reusePort = true;
            wopt.workerIndex = ctx.slot;
            wopt.fleet = ctx.fleet;

            server::Server srv(wopt);
            srv.start();

            // Heartbeat: one byte per interval. The FIRST beat
            // doubles as the readiness signal (our SO_REUSEPORT
            // socket is bound and accepting). EPIPE means the
            // supervisor is gone — self-drain rather than serve on
            // as an orphan.
            while (g_stop_requested == 0) {
                char beat = 1;
                if (::write(ctx.heartbeatFd, &beat, 1) < 0 &&
                    errno == EPIPE)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        ctx.heartbeatIntervalMs));
            }
            srv.drain();
            server::closeFd(ctx.heartbeatFd);
            std::fprintf(stderr,
                         "macs serve: worker %d: drained cleanly\n",
                         ctx.slot);
            return 0;
        };

        bool port_file_failed = false;
        supervisor::Supervisor fleet(sup, worker_main, [&] {
            holder.close();
            if (!port_file.empty()) {
                std::ofstream pf(port_file);
                if (pf)
                    pf << fleet_port << "\n";
                else {
                    std::fprintf(
                        stderr,
                        "macs serve: cannot write port file '%s'\n",
                        port_file.c_str());
                    port_file_failed = true;
                    g_stop_requested = 1;
                }
            }
            std::fprintf(stderr,
                         "macs serve: supervising %ld workers on "
                         "%s:%d (core %s, queue %ld, cache cap "
                         "%ld)\n",
                         processes, host.c_str(), fleet_port,
                         core.c_str(), queue, cache_cap);
        });
        int rc = fleet.run();
        return port_file_failed && rc == 0 ? 1 : rc;
    }

    std::unique_ptr<faults::FaultInjector> injector;
    if (!fault_spec.empty())
        injector = std::make_unique<faults::FaultInjector>(fault_plan);

    std::unique_ptr<pipeline::CheckpointJournal> journal;
    if (!checkpoint_path.empty())
        journal = openJournal(checkpoint_path, injector.get());

    server::Server srv(makeOptions(injector.get(), journal.get()));

    srv.start();
    if (!port_file.empty()) {
        std::ofstream pf(port_file);
        if (!pf)
            fatal("cannot write port file '", port_file, "'");
        pf << srv.port() << "\n";
    }
    std::fprintf(stderr,
                 "macs serve: listening on %s:%d "
                 "(core %s, queue %ld, cache cap %ld)\n",
                 host.c_str(), srv.port(), core.c_str(), queue,
                 cache_cap);

    while (g_stop_requested == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::fprintf(stderr, "macs serve: draining...\n");
    srv.drain();
    std::fprintf(stderr, "macs serve: drained cleanly\n");
    return 0;
}

int
cmdHttp(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        fatal("http expects: macs http <METHOD> <target> --port N "
              "[--host H] [--data STR | --body FILE] [--retry N] "
              "[--timeout MS] [--content-type CT]");
    const std::string &method = args[0];
    const std::string &target = args[1];
    std::string host = "127.0.0.1", data, body_path;
    std::string content_type = "application/json";
    long port = 8080, timeout = 5000, attempts = 1;

    Diagnostics diags("macs http");
    for (size_t i = 2; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *what) -> const std::string & {
            static const std::string empty;
            if (i + 1 >= args.size()) {
                diags.error(
                    detail::concat(what, " expects an argument"));
                return empty;
            }
            return args[++i];
        };
        if (a == "--host") {
            host = next("--host");
        } else if (a == "--port") {
            if (!parseInt(next("--port"), port) || port < 1 ||
                port > 65535)
                diags.error("--port expects a port number");
        } else if (a == "--data") {
            data = next("--data");
        } else if (a == "--body") {
            body_path = next("--body");
        } else if (a == "--retry") {
            if (!parseInt(next("--retry"), attempts) || attempts < 1)
                diags.error("--retry expects a positive number of "
                            "attempts");
        } else if (a == "--timeout") {
            if (!parseInt(next("--timeout"), timeout) || timeout < 1)
                diags.error("--timeout expects a positive number of "
                            "milliseconds");
        } else if (a == "--content-type") {
            content_type = next("--content-type");
        } else {
            diags.error(
                detail::concat("unknown http option '", a, "'"));
        }
    }
    diags.throwIfErrors();

    if (!body_path.empty()) {
        if (body_path == "-") {
            std::ostringstream os;
            os << std::cin.rdbuf();
            data = os.str();
        } else {
            std::ifstream in(body_path);
            if (!in)
                fatal("cannot open '", body_path,
                      "': ", std::strerror(errno));
            std::ostringstream os;
            os << in.rdbuf();
            data = os.str();
        }
    }

    server::HttpClient client(host, static_cast<int>(port),
                              static_cast<int>(timeout));
    server::ClientResponse response;
    bool ok = attempts > 1
                  ? client.requestWithRetry(method, target, data,
                                            response,
                                            static_cast<int>(attempts))
                  : client.request(method, target, data, response,
                                   content_type);
    if (!ok) {
        std::fprintf(stderr, "macs http: no response from %s:%ld%s\n",
                     host.c_str(), port, target.c_str());
        return 1;
    }
    std::fprintf(stderr, "HTTP %d\n", response.status);
    std::fputs(response.body.c_str(), stdout);
    return response.status >= 200 && response.status < 300 ? 0 : 2;
}

void
usage()
{
    std::printf(
        "usage: macs <command> [args]\n"
        "  kernels                 list the LFK workloads\n"
        "  analyze <id>            MACS hierarchy report for one LFK\n"
        "  mp [id] [opts]          multi-CPU contention run "
        "(docs/MULTICPU.md; --kernel N,\n"
        "                          --cpus N, --mix independent|"
        "lockstep|strip,\n"
        "                          --engine coupled|analytic, "
        "--machine FILE, --json PATH)\n"
        "  compile <file> [opts]   compile a DSL loop "
        "(--trip N, --array n:w, --scalar, --unroll N)\n"
        "  bounds <file.s>         MAC/MACS/MACS-D bounds of assembly\n"
        "  simulate <file.s>       run assembly on the simulated C-240 "
        "[--trace] [--profile]\n"
        "  trace <kernel>          per-pipe Chrome trace of one run "
        "(lfk1 | 7 | file.s;\n"
        "                          --chrome PATH, --metrics PATH, "
        "--variant V)\n"
        "  batch [ids|all|files.loop] [opts]\n"
        "                          parallel batch analysis "
        "(--workers N, --variant V, --vl N,\n"
        "                          --repeat N, --trip N, --json PATH, "
        "--md PATH, --metrics PATH,\n"
        "                          --timing, --no-cache, "
        "--checkpoint FILE, --job-timeout MS,\n"
        "                          --retries N, --cache-cap N, "
        "--faults SPEC, --sim-tier T)\n"
        "  sweep [ids|all|files.loop] [opts]\n"
        "                          kernel x machine sweep matrix "
        "(--machines FILE|DIR,\n"
        "                          --variant V, --workers N, --vl N, "
        "--trip N, --json PATH,\n"
        "                          --md PATH, --timing, --no-cache, "
        "--cache-cap N, --sim-tier T)\n"
        "  serve [opts]            HTTP analysis server "
        "(docs/SERVER.md; --host H, --port N,\n"
        "                          --port-file PATH, --workers N, "
        "--queue N, --cache-cap N,\n"
        "                          --shards N, --core evented|"
        "threaded, --max-connections N,\n"
        "                          --request-timeout MS, "
        "--job-timeout MS, --retries N, --trip N,\n"
        "                          --max-body BYTES, "
        "--checkpoint FILE, --faults SPEC,\n"
        "                          --processes N, --heartbeat-ms MS, "
        "--liveness-ms MS,\n"
        "                          --restart-budget N, "
        "--drain-timeout MS)\n"
        "  http <method> <target>  in-process HTTP client for serve "
        "(--port N, --host H,\n"
        "                          --data STR, --body FILE, "
        "--retry N, --timeout MS)\n"
        "  version                 print the build version and the "
        "emitted schema versions\n"
        "exit codes (docs/ROBUSTNESS.md): 0 = success; 1 = invocation "
        "or input error\n"
        "  (bad arguments, unreadable files, multi-error "
        "diagnostics); for `batch`:\n"
        "  0 = every job succeeded, 2 = partial failure (some valid "
        "results),\n"
        "  3 = total failure (no job produced a result). `serve` "
        "mirrors the same\n"
        "  0/2/3 per request in the X-MACS-Exit-Code response "
        "header; a supervised\n"
        "  fleet (--processes > 1) exits 4 only when every worker "
        "slot is dead.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    // Exit-code contract: 1 = invocation / input error (including the
    // multi-error diagnostics report), and for `batch` 0/2/3 =
    // clean / partial / total failure (docs/ROBUSTNESS.md).
    if (argc < 2) {
        usage();
        return 1;
    }
    std::vector<std::string> args(argv + 2, argv + argc);
    std::string cmd = argv[1];
    try {
        if (cmd == "kernels")
            return cmdKernels();
        if (cmd == "analyze" && !args.empty())
            return cmdAnalyze(args[0]);
        if (cmd == "mp")
            return cmdMp(args);
        if (cmd == "compile")
            return cmdCompile(args);
        if (cmd == "bounds" && !args.empty())
            return cmdBounds(args[0]);
        if (cmd == "simulate")
            return cmdSimulate(args);
        if (cmd == "trace")
            return cmdTrace(args);
        if (cmd == "batch")
            return cmdBatch(args);
        if (cmd == "sweep")
            return cmdSweep(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "http")
            return cmdHttp(args);
        if (cmd == "version" || cmd == "--version")
            return cmdVersion();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "macs: %s\n", e.what());
        return 1;
    }
    usage();
    return 1;
}
