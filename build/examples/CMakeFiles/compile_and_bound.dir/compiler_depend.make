# Empty compiler generated dependencies file for compile_and_bound.
# This may be replaced when dependencies are built.
