#include "compiler/loop_parser.h"

#include <cctype>
#include <vector>

#include "support/diag.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::compiler {

namespace {

/** Token kinds produced by the lexer. */
enum class Tok
{
    Ident,
    Number,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Equals,
    End,
};

struct Token
{
    Tok kind;
    std::string text;
    double value = 0.0;
    SourceLoc loc; ///< 1-based position of the first character
};

/**
 * Thrown inside the parser to abandon the current statement after an
 * error was recorded; caught at the statement boundary, where the
 * parser resynchronizes on the next source line.
 */
struct ParseBailout
{
};

class Lexer
{
  public:
    Lexer(std::string_view text, Diagnostics &diags)
        : text_(text), diags_(diags)
    {
        advance();
    }

    const Token &peek() const { return current_; }

    Token
    next()
    {
        Token t = current_;
        advance();
        return t;
    }

    bool
    accept(Tok kind)
    {
        if (current_.kind != kind)
            return false;
        advance();
        return true;
    }

    Token
    expect(Tok kind, const char *what)
    {
        if (current_.kind != kind) {
            diags_.error(current_.loc,
                         detail::concat("expected ", what, " near '",
                                        current_.text, "'"));
            throw ParseBailout{};
        }
        return next();
    }

  private:
    SourceLoc
    here() const
    {
        return {line_, pos_ - line_start_ + 1};
    }

    void
    advance()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            if (text_[pos_] == '\n') {
                ++line_;
                line_start_ = pos_ + 1;
            }
            ++pos_;
        }
        if (pos_ >= text_.size()) {
            current_ = {Tok::End, "<end>", 0.0, here()};
            return;
        }
        char c = text_[pos_];
        SourceLoc loc = here();
        auto single = [&](Tok k) {
            current_ = {k, std::string(1, c), 0.0, loc};
            ++pos_;
        };
        switch (c) {
          case '+':
            return single(Tok::Plus);
          case '-':
            return single(Tok::Minus);
          case '*':
            return single(Tok::Star);
          case '/':
            return single(Tok::Slash);
          case '(':
            return single(Tok::LParen);
          case ')':
            return single(Tok::RParen);
          case '=':
            return single(Tok::Equals);
          default:
            break;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
            size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E' ||
                    ((text_[pos_] == '+' || text_[pos_] == '-') &&
                     (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
                ++pos_;
            std::string num(text_.substr(start, pos_ - start));
            double v = 0;
            if (!parseDouble(num, v)) {
                diags_.error(loc, detail::concat("bad number '", num, "'"));
                v = 0.0; // recover: pretend it was zero
            }
            current_ = {Tok::Number, num, v, loc};
            return;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_'))
                ++pos_;
            current_ = {Tok::Ident,
                        std::string(text_.substr(start, pos_ - start)),
                        0.0, loc};
            return;
        }
        diags_.error(loc, detail::concat("unexpected character '",
                                         std::string(1, c), "'"));
        ++pos_; // recover: skip the offending character
        advance();
    }

    std::string_view text_;
    Diagnostics &diags_;
    size_t pos_ = 0;
    size_t line_ = 1;
    size_t line_start_ = 0;
    Token current_{Tok::End, "", 0.0, SourceLoc{}};
};

class Parser
{
  public:
    Parser(std::string_view text, Diagnostics &diags)
        : lex_(text, diags), diags_(diags)
    {
    }

    Loop
    parse()
    {
        Loop loop;
        parseHeader(loop);
        var_ = loop.var;

        bool saw_end = false;
        while (true) {
            if (atKeyword("end")) {
                lex_.next();
                saw_end = true;
                break;
            }
            if (lex_.peek().kind == Tok::End || diags_.atErrorLimit())
                break;
            SourceLoc stmt_loc = lex_.peek().loc;
            try {
                loop.stmts.push_back(parseStmt());
            } catch (const ParseBailout &) {
                synchronize(stmt_loc.line);
            }
        }
        if (!saw_end && !diags_.atErrorLimit())
            diags_.error(lex_.peek().loc, "missing END");
        if (loop.stmts.empty() && !diags_.hasErrors())
            diags_.error(lex_.peek().loc, "empty loop body");
        return loop;
    }

  private:
    bool
    atKeyword(const char *kw) const
    {
        return lex_.peek().kind == Tok::Ident &&
               toLower(lex_.peek().text) == kw;
    }

    /** "DO var [BY stride]"; on failure, recover at the next line. */
    void
    parseHeader(Loop &loop)
    {
        SourceLoc start = lex_.peek().loc;
        try {
            Token kw = lex_.expect(Tok::Ident, "DO");
            if (toLower(kw.text) != "do") {
                diags_.error(kw.loc,
                             detail::concat("loop must start with DO, got '",
                                            kw.text, "'"));
                throw ParseBailout{};
            }
            loop.var = lex_.expect(Tok::Ident, "loop variable").text;
            if (atKeyword("by")) {
                lex_.next();
                bool negative = lex_.accept(Tok::Minus);
                Token s = lex_.expect(Tok::Number, "stride");
                loop.stride = static_cast<long>(s.value);
                if (negative)
                    loop.stride = -loop.stride;
                if (loop.stride == 0)
                    diags_.error(s.loc, "stride must be nonzero");
            }
        } catch (const ParseBailout &) {
            loop.var.clear(); // unknown; checkVar() degrades gracefully
            synchronize(start.line);
        }
    }

    /** Skip tokens until a line after @p line (panic-mode recovery). */
    void
    synchronize(size_t line)
    {
        while (lex_.peek().kind != Tok::End &&
               lex_.peek().loc.line <= line && !atKeyword("end"))
            lex_.next();
    }

    Stmt
    parseStmt()
    {
        Stmt s;
        Token name = lex_.expect(Tok::Ident, "assignment target");
        s.dstName = name.text;
        if (lex_.peek().kind == Tok::LParen) {
            s.arrayDst = true;
            auto [coef, offset] = parseIndex();
            s.dstCoef = coef;
            s.dstOffset = offset;
        } else {
            s.arrayDst = false;
        }
        lex_.expect(Tok::Equals, "'='");
        s.rhs = parseExpr();
        return s;
    }

    /** Parse "(...)" affine index; returns {coef, offset}. */
    std::pair<long, long>
    parseIndex()
    {
        lex_.expect(Tok::LParen, "'('");
        long coef = 0, offset = 0;

        // Forms: var | int*var | var+int | var-int | int*var+int | int
        if (lex_.peek().kind == Tok::Number) {
            long v = static_cast<long>(lex_.next().value);
            if (lex_.accept(Tok::Star)) {
                Token var = lex_.expect(Tok::Ident, "loop variable");
                checkVar(var);
                coef = v;
            } else {
                offset = v; // constant index (loop-invariant element)
                coef = 0;
            }
        } else {
            Token var = lex_.expect(Tok::Ident, "loop variable");
            checkVar(var);
            coef = 1;
        }
        if (coef != 0) {
            if (lex_.accept(Tok::Plus))
                offset = static_cast<long>(
                    lex_.expect(Tok::Number, "offset").value);
            else if (lex_.accept(Tok::Minus))
                offset = -static_cast<long>(
                    lex_.expect(Tok::Number, "offset").value);
        }
        lex_.expect(Tok::RParen, "')'");
        return {coef, offset};
    }

    void
    checkVar(const Token &name)
    {
        // var_ is empty when the DO header itself failed to parse; in
        // that case any index variable is accepted to avoid a cascade.
        if (!var_.empty() && name.text != var_)
            diags_.error(name.loc,
                         detail::concat("index variable '", name.text,
                                        "' is not the loop variable '",
                                        var_, "'"));
    }

    ExprPtr
    parseExpr()
    {
        ExprPtr e = parseTerm();
        while (true) {
            if (lex_.accept(Tok::Plus))
                e = add(std::move(e), parseTerm());
            else if (lex_.accept(Tok::Minus))
                e = sub(std::move(e), parseTerm());
            else
                return e;
        }
    }

    ExprPtr
    parseTerm()
    {
        ExprPtr e = parseUnary();
        while (true) {
            if (lex_.accept(Tok::Star))
                e = mul(std::move(e), parseUnary());
            else if (lex_.accept(Tok::Slash))
                e = div(std::move(e), parseUnary());
            else
                return e;
        }
    }

    ExprPtr
    parseUnary()
    {
        if (lex_.accept(Tok::Minus))
            return neg(parseUnary());
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        if (lex_.peek().kind == Tok::Number)
            return number(lex_.next().value);
        if (lex_.accept(Tok::LParen)) {
            ExprPtr e = parseExpr();
            lex_.expect(Tok::RParen, "')'");
            return e;
        }
        Token name = lex_.expect(Tok::Ident, "identifier");
        if (lex_.peek().kind == Tok::LParen) {
            auto [coef, offset] = parseIndex();
            return array(name.text, coef, offset);
        }
        return scalar(name.text);
    }

    Lexer lex_;
    Diagnostics &diags_;
    std::string var_;
};

} // namespace

Loop
parseLoop(std::string_view text, Diagnostics &diags)
{
    Parser p(text, diags);
    return p.parse();
}

Loop
parseLoop(std::string_view text)
{
    Diagnostics diags;
    diags.setSource(text, "<loop>");
    Loop loop = parseLoop(text, diags);
    diags.throwIfErrors();
    return loop;
}

} // namespace macs::compiler
