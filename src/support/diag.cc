#include "support/diag.h"

#include <sstream>

namespace macs {

const char *
diagSeverityName(DiagSeverity severity)
{
    switch (severity) {
      case DiagSeverity::Error:
        return "error";
      case DiagSeverity::Warning:
        return "warning";
      case DiagSeverity::Note:
        return "note";
    }
    return "unknown";
}

std::string
Diagnostic::render() const
{
    std::ostringstream os;
    os << (file.empty() ? "<input>" : file);
    if (loc.valid()) {
        os << ':' << loc.line;
        if (loc.col > 0)
            os << ':' << loc.col;
    }
    os << ": " << diagSeverityName(severity) << ": " << message;
    if (!snippet.empty()) {
        os << "\n    " << snippet;
        if (loc.col > 0 && loc.col <= snippet.size() + 1) {
            os << "\n    ";
            // Align the caret under the column, keeping tabs as tabs
            // so the caret stays visually under the offending token.
            for (size_t i = 0; i + 1 < loc.col; ++i)
                os << (snippet[i] == '\t' ? '\t' : ' ');
            os << '^';
        }
    }
    return os.str();
}

void
Diagnostics::setSource(std::string_view text, std::string file)
{
    file_ = std::move(file);
    lines_.clear();
    size_t start = 0;
    while (start <= text.size()) {
        size_t eol = text.find('\n', start);
        if (eol == std::string_view::npos) {
            lines_.emplace_back(text.substr(start));
            break;
        }
        lines_.emplace_back(text.substr(start, eol - start));
        start = eol + 1;
    }
}

void
Diagnostics::add(DiagSeverity severity, SourceLoc loc, std::string message)
{
    if (severity == DiagSeverity::Error) {
        if (errorCount_ >= maxErrors) {
            // Report the cap exactly once, then drop the cascade.
            if (!capNoted_) {
                capNoted_ = true;
                entries_.push_back(
                    {DiagSeverity::Note, file_, SourceLoc{},
                     "too many errors; further diagnostics suppressed",
                     ""});
            }
            return;
        }
        ++errorCount_;
    }
    Diagnostic d;
    d.severity = severity;
    d.file = file_;
    d.loc = loc;
    d.message = std::move(message);
    if (loc.valid() && loc.line <= lines_.size())
        d.snippet = lines_[loc.line - 1];
    entries_.push_back(std::move(d));
}

void
Diagnostics::error(SourceLoc loc, std::string message)
{
    add(DiagSeverity::Error, loc, std::move(message));
}

void
Diagnostics::warning(SourceLoc loc, std::string message)
{
    add(DiagSeverity::Warning, loc, std::move(message));
}

void
Diagnostics::note(SourceLoc loc, std::string message)
{
    add(DiagSeverity::Note, loc, std::move(message));
}

std::string
Diagnostics::render() const
{
    std::ostringstream os;
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (i > 0)
            os << '\n';
        os << entries_[i].render();
    }
    if (errorCount_ > 0)
        os << '\n' << errorCount_ << " error(s)";
    return os.str();
}

void
Diagnostics::throwIfErrors() const
{
    if (!hasErrors())
        return;
    throw DiagnosticError(render(), errorCount_);
}

void
Diagnostics::take(Diagnostics &&other)
{
    for (Diagnostic &d : other.entries_) {
        if (d.severity == DiagSeverity::Error)
            ++errorCount_;
        entries_.push_back(std::move(d));
    }
    other.entries_.clear();
    other.errorCount_ = 0;
}

} // namespace macs
