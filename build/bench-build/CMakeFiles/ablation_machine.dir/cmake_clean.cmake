file(REMOVE_RECURSE
  "../bench/ablation_machine"
  "../bench/ablation_machine.pdb"
  "CMakeFiles/ablation_machine.dir/ablation_machine.cc.o"
  "CMakeFiles/ablation_machine.dir/ablation_machine.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
