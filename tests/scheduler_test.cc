/**
 * @file
 * Chime-aware list scheduler tests: semantic preservation (dependences
 * respected under sequential execution) and chime-count improvement.
 */

#include <gtest/gtest.h>

#include "compiler/scheduler.h"
#include "isa/parser.h"
#include "machine/machine_config.h"
#include "macs/chime.h"
#include "macs/macs_bound.h"
#include "sim/simulator.h"

namespace macs::compiler {
namespace {

std::vector<isa::Instruction>
bodyOf(const std::string &text)
{
    static std::vector<isa::Program> keep;
    keep.push_back(
        isa::assemble(".comm x,1024\n.comm y,1024\n.comm c,8\n" + text));
    return keep.back().instrs();
}

size_t
chimeCount(const std::vector<isa::Instruction> &body)
{
    return model::partitionChimes(body, machine::ChainingConfig{}).size();
}

TEST(Scheduler, PreservesInstructionMultiset)
{
    auto body = bodyOf(R"(
    ld.l x(a5),v0
    ld.l y(a5),v1
    add.d v0,v1,v2
    mul.d v2,v0,v3
    st.l v3,x+512(a5)
)");
    auto out = scheduleBody(body, machine::ChainingConfig{});
    ASSERT_EQ(out.size(), body.size());
    std::multiset<std::string> a, b;
    for (const auto &in : body)
        a.insert(in.toString());
    for (const auto &in : out)
        b.insert(in.toString());
    EXPECT_EQ(a, b);
}

TEST(Scheduler, RespectsRawOrder)
{
    auto body = bodyOf(R"(
    ld.l x(a5),v0
    mul.d v0,v1,v2
    add.d v2,v3,v4
)");
    auto out = scheduleBody(body, machine::ChainingConfig{});
    size_t ld = 0, mul = 0, add = 0;
    for (size_t i = 0; i < out.size(); ++i) {
        if (out[i].op == isa::Opcode::VLd)
            ld = i;
        if (out[i].op == isa::Opcode::VMul)
            mul = i;
        if (out[i].op == isa::Opcode::VAdd)
            add = i;
    }
    EXPECT_LT(ld, mul);
    EXPECT_LT(mul, add);
}

TEST(Scheduler, RespectsMemoryOrderOnSameSymbol)
{
    auto body = bodyOf(R"(
    st.l v0,x(a5)
    ld.l x+8(a5),v1
)");
    auto out = scheduleBody(body, machine::ChainingConfig{});
    EXPECT_EQ(out[0].op, isa::Opcode::VSt);
    EXPECT_EQ(out[1].op, isa::Opcode::VLd);
}

TEST(Scheduler, GluedScalarLoadStaysBeforeConsumer)
{
    auto body = bodyOf(R"(
    ld.l x(a5),v0
    ld.w c,s7
    mul.d v0,s7,v1
)");
    auto out = scheduleBody(body, machine::ChainingConfig{});
    // Find the scalar load; the very next instruction must be its
    // consumer.
    for (size_t i = 0; i < out.size(); ++i) {
        if (out[i].op == isa::Opcode::SLd) {
            ASSERT_LT(i + 1, out.size());
            EXPECT_EQ(out[i + 1].op, isa::Opcode::VMul);
        }
    }
}

TEST(Scheduler, PacksIndependentWorkIntoFewerChimes)
{
    // Loads first, then all FP: naive order gives FP-only chimes; the
    // scheduler interleaves them.
    auto body = bodyOf(R"(
    ld.l x(a5),v0
    ld.l x+8(a5),v1
    ld.l y(a5),v2
    ld.l y+8(a5),v3
    add.d v0,v1,v4
    mul.d v2,v3,v5
    add.d v4,v5,v6
    mul.d v6,v0,v7
)");
    auto out = scheduleBody(body, machine::ChainingConfig{});
    EXPECT_LE(chimeCount(out), chimeCount(body));
    EXPECT_LE(chimeCount(out), 5u);
}

TEST(Scheduler, ScheduledExecutionComputesSameValues)
{
    std::string preamble = R"(
.comm a,64
.comm b,64
.comm r,64
    mov #8,s6
    mov s6,VL
)";
    std::string body = R"(
    ld.l a,v0
    ld.l b,v1
    add.d v0,v1,v2
    mul.d v2,v0,v3
    sub.d v3,v1,v4
    st.l v4,r
)";
    isa::Program p1 = isa::assemble(preamble + body);

    // Manually schedule the computational region and rebuild.
    auto instrs = p1.instrs();
    std::vector<isa::Instruction> region(instrs.begin() + 2,
                                         instrs.end());
    auto scheduled = scheduleBody(region, machine::ChainingConfig{});
    isa::Program p2;
    p2.defineData("a", 64);
    p2.defineData("b", 64);
    p2.defineData("r", 64);
    p2.append(instrs[0]);
    p2.append(instrs[1]);
    for (auto &in : scheduled)
        p2.append(in);
    p2.validate();

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator s1(cfg, p1), s2(cfg, p2);
    for (auto *s : {&s1, &s2}) {
        s->memory().fillDoubles("a", {1, 2, 3, 4, 5, 6, 7, 8});
        s->memory().fillDoubles("b", {8, 7, 6, 5, 4, 3, 2, 1});
    }
    s1.run();
    s2.run();
    auto r1 = s1.memory().readDoubles("r", 8);
    auto r2 = s2.memory().readDoubles("r", 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(r1[i], r2[i]);
}

TEST(Scheduler, SingleInstructionPassesThrough)
{
    auto body = bodyOf("ld.l x(a5),v0\n");
    auto out = scheduleBody(body, machine::ChainingConfig{});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].op, isa::Opcode::VLd);
}

TEST(Scheduler, TrailingScalarsFallBackToOriginalOrder)
{
    auto body = bodyOf(R"(
    ld.l x(a5),v0
    add #1024,a5
)");
    auto out = scheduleBody(body, machine::ChainingConfig{});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].op, isa::Opcode::SAdd);
}

TEST(Scheduler, NoChainingModeAvoidsIntraChimeRaw)
{
    machine::ChainingConfig rules;
    rules.chainingEnabled = false;
    auto body = bodyOf(R"(
    ld.l x(a5),v0
    mul.d v0,v1,v2
)");
    auto out = scheduleBody(body, rules);
    auto chimes = model::partitionChimes(out, rules);
    EXPECT_EQ(chimes.size(), 2u);
}

} // namespace
} // namespace macs::compiler
