/**
 * @file
 * The ten Lawrence Livermore Fortran Kernels of the paper's case study
 * (LFK 1, 2, 3, 4, 6, 7, 8, 9, 10, 12), each packaged as a runnable
 * simulator program with its MA workload, normalization constants, a
 * deterministic input initializer, and a functional correctness check
 * against a reference implementation.
 *
 * Kernels whose inner loop is a single counted DO loop are compiled
 * from the loop DSL by the vectorizing compiler (LFK 1, 3, 7, 8, 9,
 * 12); kernels with irregular outer structure (halving passes, bands,
 * triangular sweeps, register-carried difference chains) are
 * hand-assembled in the style the fc compiler produced (LFK 2, 4, 6,
 * 10). Source listings are kept in Kernel::sourceText.
 */

#ifndef MACS_LFK_KERNELS_H
#define MACS_LFK_KERNELS_H

#include <functional>
#include <string>
#include <vector>

#include "isa/program.h"
#include "macs/hierarchy.h"
#include "macs/workload.h"
#include "sim/simulator.h"

namespace macs::lfk {

/** One packaged LFK workload. */
struct Kernel
{
    int id = 0;                 ///< LFK number (1..12)
    std::string name;           ///< "LFK1"
    std::string description;    ///< one-line summary
    std::string sourceText;     ///< Fortran-like source / DSL listing
    model::WorkloadCounts ma;   ///< source workload (perfect reuse)
    int flopsPerPoint = 0;      ///< f_a + f_m of the source
    long points = 0;            ///< result elements per run
    isa::Program program;       ///< full runnable program

    /** Write deterministic inputs into the simulator. */
    std::function<void(sim::Simulator &)> setup;

    /**
     * Validate outputs against the reference implementation.
     * @returns empty string on success, else a mismatch description.
     */
    std::function<std::string(const sim::Simulator &)> check;

    /**
     * Recompile this kernel with a different trip count (strip-mined
     * multi-CPU splitting: one chunk of the iteration space per CPU).
     * Set only for DSL-compiled kernels — hand-assembled ones (LFK 2,
     * 4, 6, 10) cannot be re-tripped mechanically. The returned Kernel
     * carries the re-timed program and workload counts but no setup,
     * check, or description; callers reuse the original setup (same
     * data symbols) and must skip the functional check, which assumes
     * the full iteration space (sim/mp/workload.cc does both).
     */
    std::function<Kernel(long trip)> remake;
};

/** LFK ids covered by the paper's case study, in table order. */
const std::vector<int> &lfkIds();

/**
 * The two kernels of the first twelve the paper excluded: LFK 5
 * (tri-diagonal elimination) and LFK 11 (first sum) carry true
 * loop-carried recurrences, so they only compile in scalar mode.
 * Used by the vectorization-speedup study.
 */
const std::vector<int> &scalarLfkIds();

/** Build kernel @p id (paper set or scalar set); fatal() otherwise. */
Kernel makeKernel(int id);

/** All ten kernels in table order. */
std::vector<Kernel> makeAllKernels();

/** Package a kernel for the hierarchy analyzer. */
model::KernelCase toKernelCase(const Kernel &kernel);

/** Individual factories (also used by unit tests). @{ */
Kernel makeLfk1();
Kernel makeLfk2();
Kernel makeLfk3();
Kernel makeLfk4();
Kernel makeLfk5();
Kernel makeLfk6();
Kernel makeLfk7();
Kernel makeLfk8();
Kernel makeLfk9();
Kernel makeLfk10();
Kernel makeLfk11();
Kernel makeLfk12();
/** @} */

/**
 * The paper's verbatim LFK1 inner-loop listing (section 3.5), as
 * assembled text. Used by tests to cross-check the compiler's output
 * and by the worked-example bench.
 */
const char *lfk1PaperListing();

} // namespace macs::lfk

#endif // MACS_LFK_KERNELS_H
