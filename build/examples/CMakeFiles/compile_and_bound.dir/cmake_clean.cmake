file(REMOVE_RECURSE
  "CMakeFiles/compile_and_bound.dir/compile_and_bound.cpp.o"
  "CMakeFiles/compile_and_bound.dir/compile_and_bound.cpp.o.d"
  "compile_and_bound"
  "compile_and_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
