#include "pipeline/sweep.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "pipeline/report.h"
#include "support/strings.h"

namespace macs::pipeline {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** Fixed six-decimal rendering keeps the document deterministic. */
std::string
jnum(double v)
{
    return format("%.6f", v);
}

std::vector<SweepMachine>
sortedMachines(const SweepRequest &request)
{
    std::vector<SweepMachine> machines = request.machines;
    std::sort(machines.begin(), machines.end(),
              [](const SweepMachine &a, const SweepMachine &b) {
                  return a.name < b.name;
              });
    return machines;
}

} // namespace

bool
validateSweep(const SweepRequest &request, Diagnostics &diags)
{
    size_t before = diags.errorCount();
    if (request.machines.empty())
        diags.error("sweep needs at least one machine");
    if (request.kernels.empty())
        diags.error("sweep needs at least one kernel");
    std::set<std::string> names;
    for (const SweepMachine &m : request.machines) {
        if (m.name.empty())
            diags.error("machine from '" + m.source +
                        "' has an empty name");
        else if (!names.insert(m.name).second)
            diags.error("duplicate machine name '" + m.name +
                        "' (from '" + m.source +
                        "'); names must be unique within a sweep");
    }
    return diags.errorCount() == before;
}

SweepResult
runSweep(const SweepRequest &request, const SweepRunner &runner)
{
    SweepResult out;
    out.machines = sortedMachines(request);

    // Row-major submission: results[k * machines + m] is cell (k, m).
    std::vector<BatchJob> jobs;
    jobs.reserve(request.kernels.size() * out.machines.size());
    for (const model::KernelCase &kernel : request.kernels) {
        out.kernelNames.push_back(kernel.name);
        for (const SweepMachine &m : out.machines) {
            BatchJob job;
            job.label = kernel.name;
            job.configName = m.name;
            job.kernel = kernel;
            job.config = m.config;
            job.options = request.options;
            job.vectorLength = request.vectorLength;
            jobs.push_back(std::move(job));
        }
    }

    BatchResult batch = runner(jobs);
    MACS_ASSERT(batch.results.size() == jobs.size(),
                "sweep runner must return one result per job");
    out.stats = batch.stats;
    out.cells.resize(request.kernels.size());
    size_t idx = 0;
    for (size_t k = 0; k < request.kernels.size(); ++k) {
        out.cells[k].reserve(out.machines.size());
        for (size_t m = 0; m < out.machines.size(); ++m)
            out.cells[k].push_back(std::move(batch.results[idx++]));
    }
    return out;
}

SweepResult
runSweep(const SweepRequest &request, BatchEngine &engine)
{
    return runSweep(request, [&engine](const std::vector<BatchJob> &j) {
        return engine.run(j);
    });
}

std::string
renderSweepMarkdown(const SweepResult &result, bool include_timing)
{
    std::ostringstream os;
    os << "# MACS machine sweep\n\n";

    os << "## Machines\n\n";
    os << "| machine | clock (MHz) | VL | banks | description |\n";
    os << "|---|---|---|---|---|\n";
    for (const SweepMachine &m : result.machines) {
        os << "| " << m.name << " | "
           << format("%.3f", m.config.clockMhz) << " | "
           << m.config.maxVectorLength << " | " << m.config.memory.banks
           << " | " << m.description << " |\n";
    }

    auto matrix = [&](const char *title,
                      auto cell) {
        os << "\n## " << title << "\n\n";
        os << "| kernel |";
        for (const SweepMachine &m : result.machines)
            os << " " << m.name << " |";
        os << "\n|---|";
        for (size_t m = 0; m < result.machines.size(); ++m)
            os << "---|";
        os << "\n";
        for (size_t k = 0; k < result.kernelNames.size(); ++k) {
            os << "| " << result.kernelNames[k] << " |";
            for (const JobResult &r : result.cells[k])
                os << " " << (r.ok() ? cell(r) : std::string("FAILED"))
                   << " |";
            os << "\n";
        }
    };

    matrix("MACS bound matrix (t_MACS, CPL)", [](const JobResult &r) {
        return format("%.3f", r.analysis->macs.cpl);
    });
    matrix("Predicted MFLOPS at the MACS bound",
           [](const JobResult &r) {
               return format("%.2f", r.clockMhz / r.analysis->macsCpf());
           });

    bool any_failed = false;
    for (const auto &row : result.cells)
        for (const JobResult &r : row)
            any_failed = any_failed || !r.ok();
    if (any_failed) {
        os << "\n## Failures\n\n";
        for (const auto &row : result.cells)
            for (const JobResult &r : row)
                if (!r.ok())
                    os << "- **" << r.label << "** (" << r.configName
                       << "): " << r.error << "\n";
    }

    if (include_timing) {
        os << "\n## Pipeline stats (scheduling-dependent)\n\n";
        os << renderStatsLine(result.stats) << "\n";
    }
    return os.str();
}

std::string
renderSweepJson(const SweepResult &result, bool include_timing)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"macs-sweep-v1\",\n";
    os << "  \"machines\": [\n";
    for (size_t m = 0; m < result.machines.size(); ++m) {
        const SweepMachine &mm = result.machines[m];
        os << "    {\"name\": \"" << jsonEscape(mm.name)
           << "\", \"description\": \"" << jsonEscape(mm.description)
           << "\", \"clockMhz\": " << jnum(mm.config.clockMhz)
           << ", \"maxVectorLength\": " << mm.config.maxVectorLength
           << ", \"contentHash\": \""
           << format("%016llx",
                     static_cast<unsigned long long>(
                         mm.config.contentHash()))
           << "\"}" << (m + 1 < result.machines.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n";
    os << "  \"kernels\": [";
    for (size_t k = 0; k < result.kernelNames.size(); ++k)
        os << (k ? ", " : "") << "\"" << jsonEscape(result.kernelNames[k])
           << "\"";
    os << "],\n";
    os << "  \"cells\": [\n";
    for (size_t k = 0; k < result.cells.size(); ++k) {
        os << "    [\n";
        for (size_t m = 0; m < result.cells[k].size(); ++m) {
            const JobResult &r = result.cells[k][m];
            os << "      {\"kernel\": \"" << jsonEscape(r.label)
               << "\", \"machine\": \"" << jsonEscape(r.configName)
               << "\", \"vectorLength\": " << r.vectorLength;
            if (!r.ok()) {
                os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
            } else {
                const model::KernelAnalysis &a = *r.analysis;
                os << ", \"boundsCpl\": {"
                   << "\"tMA\": " << jnum(a.maBound.bound)
                   << ", \"tMAC\": " << jnum(a.macBound.bound)
                   << ", \"tMACS\": " << jnum(a.macs.cpl)
                   << ", \"tMACSf\": " << jnum(a.macsFOnly.cpl)
                   << ", \"tMACSm\": " << jnum(a.macsMOnly.cpl) << "}"
                   << ", \"measuredCpl\": {\"tP\": " << jnum(a.tP)
                   << ", \"tA\": " << jnum(a.tA)
                   << ", \"tX\": " << jnum(a.tX) << "}"
                   << ", \"macsMflops\": "
                   << jnum(r.clockMhz / a.macsCpf())
                   << ", \"chimes\": " << a.macs.chimes.size();
            }
            os << "}" << (m + 1 < result.cells[k].size() ? "," : "")
               << "\n";
        }
        os << "    ]" << (k + 1 < result.cells.size() ? "," : "")
           << "\n";
    }
    os << "  ]";
    if (include_timing) {
        const BatchStats &s = result.stats;
        os << ",\n  \"stats\": {"
           << "\"jobs\": " << s.jobs << ", \"workers\": " << s.workers
           << ", \"cacheHits\": " << s.cacheHits
           << ", \"cacheMisses\": " << s.cacheMisses
           << ", \"failures\": " << s.failures
           << ", \"wallUs\": " << jnum(s.wallUs)
           << ", \"computeUs\": " << jnum(s.computeUs)
           << ", \"queueWaitUs\": " << jnum(s.queueWaitUs)
           << ", \"jobsPerSec\": " << jnum(s.jobsPerSec()) << "}\n";
    } else {
        os << "\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace macs::pipeline
