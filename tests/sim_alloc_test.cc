/**
 * @file
 * Heap-allocation accounting for the simulator's fast tier: the
 * steady-state dispatch loop must not allocate. This binary replaces
 * the global (non-aligned) operator new with a counting wrapper and
 * measures allocations across Simulator::run() for the same program
 * at two very different trip counts. The fast tier's allocations are
 * all prologue (predecode table, stride-rate table), so the counts
 * must be EQUAL; the reference interpreter allocates per dynamic
 * vector instruction (operand lists), which the companion sanity test
 * pins so a regression in the counter itself cannot pass silently.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "compiler/analysis.h"
#include "compiler/codegen.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"

namespace {
std::atomic<uint64_t> g_news{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace macs::compiler {
namespace {

constexpr size_t kWords = 8192;

/** cc(k) = aa(k) * p1 + bb(k): vectorizable, three streams a strip. */
Loop
axpyLoop()
{
    Loop loop;
    loop.var = "k";
    loop.stride = 1;
    Stmt s;
    s.arrayDst = true;
    s.dstName = "cc";
    s.dstCoef = 1;
    s.dstOffset = 0;
    s.rhs = add(mul(array("aa", 1, 0), scalar("p1")),
                array("bb", 1, 0));
    loop.stmts.push_back(std::move(s));
    return loop;
}

/** Allocations performed inside run() alone (setup excluded). */
uint64_t
allocsDuringRun(sim::SimTier tier, long trip)
{
    Loop loop = axpyLoop();
    EXPECT_TRUE(analyzeSource(loop).vectorizable);
    CompileOptions copt;
    copt.tripCount = trip;
    copt.vectorize = true;
    for (const char *name : {"aa", "bb", "cc"})
        copt.arrays.push_back({name, kWords});
    CompileResult res = compile(loop, copt);

    sim::SimOptions opt;
    opt.tier = tier;
    sim::Simulator s(machine::MachineConfig::convexC240(),
                     res.program, opt);
    std::vector<double> fill(kWords, 1.0);
    s.memory().fillDoubles("aa", fill);
    s.memory().fillDoubles("bb", fill);
    if (res.program.hasDataSymbol("scalar_p1"))
        s.memory().fillDoubles("scalar_p1", {2.5});

    uint64_t before = g_news.load(std::memory_order_relaxed);
    s.run();
    return g_news.load(std::memory_order_relaxed) - before;
}

TEST(SimAlloc, FastTierRunAllocationsAreTripIndependent)
{
    // 2 strips vs 63 strips of the same static program: every
    // allocation the fast tier makes is per-program (predecode,
    // stride-rate table), none per dynamic instruction or element.
    uint64_t small = allocsDuringRun(sim::SimTier::Fast, 256);
    uint64_t large = allocsDuringRun(sim::SimTier::Fast, 8000);
    EXPECT_EQ(small, large);
}

TEST(SimAlloc, CounterSeesReferenceTierPerInstructionAllocations)
{
    // Sensitivity check: the interpreter materializes vector operand
    // lists per dynamic instruction, so its count must grow with the
    // trip. If this ever stops holding, the fast-tier assertion above
    // is no longer measuring anything.
    uint64_t small = allocsDuringRun(sim::SimTier::Reference, 256);
    uint64_t large = allocsDuringRun(sim::SimTier::Reference, 8000);
    EXPECT_GT(large, small);
}

} // namespace
} // namespace macs::compiler
