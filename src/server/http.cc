#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "support/strings.h"

namespace macs::server {

namespace {

std::string
lowerCopy(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

bool
isTokenChar(char c)
{
    // RFC 7230 token characters (the subset we care about).
    return std::isalnum(static_cast<unsigned char>(c)) ||
           std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

} // namespace

const std::string *
HttpRequest::header(const std::string &name) const
{
    for (const auto &[k, v] : headers)
        if (k == name)
            return &v;
    return nullptr;
}

std::string
HttpRequest::queryOr(const std::string &key,
                     const std::string &fallback) const
{
    auto it = query.find(key);
    return it != query.end() ? it->second : fallback;
}

const char *
statusReason(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Content";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    }
    return "Unknown";
}

std::string
serializeResponse(const HttpResponse &response, bool keep_alive)
{
    std::string out;
    out.reserve(response.body.size() + 256);
    out += format("HTTP/1.1 %d %s\r\n", response.status,
                  statusReason(response.status));
    out += "Content-Type: " + response.contentType + "\r\n";
    out += format("Content-Length: %zu\r\n", response.body.size());
    out += keep_alive ? "Connection: keep-alive\r\n"
                      : "Connection: close\r\n";
    for (const auto &[k, v] : response.headers)
        out += k + ": " + v + "\r\n";
    out += "\r\n";
    out += response.body;
    return out;
}

std::string
urlDecode(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (c == '+') {
            out += ' ';
        } else if (c == '%' && i + 2 < s.size() &&
                   std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
                   std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
            auto hex = [](char h) -> int {
                if (h >= '0' && h <= '9')
                    return h - '0';
                return (std::tolower(static_cast<unsigned char>(h)) -
                        'a') + 10;
            };
            out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
            i += 2;
        } else {
            out += c;
        }
    }
    return out;
}

void
RequestParser::fail(int status, std::string detail)
{
    state_ = State::Error;
    errorStatus_ = status;
    errorDetail_ = std::move(detail);
}

bool
RequestParser::parseHeaderBlock(std::string_view block)
{
    size_t eol = block.find("\r\n");
    std::string_view request_line = block.substr(0, eol);

    // Request line: METHOD SP TARGET SP VERSION, single spaces.
    size_t sp1 = request_line.find(' ');
    size_t sp2 = request_line.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 == sp1) {
        fail(400, "malformed request line");
        return false;
    }
    request_.method = std::string(request_line.substr(0, sp1));
    request_.target =
        std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    request_.version = std::string(request_line.substr(sp2 + 1));
    if (request_.method.empty() ||
        !std::all_of(request_.method.begin(), request_.method.end(),
                     isTokenChar)) {
        fail(400, "malformed method token");
        return false;
    }
    if (request_.version != "HTTP/1.1" &&
        request_.version != "HTTP/1.0") {
        fail(startsWith(request_.version, "HTTP/") ? 505 : 400,
             "unsupported protocol version '" + request_.version +
                 "'");
        return false;
    }
    if (request_.target.empty() || request_.target[0] != '/') {
        fail(400, "request target must be an absolute path");
        return false;
    }

    // Header fields.
    std::string_view rest =
        eol == std::string_view::npos ? std::string_view{}
                                      : block.substr(eol + 2);
    while (!rest.empty()) {
        size_t le = rest.find("\r\n");
        std::string_view line =
            le == std::string_view::npos ? rest : rest.substr(0, le);
        rest = le == std::string_view::npos ? std::string_view{}
                                            : rest.substr(le + 2);
        if (line.empty())
            continue;
        size_t colon = line.find(':');
        if (colon == 0 || colon == std::string_view::npos) {
            fail(400, "malformed header field");
            return false;
        }
        std::string_view name = line.substr(0, colon);
        if (!std::all_of(name.begin(), name.end(), isTokenChar)) {
            fail(400, "malformed header field name");
            return false;
        }
        request_.headers.emplace_back(
            lowerCopy(name), std::string(trim(line.substr(colon + 1))));
    }

    // Target decomposition: path '?' query.
    size_t qmark = request_.target.find('?');
    request_.path = urlDecode(request_.target.substr(0, qmark));
    if (qmark != std::string::npos) {
        for (const std::string &pair :
             split(request_.target.substr(qmark + 1), '&')) {
            size_t eq = pair.find('=');
            std::string key = urlDecode(pair.substr(0, eq));
            std::string val = eq == std::string::npos
                                  ? std::string()
                                  : urlDecode(pair.substr(eq + 1));
            if (!key.empty())
                request_.query[key] = val;
        }
    }

    // Connection semantics.
    request_.keepAlive = request_.version == "HTTP/1.1";
    if (const std::string *conn = request_.header("connection")) {
        std::string c = lowerCopy(*conn);
        if (c == "close")
            request_.keepAlive = false;
        else if (c == "keep-alive")
            request_.keepAlive = true;
    }

    // Body framing.
    const std::string *te = request_.header("transfer-encoding");
    const std::string *cl = request_.header("content-length");
    if (te != nullptr && cl != nullptr) {
        fail(400, "both Transfer-Encoding and Content-Length given");
        return false;
    }
    if (te != nullptr) {
        if (lowerCopy(*te) != "chunked") {
            fail(501, "unsupported transfer coding '" + *te + "'");
            return false;
        }
        chunked_ = true;
        state_ = State::ChunkSize;
        return true;
    }
    if (cl != nullptr) {
        long n = 0;
        if (!parseInt(*cl, n) || n < 0) {
            fail(400, "malformed Content-Length '" + *cl + "'");
            return false;
        }
        if (static_cast<size_t>(n) > limits_.maxBodyBytes) {
            fail(413, format("body of %ld bytes exceeds the %zu-byte "
                             "limit",
                             n, limits_.maxBodyBytes));
            return false;
        }
        contentLength_ = static_cast<size_t>(n);
        state_ = contentLength_ > 0 ? State::Body : State::Complete;
        return true;
    }
    if (request_.method == "POST" || request_.method == "PUT") {
        fail(411, "a request body requires Content-Length or "
                  "Transfer-Encoding: chunked");
        return false;
    }
    state_ = State::Complete;
    return true;
}

void
RequestParser::process()
{
    for (;;) {
        switch (state_) {
        case State::Headers: {
            size_t end = buffer_.find("\r\n\r\n");
            if (end == std::string::npos) {
                if (buffer_.size() > limits_.maxHeaderBytes)
                    fail(431,
                         format("header block exceeds the %zu-byte "
                                "limit",
                                limits_.maxHeaderBytes));
                return;
            }
            if (end + 4 > limits_.maxHeaderBytes) {
                fail(431, format("header block exceeds the %zu-byte "
                                 "limit",
                                 limits_.maxHeaderBytes));
                return;
            }
            std::string block = buffer_.substr(0, end + 2);
            buffer_.erase(0, end + 4);
            if (!parseHeaderBlock(block))
                return;
            break;
        }
        case State::Body:
            if (buffer_.size() < contentLength_)
                return;
            request_.body = buffer_.substr(0, contentLength_);
            buffer_.erase(0, contentLength_);
            state_ = State::Complete;
            break;
        case State::ChunkSize: {
            size_t eol = buffer_.find("\r\n");
            if (eol == std::string::npos) {
                if (buffer_.size() > 1024)
                    fail(400, "malformed chunk-size line");
                return;
            }
            std::string line = buffer_.substr(0, eol);
            buffer_.erase(0, eol + 2);
            // Strip chunk extensions.
            line = line.substr(0, line.find(';'));
            size_t size = 0;
            bool any = false;
            for (char c : trim(line)) {
                int d;
                if (c >= '0' && c <= '9')
                    d = c - '0';
                else if (c >= 'a' && c <= 'f')
                    d = c - 'a' + 10;
                else if (c >= 'A' && c <= 'F')
                    d = c - 'A' + 10;
                else {
                    fail(400, "malformed chunk size '" + line + "'");
                    return;
                }
                size = size * 16 + static_cast<size_t>(d);
                any = true;
                if (size > limits_.maxBodyBytes) {
                    fail(413,
                         format("chunked body exceeds the %zu-byte "
                                "limit",
                                limits_.maxBodyBytes));
                    return;
                }
            }
            if (!any) {
                fail(400, "empty chunk-size line");
                return;
            }
            if (request_.body.size() + size > limits_.maxBodyBytes) {
                fail(413, format("chunked body exceeds the %zu-byte "
                                 "limit",
                                 limits_.maxBodyBytes));
                return;
            }
            chunkRemaining_ = size;
            state_ = size == 0 ? State::ChunkTrailer : State::ChunkData;
            break;
        }
        case State::ChunkData:
            if (buffer_.size() < chunkRemaining_ + 2)
                return;
            request_.body.append(buffer_, 0, chunkRemaining_);
            if (buffer_[chunkRemaining_] != '\r' ||
                buffer_[chunkRemaining_ + 1] != '\n') {
                fail(400, "chunk data not terminated by CRLF");
                return;
            }
            buffer_.erase(0, chunkRemaining_ + 2);
            state_ = State::ChunkSize;
            break;
        case State::ChunkTrailer: {
            size_t eol = buffer_.find("\r\n");
            if (eol == std::string::npos) {
                if (buffer_.size() > limits_.maxHeaderBytes)
                    fail(431, "trailer block too large");
                return;
            }
            buffer_.erase(0, eol + 2);
            if (eol == 0) {
                state_ = State::Complete;
                break;
            }
            break; // ignore (and skip) trailer fields
        }
        case State::Complete:
        case State::Error:
            return;
        }
    }
}

void
RequestParser::feed(std::string_view data)
{
    if (state_ == State::Error)
        return;
    buffer_.append(data);
    process();
}

HttpRequest
RequestParser::take()
{
    HttpRequest out = std::move(request_);
    request_ = HttpRequest{};
    contentLength_ = 0;
    chunked_ = false;
    chunkRemaining_ = 0;
    state_ = State::Headers;
    process(); // pipelined bytes may already hold the next message
    return out;
}

} // namespace macs::server
