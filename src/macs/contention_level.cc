#include "macs/contention_level.h"

#include <sstream>

#include "support/logging.h"
#include "support/strings.h"

namespace macs::model {

ContentionLevel
contentionLevelWithFactor(const KernelAnalysis &analysis, int cpus,
                          sim::WorkloadMix mix, double factor,
                          double measured_tc_cpl)
{
    MACS_ASSERT(cpus >= 1, "need at least one CPU");
    MACS_ASSERT(factor >= 1.0,
                "contention can only slow the stream down");
    ContentionLevel level;
    level.kernel = analysis.name;
    level.cpus = cpus;
    level.mix = mix;
    level.factor = factor;
    level.tMACS = analysis.macs.cpl;
    level.tMACSm = analysis.macsMOnly.cpl;
    level.macsC = level.tMACS + (factor - 1.0) * level.tMACSm;
    level.tC = measured_tc_cpl;
    return level;
}

ContentionLevel
contentionLevel(const KernelAnalysis &analysis, int cpus,
                sim::WorkloadMix mix, double measured_tc_cpl)
{
    return contentionLevelWithFactor(analysis, cpus, mix,
                                     sim::contentionFactor(cpus, mix),
                                     measured_tc_cpl);
}

std::string
renderContentionLevel(const ContentionLevel &level)
{
    const char *mix = level.mix == sim::WorkloadMix::LockStep
                          ? "lockstep"
                          : "independent";
    std::ostringstream out;
    out << format("%s C level: %d CPU%s, %s mix\n",
                  level.kernel.c_str(), level.cpus,
                  level.cpus == 1 ? "" : "s", mix);
    out << format("  factor    %.3f (memory-stream slowdown)\n",
                  level.factor);
    out << format("  t_MACS    %.4f CPL\n", level.tMACS);
    out << format("  t_MACS^m  %.4f CPL\n", level.tMACSm);
    out << format("  t_MACS^C  %.4f CPL (+%.4f contention)\n",
                  level.macsC, level.contentionGap());
    if (level.tC > 0.0) {
        out << format("  t_C       %.4f CPL measured\n", level.tC);
        out << format("  unmodeled %.4f CPL (coverage %.1f%%)\n",
                      level.unmodeledGap(), 100.0 * level.coverage());
    }
    return out.str();
}

} // namespace macs::model
