/**
 * @file
 * Concurrency and determinism tests for the batch-analysis pipeline
 * (src/pipeline): identical results across worker counts, cache hit
 * accounting on duplicate jobs, deadlock-freedom on empty/oversized
 * job sets, failure isolation, and a multi-thread logging hammer that
 * gives ThreadSanitizer something to chew on (scripts/check.sh runs
 * this binary under -DMACS_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "support/logging.h"

namespace macs::pipeline {
namespace {

BatchJob
jobFor(int id, machine::MachineConfig cfg =
                   machine::MachineConfig::convexC240())
{
    lfk::Kernel k = lfk::makeKernel(id);
    BatchJob job;
    job.label = k.name;
    job.kernel = lfk::toKernelCase(k);
    job.config = cfg;
    return job;
}

BatchResult
runWithWorkers(const std::vector<BatchJob> &jobs, size_t workers)
{
    EngineOptions opt;
    opt.workers = workers;
    BatchEngine engine(opt);
    return engine.run(jobs);
}

TEST(PipelineTest, ResultsIdenticalAcrossWorkerCounts)
{
    std::vector<BatchJob> jobs;
    for (int id : lfk::lfkIds())
        jobs.push_back(jobFor(id));

    BatchResult serial = runWithWorkers(jobs, 1);
    BatchResult parallel = runWithWorkers(jobs, 8);

    ASSERT_EQ(serial.results.size(), jobs.size());
    ASSERT_EQ(parallel.results.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobResult &a = serial.results[i];
        const JobResult &b = parallel.results[i];
        ASSERT_TRUE(a.ok()) << a.error;
        ASSERT_TRUE(b.ok()) << b.error;
        // Submission order is preserved...
        EXPECT_EQ(a.label, jobs[i].displayLabel());
        EXPECT_EQ(a.label, b.label);
        // ... and every analysis value is bit-identical.
        EXPECT_EQ(a.analysis->macs.cpl, b.analysis->macs.cpl);
        EXPECT_EQ(a.analysis->maBound.bound, b.analysis->maBound.bound);
        EXPECT_EQ(a.analysis->macBound.bound,
                  b.analysis->macBound.bound);
        EXPECT_EQ(a.analysis->tP, b.analysis->tP);
        EXPECT_EQ(a.analysis->tA, b.analysis->tA);
        EXPECT_EQ(a.analysis->tX, b.analysis->tX);
    }

    // The deterministic report sections are byte-identical.
    EXPECT_EQ(renderBatchJson(serial, false),
              renderBatchJson(parallel, false));
    EXPECT_EQ(renderBatchMarkdown(serial, false),
              renderBatchMarkdown(parallel, false));
}

TEST(PipelineTest, CacheHitCountersOnDuplicateJobs)
{
    std::vector<BatchJob> jobs;
    for (int i = 0; i < 5; ++i)
        jobs.push_back(jobFor(1));

    EngineOptions opt;
    opt.workers = 4;
    BatchEngine engine(opt);
    BatchResult r = engine.run(jobs);

    EXPECT_EQ(r.stats.jobs, 5u);
    EXPECT_EQ(r.stats.cacheMisses, 1u);
    EXPECT_EQ(r.stats.cacheHits, 4u);
    EXPECT_EQ(engine.cache().size(), 1u);
    for (const JobResult &jr : r.results) {
        ASSERT_TRUE(jr.ok()) << jr.error;
        EXPECT_EQ(jr.analysis->macs.cpl,
                  r.results[0].analysis->macs.cpl);
    }

    // The cache persists across run() calls on the same engine.
    BatchResult again = engine.run(jobs);
    EXPECT_EQ(again.stats.cacheMisses, 0u);
    EXPECT_EQ(again.stats.cacheHits, 5u);
    EXPECT_EQ(engine.cache().misses(), 1u);
    EXPECT_EQ(engine.cache().hits(), 9u);
}

TEST(PipelineTest, CacheKeyDefinition)
{
    BatchJob base = jobFor(1);

    // Identical content -> identical key (independent objects).
    EXPECT_EQ(BatchEngine::keyOf(base), BatchEngine::keyOf(jobFor(1)));

    // Different kernel -> different program hash.
    EXPECT_NE(BatchEngine::keyOf(base).program,
              BatchEngine::keyOf(jobFor(7)).program);

    // Different machine -> different machine hash; cross-checked
    // against the canonical text fingerprint.
    BatchJob chainless =
        jobFor(1, machine::MachineConfig::noChaining());
    EXPECT_NE(base.config.fingerprint(), chainless.config.fingerprint());
    EXPECT_NE(BatchEngine::keyOf(base).machine,
              BatchEngine::keyOf(chainless).machine);

    // A VL override aliases a config that carries the VL natively.
    BatchJob overridden = jobFor(1);
    overridden.vectorLength = 64;
    BatchJob native = jobFor(1);
    native.config.maxVectorLength = 64;
    EXPECT_EQ(BatchEngine::keyOf(overridden),
              BatchEngine::keyOf(native));
    EXPECT_NE(BatchEngine::keyOf(overridden), BatchEngine::keyOf(base));

    // Different sim options -> different options hash.
    BatchJob contended = jobFor(1);
    contended.options.memoryContentionFactor = 1.5;
    EXPECT_NE(sim::fingerprint(base.options),
              sim::fingerprint(contended.options));
    EXPECT_NE(BatchEngine::keyOf(base).options,
              BatchEngine::keyOf(contended).options);
}

TEST(PipelineTest, EmptyJobSetReturnsImmediately)
{
    BatchEngine engine(EngineOptions{.workers = 8});
    BatchResult r = engine.run({});
    EXPECT_TRUE(r.results.empty());
    EXPECT_EQ(r.stats.jobs, 0u);
    EXPECT_EQ(r.stats.failures, 0u);
    // And again; the pool must stay usable.
    EXPECT_TRUE(engine.run({}).results.empty());
}

TEST(PipelineTest, OversizedJobSetCompletes)
{
    // Far more jobs than workers: every job completes, order holds.
    std::vector<BatchJob> jobs;
    for (int rep = 0; rep < 8; ++rep)
        for (int id : {1, 7, 12})
            jobs.push_back(jobFor(id));

    BatchResult r = runWithWorkers(jobs, 2);
    ASSERT_EQ(r.results.size(), 24u);
    EXPECT_EQ(r.stats.cacheMisses, 3u);
    EXPECT_EQ(r.stats.cacheHits, 21u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(r.results[i].ok()) << r.results[i].error;
        EXPECT_EQ(r.results[i].label, jobs[i].displayLabel());
    }
}

TEST(PipelineTest, MoreWorkersThanJobsCompletes)
{
    std::vector<BatchJob> jobs = {jobFor(1), jobFor(3)};
    BatchResult r = runWithWorkers(jobs, 16);
    ASSERT_EQ(r.results.size(), 2u);
    EXPECT_TRUE(r.results[0].ok());
    EXPECT_TRUE(r.results[1].ok());
}

TEST(PipelineTest, FailingJobIsIsolated)
{
    BatchJob bad = jobFor(1);
    bad.label = "broken";
    bad.kernel.points = 0; // analyzeKernel() rejects this

    std::vector<BatchJob> jobs = {jobFor(3), bad, jobFor(7)};
    BatchResult r = runWithWorkers(jobs, 4);

    ASSERT_EQ(r.results.size(), 3u);
    EXPECT_TRUE(r.results[0].ok());
    EXPECT_FALSE(r.results[1].ok());
    EXPECT_NE(r.results[1].error.find("points"), std::string::npos)
        << r.results[1].error;
    EXPECT_TRUE(r.results[2].ok());
    EXPECT_EQ(r.stats.failures, 1u);

    // A duplicate of the failing job receives the same stored failure.
    std::vector<BatchJob> dup = {bad, bad};
    EngineOptions opt;
    opt.workers = 2;
    BatchEngine engine(opt);
    BatchResult r2 = engine.run(dup);
    EXPECT_FALSE(r2.results[0].ok());
    EXPECT_FALSE(r2.results[1].ok());
    EXPECT_EQ(r2.stats.failures, 2u);
    EXPECT_EQ(engine.cache().misses(), 1u);
}

TEST(PipelineTest, UncachedModeRecomputes)
{
    EngineOptions opt;
    opt.workers = 2;
    opt.useCache = false;
    BatchEngine engine(opt);
    std::vector<BatchJob> jobs = {jobFor(1), jobFor(1)};
    BatchResult r = engine.run(jobs);
    ASSERT_TRUE(r.results[0].ok());
    ASSERT_TRUE(r.results[1].ok());
    EXPECT_EQ(r.stats.cacheHits, 0u);
    EXPECT_EQ(engine.cache().size(), 0u);
    EXPECT_EQ(r.results[0].analysis->macs.cpl,
              r.results[1].analysis->macs.cpl);
}

/**
 * Hammer the support logging reporters from many threads while the
 * verbosity toggles. The assertions are trivial — the point is that
 * ThreadSanitizer observes clean synchronization (logging is called
 * from pipeline workers in production).
 */
TEST(PipelineTest, LoggingIsThreadSafe)
{
    constexpr int kThreads = 8;
    constexpr int kIters = 200;
    std::atomic<int> done{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    setVerbose(false); // keep test output quiet; emit path still runs
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &done] {
            for (int i = 0; i < kIters; ++i) {
                if (t == 0)
                    setVerbose(i % 2 == 0);
                warn("pipeline logging hammer ", t, " iter ", i);
                inform("pipeline logging hammer ", t, " iter ", i);
            }
            done.fetch_add(1);
        });
    }
    for (auto &th : threads)
        th.join();
    setVerbose(true);
    EXPECT_EQ(done.load(), kThreads);
}

/** Stats aggregates are consistent with the per-job counters. */
TEST(PipelineTest, StatsAggregation)
{
    std::vector<BatchJob> jobs = {jobFor(1), jobFor(1), jobFor(3)};
    BatchResult r = runWithWorkers(jobs, 2);
    EXPECT_EQ(r.stats.jobs, 3u);
    EXPECT_EQ(r.stats.cacheHits + r.stats.cacheMisses, 3u);
    EXPECT_GT(r.stats.wallUs, 0.0);
    double compute = 0.0;
    size_t hits = 0;
    for (const JobResult &jr : r.results) {
        compute += jr.timing.computeUs;
        hits += jr.timing.cacheHit ? 1 : 0;
    }
    EXPECT_DOUBLE_EQ(r.stats.computeUs, compute);
    EXPECT_EQ(r.stats.cacheHits, hits);
    EXPECT_FALSE(renderStatsLine(r.stats).empty());
}

} // namespace
} // namespace macs::pipeline
