file(REMOVE_RECURSE
  "CMakeFiles/scalar_cache_test.dir/scalar_cache_test.cc.o"
  "CMakeFiles/scalar_cache_test.dir/scalar_cache_test.cc.o.d"
  "scalar_cache_test"
  "scalar_cache_test.pdb"
  "scalar_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
