/**
 * @file
 * Execution timeline: per-instruction timing events recorded when
 * tracing is enabled, and an ASCII Gantt rendering used to reproduce
 * the paper's Figure 2 (chaining with tailgating).
 */

#ifndef MACS_SIM_TRACE_H
#define MACS_SIM_TRACE_H

#include <string>
#include <vector>

#include "sim/profile.h"

namespace macs::sim {

/** Timing of one dynamic vector instruction. */
struct TimelineEvent
{
    size_t pc = 0;          ///< static instruction index
    std::string text;       ///< disassembly
    double issue = 0;       ///< issue slot start
    double enter = 0;       ///< first element enters the pipe
    double firstResult = 0; ///< first element result available
    double streamEnd = 0;   ///< last element has entered the pipe
    double complete = 0;    ///< last element result available

    // Attribution fields consumed by the trace exporters
    // (obs/trace_export.h) and the metrics layer.
    int pipe = -1;          ///< 0 ld/st, 1 add, 2 multiply
    double busy = 0;        ///< pipe-busy cycles charged (rate * VL)
    double stall = 0;       ///< issue-to-entry wait beyond startup X
    StallCause cause = StallCause::None; ///< what bound the entry
};

/** A recorded execution timeline. */
class Timeline
{
  public:
    void record(TimelineEvent ev) { events_.push_back(std::move(ev)); }
    void clear() { events_.clear(); }
    const std::vector<TimelineEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }

    /**
     * Render the first @p max_events events as an ASCII Gantt chart,
     * @p cycles_per_char cycles per character cell. '=' spans
     * enter..streamEnd (elements entering), '>' spans
     * streamEnd..complete (pipe draining), '.' spans issue..enter
     * (blocked / waiting).
     */
    std::string render(size_t max_events = 24,
                       double cycles_per_char = 4.0) const;

  private:
    std::vector<TimelineEvent> events_;
};

} // namespace macs::sim

#endif // MACS_SIM_TRACE_H
