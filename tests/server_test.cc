// Tests for the `macs serve` subsystem (docs/SERVER.md): the HTTP/1.1
// parser against the malformed-request corpus (tests/corpus/http/),
// the dispatch table without sockets (Server::handle is public for
// exactly this), end-to-end keep-alive clients whose responses must be
// byte-identical to a local batch render, parser limits (413), read
// deadlines (408), admission-control backpressure (503 + Retry-After),
// the three seeded net fault sites, the shared LRU memo cache, and
// graceful drain.
//
// Every server under test gets a PRIVATE obs::Registry and (where
// faults are involved) a private FaultInjector so tests neither race
// on the process-global registry under TSan nor perturb each other.
// This host may have a single CPU: worker counts are always explicit.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "faults/fault_injection.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "pipeline/cache.h"
#include "pipeline/checkpoint.h"
#include "pipeline/mp_report.h"
#include "pipeline/report.h"
#include "server/client.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"

namespace macs::server {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Read from @p fd until EOF / timeout and return everything seen. */
std::string
readUntilClosed(int fd, int timeout_ms)
{
    std::string out;
    char buf[4096];
    for (;;) {
        int n = readWithDeadline(fd, buf, sizeof(buf), timeout_ms);
        if (n <= 0)
            break;
        out.append(buf, static_cast<size_t>(n));
    }
    return out;
}

/** A Server bound to an ephemeral loopback port with private state. */
struct TestServer
{
    obs::Registry registry;
    std::unique_ptr<faults::FaultInjector> injector;
    std::unique_ptr<Server> server;

    explicit TestServer(ServerOptions opt = {},
                        const std::string &fault_plan = "")
    {
        opt.host = "127.0.0.1";
        opt.port = 0;
        if (opt.workers == 0)
            opt.workers = 2; // explicit: 1-CPU hosts exist
        opt.metrics = &registry;
        opt.service.metrics = &registry;
        if (!fault_plan.empty()) {
            injector = std::make_unique<faults::FaultInjector>(
                faults::FaultPlan::parse(fault_plan), &registry);
            opt.faults = injector.get();
            opt.service.faults = injector.get();
        }
        server = std::make_unique<Server>(std::move(opt));
    }

    void start() { server->start(); }
    int port() const { return server->port(); }
    Server *operator->() { return server.get(); }
};

HttpRequest
makeRequest(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    RequestParser parser;
    std::string msg = method + " " + target + " HTTP/1.1\r\n";
    msg += "Host: test\r\n";
    if (!body.empty() || method == "POST" || method == "PUT")
        msg += "Content-Length: " + std::to_string(body.size()) +
               "\r\n";
    msg += "\r\n" + body;
    parser.feed(msg);
    EXPECT_TRUE(parser.complete()) << method << " " << target;
    return parser.take();
}

// ---------------------------------------------------------------------
// Corpus replay: tests/corpus/http/<status>_<name>.http files parse to
// exactly the status encoded in their filename, both when fed as one
// buffer and byte-at-a-time (the incremental state machine must not
// depend on packet boundaries).
// ---------------------------------------------------------------------

TEST(HttpCorpus, ReplayWholeBuffer)
{
    fs::path dir = fs::path(MACS_CORPUS_DIR) / "http";
    ASSERT_TRUE(fs::exists(dir)) << dir;
    int seen = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue; // stream/ holds connection-level cases
        std::string name = entry.path().filename().string();
        int expected = std::stoi(name.substr(0, 3));
        std::string bytes = readFile(entry.path());
        ASSERT_FALSE(bytes.empty()) << name;

        RequestParser parser;
        parser.feed(bytes);
        if (expected == 200) {
            EXPECT_TRUE(parser.complete()) << name;
            EXPECT_FALSE(parser.failed())
                << name << ": " << parser.errorDetail();
        } else {
            EXPECT_TRUE(parser.failed())
                << name << " should fail but did not";
            EXPECT_EQ(parser.errorStatus(), expected)
                << name << ": " << parser.errorDetail();
        }
        ++seen;
    }
    EXPECT_GE(seen, 15) << "corpus unexpectedly small";
}

TEST(HttpCorpus, ReplayByteAtATime)
{
    fs::path dir = fs::path(MACS_CORPUS_DIR) / "http";
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        int expected = std::stoi(name.substr(0, 3));
        std::string bytes = readFile(entry.path());

        RequestParser parser;
        for (char c : bytes) {
            parser.feed(std::string_view(&c, 1));
            if (parser.failed())
                break;
        }
        if (expected == 200) {
            EXPECT_TRUE(parser.complete()) << name;
        } else {
            EXPECT_TRUE(parser.failed()) << name;
            EXPECT_EQ(parser.errorStatus(), expected) << name;
        }
    }
}

/**
 * Send @p bytes on a fresh connection, half-close, and collect the
 * entire response stream until the server closes.
 */
std::string
replayThroughServer(TestServer &ts, const std::string &bytes)
{
    int fd = tcpConnect("127.0.0.1", ts.port(), 2000);
    EXPECT_GE(fd, 0);
    if (fd < 0)
        return "";
    // Best-effort write: on parse-error cases the server may answer
    // and close before the tail of the payload lands.
    (void)writeAll(fd, bytes, 2000);
    ::shutdown(fd, SHUT_WR);
    std::string reply = readUntilClosed(fd, 5000);
    closeFd(fd);
    return reply;
}

TEST(DualCore, WholeCorpusRepliesByteIdentical)
{
    // The legacy thread-per-session core is the behavioral oracle:
    // every corpus case — parser-level malformed requests AND the
    // connection-level stream/ cases (premature close, interleaved
    // half request, pipelining) — must produce a byte-identical
    // response stream from the evented core.
    ServerOptions evented_opt;
    evented_opt.workers = 2;
    ServerOptions threaded_opt;
    threaded_opt.core = CoreMode::Threaded;
    threaded_opt.workers = 2;
    TestServer evented(evented_opt);
    TestServer threaded(threaded_opt);
    evented.start();
    threaded.start();

    fs::path dir = fs::path(MACS_CORPUS_DIR) / "http";
    ASSERT_TRUE(fs::exists(dir)) << dir;
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.is_regular_file())
            files.push_back(entry.path());
    for (const auto &entry : fs::directory_iterator(dir / "stream"))
        if (entry.is_regular_file())
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), 24u) << "corpus unexpectedly small";

    for (const fs::path &path : files) {
        std::string name = path.filename().string();
        std::string bytes = readFile(path);
        ASSERT_FALSE(bytes.empty()) << name;

        std::string from_evented = replayThroughServer(evented, bytes);
        std::string from_threaded =
            replayThroughServer(threaded, bytes);
        EXPECT_EQ(from_evented, from_threaded) << name;

        // Parse-error cases must surface their status on the wire.
        if (std::isdigit(static_cast<unsigned char>(name[0]))) {
            int expected = std::stoi(name.substr(0, 3));
            if (expected != 200)
                EXPECT_NE(from_evented.find(
                              " " + std::to_string(expected) + " "),
                          std::string::npos)
                    << name << ": " << from_evented;
        }
    }

    evented->drain();
    threaded->drain();
}

TEST(HttpParser, PipelinedRequestsResumeAfterTake)
{
    RequestParser parser;
    parser.feed("GET /first HTTP/1.1\r\nHost: a\r\n\r\n"
                "GET /second HTTP/1.1\r\nHost: a\r\n\r\n");
    ASSERT_TRUE(parser.complete());
    HttpRequest first = parser.take();
    EXPECT_EQ(first.path, "/first");
    ASSERT_TRUE(parser.complete()) << "pipelined bytes lost";
    HttpRequest second = parser.take();
    EXPECT_EQ(second.path, "/second");
    EXPECT_TRUE(parser.idle());
}

TEST(HttpParser, ChunkedBodyAssemblesIdenticalToContentLength)
{
    RequestParser chunked;
    chunked.feed("POST /v1/analyze HTTP/1.1\r\nHost: a\r\n"
                 "Transfer-Encoding: chunked\r\n\r\n"
                 "6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n");
    ASSERT_TRUE(chunked.complete()) << chunked.errorDetail();

    RequestParser plain;
    plain.feed("POST /v1/analyze HTTP/1.1\r\nHost: a\r\n"
               "Content-Length: 11\r\n\r\nhello world");
    ASSERT_TRUE(plain.complete());
    EXPECT_EQ(chunked.take().body, plain.take().body);
}

TEST(HttpParser, QueryDecoding)
{
    RequestParser parser;
    parser.feed("GET /v1/analyze?kind=loop&trip=64&label=a%20b+c "
                "HTTP/1.1\r\nHost: a\r\n\r\n");
    ASSERT_TRUE(parser.complete());
    HttpRequest req = parser.take();
    EXPECT_EQ(req.path, "/v1/analyze");
    EXPECT_EQ(req.queryOr("kind", ""), "loop");
    EXPECT_EQ(req.queryOr("trip", ""), "64");
    EXPECT_EQ(req.queryOr("label", ""), "a b c");
    EXPECT_EQ(req.queryOr("absent", "dflt"), "dflt");
}

TEST(HttpSerialize, DeterministicBytes)
{
    HttpResponse r;
    r.status = 200;
    r.body = "{}";
    std::string a = serializeResponse(r, true);
    std::string b = serializeResponse(r, true);
    EXPECT_EQ(a, b) << "responses must be byte-deterministic";
    EXPECT_NE(a.find("Content-Length: 2\r\n"), std::string::npos);
    EXPECT_NE(a.find("Connection: keep-alive\r\n"),
              std::string::npos);
    std::string c = serializeResponse(r, false);
    EXPECT_NE(c.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(a.find("Date:"), std::string::npos);
}

// ---------------------------------------------------------------------
// Dispatch table without sockets: Server::handle() is public so the
// routing, status codes, and bodies can be asserted deterministically.
// ---------------------------------------------------------------------

TEST(Dispatch, HealthzReportsOkThenDraining)
{
    TestServer ts;
    HttpResponse r = ts->handle(makeRequest("GET", "/healthz"));
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("macs-health-v1"), std::string::npos);
    EXPECT_NE(r.body.find("\"ok\""), std::string::npos);

    ts->requestStop();
    r = ts->handle(makeRequest("GET", "/healthz"));
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("\"draining\""), std::string::npos);
}

TEST(Dispatch, VersionReportsBuildAndSchemas)
{
    ServerOptions opt;
    opt.versionString = "9.9.9-test";
    TestServer ts(opt);
    HttpResponse r = ts->handle(makeRequest("GET", "/version"));
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("macs-version-v1"), std::string::npos);
    EXPECT_NE(r.body.find("9.9.9-test"), std::string::npos);
    EXPECT_NE(r.body.find("macs-batch-v1"), std::string::npos);
}

TEST(Dispatch, UnknownPathIs404WithErrorSchema)
{
    TestServer ts;
    HttpResponse r = ts->handle(makeRequest("GET", "/nope"));
    EXPECT_EQ(r.status, 404);
    EXPECT_NE(r.body.find("macs-error-v1"), std::string::npos);
}

TEST(Dispatch, WrongMethodIs405)
{
    TestServer ts;
    EXPECT_EQ(ts->handle(makeRequest("POST", "/healthz", "{}")).status,
              405);
    EXPECT_EQ(ts->handle(makeRequest("GET", "/v1/analyze")).status,
              405);
}

TEST(Dispatch, MetricsExposeServerSeries)
{
    TestServer ts;
    (void)ts->handle(makeRequest("GET", "/healthz"));
    HttpResponse r = ts->handle(makeRequest("GET", "/metrics"));
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.contentType.find("text/plain"), std::string::npos);
    EXPECT_NE(r.body.find("macs_server_requests_total"),
              std::string::npos);
    EXPECT_NE(r.body.find("/healthz"), std::string::npos);
}

// ---------------------------------------------------------------------
// /v1/analyze semantics through handle(): byte-identity with a local
// batch render, loop-DSL sources, and the error statuses.
// ---------------------------------------------------------------------

/** The reference bytes: expand + run + render locally. */
std::string
expectedLfkJson(int id)
{
    obs::Registry registry;
    ServiceOptions opt;
    opt.metrics = &registry;
    AnalysisService service(opt);
    JobSetSpec spec;
    spec.ids = {id};
    pipeline::BatchResult result =
        service.runJobs(expandJobSet(spec));
    return pipeline::renderBatchJson(result, false);
}

TEST(Analyze, LfkJsonBodyMatchesLocalBatchRender)
{
    TestServer ts;
    HttpResponse r = ts->handle(makeRequest(
        "POST", "/v1/analyze", "{\"kind\": \"lfk\", \"id\": 1}"));
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_EQ(r.body, expectedLfkJson(1));
    bool has_exit = false;
    for (const auto &[k, v] : r.headers)
        if (k == "X-MACS-Exit-Code") {
            has_exit = true;
            EXPECT_EQ(v, "0");
        }
    EXPECT_TRUE(has_exit);
}

TEST(Analyze, RawLoopSourceViaQueryParams)
{
    TestServer ts;
    HttpResponse r = ts->handle(makeRequest(
        "POST", "/v1/analyze?kind=loop&trip=64&label=saxpy",
        "# axpy kernel\nDO k\n  yy(k) = yy(k) + p1 * xx(k)\nEND\n"));
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_NE(r.body.find("macs-batch-v1"), std::string::npos);
    EXPECT_NE(r.body.find("saxpy"), std::string::npos);
}

// ---------------------------------------------------------------------
// /v1/multicpu: byte-identity with a local render (the response is a
// pure function of the request), memo-cache hits, and error statuses.
// ---------------------------------------------------------------------

TEST(MultiCpu, BodyMatchesLocalRenderAndCaches)
{
    TestServer ts;
    const char *body = "{\"kernel\": 1, \"cpus\": 2, "
                       "\"mix\": \"lockstep\"}";
    HttpResponse r = ts->handle(makeRequest("POST", "/v1/multicpu",
                                            body));
    ASSERT_EQ(r.status, 200) << r.body;

    pipeline::MpRequest req;
    req.kernelId = 1;
    req.cpus = 2;
    req.mix = lfk::MpMix::LockStep;
    EXPECT_EQ(r.body, pipeline::renderMpJson(
                          pipeline::runMpAnalysis(req)));

    // Second hit serves the memoized body byte-for-byte.
    HttpResponse again = ts->handle(
        makeRequest("POST", "/v1/multicpu", body));
    EXPECT_EQ(again.status, 200);
    EXPECT_EQ(again.body, r.body);
}

TEST(MultiCpu, DefaultsAndEngineSelection)
{
    TestServer ts;
    // Empty body: kernel 1 on every CPU of the builtin C-240.
    HttpResponse r = ts->handle(makeRequest("POST", "/v1/multicpu",
                                            ""));
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_NE(r.body.find("\"schema\": \"macs-mp-v1\""),
              std::string::npos);
    EXPECT_NE(r.body.find("\"cpus\": 4"), std::string::npos);
    EXPECT_NE(r.body.find("\"engine\": \"coupled\""),
              std::string::npos);

    HttpResponse a = ts->handle(makeRequest(
        "POST", "/v1/multicpu", "{\"engine\": \"analytic\"}"));
    ASSERT_EQ(a.status, 200) << a.body;
    EXPECT_NE(a.body.find("\"engine\": \"analytic\""),
              std::string::npos);
    // The engine tier is part of the cache key: distinct bodies.
    EXPECT_NE(a.body, r.body);
}

TEST(MultiCpu, RequestErrorsAre400)
{
    TestServer ts;
    EXPECT_EQ(ts->handle(makeRequest("POST", "/v1/multicpu",
                                     "{\"kernel\": 99}"))
                  .status,
              400);
    EXPECT_EQ(ts->handle(makeRequest("POST", "/v1/multicpu",
                                     "{\"cpus\": 8}"))
                  .status,
              400);
    EXPECT_EQ(ts->handle(makeRequest("POST", "/v1/multicpu",
                                     "{\"mix\": \"bogus\"}"))
                  .status,
              400);
    EXPECT_EQ(ts->handle(makeRequest(
                              "POST", "/v1/multicpu",
                              "{\"mix\": \"strip\", "
                              "\"engine\": \"analytic\"}"))
                  .status,
              400);
    EXPECT_EQ(ts->handle(makeRequest("POST", "/v1/multicpu",
                                     "{\"kernel\": [1]}"))
                  .status,
              400);
    EXPECT_EQ(ts->handle(makeRequest("GET", "/v1/multicpu")).status,
              405);
}

TEST(Analyze, CompileErrorIs422WithDiagnostics)
{
    TestServer ts;
    HttpResponse r = ts->handle(makeRequest(
        "POST", "/v1/analyze?kind=loop",
        "DO k\n  yy(k) = (p1 +\nEND\n"));
    EXPECT_EQ(r.status, 422) << r.body;
    EXPECT_NE(r.body.find("macs-error-v1"), std::string::npos);
    EXPECT_NE(r.body.find("diagnostics"), std::string::npos);
}

TEST(Analyze, EmptyAndMalformedBodiesAre400)
{
    TestServer ts;
    EXPECT_EQ(ts->handle(makeRequest("POST", "/v1/analyze")).status,
              400);
    EXPECT_EQ(
        ts->handle(makeRequest("POST", "/v1/analyze", "{nope"))
            .status,
        400);
    EXPECT_EQ(
        ts->handle(makeRequest("POST", "/v1/analyze",
                               "{\"kind\": \"lfk\", \"id\": 1, "
                               "\"variant\": \"warp-drive\"}"))
            .status,
        400);
}

TEST(Analyze, WrongTypedJsonFieldsAre400NotPanic)
{
    // JsonValue accessors assert on type mismatches (PanicError); a
    // wrong-typed field in a client body must still surface as a 400
    // request-shape error, never a 500.
    TestServer ts;
    const char *bodies[] = {
        "{\"source\": {\"nested\": \"object\"}}", // source not string
        "{\"kind\": 7, \"id\": 1}",               // kind not string
        "{\"id\": 1, \"variant\": [\"baseline\"]}", // variant array
    };
    for (const char *body : bodies) {
        HttpResponse r =
            ts->handle(makeRequest("POST", "/v1/analyze", body));
        EXPECT_EQ(r.status, 400) << body << " -> " << r.body;
        EXPECT_NE(r.body.find("malformed analyze request"),
                  std::string::npos)
            << r.body;
    }
    HttpResponse rb = ts->handle(makeRequest(
        "POST", "/v1/batch", "{\"ids\": [1], \"variants\": [3]}"));
    EXPECT_EQ(rb.status, 400) << rb.body;
    EXPECT_NE(rb.body.find("malformed batch request"),
              std::string::npos)
        << rb.body;
}

TEST(Batch, MultiJobRequestMatchesLocalExpansion)
{
    TestServer ts;
    HttpResponse r = ts->handle(makeRequest(
        "POST", "/v1/batch", "{\"ids\": [1, 2], \"repeat\": 2}"));
    ASSERT_EQ(r.status, 200) << r.body;

    obs::Registry registry;
    ServiceOptions opt;
    opt.metrics = &registry;
    AnalysisService service(opt);
    JobSetSpec spec;
    spec.ids = {1, 2};
    spec.repeat = 2;
    std::string expected = pipeline::renderBatchJson(
        service.runJobs(expandJobSet(spec)), false);
    EXPECT_EQ(r.body, expected);
}

TEST(SimTier, ReferenceTierIsByteIdenticalAndBadTierIs400)
{
    // The tier is plumbed through analyze/batch/sweep for the
    // differential oracle; either tier must render identical bytes.
    TestServer ts;
    const char *body = "{\"kind\": \"lfk\", \"id\": 3}";
    HttpResponse fast =
        ts->handle(makeRequest("POST", "/v1/analyze", body));
    HttpResponse query = ts->handle(makeRequest(
        "POST", "/v1/analyze?sim_tier=reference", body));
    HttpResponse field = ts->handle(makeRequest(
        "POST", "/v1/analyze",
        "{\"kind\": \"lfk\", \"id\": 3, \"sim_tier\": "
        "\"reference\"}"));
    ASSERT_EQ(fast.status, 200) << fast.body;
    EXPECT_EQ(query.body, fast.body);
    EXPECT_EQ(field.body, fast.body);

    const char *sweep_body = "{\"machines\": [{\"variant\": "
                             "\"baseline\"}], \"ids\": [1]}";
    HttpResponse sweep_fast =
        ts->handle(makeRequest("POST", "/v1/sweep", sweep_body));
    HttpResponse sweep_ref = ts->handle(makeRequest(
        "POST", "/v1/sweep?sim_tier=reference", sweep_body));
    ASSERT_EQ(sweep_fast.status, 200) << sweep_fast.body;
    EXPECT_EQ(sweep_ref.body, sweep_fast.body);

    HttpResponse bad = ts->handle(makeRequest(
        "POST", "/v1/batch?sim_tier=warp", "{\"ids\": [1]}"));
    EXPECT_EQ(bad.status, 400) << bad.body;
    EXPECT_NE(bad.body.find("unknown sim_tier"), std::string::npos)
        << bad.body;
}

// ---------------------------------------------------------------------
// End-to-end over sockets.
// ---------------------------------------------------------------------

TEST(EndToEnd, ParallelKeepAliveClientsByteIdentical)
{
    ServerOptions opt;
    opt.workers = 4;
    TestServer ts(opt);
    ts.start();

    const std::vector<int> ids = {1, 2, 3};
    std::map<int, std::string> expected;
    for (int id : ids)
        expected[id] = expectedLfkJson(id);

    constexpr int kClients = 4;
    constexpr int kRounds = 3;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            HttpClient client("127.0.0.1", ts.port());
            for (int round = 0; round < kRounds; ++round) {
                for (int id : ids) {
                    ClientResponse resp;
                    std::string body =
                        "{\"kind\": \"lfk\", \"id\": " +
                        std::to_string(id) + "}";
                    if (!client.requestWithRetry(
                            "POST", "/v1/analyze", body, resp)) {
                        failures.fetch_add(1);
                        continue;
                    }
                    if (resp.status != 200 ||
                        resp.body != expected[id])
                        mismatches.fetch_add(1);
                }
            }
            (void)c;
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mismatches.load(), 0);
    // 4 clients x 3 rounds x 3 ids = 36 requests, 3 unique keys.
    EXPECT_GE(ts->service().cache().hits(), 30u);
    EXPECT_EQ(ts->service().cache().misses(), 3u);
}

TEST(EndToEnd, SharedCacheSpansConnections)
{
    TestServer ts;
    ts.start();
    std::string body = "{\"kind\": \"lfk\", \"id\": 7}";

    ClientResponse first, second;
    {
        HttpClient a("127.0.0.1", ts.port());
        ASSERT_TRUE(a.request("POST", "/v1/analyze", body, first));
    }
    {
        HttpClient b("127.0.0.1", ts.port());
        ASSERT_TRUE(b.request("POST", "/v1/analyze", body, second));
    }
    EXPECT_EQ(first.status, 200);
    EXPECT_EQ(first.body, second.body);
    EXPECT_GE(ts->service().cache().hits(), 1u);
    EXPECT_EQ(ts->service().cache().misses(), 1u);
}

TEST(EndToEnd, OversizedBodyIs413)
{
    ServerOptions opt;
    opt.limits.maxBodyBytes = 128;
    TestServer ts(opt);
    ts.start();

    HttpClient client("127.0.0.1", ts.port());
    ClientResponse resp;
    std::string big(4096, 'x');
    ASSERT_TRUE(client.request("POST", "/v1/analyze", big, resp));
    EXPECT_EQ(resp.status, 413);
    EXPECT_NE(resp.body.find("macs-error-v1"), std::string::npos);
}

TEST(EndToEnd, TornRequestGets408OnDeadline)
{
    ServerOptions opt;
    opt.requestTimeoutMs = 150;
    TestServer ts(opt);
    ts.start();

    int fd = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(writeAll(fd, "GET /healthz HTT", 1000));
    std::string reply = readUntilClosed(fd, 2000);
    closeFd(fd);
    EXPECT_NE(reply.find(" 408 "), std::string::npos) << reply;
}

TEST(EndToEnd, IdleKeepAliveClosesQuietly)
{
    ServerOptions opt;
    opt.requestTimeoutMs = 100;
    TestServer ts(opt);
    ts.start();

    int fd = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(fd, 0);
    // No bytes sent: the idle deadline must close without a response.
    std::string reply = readUntilClosed(fd, 2000);
    closeFd(fd);
    EXPECT_TRUE(reply.empty()) << reply;
}

TEST(EndToEnd, ChunkedPostMatchesContentLengthPost)
{
    TestServer ts;
    ts.start();

    std::string body = "{\"kind\": \"lfk\", \"id\": 4}";
    HttpClient client("127.0.0.1", ts.port());
    ClientResponse plain;
    ASSERT_TRUE(client.request("POST", "/v1/analyze", body, plain));

    int fd = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(fd, 0);
    std::string msg =
        "POST /v1/analyze HTTP/1.1\r\nHost: t\r\n"
        "Content-Type: application/json\r\n"
        "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    char size_line[16];
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                  body.size());
    msg += size_line;
    msg += body + "\r\n0\r\n\r\n";
    ASSERT_TRUE(writeAll(fd, msg, 1000));
    std::string reply = readUntilClosed(fd, 5000);
    closeFd(fd);

    size_t split = reply.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    EXPECT_NE(reply.find(" 200 "), std::string::npos);
    EXPECT_EQ(reply.substr(split + 4), plain.body);
}

// ---------------------------------------------------------------------
// Admission control and fault sites.
// ---------------------------------------------------------------------

TEST(EndToEnd, BackpressureRejectsWith503AndRetryAfter)
{
    // Thread-per-session semantics: an idle connection pins a session
    // worker, so the pool queue is the admission bound.
    ServerOptions opt;
    opt.core = CoreMode::Threaded;
    opt.workers = 1;
    opt.queueCapacity = 1;
    opt.requestTimeoutMs = 2000;
    opt.retryAfterSeconds = 7;
    TestServer ts(opt);
    ts.start();

    // First connection pins the only worker; second fills the queue.
    int busy = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(busy, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    int queued = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(queued, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    // Third connection must be rejected immediately, not dropped.
    int rejected = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(rejected, 0);
    std::string reply = readUntilClosed(rejected, 2000);
    EXPECT_NE(reply.find(" 503 "), std::string::npos) << reply;
    EXPECT_NE(reply.find("Retry-After: 7"), std::string::npos)
        << reply;

    closeFd(rejected);
    closeFd(queued);
    closeFd(busy);
    ts->drain();
    std::string prom = obs::renderPrometheus(ts.registry);
    EXPECT_NE(prom.find("macs_server_rejected_total"),
              std::string::npos);
}

TEST(EndToEnd, EventedCoreBoundsOpenConnectionsWith503)
{
    // Evented semantics: idle connections pin nothing, so the
    // admission bound is maxConnections, not the compute queue.
    ServerOptions opt;
    opt.maxConnections = 2;
    opt.retryAfterSeconds = 7;
    TestServer ts(opt);
    ts.start();

    int first = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(first, 0);
    int second = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(second, 0);
    // Both idle connections must be adopted by a shard (not a worker
    // thread) before the third can observe the bound.
    for (int i = 0; i < 100 && ts->connectionCount() < 2; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(ts->connectionCount(), 2u);

    int rejected = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(rejected, 0);
    std::string reply = readUntilClosed(rejected, 2000);
    EXPECT_NE(reply.find(" 503 "), std::string::npos) << reply;
    EXPECT_NE(reply.find("Retry-After: 7"), std::string::npos)
        << reply;
    closeFd(rejected);

    // Closing one frees a slot: the next connection is served.
    closeFd(first);
    for (int i = 0; i < 100 && ts->connectionCount() >= 2; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    HttpClient client("127.0.0.1", ts.port());
    ClientResponse resp;
    ASSERT_TRUE(client.request("GET", "/healthz", "", resp));
    EXPECT_EQ(resp.status, 200);

    closeFd(second);
    ts->drain();
    std::string prom = obs::renderPrometheus(ts.registry);
    EXPECT_NE(prom.find("macs_server_rejected_total"),
              std::string::npos);
    EXPECT_NE(prom.find("macs_server_shard_connections"),
              std::string::npos);
}

TEST(Faults, NetAcceptRejectsWith503)
{
    TestServer ts({}, "net-accept:1.0:42");
    ts.start();
    int fd = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(fd, 0);
    std::string reply = readUntilClosed(fd, 2000);
    closeFd(fd);
    EXPECT_NE(reply.find(" 503 "), std::string::npos) << reply;
    EXPECT_NE(reply.find("Retry-After:"), std::string::npos);
}

TEST(Faults, NetReadAnswers503InsteadOfDropping)
{
    TestServer ts({}, "net-read:1.0:42");
    ts.start();
    HttpClient client("127.0.0.1", ts.port());
    ClientResponse resp;
    ASSERT_TRUE(client.request("GET", "/healthz", "", resp));
    EXPECT_EQ(resp.status, 503);
    EXPECT_NE(resp.header("retry-after"), nullptr);
}

TEST(Faults, NetWriteCutsConnectionSoClientRetries)
{
    TestServer ts({}, "net-write:1.0:42");
    ts.start();
    HttpClient client("127.0.0.1", ts.port());
    ClientResponse resp;
    EXPECT_FALSE(client.request("GET", "/healthz", "", resp));
    // With the site firing every time, a bounded retry also fails --
    // but it must fail with a transport error, never a hang.
    EXPECT_FALSE(client.requestWithRetry("GET", "/healthz", "", resp,
                                         2, 1));
}

// ---------------------------------------------------------------------
// LRU cache bound (satellite): strict LRU order, recency refresh on
// hits, eviction counter, metric export.
// ---------------------------------------------------------------------

TEST(LruCache, EvictsLeastRecentlyUsedAndCounts)
{
    obs::Registry registry;
    pipeline::AnalysisCache cache;
    cache.attachMetrics(&registry);
    cache.setCapacity(2);

    pipeline::CacheKey k1{1, 0, 0}, k2{2, 0, 0}, k3{3, 0, 0};
    EXPECT_TRUE(cache.seed(k1, nullptr));
    EXPECT_TRUE(cache.seed(k2, nullptr));

    // Refresh k1 so k2 is the LRU victim.
    EXPECT_FALSE(cache.claim(k1).owner());
    EXPECT_TRUE(cache.seed(k3, nullptr));

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.claim(k1).owner()) << "k1 was refreshed";
    EXPECT_FALSE(cache.claim(k3).owner());
    auto claim2 = cache.claim(k2);
    EXPECT_TRUE(claim2.owner()) << "k2 should have been evicted";
    claim2.promise->set_value(nullptr); // fulfill the owner contract
    EXPECT_GE(cache.evictions(), 2u);   // inserting k2 evicted again

    std::string prom = obs::renderPrometheus(registry);
    EXPECT_NE(prom.find("macs_cache_evictions_total"),
              std::string::npos);
}

TEST(LruCache, ZeroCapacityMeansUnbounded)
{
    pipeline::AnalysisCache cache;
    for (uint64_t i = 0; i < 100; ++i)
        cache.seed(pipeline::CacheKey{i, 0, 0}, nullptr);
    EXPECT_EQ(cache.size(), 100u);
    EXPECT_EQ(cache.evictions(), 0u);
    cache.setCapacity(10); // shrink evicts the tail immediately
    EXPECT_EQ(cache.size(), 10u);
    EXPECT_EQ(cache.evictions(), 90u);
}

// ---------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------

TEST(Drain, IdempotentAndStopsAccepting)
{
    TestServer ts;
    ts.start();
    int before = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(before, 0);
    closeFd(before);

    int port = ts.port();
    ts->drain();
    ts->drain(); // second drain must be a no-op, not a hang
    EXPECT_TRUE(ts->stopping());

    int after = tcpConnect("127.0.0.1", port, 250);
    if (after >= 0) {
        // The OS may still accept into a dead backlog; bytes must not
        // flow either way.
        std::string reply = readUntilClosed(after, 250);
        EXPECT_TRUE(reply.empty());
        closeFd(after);
    } else {
        EXPECT_EQ(after, kIoError);
    }
}

TEST(Drain, InFlightRequestFinishesWithConnectionClose)
{
    TestServer ts;
    ts.start();
    HttpClient client("127.0.0.1", ts.port());
    ClientResponse warm;
    ASSERT_TRUE(client.request("GET", "/healthz", "", warm));

    ts->requestStop();
    // The session observes the stop flag: the next response (if the
    // read races ahead of the flag) or the connection teardown must
    // resolve within the deadline -- never a hang.
    ClientResponse resp;
    bool ok = client.request("GET", "/healthz", "", resp);
    if (ok) {
        EXPECT_EQ(resp.status, 200);
        const std::string *conn = resp.header("connection");
        ASSERT_NE(conn, nullptr);
        EXPECT_EQ(*conn, "close");
    }
    ts->drain();
}

TEST(Drain, ChunkedUploadInFlightCompletesAndJournalFlushes)
{
    // SIGTERM-drain contract (docs/SERVER.md): a drain that begins
    // while a chunked-body upload is still arriving must let the
    // request complete — 200, result appended to the checkpoint
    // journal — before the server finishes draining.
    fs::path journal_path =
        fs::temp_directory_path() /
        ("macs_drain_chunk_" + std::to_string(::getpid()) + ".ckpt");
    fs::remove(journal_path);
    obs::Registry registry;
    pipeline::CheckpointJournal journal(journal_path.string(),
                                        &registry);
    journal.open();

    ServerOptions opt;
    opt.service.checkpoint = &journal;
    TestServer ts(std::move(opt));
    ts.start();

    std::string body = "{\"kind\": \"lfk\", \"id\": 3}";
    int fd = tcpConnect("127.0.0.1", ts.port(), 1000);
    ASSERT_GE(fd, 0);
    // Headers + first half of the chunked body, then stall.
    std::string head =
        "POST /v1/analyze HTTP/1.1\r\nHost: t\r\n"
        "Content-Type: application/json\r\n"
        "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    std::string half1 = body.substr(0, body.size() / 2);
    std::string half2 = body.substr(body.size() / 2);
    char size_line[16];
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                  half1.size());
    ASSERT_TRUE(writeAll(fd, head + size_line + half1 + "\r\n", 1000));

    // Wait until the server has actually accepted the connection:
    // the drain contract protects requests in flight ON the server,
    // not connections still sitting in the listen backlog.
    obs::Counter &accepted = ts->metricsRegistry().counter(
        "macs_server_connections_total", "Connections accepted");
    for (int i = 0; i < 500 && accepted.value() < 1.0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_GE(accepted.value(), 1.0);

    // Drain begins with the upload only half-delivered.
    ts->requestStop();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // The second half still gets through: requests in flight finish.
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                  half2.size());
    ASSERT_TRUE(writeAll(
        fd, std::string(size_line) + half2 + "\r\n0\r\n\r\n", 1000));
    std::string reply = readUntilClosed(fd, 5000);
    closeFd(fd);
    ts->drain();

    EXPECT_NE(reply.find(" 200 "), std::string::npos) << reply;
    EXPECT_EQ(journal.entryCount(), 1u)
        << "the completed analysis must be flushed to the journal";
    fs::remove(journal_path);
}

// ---------------------------------------------------------------------
// SIGPIPE regression: a client that disappears mid-response must be
// an EPIPE on the server's send path (MSG_NOSIGNAL everywhere), never
// a process-killing signal — for BOTH connection cores.
// ---------------------------------------------------------------------

void
clientClosesMidResponse(CoreMode core)
{
    ServerOptions opt;
    opt.core = core;
    TestServer ts(std::move(opt));
    ts.start();

    for (int i = 0; i < 3; ++i) {
        int fd = tcpConnect("127.0.0.1", ts.port(), 1000);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(writeAll(fd,
                             "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n",
                             1000));
        // SO_LINGER(0): close() sends RST instead of FIN, so the
        // server's in-progress response write hits a dead socket.
        struct linger lg;
        lg.l_onoff = 1;
        lg.l_linger = 0;
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        closeFd(fd);
    }

    // If SIGPIPE had killed the process we would never get here; the
    // server must also still answer new clients.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    HttpClient client("127.0.0.1", ts.port());
    ClientResponse resp;
    ASSERT_TRUE(client.request("GET", "/healthz", "", resp));
    EXPECT_EQ(resp.status, 200);
}

TEST(Sigpipe, EventedCoreSurvivesClientClosingMidResponse)
{
    clientClosesMidResponse(CoreMode::Evented);
}

TEST(Sigpipe, ThreadedCoreSurvivesClientClosingMidResponse)
{
    clientClosesMidResponse(CoreMode::Threaded);
}

} // namespace
} // namespace macs::server
