# Empty compiler generated dependencies file for scalar_cache_test.
# This may be replaced when dependencies are built.
