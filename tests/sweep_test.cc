/**
 * @file
 * Machine-sweep tests (pipeline/sweep.h, POST /v1/sweep).
 *
 * The contract under test is DETERMINISM: a sweep is a pure function
 * of (machine set, kernel list, sim options), so the rendered matrix
 * must be byte-identical at any worker count and invariant to the
 * order machines arrive in (the machine axis is name-sorted). The
 * server half reuses Server::handle(), socket-free, like server_test.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lfk/kernels.h"
#include "machine/machine_file.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "pipeline/sweep.h"
#include "server/http.h"
#include "server/server.h"
#include "support/diag.h"

namespace macs::pipeline {
namespace {

SweepMachine
fileMachine(const std::string &file)
{
    std::string path = std::string(MACS_MACHINE_DIR) + "/" + file;
    machine::MachineFile mf;
    Diagnostics diags;
    EXPECT_TRUE(machine::loadMachineFile(path, mf, diags))
        << diags.render();
    return {mf.name, mf.description, path, mf.config};
}

/** All shipped machine files, plus kernels {1, 7, 12}. */
SweepRequest
shippedRequest()
{
    SweepRequest request;
    Diagnostics diags;
    for (const std::string &path :
         machine::listMachineFiles(MACS_MACHINE_DIR, diags)) {
        machine::MachineFile mf;
        Diagnostics d;
        EXPECT_TRUE(machine::loadMachineFile(path, mf, d))
            << d.render();
        request.machines.push_back(
            {mf.name, mf.description, path, mf.config});
    }
    EXPECT_FALSE(diags.hasErrors()) << diags.render();
    for (int id : {1, 7, 12})
        request.kernels.push_back(
            lfk::toKernelCase(lfk::makeKernel(id)));
    return request;
}

SweepResult
runWithWorkers(const SweepRequest &request, size_t workers)
{
    EngineOptions opt;
    opt.workers = workers;
    BatchEngine engine(opt);
    return runSweep(request, engine);
}

TEST(Sweep, ByteIdenticalAcrossWorkerCounts)
{
    SweepRequest request = shippedRequest();
    SweepResult r1 = runWithWorkers(request, 1);
    std::string md1 = renderSweepMarkdown(r1);
    std::string js1 = renderSweepJson(r1);
    EXPECT_EQ(r1.stats.failures, 0u);
    for (size_t workers : {4u, 16u}) {
        SweepResult rn = runWithWorkers(request, workers);
        EXPECT_EQ(md1, renderSweepMarkdown(rn)) << workers;
        EXPECT_EQ(js1, renderSweepJson(rn)) << workers;
    }
}

TEST(Sweep, InvariantToMachineOrdering)
{
    SweepRequest request = shippedRequest();
    ASSERT_GE(request.machines.size(), 3u);
    SweepResult base = runWithWorkers(request, 4);

    // Reverse and rotate the machine list; the matrix must not move.
    SweepRequest reversed = request;
    std::reverse(reversed.machines.begin(), reversed.machines.end());
    SweepRequest rotated = request;
    std::rotate(rotated.machines.begin(),
                rotated.machines.begin() + 1, rotated.machines.end());

    std::string md = renderSweepMarkdown(base);
    std::string js = renderSweepJson(base);
    EXPECT_EQ(md, renderSweepMarkdown(runWithWorkers(reversed, 4)));
    EXPECT_EQ(js, renderSweepJson(runWithWorkers(reversed, 4)));
    EXPECT_EQ(md, renderSweepMarkdown(runWithWorkers(rotated, 4)));
    EXPECT_EQ(js, renderSweepJson(runWithWorkers(rotated, 4)));

    // And the result's machine axis is name-sorted.
    EXPECT_TRUE(std::is_sorted(
        base.machines.begin(), base.machines.end(),
        [](const SweepMachine &a, const SweepMachine &b) {
            return a.name < b.name;
        }));
}

TEST(Sweep, ValidateRejectsBadRequests)
{
    SweepRequest request; // no machines, no kernels
    {
        Diagnostics diags;
        EXPECT_FALSE(validateSweep(request, diags));
        EXPECT_GE(diags.errorCount(), 2u) << diags.render();
    }
    request.machines.push_back(fileMachine("c240.machine"));
    request.kernels.push_back(lfk::toKernelCase(lfk::makeKernel(1)));
    {
        Diagnostics diags;
        EXPECT_TRUE(validateSweep(request, diags)) << diags.render();
    }
    // Duplicate machine names render ambiguous columns: rejected.
    SweepMachine dup = fileMachine("c240-64bank.machine");
    dup.name = request.machines[0].name;
    request.machines.push_back(dup);
    {
        Diagnostics diags;
        EXPECT_FALSE(validateSweep(request, diags));
        EXPECT_NE(diags.render().find("duplicate"), std::string::npos)
            << diags.render();
    }
}

TEST(Sweep, ExitCodeContract)
{
    SweepRequest request;
    request.machines.push_back(fileMachine("c240.machine"));
    request.kernels.push_back(lfk::toKernelCase(lfk::makeKernel(1)));
    EXPECT_EQ(runWithWorkers(request, 2).exitCode(), 0);

    // One broken kernel row -> partial failure (2); the healthy cell
    // must still be rendered and the broken one carried as an error.
    model::KernelCase broken =
        lfk::toKernelCase(lfk::makeKernel(7));
    broken.points = 0; // analyzeKernel() rejects this
    request.kernels.push_back(broken);
    SweepResult partial = runWithWorkers(request, 2);
    EXPECT_EQ(partial.exitCode(), 2);
    EXPECT_TRUE(partial.cells[0][0].ok());
    EXPECT_FALSE(partial.cells[1][0].ok());
    std::string md = renderSweepMarkdown(partial);
    EXPECT_NE(md.find("FAILED"), std::string::npos) << md;
    EXPECT_NE(md.find("## Failures"), std::string::npos) << md;

    // All rows broken -> total failure (3).
    request.kernels.erase(request.kernels.begin());
    EXPECT_EQ(runWithWorkers(request, 2).exitCode(), 3);
}

TEST(Sweep, JsonCarriesSchemaAndContentHashes)
{
    SweepRequest request;
    request.machines.push_back(fileMachine("c240.machine"));
    request.machines.push_back(fileMachine("c3800ish.machine"));
    request.kernels.push_back(lfk::toKernelCase(lfk::makeKernel(1)));
    SweepResult result = runWithWorkers(request, 2);
    obs::JsonValue doc = obs::parseJson(renderSweepJson(result));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("schema")->asString(), "macs-sweep-v1");
    const obs::JsonValue *machines = doc.find("machines");
    ASSERT_NE(machines, nullptr);
    ASSERT_EQ(machines->size(), 2u);
    // Distinct configs carry distinct content hashes in the legend.
    std::string h0 =
        machines->at(0).find("contentHash")->asString();
    std::string h1 =
        machines->at(1).find("contentHash")->asString();
    EXPECT_NE(h0, h1);
    EXPECT_EQ(h0.size(), 16u) << h0; // %016llx
    // cells is kernel-major: one row per kernel, one cell per machine.
    const obs::JsonValue *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->size(), 1u);
    EXPECT_EQ(cells->at(0).size(), 2u);
}

} // namespace
} // namespace macs::pipeline

// ---------------------------------------------------------------------
// POST /v1/sweep through the dispatch table, socket-free.
// ---------------------------------------------------------------------

namespace macs::server {
namespace {

HttpRequest
makeRequest(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    RequestParser parser;
    std::string msg = method + " " + target + " HTTP/1.1\r\n";
    msg += "Host: test\r\n";
    if (!body.empty() || method == "POST")
        msg += "Content-Length: " + std::to_string(body.size()) +
               "\r\n";
    msg += "\r\n" + body;
    parser.feed(msg);
    EXPECT_TRUE(parser.complete()) << method << " " << target;
    return parser.take();
}

struct TestServer
{
    obs::Registry registry;
    std::unique_ptr<Server> server;

    TestServer()
    {
        ServerOptions opt;
        opt.workers = 2;
        opt.metrics = &registry;
        opt.service.metrics = &registry;
        server = std::make_unique<Server>(std::move(opt));
    }

    Server *operator->() { return server.get(); }
};

const std::string *
headerOf(const HttpResponse &response, const std::string &name)
{
    for (const auto &[k, v] : response.headers)
        if (k == name)
            return &v;
    return nullptr;
}

TEST(SweepEndpoint, InlineTextAndVariantColumns)
{
    TestServer ts;
    std::string body = std::string("{\"machines\":[{\"text\":\"") +
                       "[machine]\\nname = tiny\\nclock-mhz = 50\\n" +
                       "\"},{\"variant\":\"baseline\"}]," +
                       "\"ids\":[1,7]}";
    HttpResponse r = ts->handle(
        makeRequest("POST", "/v1/sweep", body));
    ASSERT_EQ(r.status, 200) << r.body;
    const std::string *exit_code = headerOf(r, "X-MACS-Exit-Code");
    ASSERT_NE(exit_code, nullptr);
    EXPECT_EQ(*exit_code, "0");

    obs::JsonValue doc = obs::parseJson(r.body);
    EXPECT_EQ(doc.find("schema")->asString(), "macs-sweep-v1");
    const obs::JsonValue *machines = doc.find("machines");
    ASSERT_EQ(machines->size(), 2u);
    // Name-sorted: "baseline" before "tiny".
    EXPECT_EQ(machines->at(0).find("name")->asString(), "baseline");
    EXPECT_EQ(machines->at(1).find("name")->asString(), "tiny");
    EXPECT_EQ(doc.find("kernels")->size(), 2u);
    ASSERT_EQ(doc.find("cells")->size(), 2u); // kernel-major rows
    EXPECT_EQ(doc.find("cells")->at(0).size(), 2u);

    // Same request again: byte-identical response body (the service
    // cache and worker pool must not leak scheduling into it).
    HttpResponse r2 = ts->handle(
        makeRequest("POST", "/v1/sweep", body));
    EXPECT_EQ(r.body, r2.body);
}

TEST(SweepEndpoint, KernelsDefaultToFullLfkSet)
{
    TestServer ts;
    std::string body =
        std::string("{\"machines\":[{\"variant\":\"baseline\"}]}");
    HttpResponse r = ts->handle(
        makeRequest("POST", "/v1/sweep", body));
    ASSERT_EQ(r.status, 200) << r.body;
    obs::JsonValue doc = obs::parseJson(r.body);
    EXPECT_EQ(doc.find("kernels")->size(), lfk::lfkIds().size());
}

TEST(SweepEndpoint, MalformedBodyIs400)
{
    TestServer ts;
    EXPECT_EQ(ts->handle(makeRequest("POST", "/v1/sweep", "{nope"))
                  .status,
              400);
    EXPECT_EQ(ts->handle(makeRequest("POST", "/v1/sweep", "[]"))
                  .status,
              400);
    EXPECT_EQ(ts->handle(makeRequest("POST", "/v1/sweep", "{}"))
                  .status,
              400); // machines array is required
    EXPECT_EQ(ts->handle(makeRequest("GET", "/v1/sweep")).status,
              405);
}

TEST(SweepEndpoint, BadMachinesCollectEveryErrorAs422)
{
    TestServer ts;
    // Two broken machines + one unknown variant: the 422 must carry
    // diagnostics from ALL of them, with machines[i]:line:col refs.
    std::string bad_text = "[machine]\\nvolts = 5\\n"
                           "[memory]\\nbanks = 0\\n";
    std::string body = std::string("{\"machines\":[") +
                       "{\"text\":\"" + bad_text + "\"}," +
                       "{\"text\":\"" + bad_text + "\"}," +
                       "{\"variant\":\"warp-drive\"}]}";
    HttpResponse r = ts->handle(
        makeRequest("POST", "/v1/sweep", body));
    ASSERT_EQ(r.status, 422) << r.body;
    obs::JsonValue doc = obs::parseJson(r.body);
    const obs::JsonValue *diags = doc.find("diagnostics");
    ASSERT_NE(diags, nullptr) << r.body;
    // 2 errors per broken machine + 1 unknown variant (plus the
    // follow-on "no machines survived" validation error).
    EXPECT_GE(diags->size(), 5u) << r.body;
    EXPECT_NE(r.body.find("machines[0]"), std::string::npos);
    EXPECT_NE(r.body.find("machines[1]"), std::string::npos);
    EXPECT_NE(r.body.find("warp-drive"), std::string::npos);
}

TEST(SweepEndpoint, UnknownKernelIdIs422)
{
    TestServer ts;
    // Kernel ids are validated before any job runs, so a bad id is a
    // request error, never a half-rendered matrix.
    std::string body =
        std::string("{\"machines\":[{\"variant\":\"baseline\"}],") +
        "\"ids\":[99]}";
    HttpResponse r = ts->handle(
        makeRequest("POST", "/v1/sweep", body));
    EXPECT_EQ(r.status, 422) << r.body;
}

TEST(SweepEndpoint, AdvertisedInVersionAndRoutes)
{
    TestServer ts;
    HttpResponse v = ts->handle(makeRequest("GET", "/version"));
    EXPECT_NE(v.body.find("macs-sweep-v1"), std::string::npos)
        << v.body;
    HttpResponse nf = ts->handle(makeRequest("GET", "/nope"));
    EXPECT_NE(nf.body.find("/v1/sweep"), std::string::npos)
        << nf.body;
}

} // namespace
} // namespace macs::server
