/**
 * @file
 * Process-level fault sites for supervised serving
 * (docs/ROBUSTNESS.md "Process faults").
 *
 * The proc-crash and proc-hang sites let scripts/chaos.sh manufacture
 * worker deaths deterministically: a supervised worker consults its
 * FaultInjector once at startup and, when a site fires for its
 * (slot, incarnation) key, arms a detached timer thread that later
 * SIGKILLs (crash) or SIGSTOPs (hang) the whole worker process
 * mid-load. The supervisor's watchdog then has a real corpse / frozen
 * process to recover from — nothing is simulated.
 *
 * Determinism: the key is procFaultKey(slot, incarnation), so with a
 * fixed seed the exact set of (slot, incarnation) pairs that die is a
 * pure function of the plan — restart counts are predictable and
 * chaos goldens can assert them. The firing DELAY is staggered per
 * slot (param * (1 + slot) ms) so workers do not all die in the same
 * instant and the fleet keeps answering throughout.
 */

#ifndef MACS_SUPERVISOR_PROC_FAULTS_H
#define MACS_SUPERVISOR_PROC_FAULTS_H

#include <cstdint>

#include "faults/fault_injection.h"

namespace macs::supervisor {

/**
 * Injection key for a worker: (slot << 8) | incarnation. Slots and
 * incarnations below 256 map to distinct keys, which covers any
 * realistic chaos run (kMaxWorkers is 64; the restart budget caps
 * incarnations).
 */
constexpr uint64_t
procFaultKey(int slot, int incarnation)
{
    return (static_cast<uint64_t>(static_cast<uint32_t>(slot)) << 8) |
           (static_cast<uint64_t>(static_cast<uint32_t>(incarnation)) &
            0xff);
}

/**
 * Evaluate the proc-crash / proc-hang sites for this worker and, when
 * one fires, arm a detached thread that raises the corresponding
 * signal after the staggered delay:
 *
 *   delay_ms = param (default 200) * (1 + slot)
 *
 * proc-crash raises SIGKILL (instant corpse: the supervisor reaps it
 * and restarts the slot); proc-hang raises SIGSTOP (the process
 * freezes mid-request: heartbeats stop, the watchdog SIGKILLs it
 * after the liveness deadline). When both sites fire for the same
 * key, the crash wins. Call from the worker process only, after
 * fork.
 */
void armProcFaults(const faults::FaultInjector &injector, int slot,
                   int incarnation);

} // namespace macs::supervisor

#endif // MACS_SUPERVISOR_PROC_FAULTS_H
