/**
 * @file
 * Reproduces paper Table 4: MA/MAC/MACS bounds versus measured
 * performance in CPF, the percentage of measured time each bound
 * explains, the per-level averages, and the harmonic-mean MFLOPS row.
 * The paper's published column is printed alongside for comparison.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "macs/metrics.h"
#include "support/table.h"

int
main(int argc, char **argv)
{
    using namespace macs;
    bool csv = argc > 1 && std::string(argv[1]) == "--csv";
    using namespace macs::bench;

    std::printf("=== Table 4: Bounds vs measured performance (CPF) "
                "===\n\n");

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    Table t({"LFK", "t_MA", "t_MAC", "t_MACS", "t_p", "%MA", "%MAC",
             "%MACS", "paper t_p"});
    std::vector<double> ma, mac, macs, act, paper_act;
    for (int id : lfk::lfkIds()) {
        const auto &a = allAnalyses().at(id);
        const auto &ref = paperReference().at(id);
        ma.push_back(a.maCpf());
        mac.push_back(a.macCpf());
        macs.push_back(a.macsCpf());
        act.push_back(a.actualCpf());
        paper_act.push_back(ref.tpCpf);
        t.addRow({"LFK" + std::to_string(id), Table::num(a.maCpf()),
                  Table::num(a.macCpf()), Table::num(a.macsCpf()),
                  Table::num(a.actualCpf()),
                  Table::num(100.0 * a.maCpf() / a.actualCpf(), 1),
                  Table::num(100.0 * a.macCpf() / a.actualCpf(), 1),
                  Table::num(100.0 * a.macsCpf() / a.actualCpf(), 1),
                  Table::num(ref.tpCpf)});
    }
    t.addSeparator();
    t.addRow({"AVG", Table::num(mean(ma)), Table::num(mean(mac)),
              Table::num(mean(macs)), Table::num(mean(act)),
              Table::num(100.0 * mean(ma) / mean(act), 1),
              Table::num(100.0 * mean(mac) / mean(act), 1),
              Table::num(100.0 * mean(macs) / mean(act), 1),
              Table::num(mean(paper_act))});
    t.addRow({"MFLOPS",
              Table::num(model::hmeanMflops(ma, cfg.clockMhz), 2),
              Table::num(model::hmeanMflops(mac, cfg.clockMhz), 2),
              Table::num(model::hmeanMflops(macs, cfg.clockMhz), 2),
              Table::num(model::hmeanMflops(act, cfg.clockMhz), 2),
              "", "", "",
              Table::num(model::hmeanMflops(paper_act, cfg.clockMhz),
                         2)});
    std::printf("%s\n", csv ? t.renderCsv().c_str() : t.render().c_str());

    std::printf(
        "paper AVG row: 1.080 / 1.238 / 1.352 / 1.900 CPF;\n"
        "paper MFLOPS row: 23.15 / 20.19 / 17.79 / 13.16.\n"
        "Shape checks: the MA and MAC columns match the paper exactly;\n"
        "bound coverage is >= 90%% everywhere except LFK 2/4/6, whose\n"
        "short vectors, strides, reductions and scalar overhead the\n"
        "MACS level deliberately does not model (paper section 4.4).\n");
    return 0;
}
