/**
 * @file
 * Timing model of the single CPU<->memory port and the interleaved,
 * refreshed memory system behind it.
 *
 * The C-240 memory has 32 banks of 8-byte words with an 8-cycle bank
 * busy time; with unit stride a port sustains one access per cycle. A
 * stride s visits banks/gcd(banks, s) distinct banks cyclically, so
 * strides sharing a large factor with the bank count reduce throughput
 * (e.g., stride 32 hits one bank and sustains one access per 8 cycles).
 *
 * Dynamic memory refresh occurs every refreshPeriodCycles and blocks
 * the port for refreshDurationCycles; refreshes that fall while the
 * port is idle are masked (paper section 3.2).
 *
 * Multi-processor contention is modeled by a rate multiplier (>= 1)
 * calibrated against the paper's observation that under load a port
 * sustains one access per 56-64 ns instead of per 40 ns cycle.
 */

#ifndef MACS_SIM_MEMORY_PORT_H
#define MACS_SIM_MEMORY_PORT_H

#include <cstdint>

#include "machine/machine_config.h"

namespace macs::sim {

/** Timing of one serviced vector stream. */
struct StreamTiming
{
    double enter = 0;     ///< cycle the first element enters the port
    double rate = 1.0;    ///< cycles per element actually sustained
    double streamEnd = 0; ///< cycle the last element has entered
    double refreshStall = 0; ///< refresh cycles charged to this stream
};

/** Timing of one scalar access. */
struct ScalarAccessTiming
{
    double start = 0; ///< cycle the access wins the port
    double done = 0;  ///< cycle the port is free again
};

/** The per-CPU memory port (stateful: tracks busy time and refresh). */
class MemoryPort
{
  public:
    MemoryPort(const machine::MemoryConfig &config,
               double contention_factor = 1.0);

    /**
     * Service a vector stream of @p elements words with word stride
     * @p stride_words, not before cycle @p earliest. The sustained
     * rate is max(@p rate_floor, stride rate * contention); a chained
     * producer slower than memory passes its rate in @p rate_floor.
     */
    StreamTiming serviceStream(double earliest, int elements,
                               int64_t stride_words,
                               double rate_floor = 1.0);

    /** Service one scalar access, not before cycle @p earliest. */
    ScalarAccessTiming serviceScalar(double earliest);

    /** Earliest cycle a new access can win the port. */
    double freeAt() const { return free_at_; }

    /** Sustained cycles/element for @p stride_words (no contention). */
    double strideRate(int64_t stride_words) const;

    /** Total refresh cycles charged so far. */
    double refreshStallTotal() const { return refresh_stall_total_; }

  private:
    /** Refresh cycles hitting a busy window [begin, nominal end). */
    double refreshStall(double begin, double end) const;

    machine::MemoryConfig config_;
    double contention_;
    double free_at_ = 0.0;
    double refresh_stall_total_ = 0.0;
};

} // namespace macs::sim

#endif // MACS_SIM_MEMORY_PORT_H
