/**
 * @file
 * Declarative machine-description files (docs/MACHINES.md).
 *
 * A `*.machine` file is a small sectioned key/value text format that
 * spells out every constant a MachineConfig holds: clock, vector
 * length, memory geometry, chaining rules, scalar timing, the refresh
 * model, and the per-opcode X/Y/Z/B vector timings of the paper's
 * Table 1. machines/c240.machine reproduces the built-in C-240 table
 * exactly (pinned by a differential test); the other shipped files are
 * hypothetical design-space variants evaluated by `macs sweep`.
 *
 * Parsing uses the same multi-error Diagnostics machinery as the loop
 * DSL: the parser recovers at line boundaries and reports EVERY
 * problem with file:line:col context, not just the first.
 */

#ifndef MACS_MACHINE_MACHINE_FILE_H
#define MACS_MACHINE_MACHINE_FILE_H

#include <string>
#include <string_view>
#include <vector>

#include "machine/machine_config.h"
#include "support/diag.h"

namespace macs::machine {

/** A parsed machine-description file. */
struct MachineFile
{
    std::string name;        ///< [machine] name (default: file stem)
    std::string description; ///< [machine] description (optional)
    MachineConfig config;    ///< the fully resolved configuration
};

/**
 * Parse machine-description @p text into @p out, collecting every
 * problem into @p diags (the source is attached for snippets; @p file
 * names the input in messages). @p out is fully written only when the
 * parse is clean.
 *
 * @retval true when no errors were collected.
 */
bool parseMachineDescription(std::string_view text,
                             const std::string &file, MachineFile &out,
                             Diagnostics &diags);

/**
 * Read @p path and parse it. When the file has no explicit
 * `name =` entry the file stem (basename minus `.machine`) is used.
 * I/O failures are reported through @p diags like parse errors.
 *
 * @retval true when the file loaded and parsed cleanly.
 */
bool loadMachineFile(const std::string &path, MachineFile &out,
                     Diagnostics &diags);

/**
 * The file stem used as a machine's default name:
 * "machines/c240.machine" -> "c240".
 */
std::string machineNameFromPath(const std::string &path);

/**
 * List the `*.machine` files under directory @p dir, sorted by path
 * so downstream consumers (the sweep matrix) are order-deterministic.
 * Returns an empty vector (and reports through @p diags) when the
 * directory cannot be read.
 */
std::vector<std::string> listMachineFiles(const std::string &dir,
                                          Diagnostics &diags);

} // namespace macs::machine

#endif // MACS_MACHINE_MACHINE_FILE_H
