/**
 * @file
 * Simulator tests: functional semantics of every instruction class and
 * the timing behaviours the paper documents (chaining, tailgating with
 * bubbles — Figure 2 —, pair port limits, scalar/vector memory port
 * contention, VL clamping).
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"
#include "support/logging.h"

namespace macs::sim {
namespace {

machine::MachineConfig
quietConfig()
{
    // Refresh off for exact timing arithmetic in tests.
    return machine::MachineConfig::noRefresh();
}

RunStats
runText(const std::string &text, Simulator **out_sim = nullptr,
        SimOptions options = {},
        const machine::MachineConfig &config = quietConfig())
{
    static std::vector<std::unique_ptr<Simulator>> keep_alive;
    static std::vector<std::unique_ptr<isa::Program>> keep_progs;
    keep_progs.push_back(
        std::make_unique<isa::Program>(isa::assemble(text)));
    static std::vector<std::unique_ptr<machine::MachineConfig>> keep_cfg;
    keep_cfg.push_back(std::make_unique<machine::MachineConfig>(config));
    keep_alive.push_back(std::make_unique<Simulator>(
        *keep_cfg.back(), *keep_progs.back(), options));
    Simulator &s = *keep_alive.back();
    if (out_sim)
        *out_sim = &s;
    return s.run();
}

// ---------------------------------------------------------------- functional

TEST(SimFunctional, ScalarMovAddSubMul)
{
    Simulator *s = nullptr;
    runText(R"(
    mov #10,s0
    mov #3,s1
    add.w s0,s1,s2
    sub.w s0,s1,s3
    mul.w s0,s1,s4
    add.w #5,s0
    sub.w #2,s1
)",
            &s);
    EXPECT_EQ(s->scalarAsInt(2), 13);
    EXPECT_EQ(s->scalarAsInt(3), 7);
    EXPECT_EQ(s->scalarAsInt(4), 30);
    EXPECT_EQ(s->scalarAsInt(0), 15);
    EXPECT_EQ(s->scalarAsInt(1), 1);
}

TEST(SimFunctional, ScalarLoadStore)
{
    Simulator *s = nullptr;
    runText(R"(
.comm cell,2
    mov #77,s1
    st.w s1,cell
    ld.w cell,s2
    st.w s2,cell+8
)",
            &s);
    EXPECT_EQ(s->scalarAsInt(2), 77);
    EXPECT_EQ(static_cast<int64_t>(
                  s->memory().readWord(s->memory().symbolBase("cell") + 8)),
              77);
}

TEST(SimFunctional, BranchLoopCountsDown)
{
    Simulator *s = nullptr;
    RunStats st = runText(R"(
    mov #5,s0
    mov #0,s1
L1: add.w #1,s1
    sub.w #1,s0
    lt.w #0,s0
    jbrs.t L1
)",
                          &s);
    EXPECT_EQ(s->scalarAsInt(1), 5);
    EXPECT_EQ(st.branchesTaken, 4u);
}

TEST(SimFunctional, UnconditionalJumpSkips)
{
    Simulator *s = nullptr;
    runText(R"(
    mov #1,s0
    jbra SKIP
    mov #2,s0
SKIP: mov #3,s1
)",
            &s);
    EXPECT_EQ(s->scalarAsInt(0), 1);
    EXPECT_EQ(s->scalarAsInt(1), 3);
}

TEST(SimFunctional, BranchFalsePath)
{
    Simulator *s = nullptr;
    runText(R"(
    mov #5,s0
    lt.w #10,s0
    jbrs.f FALL
    mov #111,s1
FALL: mov #7,s2
)",
            &s);
    // 10 < 5 is false -> jbrs.f taken -> s1 untouched.
    EXPECT_EQ(s->scalarAsInt(1), 0);
    EXPECT_EQ(s->scalarAsInt(2), 7);
}

TEST(SimFunctional, VectorElementwiseOps)
{
    isa::Program prog = isa::assemble(R"(
.comm a,8
.comm b,8
.comm r1,8
.comm r2,8
    mov #4,s6
    mov s6,VL
    ld.l a,v0
    ld.l b,v1
    add.d v0,v1,v2
    st.l v2,r1
    sub.d v0,v1,v3
    st.l v3,r2
)");
    machine::MachineConfig cfg = quietConfig();
    Simulator sim(cfg, prog);
    sim.memory().fillDoubles("a", {1, 2, 3, 4});
    sim.memory().fillDoubles("b", {10, 20, 30, 40});
    sim.run();
    auto sums = sim.memory().readDoubles("r1", 4);
    auto diffs = sim.memory().readDoubles("r2", 4);
    EXPECT_DOUBLE_EQ(sums[0], 11.0);
    EXPECT_DOUBLE_EQ(sums[3], 44.0);
    EXPECT_DOUBLE_EQ(diffs[0], -9.0);
    EXPECT_DOUBLE_EQ(diffs[2], -27.0);
}

TEST(SimFunctional, VectorMulDivNeg)
{
    isa::Program prog = isa::assemble(R"(
.comm a,8
.comm b,8
.comm r1,8
.comm r2,8
.comm r3,8
    mov #4,s6
    mov s6,VL
    ld.l a,v0
    ld.l b,v1
    mul.d v0,v1,v2
    st.l v2,r1
    div.d v0,v1,v3
    st.l v3,r2
    neg.d v0,v4
    st.l v4,r3
)");
    machine::MachineConfig cfg = quietConfig();
    Simulator sim(cfg, prog);
    sim.memory().fillDoubles("a", {6, 8, 10, 12});
    sim.memory().fillDoubles("b", {2, 4, 5, 6});
    sim.run();
    auto r1 = sim.memory().readDoubles("r1", 4);
    auto r2 = sim.memory().readDoubles("r2", 4);
    auto r3 = sim.memory().readDoubles("r3", 4);
    EXPECT_DOUBLE_EQ(r1[1], 32.0);
    EXPECT_DOUBLE_EQ(r2[2], 2.0);
    EXPECT_DOUBLE_EQ(r3[3], -12.0);
}

TEST(SimFunctional, BroadcastScalarOperand)
{
    isa::Program prog = isa::assemble(R"(
.comm a,8
.comm q,1
.comm r,8
    ld.w q,s1
    mov #4,s6
    mov s6,VL
    ld.l a,v0
    mul.d v0,s1,v1
    st.l v1,r
)");
    machine::MachineConfig cfg = quietConfig();
    Simulator sim(cfg, prog);
    sim.memory().fillDoubles("a", {1, 2, 3, 4});
    sim.memory().fillDoubles("q", {2.5});
    sim.run();
    EXPECT_DOUBLE_EQ(sim.memory().readDoubles("r", 4)[2], 7.5);
}

TEST(SimFunctional, SumReductionAccumulates)
{
    isa::Program prog = isa::assemble(R"(
.comm a,8
    mov #4,s6
    mov s6,VL
    ld.l a,v0
    sum.d v0,s1
    sum.d v0,s1
)");
    machine::MachineConfig cfg = quietConfig();
    Simulator sim(cfg, prog);
    sim.memory().fillDoubles("a", {1, 2, 3, 4});
    sim.setScalar(1, 100.0);
    sim.run();
    EXPECT_DOUBLE_EQ(sim.scalarAsDouble(1), 120.0);
}

TEST(SimFunctional, StridedLoadAndStore)
{
    isa::Program prog = isa::assemble(R"(
.comm a,16
.comm r,16
    mov #2,s1
    mov #4,s6
    mov s6,VL
    lds.l a,s1,v0
    sts.l v0,s1,r+8
)");
    machine::MachineConfig cfg = quietConfig();
    Simulator sim(cfg, prog);
    sim.memory().fillDoubles(
        "a", {0, 1, 2, 3, 4, 5, 6, 7});
    sim.run();
    // Gathered a[0,2,4,6], scattered to r[1,3,5,7].
    auto r = sim.memory().readDoubles("r", 8);
    EXPECT_DOUBLE_EQ(r[1], 0.0);
    EXPECT_DOUBLE_EQ(r[3], 2.0);
    EXPECT_DOUBLE_EQ(r[5], 4.0);
    EXPECT_DOUBLE_EQ(r[7], 6.0);
}

TEST(SimFunctional, VlClampsTo128)
{
    Simulator *s = nullptr;
    RunStats st = runText(R"(
.comm a,256
    mov #500,s0
    mov s0,VL
    ld.l a,v0
)",
                          &s);
    EXPECT_EQ(st.vectorElements, 128u);
}

TEST(SimFunctional, VlFloorsAtOne)
{
    RunStats st = runText(R"(
.comm a,8
    mov #-3,s0
    mov s0,VL
    ld.l a,v0
)");
    EXPECT_EQ(st.vectorElements, 1u);
}

// ---------------------------------------------------------------- timing

TEST(SimTiming, Figure2ChainedChimeTakes162Cycles)
{
    // Paper section 3.3: ld -> add -> mul chained, VL = 128.
    isa::Program prog = isa::assemble(R"(
.comm data,256
    mov #128,s6
    mov s6,VL
    ld.l data(a5),v0
    add.d v0,v1,v2
    mul.d v2,v3,v5
)");
    machine::MachineConfig cfg = quietConfig();
    SimOptions opt;
    opt.trace = true;
    Simulator sim(cfg, prog, opt);
    sim.run();
    const auto &ev = sim.timeline().events();
    ASSERT_EQ(ev.size(), 3u);
    // Measured from the load's issue: first result at X+Y = 12, the
    // add chains at 12, the mul at 22+12, completing at 162.
    double t0 = ev[0].issue;
    EXPECT_DOUBLE_EQ(ev[0].firstResult - t0, 12.0);
    EXPECT_DOUBLE_EQ(ev[1].enter - t0, 12.0);
    EXPECT_DOUBLE_EQ(ev[2].enter - t0, 22.0);
    EXPECT_DOUBLE_EQ(ev[2].complete - t0, 162.0);
}

TEST(SimTiming, SecondChimeTakesVlPlusBubbles)
{
    // Equation 13: a steady-state chime costs Z*VL + sum of bubbles
    // (128 + B_ld + B_add + B_mul = 132 for this chime).
    isa::Program prog = isa::assemble(R"(
.comm data,2048
    mov #128,s6
    mov s6,VL
    ld.l data(a5),v0
    add.d v0,v1,v2
    mul.d v2,v3,v5
    ld.l data+1024(a5),v0
    add.d v0,v1,v2
    mul.d v2,v3,v5
)");
    machine::MachineConfig cfg = quietConfig();
    SimOptions opt;
    opt.trace = true;
    Simulator sim(cfg, prog, opt);
    sim.run();
    const auto &ev = sim.timeline().events();
    ASSERT_EQ(ev.size(), 6u);
    EXPECT_DOUBLE_EQ(ev[5].complete - ev[2].complete, 132.0);
}

TEST(SimTiming, WithoutChainingInstructionsSerialize)
{
    std::string text = R"(
.comm data,256
    mov #128,s6
    mov s6,VL
    ld.l data(a5),v0
    add.d v0,v1,v2
    mul.d v2,v3,v5
)";
    isa::Program p1 = isa::assemble(text);
    isa::Program p2 = isa::assemble(text);
    machine::MachineConfig chained = quietConfig();
    machine::MachineConfig unchained = machine::MachineConfig::noChaining();
    unchained.memory.refreshEnabled = false;
    Simulator s1(chained, p1), s2(unchained, p2);
    double c1 = s1.run().cycles;
    double c2 = s2.run().cycles;
    // Non-chained: each instruction waits for its producer to complete
    // (paper: 422 cycles vs 162 for the chained version).
    EXPECT_GT(c2, c1 + 200.0);
}

TEST(SimTiming, PairPortLimitDelaysThirdReader)
{
    // Three concurrent readers of pair 2 ({v2,v6}) exceed the two read
    // ports; the third must wait for a stream to end.
    std::string text = R"(
.comm data,256
    mov #128,s6
    mov s6,VL
    ld.l data(a5),v2
    add.d v2,v1,v3
    mul.d v2,v5,v7
)";
    isa::Program p1 = isa::assemble(text);
    isa::Program p2 = isa::assemble(text);
    machine::MachineConfig strict = quietConfig();
    machine::MachineConfig loose = quietConfig();
    loose.chaining.enforcePairLimits = false;
    Simulator s1(strict, p1), s2(loose, p2);
    double with_limits = s1.run().cycles;
    double without = s2.run().cycles;
    // add.d reads v2 (1), mul.d reads v2 (2) -- both OK, but the ld
    // *writes* v2 while both read: reads are 2, writes 1: allowed.
    // The loose config can never be slower.
    EXPECT_GE(with_limits, without);
}

TEST(SimTiming, ScalarLoadContendsWithVectorStream)
{
    // A scalar load issued during a vector stream must wait for the
    // port, so its dependent compare resolves late.
    std::string with_vec = R"(
.comm data,1024
.comm cell,1
    mov #128,s6
    mov s6,VL
    ld.l data(a5),v0
    ld.w cell,s1
)";
    std::string without_vec = R"(
.comm data,1024
.comm cell,1
    mov #128,s6
    mov s6,VL
    ld.w cell,s1
)";
    isa::Program p1 = isa::assemble(with_vec);
    isa::Program p2 = isa::assemble(without_vec);
    machine::MachineConfig cfg = quietConfig();
    Simulator s1(cfg, p1), s2(cfg, p2);
    double c1 = s1.run().cycles;
    double c2 = s2.run().cycles;
    EXPECT_GT(c1, c2 + 100.0); // blocked behind the 128-element stream
}

TEST(SimTiming, RefreshAddsRoughlyTwoPercentOnSaturatedMemory)
{
    std::string text = R"(
.comm data,2048
    mov #16,s0
    mov #128,s6
    mov s6,VL
L1: ld.l data(a5),v0
    ld.l data+1024(a5),v1
    sub #1,s0
    lt.w #0,s0
    jbrs.t L1
)";
    isa::Program p1 = isa::assemble(text);
    isa::Program p2 = isa::assemble(text);
    machine::MachineConfig on = machine::MachineConfig::convexC240();
    machine::MachineConfig off = machine::MachineConfig::noRefresh();
    Simulator s1(on, p1), s2(off, p2);
    double c_on = s1.run().cycles;
    double c_off = s2.run().cycles;
    EXPECT_GT(c_on, c_off);
    EXPECT_NEAR((c_on - c_off) / c_off, 0.02, 0.012);
}

TEST(SimTiming, StatsCountInstructionClasses)
{
    RunStats st = runText(R"(
.comm data,256
    mov #64,s6
    mov s6,VL
    ld.l data(a5),v0
    add.d v0,v0,v1
    mul.d v1,v1,v2
    st.l v2,data(a5)
)");
    EXPECT_EQ(st.vectorInstructions, 4u);
    EXPECT_EQ(st.flops, 128u);          // 2 FP ops x 64 elements
    EXPECT_EQ(st.memoryElements, 128u); // load + store
    EXPECT_GT(st.scalarInstructions, 0u);
}

TEST(SimTiming, CpfAndMflops)
{
    RunStats st;
    st.cycles = 250.0;
    st.flops = 125;
    EXPECT_DOUBLE_EQ(st.cpf(), 2.0);
    EXPECT_DOUBLE_EQ(st.mflops(25.0), 12.5);
}

// ---------------------------------------------------------------- guards

TEST(SimGuards, InstructionBudgetIsFatal)
{
    isa::Program prog = isa::assemble(R"(
L1: nop
    jbra L1
)");
    machine::MachineConfig cfg = quietConfig();
    SimOptions opt;
    opt.maxInstructions = 1000;
    Simulator sim(cfg, prog, opt);
    EXPECT_THROW(sim.run(), FatalError);
}

TEST(SimGuards, RunTwiceIsPanic)
{
    isa::Program prog = isa::assemble("nop\n");
    machine::MachineConfig cfg = quietConfig();
    Simulator sim(cfg, prog);
    sim.run();
    EXPECT_THROW(sim.run(), PanicError);
}

TEST(SimGuards, TimelineRenderNonEmpty)
{
    isa::Program prog = isa::assemble(R"(
.comm data,256
    mov #128,s6
    mov s6,VL
    ld.l data(a5),v0
)");
    machine::MachineConfig cfg = quietConfig();
    SimOptions opt;
    opt.trace = true;
    Simulator sim(cfg, prog, opt);
    sim.run();
    std::string art = sim.timeline().render();
    EXPECT_NE(art.find("ld.l"), std::string::npos);
    EXPECT_NE(art.find("="), std::string::npos);
}

TEST(SimGuards, RegisterAccessorsRoundTrip)
{
    isa::Program prog = isa::assemble("nop\n");
    machine::MachineConfig cfg = quietConfig();
    Simulator sim(cfg, prog);
    sim.setScalar(3, 1.5);
    EXPECT_DOUBLE_EQ(sim.scalarAsDouble(3), 1.5);
    sim.setScalarRaw(4, 42);
    EXPECT_EQ(sim.scalarAsInt(4), 42);
    sim.setAddress(2, 4096);
    EXPECT_EQ(sim.address(2), 4096);
    EXPECT_THROW(sim.setScalar(9, 0.0), PanicError);
    EXPECT_THROW(sim.address(-1), PanicError);
}

} // namespace
} // namespace macs::sim
