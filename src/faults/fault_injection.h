/**
 * @file
 * Deterministic fault injection (docs/ROBUSTNESS.md).
 *
 * Robustness claims are only testable if failure can be manufactured
 * on demand, reproducibly. This subsystem provides seeded, named
 * injection sites that the production code paths consult at the
 * places where real faults would strike:
 *
 *   alloc             allocation failure (std::bad_alloc) in a worker
 *   worker-exception  exception thrown mid-analyzeKernel (transient)
 *   compute-delay     artificial compute delay (exercises deadlines)
 *   cache-corrupt     corrupted checkpoint-journal record on write
 *   io-write-fail     I/O write failure (journal / report output)
 *   net-accept        `macs serve` rejects an accepted connection
 *   net-read          `macs serve` request read fails (503 + retry)
 *   net-write         `macs serve` response write fails (conn cut)
 *   proc-crash        supervised serve worker SIGKILLs itself
 *   proc-hang         supervised serve worker SIGSTOPs (hangs) itself
 *
 * A FaultPlan is a set of (site, probability, seed[, param]) specs,
 * configured programmatically or via the environment:
 *
 *   MACS_FAULTS=site:prob:seed[:param][,site:prob:seed[:param]...]
 *   e.g. MACS_FAULTS=worker-exception:0.3:42,compute-delay:1:7:50
 *
 * DETERMINISM: the decision for a (site, key) pair is a pure function
 * of (seed, site, key) — no global RNG state, no ordering dependence.
 * The same plan applied to the same keyed call sites fires the exact
 * same faults on every run, with any worker count. The engine derives
 * keys from cache-key content hashes plus the attempt number, so
 * "30% of jobs" is a reproducible 30%, and a retry of the same job is
 * an independent draw.
 *
 * Every evaluation and every fired fault is counted in an
 * obs::Registry (macs_faults_evaluated_total / macs_faults_fired_total
 * by site), so chaos runs are observable.
 */

#ifndef MACS_FAULTS_FAULT_INJECTION_H
#define MACS_FAULTS_FAULT_INJECTION_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "support/diag.h"

namespace macs::faults {

/** Named injection sites. */
enum class Site : uint8_t
{
    AllocFail,       ///< "alloc"
    WorkerException, ///< "worker-exception"
    ComputeDelay,    ///< "compute-delay"
    CacheCorrupt,    ///< "cache-corrupt"
    IoWriteFail,     ///< "io-write-fail"
    NetAccept,       ///< "net-accept" (src/server admission path)
    NetRead,         ///< "net-read" (src/server request read)
    NetWrite,        ///< "net-write" (src/server response write)
    ProcCrash,       ///< "proc-crash" (src/supervisor worker kill -9)
    ProcHang,        ///< "proc-hang" (src/supervisor worker SIGSTOP)
};

inline constexpr size_t kSiteCount = 10;

/** Canonical site name (the MACS_FAULTS grammar spelling). */
const char *siteName(Site site);

/** Reverse lookup; nullopt for unknown names. */
std::optional<Site> siteFromName(std::string_view name);

/**
 * Thrown by an injected worker exception AND used to classify real
 * recoverable conditions: the batch engine retries jobs that fail
 * with a TransientFault (bounded, with exponential backoff).
 */
class TransientFault : public std::runtime_error
{
  public:
    explicit TransientFault(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** An I/O failure (real or injected); also classified transient. */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string &msg) : std::runtime_error(msg) {}
};

/** One (site, probability, seed[, param]) injection spec. */
struct SiteSpec
{
    Site site = Site::WorkerException;
    double probability = 0.0; ///< in [0, 1]
    uint64_t seed = 0;
    /** Site parameter: delay in ms for compute-delay (default 50). */
    double param = 0.0;
};

/** A parsed set of injection specs (at most one per site). */
class FaultPlan
{
  public:
    /**
     * Parse the MACS_FAULTS grammar. Malformed entries are reported
     * to @p diags (every error, with the offending field named) and
     * skipped; well-formed entries still take effect.
     */
    static FaultPlan parse(std::string_view text, Diagnostics &diags);

    /** Parse or throw DiagnosticError with all errors. */
    static FaultPlan parse(std::string_view text);

    /**
     * Build from the MACS_FAULTS environment variable; empty plan when
     * unset. Throws DiagnosticError on a malformed specification.
     */
    static FaultPlan fromEnv();

    /** Add/replace the spec of @p spec.site. */
    void add(const SiteSpec &spec);

    const SiteSpec *spec(Site site) const;
    bool empty() const { return active_ == 0; }

    /** Canonical text form (round-trips through parse()). */
    std::string describe() const;

  private:
    SiteSpec specs_[kSiteCount] = {};
    bool present_[kSiteCount] = {};
    size_t active_ = 0;
};

/**
 * Evaluates a FaultPlan at keyed call sites and publishes counters.
 * Thread-safe; all decision state is immutable after construction
 * except the per-site sequence counters and the atomic metric
 * pointers, which are plain atomics.
 */
class FaultInjector
{
  public:
    /**
     * @param plan     sites to inject; an empty plan never fires.
     * @param metrics  registry for macs_faults_* counters; nullptr
     *                 means obs::Registry::global().
     */
    explicit FaultInjector(FaultPlan plan = {},
                           obs::Registry *metrics = nullptr);

    /**
     * Deterministic keyed decision: a pure function of
     * (site seed, site, key). Also bumps the evaluated/fired counters.
     */
    bool shouldFire(Site site, uint64_t key) const;

    /**
     * Sequence-keyed convenience: uses a per-site atomic counter as
     * the key, so the n-th evaluation of a site is deterministic in a
     * single-threaded sequence (tests), but scheduling-dependent when
     * called from several threads.
     */
    bool shouldFire(Site site) const;

    /** The spec param of @p site, or @p fallback when absent/zero. */
    double param(Site site, double fallback) const;

    /** Injection hooks used by the hardened code paths. @{ */
    /** Throw std::bad_alloc when the alloc site fires for @p key. */
    void maybeFailAlloc(uint64_t key) const;
    /** Throw TransientFault when worker-exception fires for @p key. */
    void maybeThrowWorker(uint64_t key, std::string_view what) const;
    /**
     * Sleep for the site param (ms, default 50) in 1 ms slices when
     * compute-delay fires for @p key; returns early when @p cancel
     * (may be nullptr) becomes true, so deadline-expired workers can
     * be reaped promptly.
     */
    void maybeDelay(uint64_t key,
                    const std::atomic<bool> *cancel = nullptr) const;
    /** True when the cache-corrupt site fires for @p key. */
    bool shouldCorruptRecord(uint64_t key) const;
    /** Throw IoError when io-write-fail fires for @p key. */
    void maybeFailWrite(uint64_t key, std::string_view path) const;
    /** @} */

    const FaultPlan &plan() const { return plan_; }

    /**
     * The process-wide injector, built from MACS_FAULTS on first use
     * (counters go to obs::Registry::global()). A malformed MACS_FAULTS
     * value throws DiagnosticError from the first access.
     */
    static FaultInjector &global();

  private:
    FaultPlan plan_;
    obs::Registry *metrics_;
    // Lazily created stable counter refs; nullptr until first use.
    mutable std::atomic<obs::Counter *> evaluated_[kSiteCount] = {};
    mutable std::atomic<obs::Counter *> fired_[kSiteCount] = {};
    mutable std::atomic<uint64_t> sequence_[kSiteCount] = {};
};

/**
 * The pure decision function behind shouldFire() (exposed so tests
 * can predict and cross-check injection patterns): splitmix64 over
 * (seed ^ site-name hash ^ key), mapped to [0, 1), compared to prob.
 */
bool faultDecision(uint64_t seed, Site site, uint64_t key, double prob);

} // namespace macs::faults

#endif // MACS_FAULTS_FAULT_INJECTION_H
