#!/usr/bin/env bash
# Tier-1 verification: normal build + full test suite, then the FULL
# suite again under ThreadSanitizer, AddressSanitizer, and
# UndefinedBehaviorSanitizer Debug builds (docs/TESTING.md).
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the sanitizer and perf-gate stages
#           (normal build + ctest only)
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest -j =="
ctest --test-dir build --output-on-failure -j "$JOBS"

# Seeded fault plans over the golden batch: the process must exit
# through the 0/1/2/3 contract (never abort) and surviving jobs must
# render byte-identically to the fault-free goldens
# (docs/ROBUSTNESS.md).
echo "== tier-1: chaos (seeded fault plans) =="
scripts/chaos.sh build/tools/macs

# `macs serve` end to end on an ephemeral port: /healthz, /metrics,
# one /v1/analyze byte-identical to the CLI, then SIGTERM with an
# in-flight batch — clean drain, flushed checkpoint, exit 0
# (docs/SERVER.md).
echo "== tier-1: server (smoke + graceful drain) =="
scripts/server_smoke.sh build/tools/macs

# Machine sweep over every shipped .machine file: the JSON matrix must
# be byte-identical at 1/4/16 workers AND to the committed golden
# (tests/golden/sweep_machines_all.json) — one cmp pins both the
# determinism contract and the differential oracle (the c240 column is
# the parsed machines/c240.machine, not the built-in table). To
# regenerate after an intentional model change:
#   build/tools/macs sweep --machines machines --workers 1 \
#       --json tests/golden/sweep_machines_all.json all
echo "== tier-1: sweep (machine grid: determinism + golden) =="
for w in 1 4 16; do
    build/tools/macs sweep --machines machines --workers "$w" \
        --json "build/sweep_w$w.json" all > /dev/null
    cmp "build/sweep_w$w.json" tests/golden/sweep_machines_all.json
done

# Report-level differential oracle for the two-tier simulator
# (docs/SIMULATOR.md): the reference interpreter tier must render the
# same machine grid byte-identically to the fast tier's golden above.
echo "== tier-1: sweep (reference tier vs golden) =="
build/tools/macs sweep --machines machines --sim-tier reference \
    --json build/sweep_ref.json all > /dev/null
cmp build/sweep_ref.json tests/golden/sweep_machines_all.json

# Multi-CPU stage (docs/MULTICPU.md): 1-CPU `macs mp` degenerates to
# the plain simulator for every kernel on every .machine file; the
# 4-CPU mix/engine matrix is deterministic and matches its golden
# (tests/golden/mp_matrix.json); POST /v1/multicpu is byte-identical
# to the CLI at 1/4/16 workers.
echo "== tier-1: mp (coupled engine: degeneracy + golden + server) =="
scripts/mp_smoke.sh build/tools/macs

if [[ "${1:-}" == "--fast" ]]; then
    echo "== skipping sanitizer + perf-gate stages (--fast) =="
    exit 0
fi

# Perf regression gate: run the server bench (in-bench floors assert
# the >= 5x evented-vs-threaded C10k ratio and bounded p99), then diff
# the gated RATIO metrics against the committed baseline; >15% drop
# fails the build. Absolute RPS is informative only — see
# scripts/perf_gate.py. Never run under sanitizers.
echo "== perf: server_throughput bench + regression gate =="
cmake --build build -j "$JOBS" --target server_throughput >/dev/null
build/bench/server_throughput --json build/BENCH_server_throughput.json
scripts/perf_gate.py build/BENCH_server_throughput.json \
    bench/baselines/BENCH_server_throughput.json

echo "== perf: sweep_throughput bench + regression gate =="
cmake --build build -j "$JOBS" --target sweep_throughput >/dev/null
build/bench/sweep_throughput --json build/BENCH_sweep_throughput.json
scripts/perf_gate.py build/BENCH_sweep_throughput.json \
    bench/baselines/BENCH_sweep_throughput.json

# Simulator tier gate: the bench re-verifies bit-identical stats
# between the tiers, asserts hard speedup floors (min/geomean/
# refresh-heavy), and the gate pins the measured ratios — all
# host-speed-independent ratios of two runs on the same machine.
echo "== perf: sim_throughput bench + regression gate =="
cmake --build build -j "$JOBS" --target sim_throughput >/dev/null
build/bench/sim_throughput --json build/BENCH_sim_throughput.json
scripts/perf_gate.py build/BENCH_sim_throughput.json \
    bench/baselines/BENCH_sim_throughput.json

# Contention gate: the bench's own asserts pin the paper's section-4.2
# story (56-64 ns independent band, ~20% mixed-fleet degradation,
# bounded lock step, strip speedup > 1); the gate then pins the margin
# ratios against the committed baseline so calibration drift shows up
# before it walks out of a band (docs/MULTICPU.md).
echo "== perf: mp_contention bench + regression gate =="
cmake --build build -j "$JOBS" --target mp_contention >/dev/null
build/bench/mp_contention --json build/BENCH_mp_contention.json
scripts/perf_gate.py build/BENCH_mp_contention.json \
    bench/baselines/BENCH_mp_contention.json

# Each sanitizer stage builds and runs the FULL test suite: TSan
# audits the worker pool, memo cache, and the metrics registry's
# lock-free hot path (ObsRegistry.ConcurrentIncrementsAreExact); ASan
# and UBSan cover the whole modeling + simulation stack, including
# both simulator tiers (the differential tests run reference and fast
# side by side, so the chime-batched kernels get sanitized too).
sanitize_stage() {
    local kind="$1" dir="build-$1"
    echo "== sanitizer: $kind (full suite) =="
    cmake -B "$dir" -S . \
        -DCMAKE_BUILD_TYPE=Debug -DMACS_SANITIZE="$kind" >/dev/null
    cmake --build "$dir" -j "$JOBS"
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

sanitize_stage thread
sanitize_stage address
sanitize_stage undefined

echo "== all checks passed =="
