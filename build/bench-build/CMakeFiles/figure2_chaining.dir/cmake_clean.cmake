file(REMOVE_RECURSE
  "../bench/figure2_chaining"
  "../bench/figure2_chaining.pdb"
  "CMakeFiles/figure2_chaining.dir/figure2_chaining.cc.o"
  "CMakeFiles/figure2_chaining.dir/figure2_chaining.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_chaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
