/**
 * @file
 * Reporters for batch pipeline results.
 *
 * Both renderers have a deterministic body: jobs appear in submission
 * order and every number is a pure function of the job content, so the
 * output is byte-identical for any worker count. The golden-file tests
 * (tests/golden_report_test.cc) pin that property.
 *
 * Timing / cache counters are scheduling-dependent; they are only
 * emitted when @p include_timing is set, in a clearly separated
 * trailing section, and must never be part of a golden file.
 */

#ifndef MACS_PIPELINE_REPORT_H
#define MACS_PIPELINE_REPORT_H

#include <string>

#include "pipeline/job.h"

namespace macs::pipeline {

/**
 * Render @p result as a JSON document (schema "macs-batch-v1"): one
 * object per job with the workload counts, the CPL bounds, the
 * measured times, and the CPF hierarchy. Failed jobs carry an "error"
 * member instead of the analysis body.
 */
std::string renderBatchJson(const BatchResult &result,
                            bool include_timing = false);

/**
 * Render @p result as a markdown report: a bounds table (CPL), a
 * bounds-vs-measured table (CPF), and per-job failures, plus the
 * perf-counter section when @p include_timing is set.
 */
std::string renderBatchMarkdown(const BatchResult &result,
                                bool include_timing = false);

/** One-line human summary of the batch stats (always timing-bearing). */
std::string renderStatsLine(const BatchStats &stats);

} // namespace macs::pipeline

#endif // MACS_PIPELINE_REPORT_H
