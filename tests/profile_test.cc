/**
 * @file
 * Stall-attribution profiler tests: cause classification matches the
 * known structure of hand-built programs and the LFK kernels.
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"

namespace macs::sim {
namespace {

const StallProfile &
profileText(const std::string &text,
            const machine::MachineConfig &cfg)
{
    static std::vector<std::unique_ptr<Simulator>> keep;
    static std::vector<std::unique_ptr<isa::Program>> progs;
    progs.push_back(std::make_unique<isa::Program>(isa::assemble(text)));
    SimOptions opt;
    opt.profile = true;
    keep.push_back(
        std::make_unique<Simulator>(cfg, *progs.back(), opt));
    keep.back()->run();
    return keep.back()->profile();
}

machine::MachineConfig
quiet()
{
    return machine::MachineConfig::noRefresh();
}

double
causeTotal(const StallProfile &p, StallCause c)
{
    double total = 0.0;
    for (const auto &[pc, e] : p.entries())
        total += e.byCause[static_cast<size_t>(c)];
    return total;
}

TEST(StallProfile, EmptyWithoutVectorInstructions)
{
    const StallProfile &p = profileText("nop\nmov #1,s0\n", quiet());
    EXPECT_TRUE(p.empty());
    EXPECT_DOUBLE_EQ(p.totalStallCycles(), 0.0);
}

TEST(StallProfile, DisabledByDefault)
{
    isa::Program prog = isa::assemble(R"(
.comm x,256
    mov #64,s6
    mov s6,VL
    ld.l x,v0
)");
    machine::MachineConfig cfg = quiet();
    Simulator s(cfg, prog);
    s.run();
    EXPECT_TRUE(s.profile().empty());
}

TEST(StallProfile, ChainStallAttributed)
{
    const StallProfile &p = profileText(R"(
.comm x,256
    mov #128,s6
    mov s6,VL
    ld.l x,v0
    add.d v0,v1,v2
)",
                                        quiet());
    EXPECT_GT(causeTotal(p, StallCause::Chain), 5.0);
}

TEST(StallProfile, TailgateStallDominatesBackToBackLoads)
{
    const StallProfile &p = profileText(R"(
.comm x,2048
    mov #128,s6
    mov s6,VL
    ld.l x,v0
    ld.l x+1024,v1
    ld.l x+2048,v2
)",
                                        quiet());
    double tail = causeTotal(p, StallCause::Tailgate);
    EXPECT_GT(tail, 200.0); // two loads each wait ~VL cycles
}

TEST(StallProfile, PairPortStallAttributed)
{
    // Three concurrent users of pair 0 ({v0,v4}): the third write
    // must wait for a port.
    const StallProfile &p = profileText(R"(
.comm x,2048
    mov #128,s6
    mov s6,VL
    add.d v1,v2,v0
    mul.d v1,v3,v4
    sub.d v0,v4,v5
)",
                                        quiet());
    // add writes v0, mul writes v4 (both pair 0, different pipes,
    // overlapping streams): 2 writes exceed the single write port.
    EXPECT_GT(causeTotal(p, StallCause::PairPort), 50.0);
}

TEST(StallProfile, RenderListsDominantCauses)
{
    const StallProfile &p = profileText(R"(
.comm x,2048
    mov #128,s6
    mov s6,VL
    ld.l x,v0
    add.d v0,v1,v2
    ld.l x+1024,v3
)",
                                        quiet());
    std::string table = p.render();
    EXPECT_NE(table.find("dominant cause"), std::string::npos);
    EXPECT_NE(table.find("total stall"), std::string::npos);
}

TEST(StallProfile, Lfk1DominatedByMemoryAndTailgate)
{
    lfk::Kernel k = lfk::makeKernel(1);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    SimOptions opt;
    opt.profile = true;
    Simulator s(cfg, k.program, opt);
    k.setup(s);
    s.run();
    const StallProfile &p = s.profile();
    ASSERT_FALSE(p.empty());
    // The loads queue on their pipe (tailgate) and the FP ops wait on
    // the loads (chain): both large, nothing else significant.
    double tail = causeTotal(p, StallCause::Tailgate);
    double chain = causeTotal(p, StallCause::Chain);
    EXPECT_GT(tail, 1000.0);
    EXPECT_GT(chain, 1000.0);
    EXPECT_LT(causeTotal(p, StallCause::PairPort), 0.10 * tail);
    EXPECT_GT(p.totalStallCycles(), 2000.0);
}

TEST(StallProfile, MemoryPortStallAttributed)
{
    // A scalar load wins the port first; the vector stream's entry is
    // then bound by the port, not by any pipe state.
    const StallProfile &p = profileText(R"(
.comm x,256
.comm cell,4
    mov #128,s6
    mov s6,VL
    ld.w cell,s1
    ld.w cell+8,s2
    ld.w cell+16,s3
    ld.l x,v0
)",
                                        quiet());
    EXPECT_GT(causeTotal(p, StallCause::MemoryPort), 0.0);
}

TEST(StallProfile, Lfk8AccumulatesLargeStalls)
{
    // The scalar-load-split chime structure shows up as heavy pipe
    // queueing in the profile.
    lfk::Kernel k = lfk::makeKernel(8);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    SimOptions opt;
    opt.profile = true;
    Simulator s(cfg, k.program, opt);
    k.setup(s);
    s.run();
    EXPECT_GT(s.profile().totalStallCycles(), 1000.0);
    EXPECT_GT(causeTotal(s.profile(), StallCause::Tailgate), 500.0);
}

} // namespace
} // namespace macs::sim
