file(REMOVE_RECURSE
  "CMakeFiles/macs_sim.dir/bank_model.cc.o"
  "CMakeFiles/macs_sim.dir/bank_model.cc.o.d"
  "CMakeFiles/macs_sim.dir/contention.cc.o"
  "CMakeFiles/macs_sim.dir/contention.cc.o.d"
  "CMakeFiles/macs_sim.dir/memory_image.cc.o"
  "CMakeFiles/macs_sim.dir/memory_image.cc.o.d"
  "CMakeFiles/macs_sim.dir/memory_port.cc.o"
  "CMakeFiles/macs_sim.dir/memory_port.cc.o.d"
  "CMakeFiles/macs_sim.dir/multi_cpu.cc.o"
  "CMakeFiles/macs_sim.dir/multi_cpu.cc.o.d"
  "CMakeFiles/macs_sim.dir/profile.cc.o"
  "CMakeFiles/macs_sim.dir/profile.cc.o.d"
  "CMakeFiles/macs_sim.dir/simulator.cc.o"
  "CMakeFiles/macs_sim.dir/simulator.cc.o.d"
  "CMakeFiles/macs_sim.dir/trace.cc.o"
  "CMakeFiles/macs_sim.dir/trace.cc.o.d"
  "libmacs_sim.a"
  "libmacs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
