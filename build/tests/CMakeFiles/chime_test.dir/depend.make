# Empty dependencies file for chime_test.
# This may be replaced when dependencies are built.
