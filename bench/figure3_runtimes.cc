/**
 * @file
 * Reproduces paper Figure 3: for each kernel, the MA/MAC/MACS bounds
 * and the measured run time as a single process (idle machine) and
 * under multi-process memory contention — independent programs on all
 * four CPUs (the paper's load-average-5.1 scenario) and four copies of
 * the same executable falling into lock step. Rendered as CPF bars
 * plus the section 4.2 rule-of-thumb summary.
 */

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "lfk/mp_workload.h"
#include "sim/contention.h"
#include "sim/multi_cpu.h"
#include "sim/mp/coupled.h"
#include "sim/simulator.h"
#include "support/table.h"

namespace {

double
measureCpf(int id, double contention)
{
    using namespace macs;
    lfk::Kernel k = lfk::makeKernel(id);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::SimOptions opt;
    opt.memoryContentionFactor = contention;
    sim::Simulator s(cfg, k.program, opt);
    k.setup(s);
    double cycles = s.run().cycles;
    return cycles / static_cast<double>(k.points) / k.flopsPerPoint;
}

std::string
bar(double cpf, double scale = 12.0)
{
    int n = static_cast<int>(cpf * scale + 0.5);
    return std::string(static_cast<size_t>(std::max(1, n)), '#');
}

} // namespace

int
main()
{
    using namespace macs;
    using namespace macs::bench;

    std::printf("=== Figure 3: Bounds vs single- and multi-process run "
                "times (CPF) ===\n\n");

    double ind = sim::contentionFactor(4, sim::WorkloadMix::Independent);
    double ls = sim::contentionFactor(4, sim::WorkloadMix::LockStep);

    Table t({"LFK", "t_MA", "t_MAC", "t_MACS", "single", "lockstep x4",
             "independent x4", "degr%"});
    double sum_deg = 0.0, sum_ls = 0.0;
    for (int id : lfk::lfkIds()) {
        const auto &a = allAnalyses().at(id);
        double single = a.actualCpf();
        double multi = measureCpf(id, ind);
        double lock = measureCpf(id, ls);
        double deg = 100.0 * (multi / single - 1.0);
        sum_deg += deg;
        sum_ls += 100.0 * (lock / single - 1.0);
        t.addRow({"LFK" + std::to_string(id), Table::num(a.maCpf()),
                  Table::num(a.macCpf()), Table::num(a.macsCpf()),
                  Table::num(single), Table::num(lock),
                  Table::num(multi), Table::num(deg, 1)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("CPF bars (MA | MACS | single | independent x4):\n");
    for (int id : lfk::lfkIds()) {
        const auto &a = allAnalyses().at(id);
        double multi = measureCpf(id, ind);
        std::printf("LFK%-2d MA     %6.3f %s\n", id, a.maCpf(),
                    bar(a.maCpf()).c_str());
        std::printf("      MACS   %6.3f %s\n", a.macsCpf(),
                    bar(a.macsCpf()).c_str());
        std::printf("      single %6.3f %s\n", a.actualCpf(),
                    bar(a.actualCpf()).c_str());
        std::printf("      multi  %6.3f %s\n\n", multi,
                    bar(multi).c_str());
    }

    // ---- endogenous contention: solve the fixed point instead of
    // assuming a factor (our extension; see sim/multi_cpu.h) ----
    std::printf("endogenous 4-CPU fixed point (four copies of each "
                "kernel):\n\n");
    Table e({"LFK", "converged factor", "port util", "CPF multi",
             "degr%", "iters"});
    for (int id : {1, 3, 7, 10}) {
        lfk::Kernel k0 = lfk::makeKernel(id);
        lfk::Kernel k1 = lfk::makeKernel(id);
        lfk::Kernel k2 = lfk::makeKernel(id);
        lfk::Kernel k3 = lfk::makeKernel(id);
        std::vector<sim::CpuJob> jobs = {{&k0.program, k0.setup},
                                         {&k1.program, k1.setup},
                                         {&k2.program, k2.setup},
                                         {&k3.program, k3.setup}};
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        sim::MultiCpuResult r = sim::runMultiCpu(jobs, cfg);
        double cpf = r.stats[0].cycles /
                     static_cast<double>(k0.points) / k0.flopsPerPoint;
        double single = allAnalyses().at(id).actualCpf();
        e.addRow({"LFK" + std::to_string(id),
                  Table::num(r.factor[0], 3),
                  Table::num(r.utilization[0], 2), Table::num(cpf),
                  Table::num(100.0 * (cpf / single - 1.0), 1),
                  Table::num((long)r.iterations)});
    }
    std::printf("%s\n", e.render().c_str());

    // ---- cycle-coupled shared banks: the multi-process series with
    // NO contention knob at all — four copies advance in lockstepped
    // global time against one SharedMemorySystem and every delay
    // emerges from bank reservations (sim/mp/, docs/MULTICPU.md).
    // Side by side with the analytic tier above: the coupled engine
    // is the measurement the fixed point approximates. ----
    std::printf("cycle-coupled 4-CPU fleet (emergent contention, "
                "independent mix):\n\n");
    Table c({"LFK", "CPF multi", "degr%", "ns/access", "collisions",
             "analytic degr%"});
    for (int id : {1, 3, 7, 10}) {
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        lfk::MpWorkload w =
            lfk::buildMpWorkload(id, lfk::MpMix::Independent, 4);
        sim::mp::CoupledResult r = sim::mp::runCoupled(w.jobs, cfg, {});
        double mean_cycles = 0.0, ns = 0.0;
        uint64_t collisions = 0;
        for (const sim::mp::CoupledCpuResult &cpu : r.cpus) {
            mean_cycles += cpu.stats.cycles;
            ns += cpu.shared.perAccessCycles() * cfg.clockNs();
            collisions += cpu.shared.collisions;
        }
        mean_cycles /= 4.0;
        ns /= 4.0;
        const lfk::Kernel &k = w.kernels.front();
        double cpf = mean_cycles / static_cast<double>(k.points) /
                     k.flopsPerPoint;
        double single = allAnalyses().at(id).actualCpf();

        // The analytic tier's answer for the same fleet.
        std::vector<sim::CpuJob> jobs;
        for (const sim::mp::CoupledJob &j : w.jobs)
            jobs.push_back({j.program, j.setup});
        sim::MultiCpuResult fx = sim::runMultiCpu(jobs, cfg);
        double fx_cpf = fx.stats[0].cycles /
                        static_cast<double>(k.points) / k.flopsPerPoint;

        c.addRow({"LFK" + std::to_string(id), Table::num(cpf),
                  Table::num(100.0 * (cpf / single - 1.0), 1),
                  Table::num(ns, 1),
                  Table::num(static_cast<long>(collisions)),
                  Table::num(100.0 * (fx_cpf / single - 1.0), 1)});
    }
    std::printf("%s\n", c.render().c_str());

    int n = static_cast<int>(lfk::lfkIds().size());
    std::printf(
        "contended access time (paper section 4.2): one access per\n"
        "56-64 ns instead of 40 ns -> stream slowdown %.2fx\n"
        "(independent) and %.2fx (lock step).\n"
        "measured degradation: %.1f%% average (independent), %.1f%%\n"
        "(lock step). These inner loops run the memory port near 100%%\n"
        "utilization, so they expose nearly the whole access-time\n"
        "ratio; the paper's ~20%% rule of thumb applies to typical full\n"
        "applications whose lower port utilization masks more — and,\n"
        "as the paper notes, 'more of this degradation will be\n"
        "exposed as performance is improved toward the bound', which\n"
        "is exactly the regime these kernels are in. The lock-step\n"
        "average sits just above the paper's 5-10%% band.\n",
        ind, ls, sum_deg / n, sum_ls / n);
    return 0;
}
