/**
 * @file
 * Restart budget + exponential backoff of the worker supervisor
 * (docs/ROBUSTNESS.md "Supervision hierarchy").
 *
 * Pure arithmetic, no I/O: the Supervisor consults this policy and
 * tests pin it directly. A slot that dies is restarted after
 * `backoff(restarts)` ms — base * 2^restarts, capped — until it has
 * been restarted `budget` times; the next death abandons the slot
 * (degraded mode when other workers survive, service loss when none
 * do).
 */

#ifndef MACS_SUPERVISOR_RESTART_POLICY_H
#define MACS_SUPERVISOR_RESTART_POLICY_H

namespace macs::supervisor {

struct RestartPolicy
{
    /** Restarts allowed per slot before it is abandoned. */
    int budget = 8;
    /** Backoff before the first restart (ms). */
    int baseMs = 50;
    /** Backoff ceiling (ms). */
    int capMs = 2000;

    /**
     * Delay before restart number @p restarts_so_far + 1:
     * min(baseMs * 2^restarts_so_far, capMs). Saturates instead of
     * overflowing for any input.
     */
    int backoffMs(int restarts_so_far) const
    {
        if (restarts_so_far < 0)
            restarts_so_far = 0;
        long delay = baseMs;
        for (int i = 0; i < restarts_so_far; ++i) {
            delay *= 2;
            if (delay >= capMs)
                return capMs;
        }
        return delay < capMs ? static_cast<int>(delay) : capMs;
    }

    /** True once @p restarts_so_far has consumed the whole budget. */
    bool exhausted(int restarts_so_far) const
    {
        return restarts_so_far >= budget;
    }
};

} // namespace macs::supervisor

#endif // MACS_SUPERVISOR_RESTART_POLICY_H
