file(REMOVE_RECURSE
  "../bench/table1_instruction_timing"
  "../bench/table1_instruction_timing.pdb"
  "CMakeFiles/table1_instruction_timing.dir/table1_instruction_timing.cc.o"
  "CMakeFiles/table1_instruction_timing.dir/table1_instruction_timing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_instruction_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
