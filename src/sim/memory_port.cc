#include "sim/memory_port.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "support/logging.h"
#include "support/math_util.h"

namespace macs::sim {

MemoryPort::MemoryPort(const machine::MemoryConfig &config,
                       double contention_factor)
    : config_(config), contention_(contention_factor)
{
    MACS_ASSERT(contention_ >= 1.0, "contention factor must be >= 1");
    MACS_ASSERT(!config_.refreshEnabled ||
                    config_.refreshPeriodCycles > 0,
                "refresh period must be positive");
}

double
MemoryPort::strideRate(int64_t stride_words) const
{
    uint64_t s = static_cast<uint64_t>(std::llabs(stride_words)) %
                 static_cast<uint64_t>(config_.banks);
    if (s == 0) {
        // Every access hits the same bank: limited by bank busy time.
        return static_cast<double>(config_.bankBusyCycles);
    }
    uint64_t distinct =
        static_cast<uint64_t>(config_.banks) /
        gcd(static_cast<uint64_t>(config_.banks), s);
    double min_rate =
        static_cast<double>(config_.bankBusyCycles) /
        static_cast<double>(distinct);
    return std::max(1.0, min_rate);
}

StreamTiming
MemoryPort::serviceStream(double earliest, int elements,
                          int64_t stride_words, double rate_floor)
{
    return serviceStreamWithRate(earliest, elements,
                                 strideRate(stride_words), rate_floor);
}

} // namespace macs::sim
