#!/usr/bin/env bash
# Line-coverage report for the library (docs/TESTING.md).
#
# Builds an instrumented tree (-DMACS_COVERAGE=ON), runs the full test
# suite, and prints a per-directory line-coverage summary for src/.
# Uses gcovr when installed; otherwise falls back to a bundled
# aggregator over `gcov --json-format` output (no extra dependencies).
#
# Usage: scripts/coverage.sh
#   BUILD=dir  override the build directory (default build-cov)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
BUILD=${BUILD:-build-cov}

echo "== coverage: configure + build ($BUILD) =="
cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Debug -DMACS_COVERAGE=ON >/dev/null
cmake --build "$BUILD" -j "$JOBS"

echo "== coverage: run test suite =="
ctest --test-dir "$BUILD" -j "$JOBS" --output-on-failure >/dev/null

echo "== coverage: line summary (src/) =="
if command -v gcovr >/dev/null 2>&1; then
    gcovr --root . --filter 'src/' --print-summary "$BUILD"
else
    python3 scripts/gcov_summary.py "$BUILD"
fi
