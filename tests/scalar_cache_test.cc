/**
 * @file
 * ASU scalar data cache tests: hit/miss latency, write-through
 * invalidation, vector-store coherence invalidation, and the
 * configuration ablation.
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"

namespace macs::sim {
namespace {

RunStats
runText(const std::string &text, const machine::MachineConfig &cfg)
{
    isa::Program p = isa::assemble(text);
    Simulator s(cfg, p);
    return s.run();
}

machine::MachineConfig
quiet()
{
    return machine::MachineConfig::noRefresh();
}

TEST(ScalarCache, RepeatedLoadHits)
{
    RunStats st = runText(R"(
.comm cell,1
    ld.w cell,s1
    ld.w cell,s2
    ld.w cell,s3
)",
                          quiet());
    EXPECT_EQ(st.scalarCacheMisses, 1u);
    EXPECT_EQ(st.scalarCacheHits, 2u);
}

TEST(ScalarCache, LineGranularityCoversNeighbors)
{
    // Four words share a line: one miss fills it.
    RunStats st = runText(R"(
.comm arr,8
    ld.w arr,s1
    ld.w arr+8,s2
    ld.w arr+16,s3
    ld.w arr+24,s4
)",
                          quiet());
    EXPECT_EQ(st.scalarCacheMisses, 1u);
    EXPECT_EQ(st.scalarCacheHits, 3u);
}

TEST(ScalarCache, MissCostsMoreThanHit)
{
    machine::MachineConfig cfg = quiet();
    // Ten cold lines (stride one line apart) vs ten hits on one cell;
    // the dependent adds make each load's latency observable.
    auto build = [&](bool cold) {
        std::string text = ".comm arr,64\n";
        for (int i = 0; i < 10; ++i) {
            int off = cold ? 32 * i : 0;
            text += "    ld.w arr+" + std::to_string(off) + ",s1\n";
            text += "    add.w s1,s2,s2\n";
        }
        return text;
    };
    double cold = runText(build(true), cfg).cycles;
    double warm = runText(build(false), cfg).cycles;
    EXPECT_GE(cold - warm,
              9.0 * (cfg.scalar.loadMissLatency -
                     cfg.scalar.loadLatency) -
                  1e-9);
}

TEST(ScalarCache, ScalarStoreInvalidatesItsLine)
{
    RunStats st = runText(R"(
.comm cell,1
    ld.w cell,s1
    st.w s1,cell
    ld.w cell,s2
)",
                          quiet());
    // Write-through with invalidate: the reload misses again.
    EXPECT_EQ(st.scalarCacheMisses, 2u);
}

TEST(ScalarCache, VectorStoreInvalidatesCoveredRange)
{
    // arr spans 16 of the 64 direct-mapped sets; cell lands on a
    // different set, so only the vector-stored range is invalidated.
    RunStats st = runText(R"(
.comm arr,64
.comm cell,1
    ld.w arr,s1
    ld.w cell,s2
    mov #32,s6
    mov s6,VL
    ld.l arr,v0
    st.l v0,arr
    ld.w arr,s3
    ld.w cell,s4
)",
                          quiet());
    // arr's line was invalidated by the vector store; cell's was not.
    EXPECT_EQ(st.scalarCacheMisses, 3u); // arr, cell, arr-again
    EXPECT_EQ(st.scalarCacheHits, 1u);   // cell-again
}

TEST(ScalarCache, StridedVectorStoreInvalidatesWholeSpan)
{
    RunStats st = runText(R"(
.comm arr,512
    ld.w arr+256,s1
    mov #25,s2
    mov #8,s6
    mov s6,VL
    sts.l v0,s2,arr
    ld.w arr+256,s3
)",
                          quiet());
    // arr+256 (word 32) lies inside the strided store's 0..175-word
    // span, so the reload misses.
    EXPECT_EQ(st.scalarCacheMisses, 2u);
}

TEST(ScalarCache, DisabledCacheAlwaysMisses)
{
    machine::MachineConfig cfg = machine::MachineConfig::noScalarCache();
    cfg.memory.refreshEnabled = false;
    RunStats st = runText(R"(
.comm cell,1
    ld.w cell,s1
    ld.w cell,s2
)",
                          cfg);
    EXPECT_EQ(st.scalarCacheHits, 0u);
    EXPECT_EQ(st.scalarCacheMisses, 2u);
}

TEST(ScalarCache, DisablingTheCacheNeverSpeedsAKernel)
{
    for (int id : {2, 4, 6, 8}) {
        lfk::Kernel k1 = lfk::makeKernel(id);
        lfk::Kernel k2 = lfk::makeKernel(id);
        machine::MachineConfig with = machine::MachineConfig::convexC240();
        machine::MachineConfig without =
            machine::MachineConfig::noScalarCache();
        Simulator s1(with, k1.program), s2(without, k2.program);
        k1.setup(s1);
        k2.setup(s2);
        double c_with = s1.run().cycles;
        double c_without = s2.run().cycles;
        EXPECT_GE(c_without, c_with) << "LFK" << id;
    }
}

TEST(ScalarCache, FunctionalResultsUnaffectedByCacheConfig)
{
    for (int id : {2, 6, 8}) {
        lfk::Kernel k = lfk::makeKernel(id);
        machine::MachineConfig cfg = machine::MachineConfig::noScalarCache();
        Simulator s(cfg, k.program);
        k.setup(s);
        s.run();
        EXPECT_EQ(k.check(s), "") << "LFK" << id;
    }
}

} // namespace
} // namespace macs::sim
