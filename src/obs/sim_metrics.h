/**
 * @file
 * Bridges from the simulator's run artifacts (RunStats, StallProfile)
 * into the metrics registry — the single place that defines the
 * `macs_sim_*` metric names and label conventions
 * (docs/OBSERVABILITY.md).
 *
 * The recorders are additive: counters accumulate across calls, so
 * recording several runs into one registry yields fleet totals. Label
 * the calls (e.g. {kernel=LFK1, config=baseline}) to keep runs
 * distinguishable.
 */

#ifndef MACS_OBS_SIM_METRICS_H
#define MACS_OBS_SIM_METRICS_H

#include "obs/metrics.h"
#include "sim/profile.h"
#include "sim/stats.h"

namespace macs::obs {

/**
 * Record one run's aggregate statistics: cycles, instruction mix,
 * per-pipe busy cycles, refresh / bank-conflict penalties, scalar
 * cache hits and misses, elements and flops.
 */
void recordRunStats(Registry &registry, const sim::RunStats &stats,
                    const Labels &labels = {});

/**
 * Record a stall profile as per-cause cycle counters
 * (macs_sim_stall_cycles{cause=...}).
 */
void recordStallProfile(Registry &registry,
                        const sim::StallProfile &profile,
                        const Labels &labels = {});

} // namespace macs::obs

#endif // MACS_OBS_SIM_METRICS_H
