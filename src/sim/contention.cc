#include "sim/contention.h"

#include <algorithm>

#include "support/logging.h"

namespace macs::sim {

double
contentionFactor(int active_cpus, WorkloadMix mix)
{
    MACS_ASSERT(active_cpus >= 1, "need at least one active CPU");
    int others = active_cpus - 1;
    switch (mix) {
      case WorkloadMix::Independent:
        // 1.45 at four CPUs: the middle of the paper's 56-64 ns band
        // (56/40 = 1.4, 64/40 = 1.6).
        return 1.0 + 0.15 * others;
      case WorkloadMix::LockStep:
        // Phase-locked processes rarely collide: 1.15 at four CPUs.
        return 1.0 + 0.05 * others;
    }
    panic("unreachable workload mix");
}

double
contentionFactorQueueing(int active_cpus,
                         const machine::MemoryConfig &mem)
{
    MACS_ASSERT(active_cpus >= 1, "need at least one active CPU");
    double busy = mem.bankBusyCycles;
    double banks = mem.banks;
    // Own traffic saturates a bank at utilization busy/banks; the
    // competitors add (A-1) * busy/banks.
    double rho = std::min(0.95, (active_cpus - 1) * busy / banks);
    double wait = 0.5 * busy * rho / (1.0 - rho);
    // The wait applies to the fraction of accesses that collide (rho).
    return 1.0 + wait * rho / busy;
}

} // namespace macs::sim
