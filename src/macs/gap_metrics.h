/**
 * @file
 * First-class gap attribution of the MACS hierarchy: the chain
 * t_MA -> t_MAC -> t_MACS -> t_sim for one analyzed kernel, decomposed
 * into the layer each successive gap charges (paper section 4.4), plus
 * the recorder that publishes it as `macs_model_*` metrics
 * (docs/OBSERVABILITY.md).
 *
 * The attribution is a pure function of a KernelAnalysis, so metrics
 * recorded from batch results are byte-stable across worker counts —
 * the property `macs batch --metrics` asserts.
 */

#ifndef MACS_MACS_GAP_METRICS_H
#define MACS_MACS_GAP_METRICS_H

#include <string>

#include "macs/hierarchy.h"
#include "obs/metrics.h"

namespace macs::model {

/** The hierarchy levels and the per-layer gaps, in CPL. */
struct GapAttribution
{
    std::string kernel;

    // Levels (all CPL).
    double tMA = 0.0;   ///< machine + application bound
    double tMAC = 0.0;  ///< + compiler
    double tMACS = 0.0; ///< + schedule
    double tSim = 0.0;  ///< measured (simulated) t_p

    // Successive gaps: tSim - tMA == compiler + schedule + unmodeled.
    double compilerGap = 0.0;  ///< tMAC - tMA
    double scheduleGap = 0.0;  ///< tMACS - tMAC
    double unmodeledGap = 0.0; ///< tSim - tMACS

    size_t chimes = 0; ///< chime partitions of the scheduled loop

    /** Fraction of measured time the MACS bound explains. */
    double
    macsCoverage() const
    {
        return tSim > 0.0 ? tMACS / tSim : 0.0;
    }
};

/** Compute the attribution for one analyzed kernel. */
GapAttribution gapAttribution(const KernelAnalysis &analysis);

/**
 * Publish @p analysis into @p registry as gauges labeled
 * {kernel=<label>, config=<config>}:
 *   macs_model_level_cpl{level=ma|mac|macs|sim}
 *   macs_model_gap_cpl{layer=compiler|schedule|unmodeled}
 *   macs_model_macs_coverage_ratio
 *   macs_model_chime_count
 *
 * @p label defaults to the analysis' kernel name; pass the job label
 * when sweeping (e.g. "LFK1@vl32").
 */
void recordGapMetrics(obs::Registry &registry,
                      const KernelAnalysis &analysis,
                      const std::string &config = "baseline",
                      const std::string &label = "");

} // namespace macs::model

#endif // MACS_MACS_GAP_METRICS_H
