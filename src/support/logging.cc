#include "support/logging.h"

#include <atomic>
#include <cstdio>

namespace macs {

namespace {

std::atomic<bool> verbose{true};

} // namespace

namespace detail {

void
emit(const char *label, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", label, msg.c_str());
}

bool
verboseEnabled()
{
    return verbose.load(std::memory_order_relaxed);
}

} // namespace detail

void
setVerbose(bool enabled)
{
    verbose.store(enabled, std::memory_order_relaxed);
}

} // namespace macs
