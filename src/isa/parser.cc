#include "isa/parser.h"

#include <optional>

#include "support/logging.h"
#include "support/strings.h"

namespace macs::isa {

namespace {

/** A parsed operand: exactly one of the alternatives is set. */
struct Operand
{
    enum class Kind { Reg, Imm, Mem, Label } kind;
    Reg reg;
    int64_t imm = 0;
    MemRef mem;
    std::string label;
};

bool
looksLikeLabelName(std::string_view s)
{
    if (s.empty())
        return false;
    if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' ||
          s[0] == '.'))
        return false;
    for (char c : s)
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '.'))
            return false;
    return true;
}

std::optional<Operand>
parseOperand(std::string_view text)
{
    std::string s{trim(text)};
    if (s.empty())
        return std::nullopt;

    Operand op;
    if (s[0] == '#') {
        long v = 0;
        if (!parseInt(s.substr(1), v))
            return std::nullopt;
        op.kind = Operand::Kind::Imm;
        op.imm = v;
        return op;
    }

    Reg r;
    if (parseReg(s, r)) {
        op.kind = Operand::Kind::Reg;
        op.reg = r;
        return op;
    }

    MemRef mem;
    if (parseMemRef(s, mem)) {
        op.kind = Operand::Kind::Mem;
        op.mem = mem;
        return op;
    }

    if (looksLikeLabelName(s)) {
        op.kind = Operand::Kind::Label;
        op.label = s;
        return op;
    }
    return std::nullopt;
}

/** Split an operand list on commas that are not inside parentheses. */
std::vector<std::string>
splitOperands(std::string_view s)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char c : s) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            out.emplace_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    std::string last{trim(cur)};
    if (!last.empty())
        out.push_back(std::move(last));
    return out;
}

/**
 * Thrown when the current line cannot be assembled; caught by the
 * per-line loop in assemble(), which records a diagnostic and
 * resumes with the next line (instruction-boundary recovery).
 */
struct AsmLineError
{
    std::string why;
};

[[noreturn]] void
syntaxError(size_t, std::string_view, const std::string &why)
{
    throw AsmLineError{why};
}

/** Map paper-style aliases onto canonical mnemonics. */
std::string
canonicalMnemonic(const std::string &m)
{
    if (m == "add")
        return "add.w";
    if (m == "sub")
        return "sub.w";
    if (m == "mul")
        return "mul.w";
    if (m == "ld")
        return "ld.w";
    if (m == "st")
        return "st.w";
    if (m == "lt")
        return "lt.w";
    if (m == "le")
        return "le.w";
    return m;
}

} // namespace

bool
parseMemRef(std::string_view text, MemRef &out)
{
    std::string s{trim(text)};
    if (s.empty())
        return false;

    MemRef mem;

    // Optional trailing "(aN)".
    if (s.back() == ')') {
        size_t open = s.rfind('(');
        if (open == std::string::npos)
            return false;
        std::string reg_text{
            trim(s.substr(open + 1, s.size() - open - 2))};
        Reg base;
        if (!parseReg(reg_text, base) || !base.isAddress())
            return false;
        mem.base = base;
        s = s.substr(0, open);
    }

    std::string_view body = trim(s);
    if (body.empty()) {
        // "(aN)" alone: offset 0, register base only.
        if (!mem.base.valid())
            return false;
        out = mem;
        return true;
    }

    // Split "sym+off" / "sym-off" / "sym" / "off".
    size_t split_pos = std::string_view::npos;
    for (size_t i = 1; i < body.size(); ++i) {
        if (body[i] == '+' || body[i] == '-') {
            split_pos = i;
            break;
        }
    }

    auto is_number = [](std::string_view v) {
        long dummy;
        return parseInt(v, dummy);
    };

    if (split_pos == std::string_view::npos) {
        if (is_number(body)) {
            long off = 0;
            parseInt(body, off);
            mem.offset = off;
        } else if (looksLikeLabelName(body)) {
            mem.symbol = std::string(body);
        } else {
            return false;
        }
    } else {
        std::string_view sym = trim(body.substr(0, split_pos));
        std::string_view off_text = trim(body.substr(split_pos));
        if (!looksLikeLabelName(sym))
            return false;
        long off = 0;
        if (!parseInt(off_text, off))
            return false;
        mem.symbol = std::string(sym);
        mem.offset = off;
    }

    // A bare symbol-less offset with no base register is not a valid
    // memory reference (it would be an immediate).
    if (mem.symbol.empty() && !mem.base.valid())
        return false;

    out = mem;
    return true;
}

Program
assemble(std::string_view text, Diagnostics &diags)
{
    Program prog;
    size_t line_no = 0;
    size_t start = 0;

    while (start <= text.size() && !diags.atErrorLimit()) {
        size_t eol = text.find('\n', start);
        std::string_view raw = (eol == std::string_view::npos)
                                   ? text.substr(start)
                                   : text.substr(start, eol - start);
        start = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
        ++line_no;

        try {
        // Strip comment.
        std::string_view line = raw;
        size_t semi = line.find(';');
        std::string comment;
        if (semi != std::string_view::npos) {
            comment = std::string(trim(line.substr(semi + 1)));
            line = line.substr(0, semi);
        }
        line = trim(line);
        if (line.empty())
            continue;

        // Directive.
        if (line[0] == '.') {
            auto fields = splitWhitespace(line);
            if (fields[0] == ".comm") {
                std::string rest;
                for (size_t i = 1; i < fields.size(); ++i)
                    rest += fields[i];
                auto parts = split(rest, ',');
                long words = 0;
                if (parts.size() != 2 || !parseInt(parts[1], words) ||
                    words <= 0)
                    syntaxError(line_no, raw, ".comm needs name,words");
                prog.defineData(parts[0], static_cast<size_t>(words));
                continue;
            }
            syntaxError(line_no, raw,
                        "unknown directive '" + fields[0] + "'");
        }

        // Leading labels ("L7: instr" or "L7:" alone).
        while (true) {
            size_t colon = line.find(':');
            if (colon == std::string_view::npos)
                break;
            std::string_view name = trim(line.substr(0, colon));
            if (!looksLikeLabelName(name))
                syntaxError(line_no, raw, "bad label name");
            prog.label(std::string(name));
            line = trim(line.substr(colon + 1));
        }
        if (line.empty())
            continue;

        // Mnemonic and operand list.
        size_t sp = line.find_first_of(" \t");
        std::string mnemonic =
            canonicalMnemonic(toLower(std::string(line.substr(
                0, sp == std::string_view::npos ? line.size() : sp))));
        std::string_view rest =
            sp == std::string_view::npos ? std::string_view{}
                                         : trim(line.substr(sp));

        auto opc = opcodeFromMnemonic(mnemonic);
        if (!opc)
            syntaxError(line_no, raw, "unknown mnemonic '" + mnemonic + "'");

        std::vector<Operand> ops;
        for (const auto &f : splitOperands(rest)) {
            auto op = parseOperand(f);
            if (!op)
                syntaxError(line_no, raw, "bad operand '" + f + "'");
            ops.push_back(*op);
        }

        auto need = [&](size_t n) {
            if (ops.size() != n)
                syntaxError(line_no, raw,
                            format("expected %zu operands, got %zu", n,
                                   ops.size()));
        };
        auto isReg = [&](size_t i) {
            return ops[i].kind == Operand::Kind::Reg;
        };
        auto isMem = [&](size_t i) {
            return ops[i].kind == Operand::Kind::Mem;
        };
        auto isImm = [&](size_t i) {
            return ops[i].kind == Operand::Kind::Imm;
        };

        Instruction instr;
        instr.comment = comment;
        Opcode op = *opc;

        switch (op) {
          case Opcode::VLd: {
            need(2);
            if (!isMem(0) || !isReg(1))
                syntaxError(line_no, raw, "ld needs mem,reg");
            instr.mem = ops[0].mem;
            instr.dst = ops[1].reg;
            // "ld.l mem,s0" is a scalar load.
            instr.op = instr.dst.isVector() ? Opcode::VLd : Opcode::SLd;
            break;
          }
          case Opcode::VSt: {
            need(2);
            if (!isReg(0) || !isMem(1))
                syntaxError(line_no, raw, "st needs reg,mem");
            instr.src1 = ops[0].reg;
            instr.mem = ops[1].mem;
            instr.op = instr.src1.isVector() ? Opcode::VSt : Opcode::SSt;
            break;
          }
          case Opcode::VLdS: {
            need(3);
            if (!isMem(0) || !isReg(1) || !isReg(2))
                syntaxError(line_no, raw, "lds needs mem,sK,vN");
            instr.op = op;
            instr.mem = ops[0].mem;
            instr.src1 = ops[1].reg;
            instr.dst = ops[2].reg;
            break;
          }
          case Opcode::VStS: {
            need(3);
            if (!isReg(0) || !isReg(1) || !isMem(2))
                syntaxError(line_no, raw, "sts needs vN,sK,mem");
            instr.op = op;
            instr.src1 = ops[0].reg;
            instr.src2 = ops[1].reg;
            instr.mem = ops[2].mem;
            break;
          }
          // The scalar FP opcodes share the ".d" mnemonics, so the
          // mnemonic lookup resolves to the vector enumerators; the
          // handler below re-dispatches on the operand classes.
          case Opcode::SFAdd:
          case Opcode::SFSub:
          case Opcode::SFMul:
          case Opcode::SFDiv:
            switch (op) {
              case Opcode::SFAdd:
                op = Opcode::VAdd;
                break;
              case Opcode::SFSub:
                op = Opcode::VSub;
                break;
              case Opcode::SFMul:
                op = Opcode::VMul;
                break;
              default:
                op = Opcode::VDiv;
                break;
            }
            [[fallthrough]];
          case Opcode::VAdd:
          case Opcode::VSub:
          case Opcode::VMul:
          case Opcode::VDiv: {
            need(3);
            if (!isReg(0) || !isReg(1) || !isReg(2))
                syntaxError(line_no, raw, "arithmetic needs 3 registers");
            instr.src1 = ops[0].reg;
            instr.src2 = ops[1].reg;
            instr.dst = ops[2].reg;
            // "add.d s1,s2,s3" is the ASU's scalar FP form.
            if (!instr.src1.isVector() && !instr.src2.isVector() &&
                !instr.dst.isVector()) {
                switch (op) {
                  case Opcode::VAdd:
                    instr.op = Opcode::SFAdd;
                    break;
                  case Opcode::VSub:
                    instr.op = Opcode::SFSub;
                    break;
                  case Opcode::VMul:
                    instr.op = Opcode::SFMul;
                    break;
                  default:
                    instr.op = Opcode::SFDiv;
                    break;
                }
            } else {
                instr.op = op;
            }
            break;
          }
          case Opcode::VNeg:
          case Opcode::VSum: {
            need(2);
            if (!isReg(0) || !isReg(1))
                syntaxError(line_no, raw, "needs 2 registers");
            instr.op = op;
            instr.src1 = ops[0].reg;
            instr.dst = ops[1].reg;
            break;
          }
          case Opcode::SLd: {
            need(2);
            if (!isMem(0) || !isReg(1))
                syntaxError(line_no, raw, "ld.w needs mem,reg");
            instr.op = ops[1].reg.isVector() ? Opcode::VLd : Opcode::SLd;
            instr.mem = ops[0].mem;
            instr.dst = ops[1].reg;
            break;
          }
          case Opcode::SSt: {
            need(2);
            if (!isReg(0) || !isMem(1))
                syntaxError(line_no, raw, "st.w needs reg,mem");
            instr.op = ops[0].reg.isVector() ? Opcode::VSt : Opcode::SSt;
            instr.src1 = ops[0].reg;
            instr.mem = ops[1].mem;
            break;
          }
          case Opcode::SAdd:
          case Opcode::SSub:
          case Opcode::SMul: {
            instr.op = op;
            if (ops.size() == 2) {
                // Two-operand increment: add.w #imm,rD or add.w rS,rD.
                if (isImm(0) && isReg(1)) {
                    instr.imm = ops[0].imm;
                    instr.hasImm = true;
                    instr.dst = ops[1].reg;
                } else if (isReg(0) && isReg(1)) {
                    instr.src1 = ops[0].reg;
                    instr.dst = ops[1].reg;
                } else {
                    syntaxError(line_no, raw, "bad scalar ALU operands");
                }
            } else {
                need(3);
                if (!isReg(1) || !isReg(2))
                    syntaxError(line_no, raw, "bad scalar ALU operands");
                if (isImm(0)) {
                    instr.imm = ops[0].imm;
                    instr.hasImm = true;
                } else if (isReg(0)) {
                    instr.src1 = ops[0].reg;
                } else {
                    syntaxError(line_no, raw, "bad scalar ALU operands");
                }
                instr.src2 = ops[1].reg;
                instr.dst = ops[2].reg;
            }
            break;
          }
          case Opcode::SMov: {
            need(2);
            instr.op = op;
            if (isImm(0)) {
                instr.imm = ops[0].imm;
                instr.hasImm = true;
            } else if (isReg(0)) {
                instr.src1 = ops[0].reg;
            } else {
                syntaxError(line_no, raw, "mov needs reg/#imm source");
            }
            if (!isReg(1))
                syntaxError(line_no, raw, "mov needs register destination");
            instr.dst = ops[1].reg;
            break;
          }
          case Opcode::SLt:
          case Opcode::SLe: {
            need(2);
            instr.op = op;
            if (isImm(0)) {
                instr.imm = ops[0].imm;
                instr.hasImm = true;
            } else if (isReg(0)) {
                instr.src1 = ops[0].reg;
            } else {
                syntaxError(line_no, raw, "compare needs reg/#imm");
            }
            if (!isReg(1))
                syntaxError(line_no, raw, "compare needs register");
            instr.src2 = ops[1].reg;
            break;
          }
          case Opcode::BrT:
          case Opcode::BrF:
          case Opcode::Jmp: {
            need(1);
            // A bare identifier lexes as a symbol-only memory operand;
            // in branch position it is the target label.
            if (ops[0].kind == Operand::Kind::Label) {
                instr.target = ops[0].label;
            } else if (ops[0].kind == Operand::Kind::Mem &&
                       !ops[0].mem.base.valid() &&
                       ops[0].mem.offset == 0 &&
                       !ops[0].mem.symbol.empty()) {
                instr.target = ops[0].mem.symbol;
            } else {
                syntaxError(line_no, raw, "branch needs a label");
            }
            instr.op = op;
            break;
          }
          case Opcode::Nop:
            need(0);
            instr.op = op;
            break;
        }

        prog.append(std::move(instr));
        } catch (const AsmLineError &e) {
            // Skip the malformed line, keep assembling: report every
            // error, not just the first.
            diags.error({line_no, 0}, e.why);
        } catch (const FatalError &e) {
            // Duplicate labels / data declarations (Program throws).
            diags.error({line_no, 0}, e.what());
        }
    }

    if (!diags.hasErrors()) {
        try {
            prog.validate();
        } catch (const FatalError &e) {
            diags.error(e.what());
        }
    }
    return prog;
}

Program
assemble(std::string_view text)
{
    Diagnostics diags;
    diags.setSource(text, "<asm>");
    Program prog = assemble(text, diags);
    diags.throwIfErrors();
    return prog;
}

} // namespace macs::isa
