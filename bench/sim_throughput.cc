/**
 * @file
 * Simulator throughput: the fast chime-batched tier vs the reference
 * interpreter (docs/SIMULATOR.md), kernel by kernel.
 *
 * Every vector LFK kernel is simulated in both tiers on the paper
 * machine; per kernel we report the median run() wall time of each
 * tier and the speedup ratio. A refresh-heavy configuration
 * (refreshPeriodCycles cut from 400 to 40, so the memory port's
 * refresh accounting fires an order of magnitude more often) pins the
 * case the batching helps least. Before timing anything the bench
 * re-verifies bit-identical stats between the tiers — a wrong fast
 * tier must fail here, not just in the unit tests.
 *
 * `--json PATH` writes the machine-readable summary consumed by
 * scripts/perf_gate.py (schema "macs-bench-sim-v1"). Gated metrics
 * are the minimum and geomean per-kernel speedups and the
 * refresh-heavy speedup — ratios of two runs on the same host, so
 * host-speed independent. The bench itself also enforces hard floors
 * and exits nonzero below them.
 *
 * What speedup is achievable here, honestly: both tiers execute the
 * same cycle-accurate timing arithmetic per chime (chaining, WAR/WAW
 * interlocks, pair-port arbitration, memory-port service) — that part
 * is the model and cannot be batched away. The fast tier wins only on
 * interpretation overhead: per-element word accessors and opcode
 * switches in the reference become one memcpy / SIMD loop per chime,
 * and per-instruction config lookups become predecoded table reads.
 * Long-vector compiled kernels therefore sit at ~4.6-6.5x (the range
 * ROADMAP.md pins), while hand-assembled scalar-heavy kernels (LFK6's
 * recurrence, LFK10's control-bound loop) are Amdahl-bound near ~3x.
 * The floors below are set under the measured range so the bench
 * fails on structural regressions, not on host noise; the perf gate
 * pins the actual measured baselines with a 15% tolerance.
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

using namespace macs;

constexpr int kReps = 7;
constexpr double kMinSpeedupFloor = 2.5;
constexpr double kGeomeanSpeedupFloor = 3.5;
constexpr double kRefreshSpeedupFloor = 3.5;

double
nowUs()
{
    using namespace std::chrono;
    return duration<double, std::micro>(
               steady_clock::now().time_since_epoch())
        .count();
}

/** One simulation; returns run() wall micros (setup untimed). */
double
runOnce(const lfk::Kernel &k, const machine::MachineConfig &cfg,
        sim::SimTier tier, sim::RunStats *stats_out = nullptr)
{
    sim::SimOptions opt;
    opt.tier = tier;
    sim::Simulator s(cfg, k.program, opt);
    k.setup(s);
    double t0 = nowUs();
    sim::RunStats stats = s.run();
    double wall = nowUs() - t0;
    if (stats_out)
        *stats_out = stats;
    return wall;
}

struct Meas
{
    double refUs = 0.0;
    double fastUs = 0.0;
    double speedup = 0.0;
};

/**
 * Paired measurement: each rep times one reference run immediately
 * followed by one fast run and records the ratio of that pair; the
 * reported speedup is the median ratio. Pairing cancels the slow host
 * frequency drift that would skew a ratio of two medians taken in
 * separate blocks seconds apart.
 */
Meas
measureKernel(const lfk::Kernel &k, const machine::MachineConfig &cfg)
{
    (void)runOnce(k, cfg, sim::SimTier::Reference);
    (void)runOnce(k, cfg, sim::SimTier::Fast);
    std::vector<double> ref, fast, ratio;
    for (int i = 0; i < kReps; ++i) {
        double r = runOnce(k, cfg, sim::SimTier::Reference);
        double f = runOnce(k, cfg, sim::SimTier::Fast);
        ref.push_back(r);
        fast.push_back(f);
        ratio.push_back(r / f);
    }
    return {bench::median(std::move(ref)),
            bench::median(std::move(fast)),
            bench::median(std::move(ratio))};
}

/** The tiers must agree bit-for-bit before either is worth timing. */
bool
tiersAgree(const lfk::Kernel &k, const machine::MachineConfig &cfg)
{
    sim::RunStats ref, fast;
    (void)runOnce(k, cfg, sim::SimTier::Reference, &ref);
    (void)runOnce(k, cfg, sim::SimTier::Fast, &fast);
    bool same =
        std::bit_cast<uint64_t>(ref.cycles) ==
            std::bit_cast<uint64_t>(fast.cycles) &&
        ref.instructions == fast.instructions &&
        ref.vectorElements == fast.vectorElements &&
        ref.flops == fast.flops &&
        std::bit_cast<uint64_t>(ref.refreshStallCycles) ==
            std::bit_cast<uint64_t>(fast.refreshStallCycles) &&
        std::bit_cast<uint64_t>(ref.bankConflictCycles) ==
            std::bit_cast<uint64_t>(fast.bankConflictCycles);
    if (!same)
        std::printf("ERROR: tiers disagree on %s (cycles %.17g "
                    "reference vs %.17g fast)\n",
                    k.name.c_str(), ref.cycles, fast.cycles);
    return same;
}

bool
writeJson(const std::string &path, double min_speedup,
          double refresh_speedup, double geomean,
          double minstr_per_sec, double melems_per_sec)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n"
        << "  \"schema\": \"macs-bench-sim-v1\",\n"
        << "  \"gated\": {\n"
        << format("    \"sim_fast_min_speedup\": %.2f,\n", min_speedup)
        << format("    \"sim_fast_geomean_speedup\": %.2f,\n", geomean)
        << format("    \"sim_fast_refresh_speedup\": %.2f\n",
                  refresh_speedup)
        << "  },\n"
        << "  \"informative\": {\n"
        << format("    \"fast_minstr_per_sec\": %.2f,\n",
                  minstr_per_sec)
        << format("    \"fast_melems_per_sec\": %.1f\n",
                  melems_per_sec)
        << "  }\n"
        << "}\n";
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: sim_throughput [--json PATH]\n");
            return 1;
        }
    }

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    std::printf("=== Simulator throughput: fast (chime-batched) vs "
                "reference tier ===\n\n");

    Table t({"kernel", "reference us", "fast us", "speedup"});
    double min_speedup = 0.0;
    double log_sum = 0.0;
    int count = 0;
    double fast_instr = 0.0, fast_elems = 0.0, fast_us = 0.0;
    for (int id : lfk::lfkIds()) {
        lfk::Kernel k = lfk::makeKernel(id);
        if (!tiersAgree(k, cfg))
            return 1;
        Meas m = measureKernel(k, cfg);
        min_speedup = count == 0 ? m.speedup
                                 : std::min(min_speedup, m.speedup);
        log_sum += std::log(m.speedup);
        ++count;
        sim::RunStats stats;
        (void)runOnce(k, cfg, sim::SimTier::Fast, &stats);
        fast_instr += static_cast<double>(stats.instructions);
        fast_elems += static_cast<double>(stats.vectorElements);
        fast_us += m.fastUs;
        t.addRow({k.name, Table::num(m.refUs, 1),
                  Table::num(m.fastUs, 1), Table::num(m.speedup, 1)});
    }
    double geomean = std::exp(log_sum / count);
    std::printf("%s\n", t.render().c_str());

    // Refresh-heavy: a 10x shorter refresh period exercises the
    // memory port's refresh/stall accounting — the shared, per-stream
    // part of service the batching cannot amortize — an order of
    // magnitude harder, bounding the fast tier's worst case.
    machine::MachineConfig refresh_cfg = cfg;
    refresh_cfg.memory.refreshPeriodCycles = 40;
    lfk::Kernel k1 = lfk::makeKernel(1);
    if (!tiersAgree(k1, refresh_cfg))
        return 1;
    Meas rm = measureKernel(k1, refresh_cfg);
    double refresh_speedup = rm.speedup;
    std::printf("refresh-heavy (period 40): %s %.1f us -> %.1f us, "
                "%.1fx\n\n",
                k1.name.c_str(), rm.refUs, rm.fastUs,
                refresh_speedup);

    double minstr_per_sec = fast_instr / fast_us;
    double melems_per_sec = fast_elems / fast_us;
    std::printf("min speedup:     %.1fx (floor %.1fx)\n", min_speedup,
                kMinSpeedupFloor);
    std::printf("geomean speedup: %.1fx (floor %.1fx)\n", geomean,
                kGeomeanSpeedupFloor);
    std::printf("refresh speedup: %.1fx (floor %.1fx)\n",
                refresh_speedup, kRefreshSpeedupFloor);
    std::printf("fast tier:       %.2f Minstr/s, %.0f Melem/s\n\n",
                minstr_per_sec, melems_per_sec);

    bool ok = true;
    if (min_speedup < kMinSpeedupFloor) {
        std::printf("ERROR: min speedup %.1fx below the %.1fx floor\n",
                    min_speedup, kMinSpeedupFloor);
        ok = false;
    }
    if (geomean < kGeomeanSpeedupFloor) {
        std::printf("ERROR: geomean speedup %.1fx below the %.1fx "
                    "floor\n",
                    geomean, kGeomeanSpeedupFloor);
        ok = false;
    }
    if (refresh_speedup < kRefreshSpeedupFloor) {
        std::printf("ERROR: refresh-heavy speedup %.1fx below the "
                    "%.1fx floor\n",
                    refresh_speedup, kRefreshSpeedupFloor);
        ok = false;
    }

    if (!json_path.empty() &&
        !writeJson(json_path, min_speedup, refresh_speedup, geomean,
                   minstr_per_sec, melems_per_sec)) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    return ok ? 0 : 1;
}
