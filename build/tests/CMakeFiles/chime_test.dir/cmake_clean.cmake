file(REMOVE_RECURSE
  "CMakeFiles/chime_test.dir/chime_test.cc.o"
  "CMakeFiles/chime_test.dir/chime_test.cc.o.d"
  "chime_test"
  "chime_test.pdb"
  "chime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
