#include "isa/instruction.h"

#include <sstream>

#include "support/logging.h"
#include "support/strings.h"

namespace macs::isa {

std::string
MemRef::toString() const
{
    std::ostringstream os;
    if (!symbol.empty()) {
        os << symbol;
        if (offset > 0)
            os << '+' << offset;
        else if (offset < 0)
            os << offset;
    } else {
        os << offset;
    }
    if (base.valid())
        os << '(' << isa::toString(base) << ')';
    return os.str();
}

std::string
toString(const Reg &r)
{
    switch (r.cls) {
      case RegClass::None:
        return "-";
      case RegClass::Vector:
        return format("v%d", r.index);
      case RegClass::Scalar:
        return format("s%d", r.index);
      case RegClass::Address:
        return format("a%d", r.index);
      case RegClass::Vl:
        return "VL";
    }
    panic("unreachable register class");
}

bool
parseReg(const std::string &text, Reg &out)
{
    if (text == "VL" || text == "vl") {
        out = vlreg();
        return true;
    }
    if (text.size() < 2)
        return false;
    char cls = text[0];
    long idx = 0;
    if (!parseInt(text.substr(1), idx))
        return false;
    switch (cls) {
      case 'v':
        if (idx < 0 || idx >= kNumVectorRegs)
            return false;
        out = vreg(static_cast<int>(idx));
        return true;
      case 's':
        if (idx < 0 || idx >= kNumScalarRegs)
            return false;
        out = sreg(static_cast<int>(idx));
        return true;
      case 'a':
        if (idx < 0 || idx >= kNumAddressRegs)
            return false;
        out = areg(static_cast<int>(idx));
        return true;
      default:
        return false;
    }
}

std::vector<Reg>
Instruction::vectorReads() const
{
    std::vector<Reg> out;
    auto add = [&](const Reg &r) {
        if (r.isVector())
            out.push_back(r);
    };
    add(src1);
    add(src2);
    return out;
}

std::vector<Reg>
Instruction::vectorWrites() const
{
    std::vector<Reg> out;
    if (dst.isVector())
        out.push_back(dst);
    return out;
}

std::vector<Reg>
Instruction::scalarReads() const
{
    std::vector<Reg> out;
    auto add = [&](const Reg &r) {
        if (r.isScalar() || r.isAddress())
            out.push_back(r);
    };
    add(src1);
    add(src2);
    add(mem.base);
    return out;
}

Reg
Instruction::scalarWrite() const
{
    if (dst.isScalar() || dst.isAddress() || dst.cls == RegClass::Vl)
        return dst;
    return noreg();
}

std::string
Instruction::toString() const
{
    const char *m = info().mnemonic;
    std::ostringstream os;
    os << m << ' ';
    auto immStr = [&] { return format("#%lld", (long long)imm); };

    switch (op) {
      case Opcode::VLd:
        os << mem.toString() << ',' << isa::toString(dst);
        break;
      case Opcode::VLdS:
        os << mem.toString() << ',' << isa::toString(src1) << ','
           << isa::toString(dst);
        break;
      case Opcode::VSt:
        os << isa::toString(src1) << ',' << mem.toString();
        break;
      case Opcode::VStS:
        os << isa::toString(src1) << ',' << isa::toString(src2) << ','
           << mem.toString();
        break;
      case Opcode::VAdd:
      case Opcode::VSub:
      case Opcode::VMul:
      case Opcode::VDiv:
      case Opcode::SFAdd:
      case Opcode::SFSub:
      case Opcode::SFMul:
      case Opcode::SFDiv:
        os << isa::toString(src1) << ',' << isa::toString(src2) << ','
           << isa::toString(dst);
        break;
      case Opcode::VNeg:
      case Opcode::VSum:
        os << isa::toString(src1) << ',' << isa::toString(dst);
        break;
      case Opcode::SLd:
        os << mem.toString() << ',' << isa::toString(dst);
        break;
      case Opcode::SSt:
        os << isa::toString(src1) << ',' << mem.toString();
        break;
      case Opcode::SAdd:
      case Opcode::SSub:
      case Opcode::SMul:
        if (hasImm && !src2.valid()) {
            // Two-operand increment form: add.w #imm,rD
            os << immStr() << ',' << isa::toString(dst);
        } else {
            os << (hasImm ? immStr() : isa::toString(src1)) << ','
               << isa::toString(src2) << ',' << isa::toString(dst);
        }
        break;
      case Opcode::SMov:
        os << (hasImm ? immStr() : isa::toString(src1)) << ','
           << isa::toString(dst);
        break;
      case Opcode::SLt:
      case Opcode::SLe:
        os << (hasImm ? immStr() : isa::toString(src1)) << ','
           << isa::toString(src2);
        break;
      case Opcode::BrT:
      case Opcode::BrF:
      case Opcode::Jmp:
        os << target;
        break;
      case Opcode::Nop:
        return comment.empty() ? std::string("nop")
                               : "nop ; " + comment;
    }
    std::string body = os.str();
    if (!comment.empty())
        body += " ; " + comment;
    return body;
}

Instruction
makeVLoad(const MemRef &mem, Reg vdst)
{
    MACS_ASSERT(vdst.isVector(), "ld.l destination must be a v register");
    Instruction i;
    i.op = Opcode::VLd;
    i.mem = mem;
    i.dst = vdst;
    return i;
}

Instruction
makeVLoadStrided(const MemRef &mem, Reg stride, Reg vdst)
{
    MACS_ASSERT(vdst.isVector() &&
                    (stride.isScalar() || stride.isAddress()),
                "lds.l needs a scalar/address stride register and a "
                "vector destination");
    Instruction i;
    i.op = Opcode::VLdS;
    i.mem = mem;
    i.src1 = stride;
    i.dst = vdst;
    return i;
}

Instruction
makeVStore(Reg vsrc, const MemRef &mem)
{
    MACS_ASSERT(vsrc.isVector(), "st.l source must be a v register");
    Instruction i;
    i.op = Opcode::VSt;
    i.src1 = vsrc;
    i.mem = mem;
    return i;
}

Instruction
makeVStoreStrided(Reg vsrc, Reg stride, const MemRef &mem)
{
    MACS_ASSERT(vsrc.isVector() &&
                    (stride.isScalar() || stride.isAddress()),
                "sts.l needs a vector source and a scalar/address "
                "stride register");
    Instruction i;
    i.op = Opcode::VStS;
    i.src1 = vsrc;
    i.src2 = stride;
    i.mem = mem;
    return i;
}

Instruction
makeVBinary(Opcode op, Reg a, Reg b, Reg vdst)
{
    MACS_ASSERT(op == Opcode::VAdd || op == Opcode::VSub ||
                    op == Opcode::VMul || op == Opcode::VDiv,
                "not a vector binary op");
    MACS_ASSERT(vdst.isVector(), "vector binary dst must be a v register");
    MACS_ASSERT(a.isVector() || b.isVector(),
                "at least one vector source required");
    Instruction i;
    i.op = op;
    i.src1 = a;
    i.src2 = b;
    i.dst = vdst;
    return i;
}

Instruction
makeVNeg(Reg vsrc, Reg vdst)
{
    MACS_ASSERT(vsrc.isVector() && vdst.isVector(), "neg.d needs v regs");
    Instruction i;
    i.op = Opcode::VNeg;
    i.src1 = vsrc;
    i.dst = vdst;
    return i;
}

Instruction
makeVSum(Reg vsrc, Reg sdst)
{
    MACS_ASSERT(vsrc.isVector() && sdst.isScalar(),
                "sum.d reduces a v register into an s register");
    Instruction i;
    i.op = Opcode::VSum;
    i.src1 = vsrc;
    i.dst = sdst;
    return i;
}

Instruction
makeSLoad(const MemRef &mem, Reg dst)
{
    MACS_ASSERT(dst.isScalar() || dst.isAddress(),
                "ld.w destination must be s or a register");
    Instruction i;
    i.op = Opcode::SLd;
    i.mem = mem;
    i.dst = dst;
    return i;
}

Instruction
makeSStore(Reg src, const MemRef &mem)
{
    MACS_ASSERT(src.isScalar() || src.isAddress(),
                "st.w source must be s or a register");
    Instruction i;
    i.op = Opcode::SSt;
    i.src1 = src;
    i.mem = mem;
    return i;
}

Instruction
makeSBinary(Opcode op, Reg a, Reg b, Reg dst)
{
    MACS_ASSERT(op == Opcode::SAdd || op == Opcode::SSub ||
                    op == Opcode::SMul,
                "not a scalar binary op");
    Instruction i;
    i.op = op;
    i.src1 = a;
    i.src2 = b;
    i.dst = dst;
    return i;
}

Instruction
makeSFBinary(Opcode op, Reg a, Reg b, Reg dst)
{
    MACS_ASSERT(op == Opcode::SFAdd || op == Opcode::SFSub ||
                    op == Opcode::SFMul || op == Opcode::SFDiv,
                "not a scalar FP op");
    MACS_ASSERT(a.isScalar() && b.isScalar() && dst.isScalar(),
                "scalar FP operates on s registers");
    Instruction i;
    i.op = op;
    i.src1 = a;
    i.src2 = b;
    i.dst = dst;
    return i;
}

Instruction
makeSAddImm(int64_t imm, Reg reg)
{
    Instruction i;
    i.op = Opcode::SAdd;
    i.imm = imm;
    i.hasImm = true;
    i.dst = reg;
    return i;
}

Instruction
makeSSubImm(int64_t imm, Reg reg)
{
    Instruction i;
    i.op = Opcode::SSub;
    i.imm = imm;
    i.hasImm = true;
    i.dst = reg;
    return i;
}

Instruction
makeMovImm(int64_t imm, Reg dst)
{
    Instruction i;
    i.op = Opcode::SMov;
    i.imm = imm;
    i.hasImm = true;
    i.dst = dst;
    return i;
}

Instruction
makeMov(Reg src, Reg dst)
{
    Instruction i;
    i.op = Opcode::SMov;
    i.src1 = src;
    i.dst = dst;
    return i;
}

Instruction
makeCmpImm(Opcode op, int64_t imm, Reg reg)
{
    MACS_ASSERT(op == Opcode::SLt || op == Opcode::SLe, "not a compare");
    Instruction i;
    i.op = op;
    i.imm = imm;
    i.hasImm = true;
    i.src2 = reg;
    return i;
}

Instruction
makeBranch(Opcode op, const std::string &label)
{
    MACS_ASSERT(isControl(op), "not a branch opcode");
    Instruction i;
    i.op = op;
    i.target = label;
    return i;
}

} // namespace macs::isa
