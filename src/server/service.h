/**
 * @file
 * AnalysisService — the compute core shared by every `macs serve`
 * worker (docs/SERVER.md).
 *
 * The batch CLI runs BatchEngine::run() once over a job set; a server
 * instead receives many small, concurrent job sets whose latencies
 * must not couple. The service therefore evaluates jobs INLINE on the
 * calling thread (the server's session worker) against one
 * process-wide, LRU-bounded AnalysisCache, reusing the exact guarded
 * compute of the batch engine (pipeline::computeAnalysisGuarded): the
 * same retry/backoff envelope, the same fault sites keyed on
 * (cache key, attempt), the same error taxonomy, and — crucially —
 * the same submission-ordered BatchResult, so renderBatchJson() of a
 * service run is byte-identical to the CLI's output for the same jobs.
 *
 * expandJobSet() is the one definition of how (ids, kernels) x
 * variants x vector lengths x repeat become BatchJobs; `macs batch`
 * and `POST /v1/batch` both call it, which is what makes the HTTP
 * responses reproducible with the CLI.
 */

#ifndef MACS_SERVER_SERVICE_H
#define MACS_SERVER_SERVICE_H

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "pipeline/checkpoint.h"
#include "pipeline/pipeline.h"

namespace macs::server {

/** AnalysisService construction options. */
struct ServiceOptions
{
    /** Retry budget for transient failures of one computation. */
    int maxRetries = 2;
    /** Base backoff before the first retry, doubled per retry. */
    double retryBackoffUs = 1000.0;
    /**
     * Per-job wall-clock deadline in milliseconds; 0 disables. An
     * expired job fails with ErrorKind::Timeout (HTTP 200 with an
     * error entry — the REQUEST deadline is the transport's concern).
     */
    double jobTimeoutMs = 0.0;
    /** Disable memoization (every job recomputes). */
    bool useCache = true;
    /** LRU bound on the shared cache; 0 = unbounded. */
    size_t cacheCapacity = 0;
    /** nullptr means faults::FaultInjector::global(). */
    const faults::FaultInjector *faults = nullptr;
    /** nullptr means obs::Registry::global(). */
    obs::Registry *metrics = nullptr;
    /**
     * Checkpoint journal: seeded into the cache at construction and
     * appended with each newly computed analysis. Must outlive the
     * service. nullptr disables checkpointing.
     */
    pipeline::CheckpointJournal *checkpoint = nullptr;
};

/**
 * The declarative form of one batch request — what `macs batch`'s
 * arguments and a `POST /v1/batch` body both reduce to.
 */
struct JobSetSpec
{
    std::vector<int> ids;                      ///< LFK kernel ids
    std::vector<model::KernelCase> kernels;    ///< compiled loop/asm
    std::vector<std::string> variants;         ///< default: baseline
    std::vector<int> vls;                      ///< default: {0}
    long repeat = 1;
    /** Simulation options applied to every job (tier etc.). The tier
     *  never changes results — both tiers are bit-identical — but it
     *  is part of the cache key, so it is carried explicitly. */
    sim::SimOptions options;
};

/**
 * Expand @p spec exactly like `macs batch` does: repeat x variant x
 * vl x (ids, then kernels), labels suffixed "@vl<N>" for explicit
 * vector lengths. Unknown variants fatal() — validate beforehand.
 */
std::vector<pipeline::BatchJob> expandJobSet(const JobSetSpec &spec);

class AnalysisService
{
  public:
    explicit AnalysisService(ServiceOptions options = {});
    ~AnalysisService();

    AnalysisService(const AnalysisService &) = delete;
    AnalysisService &operator=(const AnalysisService &) = delete;

    /**
     * Evaluate @p jobs on the CALLING thread (results in submission
     * order, shared cache) and return the same BatchResult shape
     * BatchEngine::run() produces. @p cancel, when set, aborts
     * retries/backoffs early (in-flight computes run to completion).
     * Thread-safe: any number of sessions may call concurrently.
     */
    pipeline::BatchResult
    runJobs(const std::vector<pipeline::BatchJob> &jobs,
            const std::atomic<bool> *cancel = nullptr);

    /** The shared memo cache. */
    const pipeline::AnalysisCache &cache() const { return cache_; }

    /**
     * Join workers whose deadline expired (strays). Called from the
     * destructor; the server also calls it on drain so no thread
     * outlives the process teardown.
     */
    void reapStrays();

  private:
    void runOne(const pipeline::BatchJob &job,
                pipeline::JobResult &out,
                const std::atomic<bool> *cancel);
    pipeline::AnalysisCache::Value
    computeWithDeadline(const pipeline::BatchJob &job,
                        const pipeline::CacheKey &key, int &attempts,
                        const std::atomic<bool> *cancel);
    obs::Registry &registry() const;

    ServiceOptions options_;
    pipeline::AnalysisCache cache_;

    /** Timed-out worker threads, reaped by reapStrays(). */
    std::mutex straysMu_;
    std::vector<std::thread> strays_;
};

} // namespace macs::server

#endif // MACS_SERVER_SERVICE_H
