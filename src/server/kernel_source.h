/**
 * @file
 * Shared construction of model::KernelCase from user-supplied source
 * text. `macs batch file.loop`, `POST /v1/analyze`, and
 * `POST /v1/batch` all funnel through these helpers, so a loop sent
 * over HTTP is compiled *exactly* like the same file given to the CLI
 * — the byte-identical-response contract of docs/SERVER.md depends on
 * it.
 *
 * Loop sources use the DSL of compiler/loop_parser.h with `#`
 * comments (blanked, not deleted, so diagnostics keep their
 * positions); every referenced array is auto-declared with a generous
 * extent. Assembly sources use the syntax of isa/parser.h. All errors
 * are collected into the caller's Diagnostics (multi-error,
 * docs/ROBUSTNESS.md) rather than thrown one at a time.
 */

#ifndef MACS_SERVER_KERNEL_SOURCE_H
#define MACS_SERVER_KERNEL_SOURCE_H

#include <string>

#include "macs/hierarchy.h"
#include "support/diag.h"

namespace macs::server {

/**
 * Compile loop-DSL @p text (named @p name in diagnostics) into a
 * KernelCase with trip count @p trip. @retval false on any error
 * (reported to @p diags).
 */
bool kernelFromLoopSource(const std::string &text,
                          const std::string &name, long trip,
                          model::KernelCase &out, Diagnostics &diags);

/**
 * Assemble @p text into a KernelCase whose workload is the assembly's
 * own operation counts, normalized to @p points result elements.
 * @retval false on any error (reported to @p diags).
 */
bool kernelFromAsmSource(const std::string &text,
                         const std::string &name, long points,
                         model::KernelCase &out, Diagnostics &diags);

} // namespace macs::server

#endif // MACS_SERVER_KERNEL_SOURCE_H
