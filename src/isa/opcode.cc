#include "isa/opcode.h"

#include <array>
#include <map>

#include "support/logging.h"

namespace macs::isa {

namespace {

constexpr std::array<OpcodeInfo, kNumOpcodes> kOpcodeTable = {{
    {Opcode::VLd, "ld.l", Pipe::LoadStore, OpKind::VectorLoad},
    {Opcode::VSt, "st.l", Pipe::LoadStore, OpKind::VectorStore},
    {Opcode::VLdS, "lds.l", Pipe::LoadStore, OpKind::VectorLoad},
    {Opcode::VStS, "sts.l", Pipe::LoadStore, OpKind::VectorStore},
    {Opcode::VAdd, "add.d", Pipe::Add, OpKind::VectorFpAdd},
    {Opcode::VSub, "sub.d", Pipe::Add, OpKind::VectorFpAdd},
    {Opcode::VMul, "mul.d", Pipe::Multiply, OpKind::VectorFpMul},
    {Opcode::VDiv, "div.d", Pipe::Multiply, OpKind::VectorFpMul},
    {Opcode::VNeg, "neg.d", Pipe::Add, OpKind::VectorFpAdd},
    {Opcode::VSum, "sum.d", Pipe::Add, OpKind::VectorFpAdd},
    {Opcode::SLd, "ld.w", Pipe::None, OpKind::ScalarMem},
    {Opcode::SSt, "st.w", Pipe::None, OpKind::ScalarMem},
    {Opcode::SAdd, "add.w", Pipe::None, OpKind::ScalarAlu},
    {Opcode::SSub, "sub.w", Pipe::None, OpKind::ScalarAlu},
    {Opcode::SMul, "mul.w", Pipe::None, OpKind::ScalarAlu},
    // Scalar FP shares the vector mnemonics; the assembler dispatches
    // on the operand register classes, so the mnemonic map may resolve
    // these spellings to the vector opcodes first.
    {Opcode::SFAdd, "add.d", Pipe::None, OpKind::ScalarFp},
    {Opcode::SFSub, "sub.d", Pipe::None, OpKind::ScalarFp},
    {Opcode::SFMul, "mul.d", Pipe::None, OpKind::ScalarFp},
    {Opcode::SFDiv, "div.d", Pipe::None, OpKind::ScalarFp},
    {Opcode::SMov, "mov", Pipe::None, OpKind::ScalarAlu},
    {Opcode::SLt, "lt.w", Pipe::None, OpKind::ScalarAlu},
    {Opcode::SLe, "le.w", Pipe::None, OpKind::ScalarAlu},
    {Opcode::BrT, "jbrs.t", Pipe::None, OpKind::Control},
    {Opcode::BrF, "jbrs.f", Pipe::None, OpKind::Control},
    {Opcode::Jmp, "jbra", Pipe::None, OpKind::Control},
    {Opcode::Nop, "nop", Pipe::None, OpKind::ScalarAlu},
}};

const std::map<std::string, Opcode> &
mnemonicMap()
{
    static const std::map<std::string, Opcode> map = [] {
        std::map<std::string, Opcode> m;
        for (const auto &info : kOpcodeTable)
            m.emplace(info.mnemonic, info.op);
        return m;
    }();
    return map;
}

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    MACS_ASSERT(idx < kOpcodeTable.size(), "bad opcode");
    const OpcodeInfo &info = kOpcodeTable[idx];
    MACS_ASSERT(info.op == op, "opcode table out of order");
    return info;
}

std::optional<Opcode>
opcodeFromMnemonic(const std::string &mnemonic)
{
    const auto &map = mnemonicMap();
    auto it = map.find(mnemonic);
    if (it == map.end())
        return std::nullopt;
    return it->second;
}

bool
isVectorOp(Opcode op)
{
    return opcodeInfo(op).pipe != Pipe::None;
}

bool
isVectorMem(Opcode op)
{
    OpKind k = opcodeInfo(op).kind;
    return k == OpKind::VectorLoad || k == OpKind::VectorStore;
}

bool
isVectorFp(Opcode op)
{
    OpKind k = opcodeInfo(op).kind;
    return k == OpKind::VectorFpAdd || k == OpKind::VectorFpMul;
}

bool
isScalarMem(Opcode op)
{
    return opcodeInfo(op).kind == OpKind::ScalarMem;
}

bool
isScalarFp(Opcode op)
{
    return opcodeInfo(op).kind == OpKind::ScalarFp;
}

bool
isControl(Opcode op)
{
    return opcodeInfo(op).kind == OpKind::Control;
}

} // namespace macs::isa
