/**
 * @file
 * Reproduces paper Table 5: MACS bounds and A/X measurements in CPL —
 * t_p against t_MACS, the access-only measurement t_A against
 * t_MACS^m, and the execute-only measurement t_X against t_MACS^f —
 * followed by the full Figure-1-style hierarchy report per kernel.
 *
 * Column semantics note: the published table's t_a/t_x column order is
 * ambiguous in surviving copies; we use section 3.6's definitions
 * (t_A = vector FP deleted, modeled by t_MACS^m; t_X = vector memory
 * deleted, modeled by t_MACS^f) and print the paper's values under
 * that interpretation (see EXPERIMENTS.md).
 */

#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "support/table.h"

int
main(int argc, char **argv)
{
    using namespace macs;
    using namespace macs::bench;

    bool reports = argc > 1 && std::strcmp(argv[1], "--reports") == 0;
    bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

    std::printf("=== Table 5: MACS bounds and A/X measurements (CPL) "
                "===\n\n");

    Table t({"LFK", "t_p", "t_MACS", "t_A", "tMACS^m", "t_X", "tMACS^f",
             "paper t_p", "paper t_A", "paper t_X"});
    for (int id : lfk::lfkIds()) {
        const auto &a = allAnalyses().at(id);
        const auto &ref = paperReference().at(id);
        t.addRow({"LFK" + std::to_string(id), Table::num(a.tP, 2),
                  Table::num(a.macs.cpl, 2), Table::num(a.tA, 2),
                  Table::num(a.macsMOnly.cpl, 2), Table::num(a.tX, 2),
                  Table::num(a.macsFOnly.cpl, 2),
                  Table::num(ref.tpCpl, 2), Table::num(ref.tACpl, 2),
                  Table::num(ref.tXCpl, 2)});
    }
    std::printf("%s\n", csv ? t.renderCsv().c_str() : t.render().c_str());

    std::printf(
        "Equation 18 holds for every kernel: max(t_X, t_A) <= t_p <=\n"
        "t_X + t_A. Poor access/execute overlap (t_p well above the\n"
        "max) shows for LFK 4/6/8, exactly the kernels the paper\n"
        "flags.\n\n");

    if (reports) {
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        for (int id : lfk::lfkIds())
            std::printf("%s\n",
                        model::renderReport(allAnalyses().at(id), cfg)
                            .c_str());
    } else {
        std::printf("(run with --reports for the per-kernel hierarchy "
                    "reports)\n");
    }
    return 0;
}
