/**
 * @file
 * MA and MAC performance bounds (paper section 3.1).
 *
 * Both bounds assume each of the three vector pipes and the memory port
 * sustains one element per clock and that all inter-pipe parallelism is
 * exploited, so an iteration costs
 *     t = max(t_f, t_m),  t_f = max(f_a, f_m),  t_m = l + s
 * in CPL. MA evaluates this on the source workload (perfect index
 * analysis), MAC on the compiled workload.
 */

#ifndef MACS_MACS_BOUNDS_H
#define MACS_MACS_BOUNDS_H

#include "macs/workload.h"

namespace macs::model {

/** An MA- or MAC-level bound, in CPL, with its component terms. */
struct PipeBound
{
    double tF = 0.0;   ///< FP bound: max(f_a, f_m)
    double tM = 0.0;   ///< memory bound: l + s
    double bound = 0.0;///< max(tF, tM)

    /** True when the memory term dominates. */
    bool memoryBound() const { return tM >= tF; }
};

/** Evaluate max(t_f, t_m) on @p counts (used for both MA and MAC). */
PipeBound pipeBound(const WorkloadCounts &counts);

} // namespace macs::model

#endif // MACS_MACS_BOUNDS_H
