/**
 * @file
 * BatchEngine — the parallel batch-analysis pipeline.
 *
 * Takes a set of BatchJobs and evaluates the full MACS hierarchy
 * (bounds + simulated full/A/X runs, model::analyzeKernel) for each
 * across a fixed-size worker thread pool, memoizing results in an
 * AnalysisCache keyed on (program hash, machine hash, options hash).
 *
 * Guarantees (see docs/PIPELINE.md for the full contract):
 *  - DETERMINISM: results are returned in submission order and every
 *    analysis value is a pure function of the job content, so the
 *    result set — and any report rendered from it without timing
 *    sections — is byte-identical for any worker count, including 1.
 *  - SINGLE COMPUTATION: duplicate jobs (same cache key) are computed
 *    once per engine lifetime; later submissions are cache hits, also
 *    across successive run() calls on the same engine.
 *  - ISOLATION OF FAILURE: a failing job (fatal()/panic() from the
 *    analysis stack) is reported in its JobResult::error; other jobs
 *    are unaffected.
 *
 * Robustness (docs/ROBUSTNESS.md):
 *  - TRANSIENT faults (TransientFault, IoError, bad_alloc) are retried
 *    up to maxRetries times with exponential backoff; permanent errors
 *    (fatal()/panic()) are never retried.
 *  - A per-job wall-clock deadline (jobTimeoutMs) bounds each compute;
 *    an expired job fails with ErrorKind::Timeout while its worker is
 *    reaped in the run() epilogue.
 *  - BatchResult carries an error manifest (ErrorRecord per failure)
 *    and the 0/2/3 exit-code contract.
 *  - A CheckpointJournal, when attached, seeds the cache before the
 *    run (resume recomputes only unfinished jobs) and records every
 *    newly computed analysis.
 *
 * Perf counters: each JobResult carries queue wait / compute time /
 * cache hit, and BatchResult::stats aggregates them. These are
 * scheduling-dependent and excluded from deterministic report output.
 */

#ifndef MACS_PIPELINE_PIPELINE_H
#define MACS_PIPELINE_PIPELINE_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "faults/fault_injection.h"
#include "obs/metrics.h"
#include "pipeline/cache.h"
#include "pipeline/checkpoint.h"
#include "pipeline/job.h"
#include "pipeline/thread_pool.h"

namespace macs::pipeline {

/**
 * Thrown inside the engine when a job's wall-clock deadline expires.
 * Derives FatalError so waiters on a poisoned (timed-out) cache entry
 * classify it like any other permanent failure of that entry.
 */
class DeadlineExceeded : public FatalError
{
  public:
    explicit DeadlineExceeded(const std::string &msg) : FatalError(msg)
    {
    }
};

/** Engine construction options. */
struct EngineOptions
{
    /** Worker threads; 0 means std::thread::hardware_concurrency(). */
    size_t workers = 0;
    /** Disable memoization (every job recomputes). For baselines. */
    bool useCache = true;
    /**
     * Metrics registry the engine publishes `macs_pipeline_*` series
     * to after every run() (queue wait, compute time, cache hit/miss,
     * worker utilization — see docs/OBSERVABILITY.md). nullptr means
     * obs::Registry::global(); tests pass a private registry. These
     * are scheduling-dependent observability data and never feed the
     * deterministic reports.
     */
    obs::Registry *metrics = nullptr;

    /**
     * Retry budget for TRANSIENT failures: a job may be recomputed up
     * to maxRetries times after its first attempt. Permanent errors
     * (fatal()/panic()) are never retried.
     */
    int maxRetries = 2;
    /**
     * Base backoff before the first retry, doubled per retry. Kept
     * small by default; chaos tests override it to ~0.
     */
    double retryBackoffUs = 1000.0;
    /**
     * Per-job wall-clock deadline in milliseconds; 0 disables. An
     * expired job fails with ErrorKind::Timeout; its worker thread is
     * signalled to cancel and reaped in the run() epilogue.
     */
    double jobTimeoutMs = 0.0;
    /**
     * Fault injector consulted at the hardened sites (alloc /
     * worker-exception / compute-delay, keyed on the cache key and
     * attempt number so injection is schedule-independent). nullptr
     * means faults::FaultInjector::global() (the MACS_FAULTS plan).
     */
    const faults::FaultInjector *faults = nullptr;
    /**
     * Checkpoint journal: seeded into the cache before every run()
     * and appended with each newly computed analysis. Must outlive
     * the engine. nullptr disables checkpointing.
     */
    CheckpointJournal *checkpoint = nullptr;
    /**
     * LRU bound on the memo cache (entries); 0 = unbounded, the right
     * default for one-shot `macs batch`. Long-running consumers
     * (`macs serve`) set a bound so the cache cannot grow without
     * limit; evictions surface as `macs_cache_evictions_total`.
     */
    size_t cacheCapacity = 0;
};

/**
 * Options of one guarded computation: the retry/backoff/fault-site
 * envelope shared by the batch engine and the analysis server
 * (src/server), so both paths fail, retry, and count identically.
 */
struct GuardedComputeOptions
{
    int maxRetries = 2;
    double retryBackoffUs = 1000.0;
    /** nullptr means faults::FaultInjector::global(). */
    const faults::FaultInjector *faults = nullptr;
    /** nullptr means obs::Registry::global(). */
    obs::Registry *metrics = nullptr;
};

/**
 * Run analyzeKernel for @p job under the standard fault/retry guard:
 * the alloc / compute-delay / worker-exception sites are consulted
 * with attemptKey(key, attempt) so the fire pattern is schedule
 * independent, TRANSIENT failures are retried with exponential
 * backoff, and the macs_retry_* counters are published. Throws the
 * final failure; @p attempts always reflects the attempts consumed.
 */
AnalysisCache::Value
computeAnalysisGuarded(const BatchJob &job, const CacheKey &key,
                       const GuardedComputeOptions &options,
                       std::atomic<int> &attempts,
                       const std::atomic<bool> *cancel);

/**
 * Classify @p ep with the engine's error taxonomy
 * (docs/ROBUSTNESS.md) and render its message into @p message:
 * DeadlineExceeded -> Timeout, TransientFault / IoError / bad_alloc ->
 * Transient, anything else -> Permanent.
 */
ErrorKind classifyError(const std::exception_ptr &ep,
                        std::string &message);

class BatchEngine
{
  public:
    explicit BatchEngine(EngineOptions options = {});
    ~BatchEngine();

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;

    /**
     * Run every job and return results in submission order. May be
     * called repeatedly; the cache persists across calls. Empty job
     * sets return immediately.
     */
    BatchResult run(const std::vector<BatchJob> &jobs);

    /** The memo cache (counters persist across run() calls). */
    const AnalysisCache &cache() const { return cache_; }

    size_t workerCount() const { return pool_.workerCount(); }

    /** Compute the memoization key of @p job (exposed for tests). */
    static CacheKey keyOf(const BatchJob &job);

    /**
     * The fault-injection key of attempt @p attempt of the job with
     * cache key @p key: a content hash, so the same (job, attempt)
     * draws the same injection decision for any worker count, and a
     * retry is an independent draw. Exposed so tests can predict
     * which attempts a seeded plan will hit.
     */
    static uint64_t attemptKey(const CacheKey &key, int attempt);

  private:
    void runOne(const BatchJob &job, JobResult &out,
                double enqueue_us);
    AnalysisCache::Value computeGuarded(const BatchJob &job,
                                        const CacheKey &key,
                                        std::atomic<int> &attempts,
                                        const std::atomic<bool> *cancel);
    AnalysisCache::Value computeWithDeadline(const BatchJob &job,
                                             const CacheKey &key,
                                             int &attempts);
    const faults::FaultInjector &injector() const;
    obs::Registry &registry() const;
    void publishMetrics(const BatchResult &result) const;

    EngineOptions options_;
    ThreadPool pool_;
    AnalysisCache cache_;

    /** Timed-out worker threads, reaped in the run() epilogue. */
    std::mutex straysMu_;
    std::vector<std::thread> strays_;
};

/** Convenience: analyze the ten paper kernels on @p config. @{ */
std::vector<BatchJob>
paperJobSet(const machine::MachineConfig &config,
            const std::string &config_name = "baseline");
/** @} */

} // namespace macs::pipeline

#endif // MACS_PIPELINE_PIPELINE_H
