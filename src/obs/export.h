/**
 * @file
 * Deterministic exporters for a metrics Registry (obs/metrics.h):
 * a JSON document (schema "macs-metrics-v1") and the Prometheus text
 * exposition format.
 *
 * Both renderers consume Registry::snapshot(), which is sorted by
 * (metric name, canonical label key): for identical registry contents
 * the output is byte-identical regardless of registration order,
 * thread interleaving, or worker count. The batch pipeline's
 * `macs batch --metrics` relies on this for its byte-stability
 * guarantee (docs/OBSERVABILITY.md).
 */

#ifndef MACS_OBS_EXPORT_H
#define MACS_OBS_EXPORT_H

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace macs::obs {

/**
 * Render a registry (or a pre-taken snapshot) as JSON:
 *
 *   {"schema": "macs-metrics-v1",
 *    "metrics": [{"name": ..., "type": ..., "help": ...,
 *                 "labels": {...}, "value": ...} |
 *                {..., "buckets": [{"le": ..., "count": ...}, ...],
 *                 "sum": ..., "count": ...}]}
 * @{
 */
std::string renderJson(const Registry &registry);
std::string renderJson(const std::vector<Sample> &samples);
/** @} */

/**
 * Render the Prometheus text exposition format: `# HELP` / `# TYPE`
 * headers per family, `name{labels} value` per series, histograms as
 * cumulative `_bucket{le=...}` plus `_sum` and `_count`.
 * @{
 */
std::string renderPrometheus(const Registry &registry);
std::string renderPrometheus(const std::vector<Sample> &samples);
/** @} */

/** JSON string-body escaping shared by the obs emitters. */
std::string jsonEscape(const std::string &s);

} // namespace macs::obs

#endif // MACS_OBS_EXPORT_H
