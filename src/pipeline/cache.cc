#include "pipeline/cache.h"

namespace macs::pipeline {

AnalysisCache::Claim
AnalysisCache::claim(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return {it->second, nullptr};
    }
    auto promise = std::make_shared<std::promise<Value>>();
    std::shared_future<Value> future = promise->get_future().share();
    entries_.emplace(key, future);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return {std::move(future), std::move(promise)};
}

bool
AnalysisCache::seed(const CacheKey &key, Value value)
{
    std::promise<Value> ready;
    ready.set_value(std::move(value));
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.emplace(key, ready.get_future().share()).second;
}

size_t
AnalysisCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
AnalysisCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    hits_.store(0);
    misses_.store(0);
}

} // namespace macs::pipeline
