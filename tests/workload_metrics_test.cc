/**
 * @file
 * Workload counting, MA/MAC pipe-bound equations (paper section 3.1),
 * and the CPL/CPF/MFLOPS conversions (equations 2-4).
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "lfk/kernels.h"
#include "macs/bounds.h"
#include "macs/metrics.h"
#include "macs/workload.h"

namespace macs::model {
namespace {

TEST(Workload, CountsLfk1PaperListing)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    WorkloadCounts c = countAssembly(p.innerLoop());
    EXPECT_EQ(c.fAdd, 2);
    EXPECT_EQ(c.fMul, 3);
    EXPECT_EQ(c.loads, 3);
    EXPECT_EQ(c.stores, 1);
    EXPECT_EQ(c.flops(), 5);
    EXPECT_EQ(c.tF(), 3);
    EXPECT_EQ(c.tM(), 4);
}

TEST(Workload, ReductionAndNegCountAsAddPipe)
{
    isa::Program p = isa::assemble(R"(
.comm x,64
    ld.l x(a5),v0
    neg.d v0,v1
    sum.d v1,s1
)");
    WorkloadCounts c = countAssembly(p.instrs());
    EXPECT_EQ(c.fAdd, 2);
    EXPECT_EQ(c.fMul, 0);
}

TEST(Workload, DivCountsAsMultiplyPipe)
{
    isa::Program p = isa::assemble("div.d v0,v1,v2\n");
    WorkloadCounts c = countAssembly(p.instrs());
    EXPECT_EQ(c.fMul, 1);
}

TEST(Workload, StridedOpsCountAsMemory)
{
    isa::Program p = isa::assemble(R"(
.comm x,1024
    mov #5,s1
    lds.l x,s1,v0
    sts.l v0,s1,x
)");
    WorkloadCounts c = countAssembly(p.instrs());
    EXPECT_EQ(c.loads, 1);
    EXPECT_EQ(c.stores, 1);
}

TEST(Workload, ScalarInstructionsIgnored)
{
    isa::Program p = isa::assemble(R"(
.comm x,8
    ld.w x,s1
    st.w s1,x
    add.w #1,s0
)");
    WorkloadCounts c = countAssembly(p.instrs());
    EXPECT_EQ(c, (WorkloadCounts{}));
}

TEST(Workload, EmptyBody)
{
    std::vector<isa::Instruction> empty;
    WorkloadCounts c = countAssembly(empty);
    EXPECT_EQ(c.flops(), 0);
    EXPECT_EQ(c.tM(), 0);
}

// ---------------------------------------------------------------- bounds

TEST(PipeBound, MemoryBoundCase)
{
    WorkloadCounts c{2, 3, 2, 1}; // f=3, m=3
    PipeBound b = pipeBound(c);
    EXPECT_DOUBLE_EQ(b.tF, 3.0);
    EXPECT_DOUBLE_EQ(b.tM, 3.0);
    EXPECT_DOUBLE_EQ(b.bound, 3.0);
    EXPECT_TRUE(b.memoryBound());
}

TEST(PipeBound, FpBoundCase)
{
    WorkloadCounts c{21, 15, 9, 6}; // LFK8 MA: f=21, m=15
    PipeBound b = pipeBound(c);
    EXPECT_DOUBLE_EQ(b.bound, 21.0);
    EXPECT_FALSE(b.memoryBound());
}

TEST(PipeBound, MaxOfAddsAndMuls)
{
    WorkloadCounts c{9, 8, 0, 0};
    EXPECT_DOUBLE_EQ(pipeBound(c).tF, 9.0);
}

TEST(PipeBound, ZeroWorkload)
{
    PipeBound b = pipeBound({});
    EXPECT_DOUBLE_EQ(b.bound, 0.0);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, CplToCpf)
{
    // LFK1: 3 CPL over 5 source flops = 0.6 CPF (equation 2).
    EXPECT_DOUBLE_EQ(cplToCpf(3.0, 5), 0.6);
    EXPECT_THROW(cplToCpf(3.0, 0), PanicError);
}

TEST(Metrics, CpfToMflops)
{
    // 25 MHz at 1 CPF = 25 MFLOPS.
    EXPECT_DOUBLE_EQ(cpfToMflops(1.0, 25.0), 25.0);
    EXPECT_THROW(cpfToMflops(0.0, 25.0), PanicError);
}

TEST(Metrics, HmeanMflopsMatchesPaperTable4)
{
    // Paper Table 4 average row: avg MA CPF 1.080 -> 23.15 MFLOPS.
    std::vector<double> cpfs = {0.600, 1.250, 1.000, 1.000, 1.000,
                                0.500, 0.583, 0.647, 2.222, 2.000};
    double hm = hmeanMflops(cpfs, 25.0);
    EXPECT_NEAR(hm, 23.15, 0.05);
}

TEST(Metrics, HmeanIsClockOverMeanCpf)
{
    std::vector<double> cpfs = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(hmeanMflops(cpfs, 25.0), 25.0 / 2.0);
}

} // namespace
} // namespace macs::model
