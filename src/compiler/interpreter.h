/**
 * @file
 * Direct AST interpreter for the loop DSL: the semantic reference the
 * compiler and simulator are differentially tested against.
 *
 * The interpreter executes the loop with strict per-iteration,
 * per-statement sequential semantics (each statement's right-hand side
 * reads the current memory state; its write lands before the next
 * statement). For vectorizable loops this matches the compiled vector
 * code's results element-for-element; for recurrences it matches the
 * scalar-mode code.
 */

#ifndef MACS_COMPILER_INTERPRETER_H
#define MACS_COMPILER_INTERPRETER_H

#include <map>
#include <string>
#include <vector>

#include "compiler/ast.h"

namespace macs::compiler {

/** Named array and scalar state the interpreter reads and writes. */
struct Environment
{
    std::map<std::string, std::vector<double>> arrays;
    std::map<std::string, double> scalars;
};

/**
 * Execute @p loop for @p trip iterations, mutating @p env in place.
 * fatal() on references to undeclared arrays/scalars or out-of-range
 * indices.
 */
void interpret(const Loop &loop, long trip, Environment &env);

/**
 * Interpret @p loop with vector-semantics statement granularity: all
 * VL iterations of one statement complete before the next statement
 * starts, strip by strip — exactly how the vectorized code behaves.
 * Differs from interpret() only for loops with cross-iteration
 * statement interactions, which the vectorizer rejects anyway.
 */
void interpretVector(const Loop &loop, long trip, Environment &env,
                     int vl = 128);

} // namespace macs::compiler

#endif // MACS_COMPILER_INTERPRETER_H
