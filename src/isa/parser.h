/**
 * @file
 * Two-pass assembler for the textual Convex-style assembly used in the
 * paper's listings.
 *
 * Accepted syntax (one item per line, ';' starts a comment):
 *
 *   .comm name,words          declare a data region of 64-bit words
 *   label:                    attach a label (may share a line with an
 *                             instruction)
 *   mnemonic op1,op2,...      instruction
 *
 * Operands:
 *   v0..v7, s0..s7, a0..a7, VL    registers
 *   #123, #-4, #0x10              immediates
 *   sym+off(aN), off(aN), sym     memory references (byte offsets)
 *
 * The paper's unsuffixed scalar forms ("add #1024,a5") are accepted as
 * aliases of add.w/sub.w/mul.w/ld.w/st.w; "ld.l"/"st.l" with a scalar
 * or address register operand are likewise treated as scalar accesses.
 */

#ifndef MACS_ISA_PARSER_H
#define MACS_ISA_PARSER_H

#include <string>
#include <string_view>

#include "isa/program.h"

namespace macs::isa {

/**
 * Assemble @p text into a Program.
 *
 * fatal() with a line-numbered message on the first syntax error. The
 * returned program has been validate()d.
 */
Program assemble(std::string_view text);

/**
 * Parse a single memory operand ("sym+off(aN)").
 * @retval true on success
 */
bool parseMemRef(std::string_view text, MemRef &out);

} // namespace macs::isa

#endif // MACS_ISA_PARSER_H
