file(REMOVE_RECURSE
  "CMakeFiles/macs_calib.dir/calibration.cc.o"
  "CMakeFiles/macs_calib.dir/calibration.cc.o.d"
  "libmacs_calib.a"
  "libmacs_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
