/**
 * @file
 * Thin POSIX socket layer of `macs serve` (docs/SERVER.md): a
 * listening socket with timeout-sliced accept (so the acceptor can
 * observe the stop flag without signals), and deadline-bounded
 * read/write primitives used by both the server sessions and the
 * in-process HTTP client. IPv4 loopback-oriented; everything returns
 * explicit status codes instead of blocking forever.
 */

#ifndef MACS_SERVER_NET_H
#define MACS_SERVER_NET_H

#include <cstddef>
#include <string>
#include <string_view>

namespace macs::server {

/** Result codes of the deadline-bounded I/O primitives. */
inline constexpr int kIoTimeout = -1;
inline constexpr int kIoError = -2;
inline constexpr int kIoEof = 0;

/** TCP listening socket (SO_REUSEADDR, port 0 = ephemeral). */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind + listen; fatal() on failure. With @p reuse_port the
     * socket is additionally bound with SO_REUSEPORT so several
     * processes can share one listen port and the kernel spreads
     * incoming connections across them (supervised multi-process
     * serving, docs/SERVER.md "Multi-process serving").
     */
    void open(const std::string &host, int port, int backlog = 128,
              bool reuse_port = false);

    /** The bound port (resolves port 0 after open()). */
    int boundPort() const { return port_; }

    /**
     * Wait up to @p timeout_ms for one connection.
     * @return a connected fd >= 0, kIoTimeout, or kIoError (also
     *         returned once the listener was closed).
     */
    int acceptFor(int timeout_ms);

    void close();

    bool isOpen() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    int port_ = 0;
};

/**
 * Connect to host:port with a bounded wait.
 * @return connected fd >= 0, or kIoError.
 */
int tcpConnect(const std::string &host, int port, int timeout_ms);

/**
 * Read up to @p len bytes, waiting at most @p timeout_ms for the fd
 * to become readable.
 * @return bytes read (> 0), kIoEof, kIoTimeout, or kIoError.
 */
int readWithDeadline(int fd, char *buf, size_t len, int timeout_ms);

/**
 * Write all of @p data, waiting at most @p timeout_ms overall
 * (SIGPIPE suppressed). @retval false on timeout or error.
 */
bool writeAll(int fd, std::string_view data, int timeout_ms);

/** Close @p fd (ignores invalid fds). */
void closeFd(int fd);

/**
 * Process-wide, idempotent signal(SIGPIPE, SIG_IGN). Socket sends
 * already pass MSG_NOSIGNAL, but plain write(2) — the supervised
 * worker's heartbeat pipe — has no such flag; a peer that disappears
 * mid-write must surface as EPIPE, never as a process-killing signal.
 */
void ignoreSigpipe();

} // namespace macs::server

#endif // MACS_SERVER_NET_H
