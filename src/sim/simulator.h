/**
 * @file
 * Cycle-level, functionally accurate simulator of one Convex C-240 CPU.
 *
 * Timing model (paper sections 2, 3.2, 3.3):
 *  - single-issue in-order instruction stream with hardware interlocks;
 *  - three vector pipes (load/store, add, multiply) that execute
 *    concurrently; a vector instruction on pipe P enters P no earlier
 *    than the previous P instruction's last element entered plus its
 *    tailgating bubble B (Table 1);
 *  - operand chaining: a dependent vector instruction's first element
 *    enters its pipe when the producer's first element result is
 *    available (enter >= producer.firstResult); its sustained rate is
 *    the max of its own Z and its chained producers' rates;
 *  - a vector instruction entering at cycle e with parameters (X,Y,Z)
 *    has firstResult = e + Y and complete = e + Y + Z*VL (equation 5);
 *  - vector register pair port limits (2 reads / 1 write per pair among
 *    concurrently streaming instructions) delay the violating
 *    instruction until a port frees;
 *  - scalar instructions issue in order and are normally masked under
 *    vector execution; scalar loads/stores contend for the single
 *    memory port with vector streams;
 *  - the banked memory limits non-unit strides and inserts refresh
 *    stalls (see MemoryPort).
 *
 * Functional model: scalar/address registers hold raw 64-bit values,
 * vector registers hold up to 128 doubles; all LFK kernels compute real
 * results that tests validate against reference implementations.
 */

#ifndef MACS_SIM_SIMULATOR_H
#define MACS_SIM_SIMULATOR_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.h"
#include "machine/machine_config.h"
#include "sim/memory_image.h"
#include "sim/memory_port.h"
#include "sim/profile.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace macs::sim {

/**
 * Execution tier (docs/SIMULATOR.md). Both tiers implement the same
 * timing and functional semantics and must produce bit-identical
 * RunStats, Timeline, and StallProfile output:
 *  - Reference: the original instruction-at-a-time interpreter, kept
 *    as the differential oracle;
 *  - Fast: the default. Predecodes the program once, keeps the
 *    in-flight stream set in fixed-capacity inline storage (zero heap
 *    allocation in the steady-state dispatch loop), services memory
 *    streams against a precomputed per-residue bank-busy schedule,
 *    and executes each chime's elements as one batched per-opcode
 *    kernel over bulk MemoryImage spans.
 */
enum class SimTier : uint8_t
{
    Reference,
    Fast,
};

/** Canonical tier name ("reference" / "fast"). */
const char *simTierName(SimTier tier);

/**
 * Parse a tier name; returns false (leaving @p out untouched) for
 * anything but "reference" or "fast".
 */
bool parseSimTier(const std::string &text, SimTier &out);

/** Options controlling one simulation. */
struct SimOptions
{
    /** Memory rate multiplier modeling multi-CPU contention (>= 1). */
    double memoryContentionFactor = 1.0;
    /** Dynamic instruction budget; exceeding it is fatal(). */
    uint64_t maxInstructions = 100'000'000;
    /** Record a Timeline of vector instruction events. */
    bool trace = false;
    /** Record per-instruction stall attribution (see sim/profile.h). */
    bool profile = false;
    /** Execution tier; results are bit-identical either way. */
    SimTier tier = SimTier::Fast;
    /**
     * Multi-CPU coupling seam (sim/mp/): when non-null every memory
     * port access is routed through this shared-memory proxy instead
     * of the simulator's private MemoryPort. Reference tier only
     * (asserted at construction) — the coupled engine needs the
     * per-access address stream the fast tier batches away. Not part
     * of fingerprint(): the mp driver memoizes at its own layer and
     * never feeds externally-ported runs into the single-CPU caches.
     */
    ExternalMemoryPort *externalPort = nullptr;
};

/**
 * Canonical text serialization of @p options for cache keying (the
 * batch pipeline memoizes analyses on program x machine x options).
 * Fields that change simulated cycle counts or recorded artifacts all
 * appear; two option sets with equal fingerprints yield identical runs.
 */
std::string fingerprint(const SimOptions &options);

/** One-CPU simulator. Construct, initialize memory, then run(). */
class Simulator
{
  public:
    Simulator(const machine::MachineConfig &config,
              const isa::Program &program, SimOptions options = {});
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Functional memory (initialize inputs before run()). */
    MemoryImage &memory() { return memory_; }
    const MemoryImage &memory() const { return memory_; }

    /** Set a scalar/address register before running. @{ */
    void setScalar(int index, double value);
    void setScalarRaw(int index, uint64_t raw);
    void setAddress(int index, int64_t value);
    /** @} */

    /** Read registers after running. @{ */
    double scalarAsDouble(int index) const;
    int64_t scalarAsInt(int index) const;
    int64_t address(int index) const;
    /** @} */

    /**
     * Execute from the first instruction until control falls off the
     * end of the program. May be called once per Simulator.
     */
    RunStats run();

    /** Timeline recorded during run() (empty unless options.trace). */
    const Timeline &timeline() const { return timeline_; }

    /** Stall profile from run() (empty unless options.profile). */
    const StallProfile &profile() const { return profile_; }

  private:
    struct Impl;

    RunStats runReference();
    RunStats runFast();
    /** Predecode the program for the fast tier (simulator_fast.cc). */
    void buildFastProgram(bool want_text);

    // Owned copy: callers may pass a temporary configuration.
    machine::MachineConfig config_;
    const isa::Program &program_;
    SimOptions options_;
    MemoryImage memory_;
    Timeline timeline_;
    StallProfile profile_;
    std::unique_ptr<Impl> impl_;
    bool ran_ = false;
};

} // namespace macs::sim

#endif // MACS_SIM_SIMULATOR_H
