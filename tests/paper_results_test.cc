/**
 * @file
 * Quantitative regression against the paper's published numbers
 * (Tables 3-5). Exact-arithmetic quantities (MA/MAC bounds, the LFK1
 * worked example) must match to printed precision; schedule-dependent
 * quantities (MACS) and simulated quantities (t_p) must match within
 * the documented tolerances — our fc-like compiler and simulator are
 * reconstructions, not the original hardware/compiler (see
 * EXPERIMENTS.md for the per-kernel discussion).
 */

#include <gtest/gtest.h>

#include <map>

#include "lfk/kernels.h"
#include "macs/hierarchy.h"
#include "macs/metrics.h"
#include "machine/machine_config.h"

namespace macs::model {
namespace {

const KernelAnalysis &
analysisFor(int id)
{
    static std::map<int, KernelAnalysis> cache;
    auto it = cache.find(id);
    if (it == cache.end()) {
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        lfk::Kernel k = lfk::makeKernel(id);
        it = cache.emplace(id, analyzeKernel(lfk::toKernelCase(k), cfg))
                 .first;
    }
    return it->second;
}

struct PaperRow
{
    int id;
    double maCpf;   // Table 4
    double macCpf;  // Table 4
    double macsCpf; // Table 4
    double tpCpf;   // Table 4 (measured on the real C-240)
    double macsTol; // |ours - paper| tolerance on MACS CPF
    double tpRatioLo; // ours/paper bounds for the simulated measurement
    double tpRatioHi;
};

class PaperTable4 : public ::testing::TestWithParam<PaperRow>
{
};

TEST_P(PaperTable4, MaBoundExact)
{
    const PaperRow &row = GetParam();
    EXPECT_NEAR(analysisFor(row.id).maCpf(), row.maCpf, 0.001);
}

TEST_P(PaperTable4, MacBoundExact)
{
    const PaperRow &row = GetParam();
    EXPECT_NEAR(analysisFor(row.id).macCpf(), row.macCpf, 0.001);
}

TEST_P(PaperTable4, MacsBoundWithinTolerance)
{
    const PaperRow &row = GetParam();
    EXPECT_NEAR(analysisFor(row.id).macsCpf(), row.macsCpf, row.macsTol);
}

TEST_P(PaperTable4, MeasuredCpfWithinBand)
{
    const PaperRow &row = GetParam();
    double ratio = analysisFor(row.id).actualCpf() / row.tpCpf;
    EXPECT_GE(ratio, row.tpRatioLo);
    EXPECT_LE(ratio, row.tpRatioHi);
}

// Tolerances: LFK 1/2/3/10/12 reproduce the paper's chime structure
// exactly; LFK 7/8/9 differ by about one chime (our list scheduler vs
// fc V6.1); LFK 4/6 involve the reduction special cases the paper
// explicitly leaves undocumented. t_p bands are wide where the paper's
// number is dominated by effects we model more cleanly than the loaded
// 1993 machine (LFK2's multi-exit outer loop, LFK6's scalar sweeps).
INSTANTIATE_TEST_SUITE_P(
    Rows, PaperTable4,
    ::testing::Values(
        PaperRow{1, 0.600, 0.800, 0.840, 0.852, 0.005, 0.90, 1.05},
        PaperRow{2, 1.250, 1.500, 1.566, 3.773, 0.005, 0.45, 1.10},
        PaperRow{3, 1.000, 1.000, 1.044, 1.128, 0.010, 0.85, 1.10},
        PaperRow{4, 1.000, 1.000, 1.226, 1.863, 0.350, 0.70, 1.20},
        PaperRow{6, 1.000, 1.000, 1.226, 2.632, 0.200, 0.60, 1.20},
        PaperRow{7, 0.500, 0.625, 0.656, 0.681, 0.080, 0.85, 1.25},
        PaperRow{8, 0.583, 0.583, 0.824, 0.858, 0.030, 0.85, 1.15},
        PaperRow{9, 0.647, 0.647, 0.679, 0.749, 0.080, 0.85, 1.20},
        PaperRow{10, 2.222, 2.222, 2.328, 2.442, 0.010, 0.90, 1.05},
        PaperRow{12, 2.000, 3.000, 3.132, 3.182, 0.005, 0.90, 1.05}),
    [](const auto &info) {
        return "LFK" + std::to_string(info.param.id);
    });

// ------------------------------------------------ Table 3 anchors (CPL)

TEST(PaperTable3, Lfk1Breakdown)
{
    const KernelAnalysis &a = analysisFor(1);
    EXPECT_DOUBLE_EQ(a.maBound.tF, 3.0);
    EXPECT_DOUBLE_EQ(a.maBound.tM, 3.0);
    EXPECT_DOUBLE_EQ(a.macBound.tM, 4.0);
    EXPECT_NEAR(a.macs.cpl, 4.20, 0.01);
    EXPECT_NEAR(a.macsFOnly.cpl, 3.04, 0.01);  // paper t_MACS^f
    EXPECT_NEAR(a.macsMOnly.cpl, 4.14, 0.03);  // paper t_MACS^m
}

TEST(PaperTable3, Lfk2Breakdown)
{
    const KernelAnalysis &a = analysisFor(2);
    EXPECT_DOUBLE_EQ(a.macBound.tM, 6.0);
    EXPECT_NEAR(a.macs.cpl, 6.26, 0.01);
    EXPECT_NEAR(a.macsFOnly.cpl, 2.03, 0.01);
    EXPECT_NEAR(a.macsMOnly.cpl, 6.22, 0.03);
}

TEST(PaperTable3, Lfk7Breakdown)
{
    const KernelAnalysis &a = analysisFor(7);
    EXPECT_DOUBLE_EQ(a.macBound.tF, 8.0);
    EXPECT_DOUBLE_EQ(a.macBound.tM, 10.0);
    EXPECT_NEAR(a.macsFOnly.cpl, 9.13, 0.05); // ninth FP chime
    EXPECT_NEAR(a.macsMOnly.cpl, 10.37, 0.05);
}

TEST(PaperTable3, Lfk8Breakdown)
{
    const KernelAnalysis &a = analysisFor(8);
    EXPECT_DOUBLE_EQ(a.macBound.tF, 21.0);
    EXPECT_DOUBLE_EQ(a.macBound.tM, 21.0);
    EXPECT_NEAR(a.macsFOnly.cpl, 21.28, 2.1);
    EXPECT_NEAR(a.macsMOnly.cpl, 21.85, 0.10);
    EXPECT_NEAR(a.macs.cpl, 30.15, 1.0);
}

TEST(PaperTable3, Lfk10And12Breakdown)
{
    const KernelAnalysis &a10 = analysisFor(10);
    EXPECT_NEAR(a10.macs.cpl, 20.95, 0.01);
    EXPECT_NEAR(a10.macsFOnly.cpl, 9.07, 0.01);
    EXPECT_NEAR(a10.macsMOnly.cpl, 20.88, 0.01);

    const KernelAnalysis &a12 = analysisFor(12);
    EXPECT_NEAR(a12.macs.cpl, 3.13, 0.01);
    EXPECT_NEAR(a12.macsFOnly.cpl, 1.01, 0.01);
    EXPECT_NEAR(a12.macsMOnly.cpl, 3.12, 0.01);
}

// ------------------------------------------------ Table 4 summary row

TEST(PaperTable4Summary, AverageCpfAndMflops)
{
    std::vector<double> ma, mac, macs, act;
    for (int id : lfk::lfkIds()) {
        const KernelAnalysis &a = analysisFor(id);
        ma.push_back(a.maCpf());
        mac.push_back(a.macCpf());
        macs.push_back(a.macsCpf());
        act.push_back(a.actualCpf());
    }
    // Paper: 1.080 / 1.238 / 1.352 / 1.900 CPF averages.
    EXPECT_NEAR(mean(ma), 1.080, 0.005);
    EXPECT_NEAR(mean(mac), 1.238, 0.005);
    EXPECT_NEAR(mean(macs), 1.352, 0.12);
    // Our simulated machine is cleaner than the loaded 1993 system;
    // the average sits between the MACS bound and the paper's 1.900.
    EXPECT_GT(mean(act), mean(macs));
    EXPECT_LT(mean(act), 2.0);

    // Paper HMEAN row: 23.15 / 20.19 / 17.79 / 13.16 MFLOPS.
    EXPECT_NEAR(hmeanMflops(ma, 25.0), 23.15, 0.15);
    EXPECT_NEAR(hmeanMflops(mac, 25.0), 20.19, 0.15);
    double measured = hmeanMflops(act, 25.0);
    EXPECT_GT(measured, 13.0);
    EXPECT_LT(measured, 19.0);
}

// ------------------------------------------------ Table 5 relationships

TEST(PaperTable5, AccessExecuteOrderingPerKernel)
{
    // Memory dominates this workload: the access-only run is the
    // larger of the pair except where reductions/scalar code dominate
    // the X side (paper flags LFK 4, 6, 8; our LFK7/9 X-process also
    // carries the long FP chain).
    for (int id : {1, 2, 3, 10, 12}) {
        const KernelAnalysis &a = analysisFor(id);
        EXPECT_GE(a.tA, a.tX) << "LFK" << id;
    }
    for (int id : {4, 6}) {
        const KernelAnalysis &a = analysisFor(id);
        EXPECT_GT(a.tX, a.tA * 0.8) << "LFK" << id;
    }
}

TEST(PaperTable5, Lfk1MeasurementsNearPaper)
{
    const KernelAnalysis &a = analysisFor(1);
    // Paper: t_p=4.26, t_A=4.20, t_X=3.13 CPL.
    EXPECT_NEAR(a.tP, 4.26, 0.10);
    EXPECT_NEAR(a.tA, 4.20, 0.10);
    EXPECT_NEAR(a.tX, 3.13, 0.10);
}

TEST(PaperTable5, Lfk8PoorOverlapSignature)
{
    // Paper: t_p (30.90) well above t_A ~ t_X (22.77 / 22.53).
    const KernelAnalysis &a = analysisFor(8);
    EXPECT_NEAR(a.tP, 30.90, 1.0);
    EXPECT_GT(a.tP, std::max(a.tA, a.tX) * 1.2);
}

} // namespace
} // namespace macs::model
