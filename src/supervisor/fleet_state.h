/**
 * @file
 * Shared fleet state of supervised multi-process serving
 * (docs/ROBUSTNESS.md, docs/SERVER.md "Multi-process serving").
 *
 * The supervisor and its SO_REUSEPORT worker processes share ONE page
 * of anonymous shared memory holding a FleetState: per-slot worker
 * status (pid, lifecycle state, restart/crash/hang counters) plus the
 * fleet roll-up (process count, degraded flag, drain flag). The
 * supervisor is the only WRITER; workers only read, when rendering
 * `/metrics` and `/healthz` — which is what lets a scrape of ANY
 * worker report fleet-wide state without inter-process RPC.
 *
 * Every field is a lock-free std::atomic so reads are safe against a
 * supervisor updating mid-scrape, and the struct is
 * placement-constructed into the mapping before the first fork, so
 * both sides agree on the layout by construction.
 */

#ifndef MACS_SUPERVISOR_FLEET_STATE_H
#define MACS_SUPERVISOR_FLEET_STATE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace macs::supervisor {

/** Upper bound on --processes (one shared page must hold the state). */
inline constexpr int kMaxWorkers = 64;

/** Lifecycle of one worker slot, as the supervisor sees it. */
enum class WorkerState : uint32_t
{
    Empty = 0,  ///< slot unused (index >= processes)
    Starting,   ///< forked, first heartbeat not yet seen
    Serving,    ///< heartbeating within the liveness deadline
    Backoff,    ///< died; restart scheduled after the backoff delay
    Abandoned,  ///< restart budget exhausted; slot is dead for good
    Draining,   ///< SIGTERM forwarded, waiting for a clean exit
    Drained,    ///< exited after drain
};

/** Canonical state name (metrics label / health field spelling). */
const char *workerStateName(WorkerState state);

/** One worker slot. Written by the supervisor, read by everyone. */
struct SlotState
{
    std::atomic<int32_t> pid{0};
    std::atomic<uint32_t> state{
        static_cast<uint32_t>(WorkerState::Empty)};
    /** Restarts = crashes + hangs that were answered with a re-fork. */
    std::atomic<uint32_t> restarts{0};
    /** Exits by signal or nonzero code outside a drain. */
    std::atomic<uint32_t> crashes{0};
    /** Missed-heartbeat kills (the watchdog SIGKILLed the worker). */
    std::atomic<uint32_t> hangs{0};
    /** Fork generation of this slot: 0 for the first worker. */
    std::atomic<uint32_t> incarnation{0};

    WorkerState workerState() const
    {
        return static_cast<WorkerState>(
            state.load(std::memory_order_acquire));
    }
};

/** The whole fleet: slots + roll-up flags. Lives in shared memory. */
struct FleetState
{
    std::atomic<uint32_t> processes{0};
    /** Set once a slot is Abandoned while others still serve. */
    std::atomic<uint32_t> degraded{0};
    /** Set when the rolling drain begins. */
    std::atomic<uint32_t> draining{0};
    SlotState slots[kMaxWorkers];

    /** Workers currently Starting or Serving. */
    uint32_t aliveCount() const;
    /** Sum of per-slot restart counters. */
    uint32_t totalRestarts() const;
    bool isDegraded() const
    {
        return degraded.load(std::memory_order_acquire) != 0;
    }
    bool isDraining() const
    {
        return draining.load(std::memory_order_acquire) != 0;
    }
};

/**
 * mmap(MAP_SHARED | MAP_ANONYMOUS) a FleetState and
 * placement-construct it. Call BEFORE the first fork so every worker
 * inherits the mapping. fatal() when the map cannot be created.
 */
FleetState *createSharedFleetState();

/** Destroy + munmap a state returned by createSharedFleetState(). */
void destroySharedFleetState(FleetState *state);

/**
 * Render the supervisor roll-up as Prometheus text — the
 * macs_supervisor_* series appended to a worker's `/metrics` body:
 * degraded/draining flags, process + alive counts, and per-worker
 * state/restart/crash/hang series labeled worker="<slot>". Slots are
 * emitted in index order so the bytes are deterministic for a given
 * state. @p self_slot adds macs_supervisor_self_worker (the slot of
 * the worker answering the scrape); pass -1 to omit it.
 */
std::string renderFleetMetrics(const FleetState &state, int self_slot);

/**
 * Render the fleet roll-up as the JSON fields a supervised worker
 * appends to its `/healthz` body (leading ", "): worker index,
 * process/alive counts, restart totals, degraded flag.
 */
std::string renderFleetHealthJson(const FleetState &state,
                                  int self_slot);

} // namespace macs::supervisor

#endif // MACS_SUPERVISOR_FLEET_STATE_H
