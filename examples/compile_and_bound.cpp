/**
 * @file
 * Compiler explorer: feed any DSL loop on the command line and see the
 * source analysis (MA workload, vectorizability), the generated
 * Convex-style assembly, the chime partition, and the bounds — the
 * goal-directed compiler feedback loop the paper's conclusion
 * envisions.
 *
 * Usage:
 *   compile_and_bound                       # built-in demo loops
 *   compile_and_bound 'DO k' 'x(k) = ...' 'END'   # your loop
 */

#include <cstdio>
#include <string>
#include <vector>

#include "compiler/analysis.h"
#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "macs/bounds.h"
#include "macs/macs_bound.h"
#include "machine/machine_config.h"
#include "support/logging.h"

namespace {

void
explore(const std::string &text)
{
    using namespace macs;

    std::printf("--------------------------------------------------\n");
    std::printf("loop:\n%s\n", text.c_str());

    compiler::Loop loop = compiler::parseLoop(text);
    compiler::SourceAnalysis sa = compiler::analyzeSource(loop);
    std::printf("MA workload : f_a=%d f_m=%d l=%d s=%d\n", sa.ma.fAdd,
                sa.ma.fMul, sa.ma.loads, sa.ma.stores);
    std::printf("MAC predict : f_a=%d f_m=%d l=%d s=%d\n", sa.mac.fAdd,
                sa.mac.fMul, sa.mac.loads, sa.mac.stores);
    if (!sa.vectorizable) {
        std::printf("NOT vectorizable: %s\n\n", sa.reason.c_str());
        return;
    }

    compiler::CompileOptions opt;
    opt.tripCount = 512;
    // Declare every referenced array generously for the demo.
    for (const char *name : {"x", "y", "z", "u", "v", "w", "p", "q2"})
        opt.arrays.push_back({name, 16384});
    compiler::CompileResult res = compiler::compile(loop, opt);

    std::printf("assembly (inner loop):\n");
    for (const auto &in : res.program.innerLoop())
        std::printf("    %s\n", in.toString().c_str());

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    auto body = res.program.innerLoop();
    model::MacsResult macs = model::evaluateMacs(body, cfg);
    std::printf("chimes:\n%s",
                model::renderChimes(body, macs.chimes).c_str());
    model::PipeBound ma = model::pipeBound(sa.ma);
    model::PipeBound mac = model::pipeBound(res.macCounts);
    std::printf("t_MA = %.0f CPL, t_MAC = %.0f CPL, t_MACS = %.3f CPL\n",
                ma.bound, mac.bound, macs.cpl);
    if (!res.inLoopScalars.empty()) {
        std::printf("note: %zu scalar(s) spilled to in-loop loads "
                    "(chime splits!)\n",
                    res.inLoopScalars.size());
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1) {
        std::string text;
        for (int i = 1; i < argc; ++i) {
            text += argv[i];
            text += '\n';
        }
        explore(text);
        return 0;
    }

    // Built-in demos: a stencil, a reduction, a strided gather, and a
    // non-vectorizable recurrence.
    explore("DO k\n x(k) = 0.25*(y(k) + 2.0*y(k+1) + y(k+2))\nEND");
    explore("DO k\n q2 = q2 + x(k)*y(k)\nEND");
    explore("DO k\n x(k) = p(25*k+4) / z(k)\nEND");
    explore("DO k\n x(k+1) = x(k)*y(k)\nEND");
    return 0;
}
