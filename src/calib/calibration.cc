#include "calib/calibration.h"

#include <array>

#include "sim/simulator.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace macs::calib {

using isa::Opcode;

const std::vector<Opcode> &
table1Opcodes()
{
    static const std::vector<Opcode> ops = {
        Opcode::VLd, Opcode::VSt,  Opcode::VAdd, Opcode::VMul,
        Opcode::VSub, Opcode::VDiv, Opcode::VSum, Opcode::VNeg,
    };
    return ops;
}

namespace {

/** Append one instance of the instruction under test. */
void
appendTestInstr(isa::Program &prog, Opcode op, int instance)
{
    using namespace isa;
    // Rotating destinations keep write-after-write interlocks from
    // serializing the pipe; v0/v1 are constant sources.
    static const std::array<int, 4> vdst = {2, 3, 6, 7};
    static const std::array<int, 4> sdst = {1, 2, 3, 4};
    int vd = vdst[static_cast<size_t>(instance) % vdst.size()];
    int sd = sdst[static_cast<size_t>(instance) % sdst.size()];
    static const std::array<int, 4> ldst = {2, 3, 6, 7};
    int ld = ldst[static_cast<size_t>(instance) % ldst.size()];

    switch (op) {
      case Opcode::VLd:
        prog.append(makeVLoad(MemRef{"cal_data", 0, areg(5)}, vreg(ld)));
        break;
      case Opcode::VSt:
        prog.append(makeVStore(
            vreg(0), MemRef{"cal_data", 1024 * (instance % 4), areg(5)}));
        break;
      case Opcode::VAdd:
        prog.append(
            makeVBinary(Opcode::VAdd, vreg(0), vreg(1), vreg(vd)));
        break;
      case Opcode::VSub:
        prog.append(
            makeVBinary(Opcode::VSub, vreg(0), vreg(1), vreg(vd)));
        break;
      case Opcode::VMul:
        prog.append(
            makeVBinary(Opcode::VMul, vreg(0), vreg(1), vreg(vd)));
        break;
      case Opcode::VDiv:
        prog.append(
            makeVBinary(Opcode::VDiv, vreg(0), vreg(1), vreg(vd)));
        break;
      case Opcode::VSum:
        prog.append(makeVSum(vreg(0), sreg(sd)));
        break;
      case Opcode::VNeg:
        prog.append(makeVNeg(vreg(0), vreg(vd)));
        break;
      default:
        fatal("opcode is not calibratable");
    }
}

double
runCycles(const isa::Program &prog, const machine::MachineConfig &config)
{
    sim::Simulator simulator(config, prog);
    return simulator.run().cycles;
}

} // namespace

isa::Program
makeCalibrationLoop(Opcode op, int vl, long iters, int unroll)
{
    MACS_ASSERT(vl >= 1 && vl <= isa::kMaxVectorLength,
                "bad calibration VL");
    MACS_ASSERT(iters >= 1, "need at least one iteration");

    using namespace isa;
    Program prog;
    prog.defineData("cal_data", 4096);
    prog.append(makeMovImm(vl, sreg(6)));
    prog.append(makeMov(sreg(6), vlreg()));
    prog.append(makeMovImm(iters, sreg(0)));
    prog.append(makeMovImm(0, areg(5)));
    // Source registers v0/v1 start as zeros; the divide's 0/0 NaNs are
    // functionally harmless and keep the startup fit free of priming
    // traffic.
    prog.label("L1");
    for (int i = 0; i < unroll; ++i)
        appendTestInstr(prog, op, i);
    prog.append(makeSSubImm(1, sreg(0)));
    prog.append(makeCmpImm(Opcode::SLt, 0, sreg(0)));
    prog.append(makeBranch(Opcode::BrT, "L1"));
    prog.validate();
    return prog;
}

CalibrationResult
calibrate(Opcode op, const machine::MachineConfig &config)
{
    constexpr int kUnroll = 4;
    constexpr long kItersHi = 64;
    constexpr long kItersLo = 32;
    const std::array<int, 4> vls = {32, 64, 96, 128};

    std::vector<double> xs, ys;
    for (int vl : vls) {
        double hi =
            runCycles(makeCalibrationLoop(op, vl, kItersHi, kUnroll),
                      config);
        double lo =
            runCycles(makeCalibrationLoop(op, vl, kItersLo, kUnroll),
                      config);
        double per_instr =
            (hi - lo) / static_cast<double>((kItersHi - kItersLo) *
                                            kUnroll);
        xs.push_back(vl);
        ys.push_back(per_instr);
    }
    LinearFit fit = fitLine(xs, ys);

    CalibrationResult res;
    res.op = op;
    res.zFit = fit.slope;
    res.bFit = fit.intercept;
    res.rss = fit.rss;

    // Startup X + Y: one instance at VL = 128 versus the empty loop.
    double with_instr =
        runCycles(makeCalibrationLoop(op, 128, 1, 1), config);
    double without =
        runCycles(makeCalibrationLoop(op, 128, 1, 0), config);
    res.startupFit = with_instr - without - res.zFit * 128.0;
    return res;
}

std::vector<CalibrationResult>
calibrateAll(const machine::MachineConfig &config)
{
    std::vector<CalibrationResult> out;
    for (Opcode op : table1Opcodes())
        out.push_back(calibrate(op, config));
    return out;
}

} // namespace macs::calib
