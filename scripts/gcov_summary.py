#!/usr/bin/env python3
"""Aggregate gcov JSON intermediate output into a line-coverage table.

Fallback used by scripts/coverage.sh when gcovr is not installed.
Walks a -DMACS_COVERAGE=ON build tree for .gcda note files, asks gcov
for the JSON intermediate format (stdout, one document per note file),
and unions executable/executed lines per source file across all test
binaries. Only files under src/ are reported.

Usage: gcov_summary.py <build-dir>
"""

import collections
import json
import os
import subprocess
import sys


def gcov_documents(build_dir):
    """Yield parsed gcov JSON documents for every .gcda in the tree."""
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if not name.endswith(".gcda"):
                continue
            proc = subprocess.run(
                ["gcov", "--stdout", "--json-format",
                 os.path.join(root, name)],
                capture_output=True,
                text=True,
                cwd=build_dir,
                check=False,
            )
            for line in proc.stdout.splitlines():
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <build-dir>")
    build_dir = os.path.abspath(sys.argv[1])
    repo_src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src"))

    # file -> line number -> hit (unioned across all test binaries).
    lines = collections.defaultdict(dict)
    for doc in gcov_documents(build_dir):
        for entry in doc.get("files", []):
            path = entry.get("file", "")
            if not os.path.isabs(path):
                path = os.path.normpath(os.path.join(build_dir, path))
            if not path.startswith(repo_src + os.sep):
                continue
            rel = os.path.relpath(path, repo_src)
            per_file = lines[rel]
            for ln in entry.get("lines", []):
                num = ln.get("line_number")
                hit = ln.get("count", 0) > 0
                per_file[num] = per_file.get(num, False) or hit

    if not lines:
        sys.exit("no coverage data found: was the build configured "
                 "with -DMACS_COVERAGE=ON and the test suite run?")

    by_dir = collections.defaultdict(lambda: [0, 0])  # total, hit
    grand_total = grand_hit = 0
    for rel, per_file in lines.items():
        directory = os.path.dirname(rel) or "."
        total = len(per_file)
        hit = sum(1 for h in per_file.values() if h)
        by_dir[directory][0] += total
        by_dir[directory][1] += hit
        grand_total += total
        grand_hit += hit

    print(f"{'directory':<16} {'lines':>7} {'covered':>8} {'%':>7}")
    print("-" * 41)
    for directory in sorted(by_dir):
        total, hit = by_dir[directory]
        pct = 100.0 * hit / total if total else 0.0
        print(f"{directory:<16} {total:>7} {hit:>8} {pct:>6.1f}%")
    print("-" * 41)
    pct = 100.0 * grand_hit / grand_total if grand_total else 0.0
    print(f"{'TOTAL':<16} {grand_total:>7} {grand_hit:>8} {pct:>6.1f}%")
    print(f"lines: {pct:.1f}% ({grand_hit} out of {grand_total})")


if __name__ == "__main__":
    main()
