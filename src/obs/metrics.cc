#include "obs/metrics.h"

#include <algorithm>

#include "support/logging.h"

namespace macs::obs {

// ---------------------------------------------------------------- Labels

Labels::Labels(
    std::initializer_list<std::pair<std::string, std::string>> kv)
{
    for (const auto &[k, v] : kv)
        set(k, v);
}

Labels &
Labels::set(const std::string &key, const std::string &value)
{
    MACS_ASSERT(!key.empty(), "label key must be non-empty");
    auto it = std::lower_bound(
        kv_.begin(), kv_.end(), key,
        [](const auto &pair, const std::string &k) {
            return pair.first < k;
        });
    if (it != kv_.end() && it->first == key)
        it->second = value;
    else
        kv_.insert(it, {key, value});
    return *this;
}

std::string
Labels::key() const
{
    std::string out;
    for (const auto &[k, v] : kv_) {
        if (!out.empty())
            out += ',';
        out += k;
        out += '=';
        out += v;
    }
    return out;
}

// ------------------------------------------------------- atomic helpers

namespace {

/** Lock-free add on an atomic double (CAS loop; C++20 fetch_add on
 *  floating atomics is not universally lock-free, so spell it out). */
void
atomicAdd(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
        // cur reloaded by compare_exchange_weak.
    }
}

} // namespace

// --------------------------------------------------------------- Counter

void
Counter::inc(double v)
{
    MACS_ASSERT(v >= 0.0, "counters only move forward (inc ", v, ")");
    atomicAdd(value_, v);
}

void
Gauge::add(double v)
{
    atomicAdd(value_, v);
}

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::span<const double> edges)
    : edges_(edges.begin(), edges.end()),
      buckets_(new std::atomic<uint64_t>[edges.size() + 1])
{
    MACS_ASSERT(!edges_.empty(), "histogram needs at least one edge");
    for (size_t i = 1; i < edges_.size(); ++i)
        MACS_ASSERT(edges_[i - 1] < edges_[i],
                    "histogram edges must be strictly ascending");
    for (size_t i = 0; i <= edges_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    // First bucket whose upper edge admits v (le semantics); the
    // overflow bucket catches everything beyond the last edge.
    size_t i = static_cast<size_t>(
        std::lower_bound(edges_.begin(), edges_.end(), v) -
        edges_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> out(edges_.size() + 1);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

// -------------------------------------------------------------- Registry

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

Registry::Family &
Registry::family(const std::string &name, const std::string &help,
                 MetricKind kind, std::span<const double> edges)
{
    MACS_ASSERT(!name.empty(), "metric name must be non-empty");
    auto [it, inserted] = families_.try_emplace(name);
    Family &fam = it->second;
    if (inserted) {
        fam.help = help;
        fam.kind = kind;
        fam.edges.assign(edges.begin(), edges.end());
        return fam;
    }
    if (fam.kind != kind)
        panic("metric '", name, "' re-registered as ",
              metricKindName(kind), ", was ", metricKindName(fam.kind));
    if (kind == MetricKind::Histogram &&
        !std::equal(fam.edges.begin(), fam.edges.end(), edges.begin(),
                    edges.end()))
        panic("histogram '", name,
              "' re-registered with different bucket edges");
    return fam;
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Family &fam = family(name, help, MetricKind::Counter, {});
    std::string key = labels.key();
    auto [it, inserted] = fam.counters.try_emplace(key);
    if (inserted) {
        it->second = std::make_unique<Counter>();
        fam.labels.emplace(key, labels);
    }
    return *it->second;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Family &fam = family(name, help, MetricKind::Gauge, {});
    std::string key = labels.key();
    auto [it, inserted] = fam.gauges.try_emplace(key);
    if (inserted) {
        it->second = std::make_unique<Gauge>();
        fam.labels.emplace(key, labels);
    }
    return *it->second;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    std::span<const double> edges, const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Family &fam = family(name, help, MetricKind::Histogram, edges);
    std::string key = labels.key();
    auto [it, inserted] = fam.histograms.try_emplace(key);
    if (inserted) {
        it->second = std::make_unique<Histogram>(fam.edges);
        fam.labels.emplace(key, labels);
    }
    return *it->second;
}

size_t
Registry::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto &[name, fam] : families_)
        n += fam.counters.size() + fam.gauges.size() +
             fam.histograms.size();
    return n;
}

std::vector<Sample>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Sample> out;
    // families_ and the per-family label maps are ordered: the result
    // is sorted by (name, label key) by construction.
    for (const auto &[name, fam] : families_) {
        auto base = [&](const std::string &key) {
            Sample s;
            s.name = name;
            s.help = fam.help;
            s.kind = fam.kind;
            s.labels = fam.labels.at(key);
            return s;
        };
        for (const auto &[key, c] : fam.counters) {
            Sample s = base(key);
            s.value = c->value();
            out.push_back(std::move(s));
        }
        for (const auto &[key, g] : fam.gauges) {
            Sample s = base(key);
            s.value = g->value();
            out.push_back(std::move(s));
        }
        for (const auto &[key, h] : fam.histograms) {
            Sample s = base(key);
            s.value = h->sum();
            s.bucketEdges = h->edges();
            s.bucketCounts = h->bucketCounts();
            s.observationCount = h->count();
            out.push_back(std::move(s));
        }
    }
    return out;
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

} // namespace macs::obs
