# Empty compiler generated dependencies file for macsd_test.
# This may be replaced when dependencies are built.
