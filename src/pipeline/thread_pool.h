/**
 * @file
 * Fixed-size worker thread pool used by the batch engine.
 *
 * Deliberately minimal: submit() enqueues a task, waitIdle() blocks
 * until every submitted task has finished. Tasks must not submit new
 * tasks from inside the pool (the engine never does); they may block on
 * futures fulfilled by other tasks, which is safe here because an
 * AnalysisCache owner fulfills its future inside its own task (see
 * cache.h).
 *
 * Workers are started eagerly in the constructor and joined in the
 * destructor, so a pool can serve many BatchEngine::run() calls
 * without re-spawning threads.
 */

#ifndef MACS_PIPELINE_THREAD_POOL_H
#define MACS_PIPELINE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace macs::pipeline {

class ThreadPool
{
  public:
    /** Start @p workers threads (clamped to >= 1). */
    explicit ThreadPool(size_t workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have run to completion. */
    void waitIdle();

    /**
     * Tasks submitted but not yet picked up by a worker. The analysis
     * server's admission control reads this as its queue depth.
     */
    size_t queuedTasks() const;

    /** Queued + currently executing tasks. */
    size_t inFlight() const;

    size_t workerCount() const { return threads_.size(); }

  private:
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable workReady_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    size_t inFlight_ = 0; ///< queued + currently executing
    bool shutdown_ = false;
    std::vector<std::thread> threads_;
};

} // namespace macs::pipeline

#endif // MACS_PIPELINE_THREAD_POOL_H
