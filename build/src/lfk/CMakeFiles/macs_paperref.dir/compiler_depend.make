# Empty compiler generated dependencies file for macs_paperref.
# This may be replaced when dependencies are built.
