/**
 * @file
 * Reproduces paper Table 2: the MA (source-level, perfect index
 * analysis) and MAC (compiled) workloads of the ten LFKs. MAC values
 * are counted from the assembly our fc-like compiler (or the
 * hand-assembled kernel) actually emits.
 */

#include <cstdio>

#include "bench_util.h"
#include "support/table.h"

int
main(int argc, char **argv)
{
    using namespace macs;
    bool csv = argc > 1 && std::string(argv[1]) == "--csv";
    using namespace macs::bench;

    std::printf("=== Table 2: LFK Workload (per inner-loop iteration) "
                "===\n\n");

    Table t({"LFK", "f_a", "f_m", "l", "s", "f_a'", "f_m'", "l'", "s'",
             "t_f", "t_f'", "t_m", "t_m'"});
    for (int id : lfk::lfkIds()) {
        const auto &a = allAnalyses().at(id);
        t.addRow({"LFK" + std::to_string(id), Table::num((long)a.ma.fAdd),
                  Table::num((long)a.ma.fMul), Table::num((long)a.ma.loads),
                  Table::num((long)a.ma.stores),
                  Table::num((long)a.mac.fAdd),
                  Table::num((long)a.mac.fMul),
                  Table::num((long)a.mac.loads),
                  Table::num((long)a.mac.stores),
                  Table::num((long)a.ma.tF()), Table::num((long)a.mac.tF()),
                  Table::num((long)a.ma.tM()),
                  Table::num((long)a.mac.tM())});
    }
    std::printf("%s\n", csv ? t.renderCsv().c_str() : t.render().c_str());

    std::printf(
        "Primed columns are the compiled (MAC) workload. The paper's\n"
        "Table 2 anchors reproduced here: extra loads for shifted reuse\n"
        "in LFK 1/2/7/12 (e.g. LFK1 l: 2 -> 3, LFK7 l: 3 -> 9), the\n"
        "LFK4 negate raising f_a' by one (the paper's Table 2 footnote),\n"
        "and unchanged counts for LFK 3/9/10.\n");
    return 0;
}
