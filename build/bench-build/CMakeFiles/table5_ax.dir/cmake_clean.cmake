file(REMOVE_RECURSE
  "../bench/table5_ax"
  "../bench/table5_ax.pdb"
  "CMakeFiles/table5_ax.dir/table5_ax.cc.o"
  "CMakeFiles/table5_ax.dir/table5_ax.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
