#include "support/hash.h"

namespace macs {

uint64_t
fnv1a64(std::string_view data)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint64_t
hashCombine(uint64_t seed, uint64_t next)
{
    // splitmix64-style finalization keeps the combiner well mixed even
    // when the inputs are similar.
    uint64_t x = seed + 0x9e3779b97f4a7c15ULL + next;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace macs
