file(REMOVE_RECURSE
  "CMakeFiles/macs_support.dir/logging.cc.o"
  "CMakeFiles/macs_support.dir/logging.cc.o.d"
  "CMakeFiles/macs_support.dir/math_util.cc.o"
  "CMakeFiles/macs_support.dir/math_util.cc.o.d"
  "CMakeFiles/macs_support.dir/strings.cc.o"
  "CMakeFiles/macs_support.dir/strings.cc.o.d"
  "CMakeFiles/macs_support.dir/table.cc.o"
  "CMakeFiles/macs_support.dir/table.cc.o.d"
  "libmacs_support.a"
  "libmacs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
