file(REMOVE_RECURSE
  "libmacs_paperref.a"
)
