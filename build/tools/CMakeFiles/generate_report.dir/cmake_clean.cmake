file(REMOVE_RECURSE
  "CMakeFiles/generate_report.dir/generate_report.cc.o"
  "CMakeFiles/generate_report.dir/generate_report.cc.o.d"
  "generate_report"
  "generate_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
