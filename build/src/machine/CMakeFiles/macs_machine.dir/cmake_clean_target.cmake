file(REMOVE_RECURSE
  "libmacs_machine.a"
)
