/**
 * @file
 * google-benchmark microbenchmarks of the library itself: simulator
 * throughput on the LFK workloads, chime partitioning, the MACS
 * evaluator, compilation, and the full hierarchy analysis.
 */

#include <benchmark/benchmark.h>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "isa/parser.h"
#include "lfk/kernels.h"
#include "macs/hierarchy.h"
#include "macs/macs_bound.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"

namespace {

using namespace macs;

void
BM_SimulateKernel(benchmark::State &state)
{
    int id = static_cast<int>(state.range(0));
    lfk::Kernel k = lfk::makeKernel(id);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    uint64_t instructions = 0;
    for (auto _ : state) {
        sim::Simulator s(cfg, k.program);
        k.setup(s);
        sim::RunStats st = s.run();
        instructions += st.instructions;
        benchmark::DoNotOptimize(st.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(instructions));
    state.SetLabel("simulated instructions/sec");
}
BENCHMARK(BM_SimulateKernel)->Arg(1)->Arg(2)->Arg(7)->Arg(8);

void
BM_ChimePartition(benchmark::State &state)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    auto body = p.innerLoop();
    machine::ChainingConfig rules;
    for (auto _ : state) {
        auto chimes = model::partitionChimes(body, rules);
        benchmark::DoNotOptimize(chimes.size());
    }
}
BENCHMARK(BM_ChimePartition);

void
BM_MacsBound(benchmark::State &state)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    auto body = p.innerLoop();
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    for (auto _ : state) {
        auto r = model::evaluateMacs(body, cfg);
        benchmark::DoNotOptimize(r.cpl);
    }
}
BENCHMARK(BM_MacsBound);

void
BM_CompileLfk1(benchmark::State &state)
{
    compiler::Loop loop = compiler::parseLoop(
        "DO k\n x(k) = q + y(k)*(r*zx(k+10) + t*zx(k+11))\nEND");
    compiler::CompileOptions opt;
    opt.tripCount = 990;
    opt.arrays = {{"x", 1024}, {"y", 1024}, {"zx", 1024}};
    for (auto _ : state) {
        auto res = compiler::compile(loop, opt);
        benchmark::DoNotOptimize(res.program.size());
    }
}
BENCHMARK(BM_CompileLfk1);

void
BM_FullHierarchyAnalysis(benchmark::State &state)
{
    lfk::Kernel k = lfk::makeKernel(3);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    for (auto _ : state) {
        auto a = model::analyzeKernel(lfk::toKernelCase(k), cfg);
        benchmark::DoNotOptimize(a.tP);
    }
}
BENCHMARK(BM_FullHierarchyAnalysis);

} // namespace

BENCHMARK_MAIN();
