/**
 * @file
 * MACS bound evaluator tests: the section 3.5 worked example (LFK1),
 * refresh-run accounting, slow-pipe overhang masking, and the reduced
 * f-only / m-only bounds.
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "lfk/kernels.h"
#include "macs/macs_bound.h"
#include "machine/machine_config.h"
#include "support/logging.h"

namespace macs::model {
namespace {

machine::MachineConfig
paperMachine()
{
    return machine::MachineConfig::convexC240();
}

MacsResult
evalText(const std::string &body, const machine::MachineConfig &cfg)
{
    static std::vector<isa::Program> keep;
    keep.push_back(isa::assemble(".comm x,1024\n.comm y,1024\n" + body));
    return evaluateMacs(keep.back().instrs(), cfg);
}

// ------------------------------------------------ section 3.5 worked example

TEST(MacsBound, Lfk1ChimeCostsMatchPaper)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    MacsResult r = evaluateMacs(p.innerLoop(), paperMachine());
    ASSERT_EQ(r.chimeCycles.size(), 4u);
    EXPECT_DOUBLE_EQ(r.chimeCycles[0], 131.0); // ld+mul
    EXPECT_DOUBLE_EQ(r.chimeCycles[1], 132.0); // ld+mul+add
    EXPECT_DOUBLE_EQ(r.chimeCycles[2], 132.0);
    EXPECT_DOUBLE_EQ(r.chimeCycles[3], 132.0); // st
    EXPECT_DOUBLE_EQ(r.rawCycles, 527.0);
    EXPECT_NEAR(r.cycles, 537.54, 0.01);
    EXPECT_NEAR(r.cpl, 4.1995, 0.001);
}

TEST(MacsBound, Lfk1ReducedBoundsMatchPaper)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    MacsResult f = evaluateMacsFOnly(p.innerLoop(), paperMachine());
    MacsResult m = evaluateMacsMOnly(p.innerLoop(), paperMachine());
    // Paper Table 5: t_MACS^f = 3.04, t_MACS^m = 4.14.
    EXPECT_NEAR(f.cpl, 3.04, 0.01);
    EXPECT_NEAR(m.cpl, 4.14, 0.03);
}

// ------------------------------------------------ refresh accounting

TEST(MacsBound, AllMemoryChimesGetRefreshPenalty)
{
    MacsResult r = evalText(R"(
    ld.l x(a5),v0
    ld.l y(a5),v1
)",
                            paperMachine());
    EXPECT_DOUBLE_EQ(r.rawCycles, 260.0);
    EXPECT_NEAR(r.cycles, 260.0 * 1.02, 1e-9);
}

TEST(MacsBound, ShortMemoryRunBelowThresholdUnpenalized)
{
    // Two memory chimes followed by two FP chimes: the cyclic run is
    // 2 chimes (~262 cycles) < 400-cycle threshold.
    MacsResult r = evalText(R"(
    ld.l x(a5),v0
    ld.l y(a5),v1
    add.d v0,v1,v2
    add.d v2,v1,v3
    add.d v3,v1,v4
)",
                            paperMachine());
    EXPECT_DOUBLE_EQ(r.cycles, r.rawCycles);
}

TEST(MacsBound, LongMemoryRunPenalized)
{
    // Four successive memory chimes and one FP chime: run of ~522
    // cycles exceeds the 400-cycle refresh period.
    MacsResult r = evalText(R"(
    ld.l x(a5),v0
    ld.l x+8(a5),v1
    ld.l y(a5),v2
    ld.l y+8(a5),v3
    add.d v0,v1,v4
    add.d v4,v2,v5
    add.d v5,v3,v6
    add.d v6,v0,v7
)",
                            paperMachine());
    EXPECT_GT(r.cycles, r.rawCycles);
    double penalized = 4 * 130.0 * 0.02;
    EXPECT_NEAR(r.cycles - r.rawCycles, penalized, 0.5);
}

TEST(MacsBound, RefreshDisabledConfigRemovesPenalty)
{
    machine::MachineConfig cfg = machine::MachineConfig::noRefresh();
    MacsResult r = evalText(R"(
    ld.l x(a5),v0
    ld.l y(a5),v1
)",
                            cfg);
    EXPECT_DOUBLE_EQ(r.cycles, r.rawCycles);
}

// ------------------------------------------------ slow-pipe overhang

TEST(MacsBound, ReductionOverhangMaskedByInterveningChimes)
{
    // LFK3 shape: [ld][ld, mul, sum]; the sum's extra 0.35*VL cycles
    // drain while the next iteration's load chime runs.
    MacsResult r = evalText(R"(
    ld.l x(a5),v0
    ld.l y(a5),v1
    mul.d v0,v1,v2
    sum.d v2,s1
)",
                            paperMachine());
    ASSERT_EQ(r.chimes.size(), 2u);
    // 130 + 131 = 261 raw; sum fully masked.
    EXPECT_DOUBLE_EQ(r.rawCycles, 261.0);
    EXPECT_NEAR(r.cpl, 261.0 * 1.02 / 128.0, 1e-6);
}

TEST(MacsBound, ReductionUnmaskedWhenPipeReusedImmediately)
{
    // FP-only variant: a single chime re-uses the add pipe every
    // iteration, so the full Z = 1.35 is charged (paper t_MACS^f for
    // LFK3 = 1.37).
    MacsResult r = evalText(R"(
    mul.d v0,v1,v2
    sum.d v2,s1
)",
                            paperMachine());
    ASSERT_EQ(r.chimes.size(), 1u);
    EXPECT_NEAR(r.cpl, 1.36, 0.015);
}

TEST(MacsBound, DivideDominatesLoneChime)
{
    MacsResult r = evalText(R"(
    div.d v0,v1,v2
)",
                            paperMachine());
    // Z = 4: 4*128 = 512 cycles (bubble folded into the gap).
    EXPECT_NEAR(r.cpl, 4.0 + 21.0 / 128.0, 0.01);
}

TEST(MacsBound, DivideMaskedByLongOtherWork)
{
    // Paper Table 1 note (a): divide's extended cycles may be masked
    // by other instructions when no resource conflict exists.
    MacsResult r = evalText(R"(
    div.d v0,v1,v2
    ld.l x(a5),v3
    ld.l x+8(a5),v4
    ld.l y(a5),v5
    ld.l y+8(a5),v6
)",
                            paperMachine());
    // 5 chimes; the divide overhang (3*128 = 384) fits under the four
    // load chimes (4*130 = 520 > 384).
    double unmasked_extra = 0.0;
    for (double c : r.chimeCycles)
        if (c > 200.0)
            unmasked_extra += c - 200.0;
    EXPECT_DOUBLE_EQ(unmasked_extra, 0.0);
}

// ------------------------------------------------ filters

TEST(MacsBound, StripVectorMemRemovesOnlyMemory)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    auto body = p.innerLoop();
    auto f = stripVectorMem(body);
    auto m = stripVectorFp(body);
    int mem = 0, fp = 0;
    for (const auto &in : f)
        if (in.isVectorMemory())
            ++mem;
    for (const auto &in : m)
        if (in.isVector() && !in.isVectorMemory())
            ++fp;
    EXPECT_EQ(mem, 0);
    EXPECT_EQ(fp, 0);
    // Scalar loop control retained by both.
    EXPECT_GT(f.size(), 5u);
    EXPECT_GT(m.size(), 4u);
}

TEST(MacsBound, EmptyBodyGivesZeroBound)
{
    std::vector<isa::Instruction> empty;
    MacsResult r = evaluateMacs(empty, paperMachine());
    EXPECT_DOUBLE_EQ(r.cpl, 0.0);
    EXPECT_TRUE(r.chimes.empty());
}

TEST(MacsBound, VectorLengthScalesCost)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    MacsResult r64 = evaluateMacs(p.innerLoop(), paperMachine(), 64);
    MacsResult r128 = evaluateMacs(p.innerLoop(), paperMachine(), 128);
    // Same bubbles, half the element time: CPL (per strip/VL) is
    // larger at VL = 64 because fixed costs amortize less.
    EXPECT_GT(r64.cpl, r128.cpl);
    EXPECT_LT(r64.cycles, r128.cycles);
}

TEST(MacsBound, InvalidVectorLengthPanics)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    EXPECT_THROW(evaluateMacs(p.innerLoop(), paperMachine(), 0),
                 PanicError);
}

} // namespace
} // namespace macs::model
