#include "obs/export.h"

#include <cmath>
#include <sstream>

#include "support/strings.h"

namespace macs::obs {

namespace {

/**
 * Deterministic number rendering: exact integer text for integral
 * values (counters are almost always integral), shortest-ish %.9g
 * otherwise. Purely a function of the double's value.
 */
std::string
numText(double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15)
        return format("%.0f", v);
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return format("%.9g", v);
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

namespace {

/** Prometheus label-value escaping: backslash, quote, newline. */
std::string
promEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
promLabels(const Labels &labels, const std::string &extra_key = "",
           const std::string &extra_value = "")
{
    std::string body;
    for (const auto &[k, v] : labels.pairs()) {
        if (!body.empty())
            body += ',';
        body += k + "=\"" + promEscape(v) + "\"";
    }
    if (!extra_key.empty()) {
        if (!body.empty())
            body += ',';
        body += extra_key + "=\"" + promEscape(extra_value) + "\"";
    }
    return body.empty() ? "" : "{" + body + "}";
}

} // namespace

std::string
renderJson(const std::vector<Sample> &samples)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"macs-metrics-v1\",\n  \"metrics\": [\n";
    for (size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        os << "    {\"name\": \"" << jsonEscape(s.name) << "\", "
           << "\"type\": \"" << metricKindName(s.kind) << "\", "
           << "\"help\": \"" << jsonEscape(s.help) << "\", "
           << "\"labels\": {";
        const auto &kv = s.labels.pairs();
        for (size_t j = 0; j < kv.size(); ++j) {
            os << "\"" << jsonEscape(kv[j].first) << "\": \""
               << jsonEscape(kv[j].second) << "\""
               << (j + 1 < kv.size() ? ", " : "");
        }
        os << "}, ";
        if (s.kind == MetricKind::Histogram) {
            os << "\"buckets\": [";
            uint64_t cumulative = 0;
            for (size_t b = 0; b < s.bucketCounts.size(); ++b) {
                cumulative += s.bucketCounts[b];
                std::string le = b < s.bucketEdges.size()
                                     ? numText(s.bucketEdges[b])
                                     : "\"+Inf\"";
                os << "{\"le\": " << le << ", \"count\": " << cumulative
                   << "}" << (b + 1 < s.bucketCounts.size() ? ", " : "");
            }
            os << "], \"sum\": " << numText(s.value)
               << ", \"count\": " << s.observationCount << "}";
        } else {
            os << "\"value\": " << numText(s.value) << "}";
        }
        os << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string
renderJson(const Registry &registry)
{
    return renderJson(registry.snapshot());
}

std::string
renderPrometheus(const std::vector<Sample> &samples)
{
    std::ostringstream os;
    std::string last_family;
    for (const Sample &s : samples) {
        if (s.name != last_family) {
            last_family = s.name;
            if (!s.help.empty())
                os << "# HELP " << s.name << " " << s.help << "\n";
            os << "# TYPE " << s.name << " "
               << metricKindName(s.kind) << "\n";
        }
        if (s.kind == MetricKind::Histogram) {
            uint64_t cumulative = 0;
            for (size_t b = 0; b < s.bucketCounts.size(); ++b) {
                cumulative += s.bucketCounts[b];
                std::string le = b < s.bucketEdges.size()
                                     ? numText(s.bucketEdges[b])
                                     : "+Inf";
                os << s.name << "_bucket"
                   << promLabels(s.labels, "le", le) << " " << cumulative
                   << "\n";
            }
            os << s.name << "_sum" << promLabels(s.labels) << " "
               << numText(s.value) << "\n";
            os << s.name << "_count" << promLabels(s.labels) << " "
               << s.observationCount << "\n";
        } else {
            os << s.name << promLabels(s.labels) << " "
               << numText(s.value) << "\n";
        }
    }
    return os.str();
}

std::string
renderPrometheus(const Registry &registry)
{
    return renderPrometheus(registry.snapshot());
}

} // namespace macs::obs
