/**
 * @file
 * Small, dependency-free content hashing for memoization keys.
 *
 * The batch pipeline (src/pipeline) keys its bounds cache on content
 * hashes of the assembled program text, the machine configuration
 * fingerprint, and the simulation options. FNV-1a is used because the
 * keys are short, the hash must be stable across runs and platforms
 * (unlike std::hash), and we additionally compare a collision-resistant
 * composite, so cryptographic strength is not required.
 */

#ifndef MACS_SUPPORT_HASH_H
#define MACS_SUPPORT_HASH_H

#include <cstdint>
#include <string_view>

namespace macs {

/** 64-bit FNV-1a of @p data. Stable across platforms and runs. */
uint64_t fnv1a64(std::string_view data);

/** Incrementally fold @p next into @p seed (boost-style combiner). */
uint64_t hashCombine(uint64_t seed, uint64_t next);

/** Hash the raw bytes of a trivially copyable value into @p seed. */
template <typename T>
uint64_t
hashValue(uint64_t seed, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "hashValue requires a trivially copyable type");
    const char *p = reinterpret_cast<const char *>(&value);
    return hashCombine(seed, fnv1a64(std::string_view(p, sizeof(T))));
}

} // namespace macs

#endif // MACS_SUPPORT_HASH_H
