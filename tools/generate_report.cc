/**
 * @file
 * generate_report — run the whole case study and write the markdown
 * reproduction record.
 *
 *   generate_report [output.md] [--variant baseline|no-bubbles|
 *                                no-refresh|no-chaining]
 *                   [--workers N]
 *
 * Defaults to paper_vs_measured.md on the baseline C-240. Non-baseline
 * variants omit the paper columns (the published numbers only apply to
 * the real machine). Kernels are analyzed through the batch pipeline
 * (src/pipeline) across --workers threads (default: hardware); the
 * report bytes are identical for any worker count.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "lfk/kernels.h"
#include "macs/report_md.h"
#include "machine/machine_config.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "support/logging.h"
#include "support/strings.h"

int
main(int argc, char **argv)
{
    using namespace macs;

    std::string out_path = "paper_vs_measured.md";
    std::string variant = "baseline";
    long workers = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--variant") == 0 && i + 1 < argc)
            variant = argv[++i];
        else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
            if (!parseInt(argv[++i], workers) || workers < 0)
                fatal("--workers expects a non-negative number");
        } else
            out_path = argv[i];
    }

    machine::MachineConfig cfg;
    if (variant == "baseline")
        cfg = machine::MachineConfig::convexC240();
    else if (variant == "no-bubbles")
        cfg = machine::MachineConfig::noBubbles();
    else if (variant == "no-refresh")
        cfg = machine::MachineConfig::noRefresh();
    else if (variant == "no-chaining")
        cfg = machine::MachineConfig::noChaining();
    else
        fatal("unknown variant '", variant, "'");

    // Analyze every kernel through the batch pipeline; submission
    // order matches lfk::lfkIds(), and results come back in that order
    // regardless of worker scheduling.
    pipeline::EngineOptions popt;
    popt.workers = static_cast<size_t>(workers);
    pipeline::BatchEngine engine(popt);
    pipeline::BatchResult batch =
        engine.run(pipeline::paperJobSet(cfg, variant));

    std::map<int, model::KernelAnalysis> analyses;
    for (size_t i = 0; i < batch.results.size(); ++i) {
        const pipeline::JobResult &r = batch.results[i];
        if (!r.ok())
            fatal("analysis of ", r.label, " failed: ", r.error);
        analyses.emplace(lfk::lfkIds()[i], *r.analysis);
        std::printf("analyzed %s\n", r.label.c_str());
    }
    std::printf("%s\n",
                pipeline::renderStatsLine(batch.stats).c_str());

    std::string report = model::renderMarkdownReport(
        analyses, cfg, variant == "baseline");
    std::ofstream out(out_path);
    if (!out)
        fatal("cannot write '", out_path, "'");
    out << report;
    std::printf("wrote %s (%zu bytes, variant %s)\n", out_path.c_str(),
                report.size(), variant.c_str());
    return 0;
}
