#!/usr/bin/env bash
# Server stage (docs/SERVER.md): boot `macs serve` on an ephemeral
# port and assert the serving contract end to end:
#   (a) /healthz answers ok, /metrics is valid Prometheus text with
#       the macs_server_* series next to the pipeline counters,
#   (b) one POST /v1/analyze body is byte-identical to the `macs
#       batch` CLI rendering of the same job,
#   (c) SIGTERM during an in-flight (deliberately slowed) batch
#       finishes the accepted work, flushes the checkpoint journal,
#       and exits 0 — graceful drain, no request silently dropped.
#
# No external curl: all HTTP goes through `macs http`, the in-process
# client (src/server/client.h).
#
# Usage: scripts/server_smoke.sh [path-to-macs]
set -euo pipefail

cd "$(dirname "$0")/.."
MACS=${1:-${MACS:-build/tools/macs}}
if [[ ! -x "$MACS" ]]; then
    echo "server: '$MACS' is not built (cmake --build build)" >&2
    exit 1
fi

tmp=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill -KILL "$SERVE_PID" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT
fail() { echo "server: FAIL: $*" >&2; exit 1; }

# start_serve ARGS... — boot `macs serve` on an ephemeral port in the
# background; sets SERVE_PID and PORT.
start_serve() {
    rm -f "$tmp/port"
    "$MACS" serve --host 127.0.0.1 --port 0 --port-file "$tmp/port" \
        --workers 2 "$@" >"$tmp/serve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$tmp/port" ]] && break
        kill -0 "$SERVE_PID" 2>/dev/null ||
            { sed 's/^/    /' "$tmp/serve.log" >&2
              fail "serve died before binding"; }
        sleep 0.1
    done
    [[ -s "$tmp/port" ]] || fail "serve never wrote the port file"
    PORT=$(cat "$tmp/port")
}

# stop_serve — SIGTERM, wait, assert exit 0 (graceful drain).
stop_serve() {
    kill -TERM "$SERVE_PID"
    local rc=0
    wait "$SERVE_PID" || rc=$?
    SERVE_PID=""
    (( rc == 0 )) || { sed 's/^/    /' "$tmp/serve.log" >&2
                       fail "serve exited $rc after SIGTERM"; }
    grep -q "drained cleanly" "$tmp/serve.log" ||
        fail "serve log lacks the clean-drain marker"
}

# http OUT ARGS... — `macs http`, body to $tmp/OUT, asserting a 2xx.
http() {
    local out="$1"; shift
    "$MACS" http "$@" --port "$PORT" --retry 5 \
        >"$tmp/$out" 2>"$tmp/$out.status" ||
        { cat "$tmp/$out.status" >&2; fail "$* did not return 2xx"; }
}

echo "== server: smoke (/healthz, /metrics, /v1/analyze) =="
start_serve
http health.json GET /healthz
grep -q '"status": "ok"' "$tmp/health.json" ||
    fail "/healthz is not ok: $(cat "$tmp/health.json")"
http analyze.json POST /v1/analyze --data '{"id": 1}'
"$MACS" batch 1 --json - >"$tmp/cli.json" 2>/dev/null
cmp -s "$tmp/analyze.json" "$tmp/cli.json" ||
    fail "/v1/analyze body differs from the CLI rendering"
echo "server: /v1/analyze byte-identical to 'macs batch 1'"
http metrics.txt GET /metrics
for series in macs_server_requests_total macs_server_inflight \
    macs_server_queue_depth macs_server_rejected_total \
    macs_pipeline_jobs_total; do
    grep -q "^# TYPE $series " "$tmp/metrics.txt" ||
        fail "/metrics lacks the $series series"
done
grep -q 'macs_server_requests_total{route="/v1/analyze",status="200"} 1' \
    "$tmp/metrics.txt" || fail "/metrics did not count the analyze hit"
stop_serve
echo "server: smoke ok (clean drain)"

echo "== server: SIGTERM during an in-flight batch =="
# Every compute is slowed 300 ms so the SIGTERM provably lands while
# the batch is executing; the checkpoint must still be flushed and the
# accepted response delivered.
start_serve --checkpoint "$tmp/srv.ckpt" \
    --faults compute-delay:1:9:300
"$MACS" http POST /v1/batch --data '{"ids": [1, 2, 3]}' \
    --port "$PORT" --timeout 30000 \
    >"$tmp/drain.json" 2>"$tmp/drain.status" &
CLIENT_PID=$!
sleep 0.4 # inside job 1's injected delay
stop_serve
wait "$CLIENT_PID" ||
    fail "in-flight batch was dropped by the drain"
grep -q '"schema": "macs-batch-v1"' "$tmp/drain.json" ||
    fail "drained batch response is not a batch report"
[[ -s "$tmp/srv.ckpt" ]] || fail "checkpoint journal was not flushed"
# The journal must resume every job the drained server computed.
"$MACS" batch 1,2,3 --json - --checkpoint "$tmp/srv.ckpt" \
    >/dev/null 2>"$tmp/resume.err"
grep -q "3 record(s) resumed" "$tmp/resume.err" ||
    fail "journal did not resume the drained batch"
echo "server: drain finished in-flight work and flushed the journal"

echo "== server: invalid flag values exit 1 (usage contract) =="
# --processes/--shards/--workers reject zero (where meaningless),
# negative, and non-numeric values through the same Diagnostics
# exit-code-1 path as every other invocation error.
expect_usage_error() {
    local what="$1"; shift
    local rc=0
    "$MACS" serve "$@" >/dev/null 2>"$tmp/usage.err" || rc=$?
    (( rc == 1 )) ||
        { sed 's/^/    /' "$tmp/usage.err" >&2
          fail "$what: exit code $rc, expected 1"; }
    echo "server: $what: rc=1 ok"
}
expect_usage_error "--processes 0"        --processes 0
expect_usage_error "--processes negative" --processes -3
expect_usage_error "--processes NaN"      --processes two
expect_usage_error "--processes huge"     --processes 100000
expect_usage_error "--shards negative"    --shards -1
expect_usage_error "--shards NaN"         --shards x
expect_usage_error "--workers negative"   --workers -2
expect_usage_error "--workers NaN"        --workers many
expect_usage_error "--liveness <= heartbeat" \
    --processes 2 --heartbeat-ms 200 --liveness-ms 100

echo "== server: supervised smoke (--processes 2) =="
# A 2-worker SO_REUSEPORT fleet: the port file appears only once both
# workers are serving; any worker's scrape reports fleet state; the
# analyze body stays byte-identical to the CLI; SIGTERM runs the
# rolling drain and exits 0.
start_serve --processes 2
http fleet_health.json GET /healthz
grep -q '"status": "ok"' "$tmp/fleet_health.json" ||
    fail "fleet /healthz is not ok: $(cat "$tmp/fleet_health.json")"
grep -q '"processes": 2' "$tmp/fleet_health.json" ||
    fail "fleet /healthz lacks the supervisor roll-up"
grep -q '"alive": 2' "$tmp/fleet_health.json" ||
    fail "fleet /healthz does not report both workers alive"
http fleet_analyze.json POST /v1/analyze --data '{"id": 1}'
cmp -s "$tmp/fleet_analyze.json" "$tmp/cli.json" ||
    fail "fleet /v1/analyze body differs from the CLI rendering"
http fleet_metrics.txt GET /metrics
grep -q '^macs_supervisor_processes 2' "$tmp/fleet_metrics.txt" ||
    fail "fleet /metrics lacks macs_supervisor_processes"
grep -q '^macs_supervisor_workers_alive 2' "$tmp/fleet_metrics.txt" ||
    fail "fleet /metrics lacks macs_supervisor_workers_alive"
grep -q '^macs_supervisor_degraded 0' "$tmp/fleet_metrics.txt" ||
    fail "fleet /metrics reports a degraded fleet"
grep -q 'macs_supervisor_worker_up{worker="1"} 1' \
    "$tmp/fleet_metrics.txt" ||
    fail "fleet /metrics lacks per-worker liveness labels"
stop_serve
grep -q "supervisor: rolling drain" "$tmp/serve.log" ||
    fail "fleet drain did not go through the rolling-drain path"
echo "server: supervised smoke ok (rolling drain clean)"

echo "server: all stages passed"
