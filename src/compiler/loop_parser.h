/**
 * @file
 * Parser for the Fortran-like loop DSL.
 *
 * Grammar (case-insensitive keywords, one statement per line):
 *
 *   loop    := "DO" var ["BY" int] stmt* "END"
 *   stmt    := ref "=" expr
 *   ref     := ident | ident "(" index ")"
 *   index   := [int "*"] var [("+"|"-") int]
 *   expr    := term (("+"|"-") term)*
 *   term    := unary (("*"|"/") unary)*
 *   unary   := "-" unary | primary
 *   primary := number | ref | "(" expr ")"
 *
 * An identifier used with parentheses is an array reference; without,
 * a loop-invariant scalar. The trip count is not part of the loop text
 * (it is a compile/run parameter).
 */

#ifndef MACS_COMPILER_LOOP_PARSER_H
#define MACS_COMPILER_LOOP_PARSER_H

#include <string_view>

#include "compiler/ast.h"
#include "support/diag.h"

namespace macs::compiler {

/**
 * Parse DSL text into a Loop, recovering at statement boundaries:
 * every syntax error is recorded in @p diags with line/column and a
 * source snippet (call diags.setSource() first to enable snippets),
 * and parsing continues on the next line. The returned Loop is
 * partial when diags.hasErrors(); callers must check before use.
 */
Loop parseLoop(std::string_view text, Diagnostics &diags);

/**
 * Convenience wrapper: parse and throw DiagnosticError (a FatalError
 * carrying ALL collected errors, not just the first) on any syntax
 * error.
 */
Loop parseLoop(std::string_view text);

} // namespace macs::compiler

#endif // MACS_COMPILER_LOOP_PARSER_H
