# Empty dependencies file for analyze_kernel.
# This may be replaced when dependencies are built.
