#include "server/poller.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include "support/logging.h"

namespace macs::server {

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

EventPoller::EventPoller(Backend backend) : backend_(backend)
{
#ifdef __linux__
    if (backend_ == Backend::Default) {
        epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
        if (epollFd_ < 0)
            fatal("epoll_create1(): ", std::strerror(errno));
    }
#else
    backend_ = Backend::Poll;
#endif
}

EventPoller::~EventPoller()
{
    if (epollFd_ >= 0)
        ::close(epollFd_);
}

const char *
EventPoller::backendName() const
{
    return epollFd_ >= 0 ? "epoll" : "poll";
}

#ifdef __linux__
namespace {

uint32_t
epollMask(bool want_write)
{
    uint32_t mask = EPOLLIN | EPOLLRDHUP | EPOLLET;
    if (want_write)
        mask |= EPOLLOUT;
    return mask;
}

} // namespace
#endif

bool
EventPoller::add(int fd, bool want_write, void *data)
{
    if (fd < 0)
        return false;
#ifdef __linux__
    if (epollFd_ >= 0) {
        epoll_event ev{};
        ev.events = epollMask(want_write);
        ev.data.ptr = data;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0)
            return false;
    }
#endif
    interest_[fd] = Interest{want_write, data};
    return true;
}

bool
EventPoller::mod(int fd, bool want_write, void *data)
{
    auto it = interest_.find(fd);
    if (it == interest_.end())
        return false;
#ifdef __linux__
    if (epollFd_ >= 0) {
        epoll_event ev{};
        ev.events = epollMask(want_write);
        ev.data.ptr = data;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev) != 0)
            return false;
    }
#endif
    it->second = Interest{want_write, data};
    return true;
}

void
EventPoller::del(int fd)
{
    auto it = interest_.find(fd);
    if (it == interest_.end())
        return;
#ifdef __linux__
    if (epollFd_ >= 0)
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
    interest_.erase(it);
}

int
EventPoller::wait(std::vector<PollEvent> &out, int timeout_ms)
{
    out.clear();
#ifdef __linux__
    if (epollFd_ >= 0) {
        epoll_event events[128];
        int n = ::epoll_wait(epollFd_, events, 128, timeout_ms);
        if (n < 0)
            return errno == EINTR ? 0 : -1;
        out.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            PollEvent e;
            e.data = events[i].data.ptr;
            e.readable = (events[i].events &
                          (EPOLLIN | EPOLLRDHUP | EPOLLPRI)) != 0;
            e.writable = (events[i].events & EPOLLOUT) != 0;
            e.error =
                (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
            out.push_back(e);
        }
        return n;
    }
#endif
    std::vector<pollfd> pfds;
    std::vector<void *> datas;
    pfds.reserve(interest_.size());
    datas.reserve(interest_.size());
    for (const auto &[fd, in] : interest_) {
        pollfd p{};
        p.fd = fd;
        p.events = POLLIN;
        if (in.wantWrite)
            p.events |= POLLOUT;
        pfds.push_back(p);
        datas.push_back(in.data);
    }
    int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0)
        return errno == EINTR ? 0 : -1;
    for (size_t i = 0; i < pfds.size(); ++i) {
        short re = pfds[i].revents;
        if (re == 0)
            continue;
        PollEvent e;
        e.data = datas[i];
        e.readable = (re & (POLLIN | POLLHUP | POLLPRI)) != 0;
        e.writable = (re & POLLOUT) != 0;
        e.error = (re & (POLLERR | POLLNVAL)) != 0;
        out.push_back(e);
    }
    return static_cast<int>(out.size());
}

Wakeup::Wakeup()
{
#ifdef __linux__
    int fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (fd >= 0) {
        readFd_ = writeFd_ = fd;
        return;
    }
#endif
    int fds[2];
    if (::pipe(fds) != 0)
        fatal("wakeup pipe(): ", std::strerror(errno));
    setNonBlocking(fds[0]);
    setNonBlocking(fds[1]);
    readFd_ = fds[0];
    writeFd_ = fds[1];
}

Wakeup::~Wakeup()
{
    if (readFd_ >= 0)
        ::close(readFd_);
    if (writeFd_ >= 0 && writeFd_ != readFd_)
        ::close(writeFd_);
}

void
Wakeup::notify()
{
    uint64_t one = 1;
    // A full pipe / EAGAIN is fine: the shard is already signalled.
    ssize_t ignored =
        ::write(writeFd_, &one,
                writeFd_ == readFd_ ? sizeof(one) : 1);
    (void)ignored;
}

void
Wakeup::drain()
{
    char buf[64];
    while (::read(readFd_, buf, sizeof(buf)) > 0) {
    }
}

} // namespace macs::server
