/**
 * @file
 * MACS-D data-decomposition study (the paper's proposed fifth degree
 * of freedom, implemented): for a strided stream sweep, compare the
 * plain MACS bound (blind to bank conflicts), the MACS-D bound (stride
 * bound by constant propagation, charged at the interleave-degraded
 * rate), and the simulated machine — then the classic padding fix.
 */

#include <cstdio>
#include <numeric>
#include <string>

#include "isa/parser.h"
#include "macs/macsd.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"
#include "support/table.h"

namespace {

using namespace macs;

isa::Program
strideProgram(int stride)
{
    std::string text = ".comm data,16384\n    mov #" +
                       std::to_string(stride) + ",s1\n" +
                       R"(
    mov #256,s0
    mov #0,a1
L1: mov s0,VL
    lds.l data(a1),s1,v0
    add.d v0,v0,v1
    sub #128,s0
    lt.w #0,s0
    jbrs.t L1
)";
    return isa::assemble(text);
}

} // namespace

int
main()
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();

    std::printf("=== MACS-D: binding the data decomposition "
                "(section 3.1's fifth degree of freedom) ===\n\n");
    std::printf("strided load + chained add, 256 elements, 32 banks, "
                "bank busy 8:\n\n");

    Table t({"stride (words)", "banks hit", "t_MACS (CPL)",
             "t_MACS-D (CPL)", "measured (CPL)", "D coverage"});
    for (int stride : {1, 2, 4, 5, 8, 16, 25, 31, 32, 33, 64}) {
        isa::Program p1 = strideProgram(stride);
        model::MacsResult plain =
            model::evaluateMacs(p1.innerLoop(), cfg);
        model::MacsDResult d = model::evaluateMacsD(p1, cfg);

        isa::Program p2 = strideProgram(stride);
        sim::Simulator s(cfg, p2);
        double measured = s.run().cycles / 256.0;

        int banks_hit = static_cast<int>(
            32 / std::gcd(32l, static_cast<long>(stride) % 32 == 0
                                   ? 32l
                                   : static_cast<long>(stride) % 32));
        t.addRow({Table::num((long)stride), Table::num((long)banks_hit),
                  Table::num(plain.cpl, 2), Table::num(d.macs.cpl, 2),
                  Table::num(measured, 2),
                  Table::num(100.0 * d.macs.cpl / measured, 1) + "%"});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf(
        "Plain MACS assumes one element per clock and explains under\n"
        "30%% of the run time at stride 32; MACS-D charges the\n"
        "bankBusy/banksHit rate and recovers >80%% everywhere. The\n"
        "stride 32 -> 33 rows are the classic leading-dimension padding\n"
        "fix, now a quantified decomposition decision rather than\n"
        "folklore.\n");
    return 0;
}
