/**
 * @file
 * `macs serve` — the concurrent analysis server (docs/SERVER.md).
 *
 * Architecture (CoreMode::Evented, the default): one acceptor thread
 * performs admission control and hands connections round-robin to a
 * small number of event-loop shards (event_loop.h) — epoll-based
 * readiness loops driving non-blocking per-connection state machines
 * (connection.h). Complete requests are dispatched to the compute
 * ThreadPool and responses posted back through a wakeup doorbell, so
 * thousands of idle keep-alive connections cost no threads.
 *
 * CoreMode::Threaded keeps the original thread-per-session core
 * (each session worker runs the blocking keep-alive HTTP/1.1 loop,
 * net.h deadline-bounded I/O). It is retained as the differential
 * baseline: tests replay the adversarial corpus through BOTH cores
 * and assert byte-identical replies, and the bench measures the
 * evented core's speedup against it. Either way, requests are
 * evaluated through the shared AnalysisService, whose LRU-bounded
 * cache and guarded compute are exactly the batch engine's.
 *
 * Admission control: when the pool's pending-session queue is at
 * queueCapacity, new connections receive a canned 503 with
 * Retry-After and are closed — requests are never silently dropped.
 *
 * Graceful drain: requestStop() (atomic, callable from a signal
 * handler's sibling thread) makes the acceptor stop accepting and the
 * sessions finish their in-flight request, answer with `Connection:
 * close`, and exit; drain() joins everything and is idempotent.
 *
 * Fault sites (docs/ROBUSTNESS.md): net-accept (reject an accepted
 * connection with 503), net-read (fail a parsed request with 503 +
 * Retry-After), net-write (cut the connection instead of writing the
 * response). All three leave the client with a retriable signal.
 *
 * Metrics (macs_server_*): requests_total{route,status}, inflight,
 * queue_depth, rejected_total{reason}, connections_total — scraped
 * live via GET /metrics alongside the pipeline/fault counters.
 */

#ifndef MACS_SERVER_SERVER_H
#define MACS_SERVER_SERVER_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "server/http.h"
#include "server/net.h"
#include "server/service.h"
#include "supervisor/fleet_state.h"

namespace macs::server {

class EventLoopCore;

/** Connection-handling core (see the file comment). */
enum class CoreMode
{
    /** Sharded event loop; idle connections cost no threads. */
    Evented,
    /** Legacy thread-per-session core (differential baseline). */
    Threaded,
};

/** Server construction options. */
struct ServerOptions
{
    std::string host = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port (see Server::port()). */
    int port = 0;
    /** Session workers; 0 means std::thread::hardware_concurrency(). */
    size_t workers = 0;
    /** Pending (accepted, unstarted) sessions before 503. */
    size_t queueCapacity = 64;
    /** Connection-handling core. */
    CoreMode core = CoreMode::Evented;
    /** Event-loop shards (Evented only); 0 means min(4, cores). */
    size_t shards = 0;
    /** Open-connection bound of the evented core before 503. */
    size_t maxConnections = 4096;
    /** Force the poll(2) poller backend (portability testing). */
    bool pollFallback = false;
    /** Per-request read deadline / keep-alive idle timeout (ms). */
    int requestTimeoutMs = 5000;
    /** Response write deadline (ms). */
    int writeTimeoutMs = 5000;
    /** Retry-After value of backpressure 503s (seconds). */
    int retryAfterSeconds = 1;
    /** Trip count of loop sources that do not specify one. */
    long defaultTrip = 512;
    /** Reported by GET /version alongside the schema list. */
    std::string versionString = "dev";
    /** HTTP parsing limits (431 / 413 beyond these). */
    RequestParser::Limits limits;
    /** Compute envelope of the shared AnalysisService. */
    ServiceOptions service;
    /** Injector of the net-* sites; nullptr means the global one. */
    const faults::FaultInjector *faults = nullptr;
    /** Registry of macs_server_*; nullptr means the global one. */
    obs::Registry *metrics = nullptr;
    /** Bind the listen port with SO_REUSEPORT (multi-process fleet). */
    bool reusePort = false;
    /** Slot index of this worker within a supervised fleet; -1 when
     *  serving single-process. */
    int workerIndex = -1;
    /**
     * Shared fleet state of a supervised run (read-only; the
     * supervisor writes it). When set, /metrics appends the
     * macs_supervisor_* roll-up and /healthz the fleet JSON fields,
     * so a scrape of ANY worker reports fleet-wide state. nullptr
     * when serving single-process.
     */
    const supervisor::FleetState *fleet = nullptr;
};

class Server
{
  public:
    explicit Server(ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and start the acceptor; fatal() on bind errors. */
    void start();

    /** The bound port (resolves an ephemeral request after start()). */
    int port() const { return listener_.boundPort(); }

    /** Begin drain: stop accepting, let sessions finish. Atomic. */
    void requestStop() { stop_.store(true, std::memory_order_release); }

    bool stopping() const
    {
        return stop_.load(std::memory_order_acquire);
    }

    /**
     * requestStop(), join the acceptor, wait for every session to
     * finish its in-flight request, reap deadline strays. Idempotent;
     * also called by the destructor.
     */
    void drain();

    /**
     * Route @p request and produce its response. Public so tests can
     * exercise the dispatch table without a socket; the session loop
     * calls exactly this.
     */
    HttpResponse handle(const HttpRequest &request);

    /** The shared compute core (test access to cache counters). */
    AnalysisService &service() { return service_; }

    /**
     * Internal surface used by the event-loop core (event_loop.cc)
     * and white-box tests; not part of the client API.
     * @{
     */
    const ServerOptions &options() const { return options_; }
    obs::Registry &metricsRegistry() const { return registry(); }
    const faults::FaultInjector &faultInjector() const
    {
        return injector();
    }
    pipeline::ThreadPool &computePool() { return *pool_; }
    void countRequest(const std::string &route, int status);
    /** Live connections owned by the evented core (0 if Threaded). */
    size_t connectionCount() const;
    /** @} */

  private:
    void acceptLoop();
    void runSession(int fd);
    void rejectConnection(int fd, const char *reason);
    bool deliverResponse(int fd, const HttpResponse &response,
                         bool keep_alive);

    HttpResponse handleHealth() const;
    HttpResponse handleMetrics() const;
    HttpResponse handleVersion() const;
    HttpResponse handleAnalyze(const HttpRequest &request);
    HttpResponse handleBatch(const HttpRequest &request);
    HttpResponse handleSweep(const HttpRequest &request);
    HttpResponse handleMultiCpu(const HttpRequest &request);

    obs::Registry &registry() const;
    const faults::FaultInjector &injector() const;

    ServerOptions options_;
    AnalysisService service_;
    /**
     * Memo cache for /v1/multicpu: mpCacheKey -> rendered body. The
     * body is deterministic (byte-identical for any worker count), so
     * caching whole responses is sound; the engine tier is part of
     * the key. Guarded by its own mutex — mp runs are rare and long,
     * and must not contend with the analysis cache.
     */
    std::mutex mpCacheMutex_;
    std::map<std::string, std::string> mpCache_;
    Listener listener_;
    std::unique_ptr<pipeline::ThreadPool> pool_;
    /** Declared after pool_: shards die before the pool they feed. */
    std::unique_ptr<EventLoopCore> core_;
    std::thread acceptor_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> started_{false};
    std::atomic<bool> drained_{false};
};

/** Bounded-cardinality route label of @p path for metrics. */
std::string routeLabel(const std::string &path);

/** Build an error response with an errorBody() payload. */
HttpResponse errorResponse(int status, const std::string &message,
                           const Diagnostics *diags = nullptr);

/**
 * Build the "macs-error-v1" JSON error body: status, message, and
 * (optionally) the structured diagnostics of a failed compile.
 */
std::string errorBody(int status, const std::string &message,
                      const Diagnostics *diags = nullptr);

} // namespace macs::server

#endif // MACS_SERVER_SERVER_H
