/**
 * @file
 * Tests for the scalar (ASU) floating point path: ISA dispatch,
 * simulator semantics and latency, the scalar-mode code generator, and
 * the vector/scalar speedup relationship.
 */

#include <gtest/gtest.h>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "isa/parser.h"
#include "lfk/kernels.h"
#include "macs/ax_transform.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"
#include "support/logging.h"

namespace macs {
namespace {

// ---------------------------------------------------------------- ISA

TEST(ScalarFpIsa, ParserDispatchesAllScalarArithmetic)
{
    isa::Program p = isa::assemble(R"(
    add.d s1,s2,s3
    sub.d s1,s2,s4
    mul.d s1,s2,s5
    div.d s1,s2,s6
    add.d v1,s2,v3
)");
    EXPECT_EQ(p.instrs()[0].op, isa::Opcode::SFAdd);
    EXPECT_EQ(p.instrs()[1].op, isa::Opcode::SFSub);
    EXPECT_EQ(p.instrs()[2].op, isa::Opcode::SFMul);
    EXPECT_EQ(p.instrs()[3].op, isa::Opcode::SFDiv);
    EXPECT_EQ(p.instrs()[4].op, isa::Opcode::VAdd);
}

TEST(ScalarFpIsa, Classification)
{
    EXPECT_TRUE(isa::isScalarFp(isa::Opcode::SFAdd));
    EXPECT_TRUE(isa::isScalarFp(isa::Opcode::SFDiv));
    EXPECT_FALSE(isa::isScalarFp(isa::Opcode::SAdd));
    EXPECT_FALSE(isa::isScalarFp(isa::Opcode::VAdd));
    EXPECT_FALSE(isa::isVectorOp(isa::Opcode::SFMul));
    EXPECT_FALSE(isa::isScalarMem(isa::Opcode::SFMul));
}

TEST(ScalarFpIsa, BuilderRejectsNonScalarOperands)
{
    EXPECT_THROW(isa::makeSFBinary(isa::Opcode::SFAdd, isa::vreg(0),
                                   isa::sreg(1), isa::sreg(2)),
                 PanicError);
    EXPECT_THROW(isa::makeSFBinary(isa::Opcode::VAdd, isa::sreg(0),
                                   isa::sreg(1), isa::sreg(2)),
                 PanicError);
}

TEST(ScalarFpIsa, PrintParseRoundTrip)
{
    isa::Program p1 = isa::assemble("add.d s1,s2,s3\n");
    isa::Program p2 = isa::assemble(p1.toString());
    EXPECT_EQ(p2.instrs()[0].op, isa::Opcode::SFAdd);
}

// ---------------------------------------------------------------- simulator

TEST(ScalarFpSim, ArithmeticSemantics)
{
    isa::Program p = isa::assemble(R"(
    add.d s0,s1,s2
    sub.d s0,s1,s3
    mul.d s0,s1,s4
    div.d s0,s1,s5
)");
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator s(cfg, p);
    s.setScalar(0, 6.0);
    s.setScalar(1, 1.5);
    s.run();
    EXPECT_DOUBLE_EQ(s.scalarAsDouble(2), 7.5);
    EXPECT_DOUBLE_EQ(s.scalarAsDouble(3), 4.5);
    EXPECT_DOUBLE_EQ(s.scalarAsDouble(4), 9.0);
    EXPECT_DOUBLE_EQ(s.scalarAsDouble(5), 4.0);
}

TEST(ScalarFpSim, DependenceChainPaysFpLatency)
{
    // Ten chained FP adds: >= 10 * fpLatency cycles.
    std::string text;
    for (int i = 0; i < 10; ++i)
        text += "add.d s0,s1,s1\n";
    isa::Program p = isa::assemble(text);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator s(cfg, p);
    s.setScalar(0, 1.0);
    s.setScalar(1, 0.0);
    double cycles = s.run().cycles;
    EXPECT_GE(cycles, 10.0 * cfg.scalar.fpLatency);
    EXPECT_DOUBLE_EQ(s.scalarAsDouble(1), 10.0);
}

TEST(ScalarFpSim, DivideSlowerThanAdd)
{
    auto run = [](const char *op) {
        std::string text;
        for (int i = 0; i < 8; ++i)
            text += std::string(op) + " s0,s1,s1\n";
        isa::Program p = isa::assemble(text);
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        sim::Simulator s(cfg, p);
        s.setScalar(0, 1.0);
        s.setScalar(1, 3.0);
        return s.run().cycles;
    };
    EXPECT_GT(run("div.d"), run("add.d") * 2);
}

TEST(ScalarFpSim, IndependentOpsOverlapInIssue)
{
    // Independent FP ops only occupy the issue slot.
    std::string text;
    for (int i = 0; i < 8; ++i)
        text += "mul.d s0,s1,s" + std::to_string(2 + i % 6) + "\n";
    isa::Program p = isa::assemble(text);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator s(cfg, p);
    double cycles = s.run().cycles;
    EXPECT_LT(cycles, 8.0 * cfg.scalar.fpLatency);
}

// ---------------------------------------------------------------- codegen

TEST(ScalarMode, CompilesRecurrences)
{
    compiler::CompileOptions opt;
    opt.tripCount = 100;
    opt.vectorize = false;
    opt.arrays = {{"x", 128}, {"y", 136}};
    compiler::CompileResult r = compiler::compile(
        compiler::parseLoop("DO k\n x(k+1) = x(k) + y(k+1)\nEND"), opt);
    for (const auto &in : r.program.instrs())
        EXPECT_FALSE(in.isVector()) << in.toString();
}

TEST(ScalarMode, VectorModeStillRejectsRecurrences)
{
    compiler::CompileOptions opt;
    opt.tripCount = 100;
    opt.arrays = {{"x", 128}, {"y", 136}};
    EXPECT_THROW(
        compiler::compile(
            compiler::parseLoop("DO k\n x(k+1) = x(k) + y(k+1)\nEND"),
            opt),
        FatalError);
}

TEST(ScalarMode, ComputesSameValuesAsVectorMode)
{
    const char *dsl = "DO k\n x(k) = q + y(k)*(r*zx(k+10) + t*zx(k+11))\nEND";
    auto build = [&](bool vec) {
        compiler::CompileOptions opt;
        opt.tripCount = 200;
        opt.vectorize = vec;
        opt.arrays = {{"x", 256}, {"y", 256}, {"zx", 256}};
        return compiler::compile(compiler::parseLoop(dsl), opt);
    };
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    auto rv = build(true);
    auto rs = build(false);
    sim::Simulator sv(cfg, rv.program), ss(cfg, rs.program);
    for (auto *s : {&sv, &ss}) {
        std::vector<double> y(256), zx(256);
        for (int i = 0; i < 256; ++i) {
            y[i] = 0.25 + 0.001 * i;
            zx[i] = 1.0 - 0.002 * i;
        }
        s->memory().fillDoubles("y", y);
        s->memory().fillDoubles("zx", zx);
        s->memory().fillDoubles("scalar_q", {1.5});
        s->memory().fillDoubles("scalar_r", {0.75});
        s->memory().fillDoubles("scalar_t", {0.35});
    }
    double vc = sv.run().cycles;
    double sc = ss.run().cycles;
    auto xv = sv.memory().readDoubles("x", 200);
    auto xs = ss.memory().readDoubles("x", 200);
    for (int i = 0; i < 200; ++i)
        ASSERT_DOUBLE_EQ(xv[i], xs[i]) << "i=" << i;
    // And vectorization must pay off substantially.
    EXPECT_GT(sc / vc, 4.0);
}

TEST(ScalarMode, ReductionAccumulatesInRegister)
{
    compiler::CompileOptions opt;
    opt.tripCount = 50;
    opt.vectorize = false;
    opt.arrays = {{"x", 64}, {"z", 64}};
    compiler::CompileResult r = compiler::compile(
        compiler::parseLoop("DO k\n q = q + z(k)*x(k)\nEND"), opt);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator s(cfg, r.program);
    std::vector<double> x(64, 2.0), z(64, 3.0);
    s.memory().fillDoubles("x", x);
    s.memory().fillDoubles("z", z);
    s.memory().fillDoubles("scalar_q", {10.0});
    s.run();
    double got = s.memory().readDoubles("scalar_q", 1)[0];
    EXPECT_DOUBLE_EQ(got, 10.0 + 50 * 6.0);
}

TEST(ScalarMode, SubtractionReduction)
{
    compiler::CompileOptions opt;
    opt.tripCount = 10;
    opt.vectorize = false;
    opt.arrays = {{"a", 16}, {"b", 16}};
    compiler::CompileResult r = compiler::compile(
        compiler::parseLoop("DO k\n t = t - a(k)*b(k)\nEND"), opt);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator s(cfg, r.program);
    s.memory().fillDoubles("a", std::vector<double>(16, 1.0));
    s.memory().fillDoubles("b", std::vector<double>(16, 2.0));
    s.memory().fillDoubles("scalar_t", {100.0});
    s.run();
    EXPECT_DOUBLE_EQ(s.memory().readDoubles("scalar_t", 1)[0], 80.0);
}

TEST(ScalarMode, DeepExpressionFitsRegisterFile)
{
    // LFK7's 16-flop expression compiles in scalar mode thanks to
    // Sethi-Ullman ordering.
    compiler::CompileOptions opt;
    opt.tripCount = 32;
    opt.vectorize = false;
    opt.arrays = {{"x", 64}, {"y", 64}, {"z", 64}, {"u", 64}};
    compiler::CompileResult r = compiler::compile(
        compiler::parseLoop(
            "DO k\n x(k) = u(k) + r*(z(k) + r*y(k))"
            " + t*(u(k+3) + r*(u(k+2) + r*u(k+1))"
            " + t*(u(k+6) + q*(u(k+5) + q*u(k+4))))\nEND"),
        opt);
    r.program.validate();
    SUCCEED();
}

// ---------------------------------------------------------------- unrolling

TEST(ScalarUnroll, UnrolledLoopComputesSameValues)
{
    const char *dsl = "DO k\n x(k) = y(k+1) - y(k)\nEND";
    auto run = [&](int unroll) {
        compiler::CompileOptions opt;
        opt.tripCount = 120;
        opt.vectorize = false;
        opt.unroll = unroll;
        opt.arrays = {{"x", 128}, {"y", 136}};
        auto res = compiler::compile(compiler::parseLoop(dsl), opt);
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        sim::Simulator s(cfg, res.program);
        std::vector<double> y(136);
        for (size_t i = 0; i < y.size(); ++i)
            y[i] = 0.125 * static_cast<double>((i * 13) % 29);
        s.memory().fillDoubles("y", y);
        double cycles = s.run().cycles;
        return std::make_pair(cycles, s.memory().readDoubles("x", 120));
    };
    auto [c1, x1] = run(1);
    auto [c4, x4] = run(4);
    for (int i = 0; i < 120; ++i)
        ASSERT_DOUBLE_EQ(x1[i], x4[i]) << "i=" << i;
    // The scalar list scheduler hoists the unrolled iterations' loads
    // ahead of their consumers, so independent iterations overlap in
    // the ASU pipelines and unrolling pays off substantially.
    EXPECT_LT(c4, c1 * 0.75);
}

TEST(ScalarUnroll, RecurrenceGainsNothing)
{
    const char *dsl = "DO k\n x(k+1) = x(k) + y(k+1)\nEND";
    auto run = [&](int unroll) {
        compiler::CompileOptions opt;
        opt.tripCount = 120;
        opt.vectorize = false;
        opt.unroll = unroll;
        opt.arrays = {{"x", 128}, {"y", 136}};
        auto res = compiler::compile(compiler::parseLoop(dsl), opt);
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        sim::Simulator s(cfg, res.program);
        s.memory().fillDoubles("x", std::vector<double>(128, 0.5));
        s.memory().fillDoubles("y", std::vector<double>(136, 0.25));
        return s.run().cycles;
    };
    double c1 = run(1);
    double c4 = run(4);
    // The store-to-load dependence chain remains the bottleneck: the
    // scheduler can hoist the independent y loads (and amortize loop
    // control), but the gain stays well below what independent
    // iterations achieve.
    EXPECT_GT(c4, c1 * 0.70);
}

TEST(ScalarUnroll, UnrolledReductionAccumulatesCorrectly)
{
    compiler::CompileOptions opt;
    opt.tripCount = 60;
    opt.vectorize = false;
    opt.unroll = 3;
    opt.arrays = {{"a", 64}};
    auto res = compiler::compile(
        compiler::parseLoop("DO k\n q = q + a(k)\nEND"), opt);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator s(cfg, res.program);
    s.memory().fillDoubles("a", std::vector<double>(64, 2.0));
    s.memory().fillDoubles("scalar_q", {1.0});
    s.run();
    EXPECT_DOUBLE_EQ(s.memory().readDoubles("scalar_q", 1)[0], 121.0);
}

TEST(ScalarUnroll, GuardsBadFactors)
{
    compiler::CompileOptions opt;
    opt.tripCount = 100;
    opt.vectorize = false;
    opt.unroll = 3; // 100 % 3 != 0
    opt.arrays = {{"x", 128}, {"y", 136}};
    EXPECT_THROW(compiler::compile(
                     compiler::parseLoop("DO k\n x(k) = y(k)\nEND"),
                     opt),
                 FatalError);
    opt.unroll = 4;
    opt.vectorize = true;
    EXPECT_THROW(compiler::compile(
                     compiler::parseLoop("DO k\n x(k) = y(k)\nEND"),
                     opt),
                 FatalError);
    opt.vectorize = false;
    opt.unroll = 0;
    EXPECT_THROW(compiler::compile(
                     compiler::parseLoop("DO k\n x(k) = y(k)\nEND"),
                     opt),
                 FatalError);
}

// ---------------------------------------------------------------- A/X

TEST(ScalarMode, ScalarFpSurvivesBothAxTransforms)
{
    // Paper section 4.4 (LFK 4/6): scalar code "is not removed from
    // either the X or A-process code".
    isa::Program p = isa::assemble(R"(
.comm x,256
    mov #64,s6
    mov s6,VL
    add.d s1,s2,s3
    ld.l x(a5),v0
    add.d v0,v0,v1
)");
    isa::Program a = model::makeAProcess(p);
    isa::Program x = model::makeXProcess(p);
    auto count_sfp = [](const isa::Program &prog) {
        int n = 0;
        for (const auto &in : prog.instrs())
            if (isa::isScalarFp(in.op))
                ++n;
        return n;
    };
    EXPECT_EQ(count_sfp(a), 1);
    EXPECT_EQ(count_sfp(x), 1);
}

} // namespace
} // namespace macs
