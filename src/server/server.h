/**
 * @file
 * `macs serve` — the concurrent analysis server (docs/SERVER.md).
 *
 * Architecture: one acceptor thread performs admission control and
 * hands connections to a pipeline::ThreadPool of session workers;
 * each session runs the keep-alive HTTP/1.1 loop (http.h parser,
 * net.h deadline-bounded I/O) and evaluates analysis requests inline
 * through the shared AnalysisService, whose LRU-bounded cache and
 * guarded compute are exactly the batch engine's.
 *
 * Admission control: when the pool's pending-session queue is at
 * queueCapacity, new connections receive a canned 503 with
 * Retry-After and are closed — requests are never silently dropped.
 *
 * Graceful drain: requestStop() (atomic, callable from a signal
 * handler's sibling thread) makes the acceptor stop accepting and the
 * sessions finish their in-flight request, answer with `Connection:
 * close`, and exit; drain() joins everything and is idempotent.
 *
 * Fault sites (docs/ROBUSTNESS.md): net-accept (reject an accepted
 * connection with 503), net-read (fail a parsed request with 503 +
 * Retry-After), net-write (cut the connection instead of writing the
 * response). All three leave the client with a retriable signal.
 *
 * Metrics (macs_server_*): requests_total{route,status}, inflight,
 * queue_depth, rejected_total{reason}, connections_total — scraped
 * live via GET /metrics alongside the pipeline/fault counters.
 */

#ifndef MACS_SERVER_SERVER_H
#define MACS_SERVER_SERVER_H

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "server/http.h"
#include "server/net.h"
#include "server/service.h"

namespace macs::server {

/** Server construction options. */
struct ServerOptions
{
    std::string host = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port (see Server::port()). */
    int port = 0;
    /** Session workers; 0 means std::thread::hardware_concurrency(). */
    size_t workers = 0;
    /** Pending (accepted, unstarted) sessions before 503. */
    size_t queueCapacity = 64;
    /** Per-request read deadline / keep-alive idle timeout (ms). */
    int requestTimeoutMs = 5000;
    /** Response write deadline (ms). */
    int writeTimeoutMs = 5000;
    /** Retry-After value of backpressure 503s (seconds). */
    int retryAfterSeconds = 1;
    /** Trip count of loop sources that do not specify one. */
    long defaultTrip = 512;
    /** Reported by GET /version alongside the schema list. */
    std::string versionString = "dev";
    /** HTTP parsing limits (431 / 413 beyond these). */
    RequestParser::Limits limits;
    /** Compute envelope of the shared AnalysisService. */
    ServiceOptions service;
    /** Injector of the net-* sites; nullptr means the global one. */
    const faults::FaultInjector *faults = nullptr;
    /** Registry of macs_server_*; nullptr means the global one. */
    obs::Registry *metrics = nullptr;
};

class Server
{
  public:
    explicit Server(ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and start the acceptor; fatal() on bind errors. */
    void start();

    /** The bound port (resolves an ephemeral request after start()). */
    int port() const { return listener_.boundPort(); }

    /** Begin drain: stop accepting, let sessions finish. Atomic. */
    void requestStop() { stop_.store(true, std::memory_order_release); }

    bool stopping() const
    {
        return stop_.load(std::memory_order_acquire);
    }

    /**
     * requestStop(), join the acceptor, wait for every session to
     * finish its in-flight request, reap deadline strays. Idempotent;
     * also called by the destructor.
     */
    void drain();

    /**
     * Route @p request and produce its response. Public so tests can
     * exercise the dispatch table without a socket; the session loop
     * calls exactly this.
     */
    HttpResponse handle(const HttpRequest &request);

    /** The shared compute core (test access to cache counters). */
    AnalysisService &service() { return service_; }

  private:
    void acceptLoop();
    void runSession(int fd);
    void rejectConnection(int fd, const char *reason);
    bool deliverResponse(int fd, const HttpResponse &response,
                         bool keep_alive);

    HttpResponse handleHealth() const;
    HttpResponse handleMetrics() const;
    HttpResponse handleVersion() const;
    HttpResponse handleAnalyze(const HttpRequest &request);
    HttpResponse handleBatch(const HttpRequest &request);

    obs::Registry &registry() const;
    const faults::FaultInjector &injector() const;
    void countRequest(const std::string &route, int status);

    ServerOptions options_;
    AnalysisService service_;
    Listener listener_;
    std::unique_ptr<pipeline::ThreadPool> pool_;
    std::thread acceptor_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> started_{false};
    std::atomic<bool> drained_{false};
};

/**
 * Build the "macs-error-v1" JSON error body: status, message, and
 * (optionally) the structured diagnostics of a failed compile.
 */
std::string errorBody(int status, const std::string &message,
                      const Diagnostics *diags = nullptr);

} // namespace macs::server

#endif // MACS_SERVER_SERVER_H
