/**
 * @file
 * Parser for the Fortran-like loop DSL.
 *
 * Grammar (case-insensitive keywords, one statement per line):
 *
 *   loop    := "DO" var ["BY" int] stmt* "END"
 *   stmt    := ref "=" expr
 *   ref     := ident | ident "(" index ")"
 *   index   := [int "*"] var [("+"|"-") int]
 *   expr    := term (("+"|"-") term)*
 *   term    := unary (("*"|"/") unary)*
 *   unary   := "-" unary | primary
 *   primary := number | ref | "(" expr ")"
 *
 * An identifier used with parentheses is an array reference; without,
 * a loop-invariant scalar. The trip count is not part of the loop text
 * (it is a compile/run parameter).
 */

#ifndef MACS_COMPILER_LOOP_PARSER_H
#define MACS_COMPILER_LOOP_PARSER_H

#include <string_view>

#include "compiler/ast.h"

namespace macs::compiler {

/** Parse DSL text into a Loop; fatal() on syntax errors. */
Loop parseLoop(std::string_view text);

} // namespace macs::compiler

#endif // MACS_COMPILER_LOOP_PARSER_H
