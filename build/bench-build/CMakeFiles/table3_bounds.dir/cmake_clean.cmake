file(REMOVE_RECURSE
  "../bench/table3_bounds"
  "../bench/table3_bounds.pdb"
  "CMakeFiles/table3_bounds.dir/table3_bounds.cc.o"
  "CMakeFiles/table3_bounds.dir/table3_bounds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
