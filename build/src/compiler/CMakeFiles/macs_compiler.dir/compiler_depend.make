# Empty compiler generated dependencies file for macs_compiler.
# This may be replaced when dependencies are built.
