# Empty dependencies file for macsd_decomposition.
# This may be replaced when dependencies are built.
