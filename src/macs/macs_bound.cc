#include "macs/macs_bound.h"

#include <algorithm>

#include "support/logging.h"

namespace macs::model {

namespace {

int
pipeSlot(isa::Pipe p)
{
    switch (p) {
      case isa::Pipe::LoadStore:
        return 0;
      case isa::Pipe::Add:
        return 1;
      case isa::Pipe::Multiply:
        return 2;
      case isa::Pipe::None:
        break;
    }
    panic("pipeSlot on scalar instruction");
}

} // namespace

MacsResult
evaluateMacs(std::span<const isa::Instruction> body,
             const machine::MachineConfig &config, int vector_length,
             const std::map<size_t, double> *z_override)
{
    MACS_ASSERT(vector_length > 0, "vector length must be positive");

    auto z_of = [&](size_t idx) {
        if (z_override) {
            auto it = z_override->find(idx);
            if (it != z_override->end())
                return it->second;
        }
        return config.timing(body[idx].op).z;
    };

    MacsResult res;
    res.vectorLength = vector_length;
    res.chimes = partitionChimes(body, config.chaining);
    if (res.chimes.empty())
        return res;

    const double vl = vector_length;
    const size_t n = res.chimes.size();

    // Base cost per chime: VL + sum of bubbles (equation 13 with Z=1;
    // Z>1 handled as pipe overhang below).
    std::vector<double> base(n, 0.0);
    for (size_t c = 0; c < n; ++c) {
        double bubbles = 0.0;
        for (size_t idx : res.chimes[c].instrs)
            bubbles += config.timing(body[idx].op).bubble;
        base[c] = vl + bubbles;
    }

    // Overhang of slow-pipe instructions (Z > 1): charged only where
    // the pipe is re-used (cyclically) before the overhang drains.
    std::vector<double> cost = base;
    for (size_t c = 0; c < n; ++c) {
        double chime_penalty = 0.0;
        for (size_t idx : res.chimes[c].instrs) {
            double z = z_of(idx);
            if (z <= 1.0)
                continue;
            int pipe = pipeSlot(body[idx].pipe());
            // Cycles until the next chime that uses this pipe begins,
            // measured from this chime's start: own base cost plus the
            // base costs of intervening chimes (wrapping; if no other
            // chime uses the pipe, the next user is this chime in the
            // next iteration).
            double gap = base[c];
            for (size_t k = 1; k < n; ++k) {
                size_t d = (c + k) % n;
                if (res.chimes[d].usesPipe[pipe])
                    break;
                gap += base[d];
            }
            // The pipe is occupied z*VL cycles and needs its bubble
            // before the next entry.
            double occupancy =
                z * vl + config.timing(body[idx].op).bubble;
            chime_penalty = std::max(chime_penalty, occupancy - gap);
        }
        cost[c] += std::max(0.0, chime_penalty);
    }

    res.chimeCycles = cost;
    for (double c : cost)
        res.rawCycles += c;

    // Refresh penalty on cyclic runs of memory chimes.
    double total = res.rawCycles;
    bool all_mem = std::all_of(res.chimes.begin(), res.chimes.end(),
                               [](const Chime &c) { return c.hasMemoryOp; });
    if (config.refreshPenaltyFactor > 1.0) {
        if (all_mem) {
            total *= config.refreshPenaltyFactor;
        } else {
            // Identify maximal cyclic runs of memory chimes. Start the
            // scan just after a non-memory chime so runs never wrap
            // past the scan origin.
            size_t origin = 0;
            while (origin < n && res.chimes[origin].hasMemoryOp)
                ++origin;
            MACS_ASSERT(origin < n, "non-memory chime must exist here");
            double penalty = 0.0;
            double run = 0.0;
            for (size_t k = 1; k <= n; ++k) {
                size_t d = (origin + k) % n;
                if (res.chimes[d].hasMemoryOp) {
                    run += cost[d];
                } else {
                    if (run >= config.refreshRunThresholdCycles)
                        penalty +=
                            run * (config.refreshPenaltyFactor - 1.0);
                    run = 0.0;
                }
            }
            if (run >= config.refreshRunThresholdCycles)
                penalty += run * (config.refreshPenaltyFactor - 1.0);
            total += penalty;
        }
    }

    res.cycles = total;
    res.cpl = total / vl;
    return res;
}

std::vector<isa::Instruction>
stripVectorMem(std::span<const isa::Instruction> body)
{
    std::vector<isa::Instruction> out;
    out.reserve(body.size());
    for (const auto &in : body)
        if (!in.isVectorMemory())
            out.push_back(in);
    return out;
}

std::vector<isa::Instruction>
stripVectorFp(std::span<const isa::Instruction> body)
{
    std::vector<isa::Instruction> out;
    out.reserve(body.size());
    for (const auto &in : body)
        if (!(in.isVector() && !in.isVectorMemory()))
            out.push_back(in);
    return out;
}

MacsResult
evaluateMacsFOnly(std::span<const isa::Instruction> body,
                  const machine::MachineConfig &config, int vector_length)
{
    auto filtered = stripVectorMem(body);
    return evaluateMacs(filtered, config, vector_length);
}

MacsResult
evaluateMacsMOnly(std::span<const isa::Instruction> body,
                  const machine::MachineConfig &config, int vector_length)
{
    auto filtered = stripVectorFp(body);
    return evaluateMacs(filtered, config, vector_length);
}

} // namespace macs::model
