/**
 * @file
 * Dependency-free HTTP/1.1 message layer of `macs serve`
 * (docs/SERVER.md): request parsing (incremental, bounded, keep-alive
 * aware, Content-Length and chunked bodies), response serialization,
 * and target/query decoding. Pure string processing — no sockets —
 * so the malformed-request corpus (tests/corpus/http/) can be
 * replayed deterministically without a network.
 *
 * Parsing limits are explicit and map to HTTP status codes instead of
 * unbounded buffering: oversized headers -> 431, oversized bodies ->
 * 413, a missing length on a body-bearing method -> 411, an
 * unsupported transfer coding -> 501, an unsupported protocol
 * version -> 505, anything else malformed -> 400.
 */

#ifndef MACS_SERVER_HTTP_H
#define MACS_SERVER_HTTP_H

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace macs::server {

/** One parsed request. Header names are lower-cased. */
struct HttpRequest
{
    std::string method;  ///< e.g. "GET", "POST"
    std::string target;  ///< raw request target (path + query)
    std::string path;    ///< decoded path component
    std::string version; ///< "HTTP/1.0" or "HTTP/1.1"
    std::vector<std::pair<std::string, std::string>> headers;
    std::map<std::string, std::string> query; ///< decoded key -> value
    std::string body;
    /** HTTP/1.1 default unless "Connection: close" (and vice versa). */
    bool keepAlive = true;

    /** Value of lower-case header @p name, or nullptr. */
    const std::string *header(const std::string &name) const;

    /** Query parameter @p key, or @p fallback. */
    std::string queryOr(const std::string &key,
                        const std::string &fallback) const;
};

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    /** Extra headers (e.g. Retry-After). */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
};

/** Canonical reason phrase of @p status ("OK", "Not Found", ...). */
const char *statusReason(int status);

/**
 * Serialize @p response as an HTTP/1.1 message with Content-Length
 * and an explicit `Connection: keep-alive` / `close` header. No Date
 * header: responses are byte-deterministic for identical content.
 */
std::string serializeResponse(const HttpResponse &response,
                              bool keep_alive);

/** Percent-decode @p s (plus '+' -> space). Invalid escapes pass through. */
std::string urlDecode(std::string_view s);

/**
 * Incremental request parser. feed() bytes as they arrive; when
 * complete(), take() moves the request out and the parser resumes on
 * any pipelined leftover bytes (keep-alive). On failed(), the
 * connection should be answered with errorStatus() and closed.
 */
/** Parsing bounds; exceeding them maps to 431 / 413. */
struct ParserLimits
{
    size_t maxHeaderBytes = 64 * 1024;
    size_t maxBodyBytes = 1 << 20;
};

class RequestParser
{
  public:
    using Limits = ParserLimits;

    explicit RequestParser(Limits limits = Limits())
        : limits_(limits)
    {
    }

    /** Append @p data and advance the state machine. */
    void feed(std::string_view data);

    bool complete() const { return state_ == State::Complete; }
    bool failed() const { return state_ == State::Error; }
    /** True while no byte of the CURRENT message has been seen. */
    bool idle() const
    {
        return state_ == State::Headers && buffer_.empty();
    }

    /**
     * True once the header block of the current message has been
     * consumed and body bytes are being collected. Drives the
     * READ_HEADERS / READ_BODY distinction of the connection state
     * machine (server/connection.h).
     */
    bool inBody() const
    {
        return state_ == State::Body || state_ == State::ChunkSize ||
               state_ == State::ChunkData ||
               state_ == State::ChunkTrailer;
    }

    /** HTTP status of the parse failure (400/411/413/431/501/505). */
    int errorStatus() const { return errorStatus_; }
    const std::string &errorDetail() const { return errorDetail_; }

    /**
     * Move the completed request out and reset for the next message
     * on the same connection (pipelined bytes are reprocessed).
     */
    HttpRequest take();

  private:
    enum class State
    {
        Headers,
        Body,
        ChunkSize,
        ChunkData,
        ChunkTrailer,
        Complete,
        Error,
    };

    void process();
    bool parseHeaderBlock(std::string_view block);
    void fail(int status, std::string detail);

    Limits limits_;
    State state_ = State::Headers;
    std::string buffer_;   ///< unconsumed input
    HttpRequest request_;  ///< being assembled
    size_t contentLength_ = 0;
    bool chunked_ = false;
    size_t chunkRemaining_ = 0;
    int errorStatus_ = 400;
    std::string errorDetail_;
};

} // namespace macs::server

#endif // MACS_SERVER_HTTP_H
