# Empty compiler generated dependencies file for macs_isa.
# This may be replaced when dependencies are built.
