#include "compiler/analysis.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <tuple>

#include "support/logging.h"
#include "support/strings.h"

namespace macs::compiler {

namespace {

/** An array reference key. */
struct RefKey
{
    std::string name;
    long coef;
    long offset;

    auto operator<=>(const RefKey &) const = default;
};

struct Collector
{
    int adds = 0;
    int muls = 0;
    std::set<RefKey> reads;
    std::set<std::string> scalars;

    void
    walk(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Number:
            return;
          case Expr::Kind::Scalar:
            scalars.insert(e.name);
            return;
          case Expr::Kind::Array:
            reads.insert({e.name, e.coef, e.offset});
            return;
          case Expr::Kind::Add:
          case Expr::Kind::Sub:
            ++adds;
            walk(*e.lhs);
            walk(*e.rhs);
            return;
          case Expr::Kind::Mul:
          case Expr::Kind::Div:
            ++muls;
            walk(*e.lhs);
            walk(*e.rhs);
            return;
          case Expr::Kind::Neg:
            ++adds; // executes on the add pipe
            walk(*e.lhs);
            return;
        }
        panic("unreachable expression kind");
    }
};

} // namespace

SourceAnalysis
analyzeSource(const Loop &loop)
{
    SourceAnalysis out;
    MACS_ASSERT(!loop.stmts.empty(), "loop has no statements");

    Collector c;
    std::set<RefKey> writes;
    std::set<std::pair<std::string, long>> writeStreams;
    std::set<std::string> reduction_scalars;

    // Reads that are *not* satisfied by a forward from an earlier
    // statement's write in the same iteration (these need loads).
    std::set<RefKey> live_in_reads;
    // Stream identity for perfect index analysis: references reuse the
    // same element stream across iterations only when their offsets
    // are congruent modulo the per-iteration index advance coef*stride
    // (e.g., X(k-1) and X(k+1) in a stride-2 loop share a stream while
    // X(k) does not).
    auto stream_of = [&](const RefKey &r) {
        long advance = r.coef * loop.stride;
        long residue = 0;
        if (advance != 0) {
            long m = std::abs(advance);
            residue = ((r.offset % m) + m) % m;
        } else {
            residue = r.offset; // loop-invariant element
        }
        return std::tuple<std::string, long, long>(r.name, r.coef,
                                                   residue);
    };
    std::set<std::tuple<std::string, long, long>> live_in_streams;

    for (const auto &s : loop.stmts) {
        Collector stmt_reads; // reads of this statement only
        if (s.arrayDst) {
            c.walk(*s.rhs);
            stmt_reads.walk(*s.rhs);
        } else if (const Expr *term = s.reductionTerm()) {
            // The accumulate itself is one add per iteration.
            ++c.adds;
            reduction_scalars.insert(s.dstName);
            c.walk(*term);
            stmt_reads.walk(*term);
        } else {
            out.vectorizable = false;
            out.reason = "scalar assignment '" + s.dstName +
                         "' is not a recognized sum reduction";
            c.walk(*s.rhs);
            stmt_reads.walk(*s.rhs);
        }
        // A read is forwarded only when an *earlier* statement wrote
        // the identical reference; the statement's own write happens
        // after its right-hand side is evaluated.
        for (const auto &r : stmt_reads.reads) {
            if (!writes.count(r)) {
                live_in_reads.insert(r);
                live_in_streams.insert(stream_of(r));
            }
        }
        if (s.arrayDst) {
            writes.insert({s.dstName, s.dstCoef, s.dstOffset});
            writeStreams.insert({s.dstName, s.dstCoef});
        }
    }

    // Loop-carried true dependence: a read of a stream the loop writes
    // at an earlier element (same direction as the iteration order).
    for (const auto &s : loop.stmts) {
        if (!s.arrayDst)
            continue;
        for (const auto &r : c.reads) {
            if (r.name != s.dstName || r.coef != s.dstCoef)
                continue;
            long direction = (s.dstCoef >= 0) == (loop.stride >= 0) ? 1
                                                                    : -1;
            long distance = (s.dstOffset - r.offset) * direction;
            if (distance > 0) {
                out.vectorizable = false;
                out.reason = format(
                    "loop-carried dependence on %s: element written %ld "
                    "iteration(s) before it is read",
                    s.dstName.c_str(), distance);
            }
        }
    }

    // FP operation counts are the same at MA and MAC level in this
    // workload (the compiler adds memory operations, not arithmetic).
    out.ma.fAdd = out.mac.fAdd = c.adds;
    out.ma.fMul = out.mac.fMul = c.muls;

    // MA loads: with perfect index analysis each live-in stream costs
    // one new element per iteration regardless of how many shifted
    // references it has.
    out.ma.loads = static_cast<int>(live_in_streams.size());
    // MAC loads: the compiler reloads each distinct live-in reference
    // (shifted reuse would need a vector shift or cross-iteration
    // register allocation it does not perform).
    out.mac.loads = static_cast<int>(live_in_reads.size());
    out.ma.stores = out.mac.stores = static_cast<int>(writes.size());

    out.reductionScalars.assign(reduction_scalars.begin(),
                                reduction_scalars.end());
    for (const auto &name : c.scalars)
        if (!reduction_scalars.count(name))
            out.broadcastScalars.push_back(name);
    return out;
}

} // namespace macs::compiler
