/**
 * @file
 * Markdown report generator tests.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "lfk/kernels.h"
#include "macs/report_md.h"
#include "machine/machine_config.h"

namespace macs::model {
namespace {

const std::map<int, KernelAnalysis> &
sampleAnalyses()
{
    static const std::map<int, KernelAnalysis> cache = [] {
        std::map<int, KernelAnalysis> out;
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        for (int id : {1, 12}) {
            lfk::Kernel k = lfk::makeKernel(id);
            out.emplace(id,
                        analyzeKernel(lfk::toKernelCase(k), cfg));
        }
        return out;
    }();
    return cache;
}

TEST(ReportMd, ContainsEverySection)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    std::string md = renderMarkdownReport(sampleAnalyses(), cfg);
    for (const char *needle :
         {"# MACS reproduction report", "## Workloads",
          "## Bounds in CPL", "## Bounds vs measured CPF",
          "## A/X measurements", "## Gap diagnosis", "### LFK1",
          "### LFK12"})
        EXPECT_NE(md.find(needle), std::string::npos) << needle;
}

TEST(ReportMd, PaperColumnsToggle)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    std::string with = renderMarkdownReport(sampleAnalyses(), cfg, true);
    std::string without =
        renderMarkdownReport(sampleAnalyses(), cfg, false);
    EXPECT_NE(with.find("paper t_p"), std::string::npos);
    EXPECT_EQ(without.find("paper t_p"), std::string::npos);
    EXPECT_LT(without.size(), with.size());
}

TEST(ReportMd, TablesAreWellFormedMarkdown)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    std::string md = renderMarkdownReport(sampleAnalyses(), cfg);
    // Every table row line starts and ends with a pipe.
    std::istringstream is(md);
    std::string line;
    int rows = 0;
    while (std::getline(is, line)) {
        if (!line.empty() && line.front() == '|') {
            EXPECT_EQ(line.back(), '|') << line;
            ++rows;
        }
    }
    EXPECT_GT(rows, 12);
}

TEST(ReportMd, ContainsKnownLfk1Numbers)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    std::string md = renderMarkdownReport(sampleAnalyses(), cfg);
    EXPECT_NE(md.find("0.840"), std::string::npos); // LFK1 t_MACS CPF
    EXPECT_NE(md.find("0.852"), std::string::npos); // paper t_p
}

} // namespace
} // namespace macs::model
