/**
 * @file
 * LFK kernels with irregular outer structure, hand-assembled in the
 * style the fc compiler produced: LFK 2 (ICCG halving passes), LFK 4
 * (banded linear equations), LFK 6 (triangular recurrence sweeps), and
 * LFK 10 (difference predictors with register-carried chains).
 *
 * Outer-loop state (pass lengths and base addresses) is table-driven:
 * the builders precompute per-pass tables into data symbols and the
 * assembly walks them with scalar loads, reproducing the real kernels'
 * outer-loop and scalar overhead.
 */

#include "lfk/kernels.h"

#include <cmath>

#include "lfk/data.h"
#include "support/logging.h"

namespace macs::lfk {

namespace {

using isa::areg;
using isa::makeBranch;
using isa::makeCmpImm;
using isa::makeMov;
using isa::makeMovImm;
using isa::makeSAddImm;
using isa::makeSLoad;
using isa::makeSStore;
using isa::makeSSubImm;
using isa::makeVBinary;
using isa::makeVLoad;
using isa::makeVLoadStrided;
using isa::makeVNeg;
using isa::makeVStore;
using isa::makeVStoreStrided;
using isa::makeVSum;
using isa::MemRef;
using isa::Opcode;
using isa::sreg;
using isa::vlreg;
using isa::vreg;

/** mem helper: sym+byte_offset(aN). */
MemRef
mem(const std::string &sym, long byte_offset, int a = -1)
{
    return MemRef{sym, byte_offset, a < 0 ? isa::noreg() : areg(a)};
}

/** Append the canonical strip-loop tail (advance, count, branch). */
void
stripTail(isa::Program &p, const std::string &label,
          const std::vector<std::pair<int, long>> &advances)
{
    for (auto [a, bytes] : advances)
        p.append(makeSAddImm(bytes, areg(a)));
    p.append(makeSSubImm(128, sreg(0)));
    p.append(makeCmpImm(Opcode::SLt, 0, sreg(0)));
    p.append(makeBranch(Opcode::BrT, label));
}

} // namespace

Kernel
makeLfk2()
{
    // ICCG excerpt: halving passes over x, stride-2 gathers, compacted
    // unit-stride result region.
    const long n = 101;

    struct Pass
    {
        long count;
        long k0; ///< 0-based first source index
        long i0; ///< 0-based first destination index
    };
    std::vector<Pass> passes;
    long ii = n, ipntp = 0;
    do {
        long ipnt = ipntp;
        ipntp += ii;
        ii /= 2;
        long count = (ipntp - (ipnt + 2)) / 2 + 1;
        passes.push_back({count, ipnt + 1, ipntp + 1});
    } while (ii > 1);

    long total_points = 0;
    for (const auto &p : passes)
        total_points += p.count;

    isa::Program prog;
    prog.defineData("x", 256);
    prog.defineData("zv", 256);
    size_t tab = passes.size() + 1;
    prog.defineData("passlen", tab);
    prog.defineData("passk", tab);
    prog.defineData("passi", tab);

    prog.append(makeMovImm(2, sreg(1))); // gather stride (words)
    prog.append(makeMovImm(0, areg(7)));
    prog.label("LP");
    prog.append(makeSLoad(mem("passlen", 0, 7), sreg(2)));
    prog.append(makeCmpImm(Opcode::SLt, 0, sreg(2)));
    prog.append(makeBranch(Opcode::BrF, "DONE"));
    prog.append(makeSLoad(mem("passk", 0, 7), areg(1)));
    prog.append(makeSLoad(mem("passi", 0, 7), areg(3)));
    prog.append(makeMov(sreg(2), sreg(0)));
    prog.label("LS");
    prog.append(makeMov(sreg(0), vlreg()));
    prog.append(makeVLoadStrided(mem("x", -8, 1), sreg(1), vreg(1)));
    prog.append(makeVLoadStrided(mem("zv", 0, 1), sreg(1), vreg(2)));
    prog.append(makeVBinary(Opcode::VMul, vreg(2), vreg(1), vreg(3)));
    prog.append(makeVLoadStrided(mem("x", 0, 1), sreg(1), vreg(0)));
    prog.append(makeVBinary(Opcode::VSub, vreg(0), vreg(3), vreg(4)));
    prog.append(makeVLoadStrided(mem("x", 8, 1), sreg(1), vreg(5)));
    prog.append(makeVLoadStrided(mem("zv", 8, 1), sreg(1), vreg(6)));
    prog.append(makeVBinary(Opcode::VMul, vreg(6), vreg(5), vreg(7)));
    prog.append(makeVBinary(Opcode::VSub, vreg(4), vreg(7), vreg(1)));
    prog.append(makeVStore(vreg(1), mem("x", 0, 3)));
    stripTail(prog, "LS", {{1, 2048}, {3, 1024}});
    prog.append(makeSAddImm(8, areg(7)));
    prog.append(makeBranch(Opcode::Jmp, "LP"));
    prog.label("DONE");
    prog.append(isa::Instruction{}); // nop
    prog.validate();

    Kernel k;
    k.id = 2;
    k.name = "LFK2";
    k.description = "ICCG: incomplete Cholesky conjugate gradient";
    k.sourceText =
        "do: ipnt=ipntp; ipntp=ipntp+ii; ii=ii/2; i=ipntp\n"
        "    DO k = ipnt+2, ipntp, 2\n"
        "      i = i+1\n"
        "      X(i) = X(k) - V(k)*X(k-1) - V(k+1)*X(k+1)\n"
        "while ii > 1";
    k.ma = {2, 2, 4, 1}; // 2 subs, 2 muls; 4 streams + compacted store
    k.flopsPerPoint = 4;
    k.points = total_points;
    k.program = std::move(prog);

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("x", testVector(256, 201, 0.2, 0.8));
        s.memory().fillDoubles("zv", testVector(256, 202, 0.1, 0.4));
        std::vector<int64_t> len, kb, ib;
        for (const auto &p : passes) {
            len.push_back(p.count);
            kb.push_back(p.k0 * 8);
            ib.push_back(p.i0 * 8);
        }
        len.push_back(0);
        kb.push_back(0);
        ib.push_back(0);
        s.memory().fillWords("passlen", len);
        s.memory().fillWords("passk", kb);
        s.memory().fillWords("passi", ib);
    };
    k.check = [=](const sim::Simulator &s) {
        auto x = testVector(256, 201, 0.2, 0.8);
        auto zv = testVector(256, 202, 0.1, 0.4);
        for (const auto &p : passes) {
            for (long j = 0; j < p.count; ++j) {
                long kk = p.k0 + 2 * j;
                x[p.i0 + j] = x[kk] - zv[kk] * x[kk - 1] -
                              zv[kk + 1] * x[kk + 1];
            }
        }
        return compareArray(s, "x", x);
    };
    return k;
}

Kernel
makeLfk4()
{
    // Banded linear equations: three bands, each a strided inner
    // product of length 200 folded into a scalar, then a single
    // element update via a VL=1 tail.
    const long n = 1001;
    const long band_len = 200;
    const long m = (n - 7) / 2; // 497
    const std::vector<long> band_k = {7, 7 + m, 7 + 2 * m}; // 1-based

    isa::Program prog;
    prog.defineData("x", 1024);
    prog.defineData("y", 1024);
    prog.defineData("xz", 1280);
    prog.defineData("bandlen", 4);
    prog.defineData("bandx", 4);
    prog.defineData("bandxz", 4);

    prog.append(makeMovImm(5, sreg(1))); // y stride (words)
    prog.append(makeMovImm(0, areg(7)));
    prog.label("LP");
    prog.append(makeSLoad(mem("bandlen", 0, 7), sreg(2)));
    prog.append(makeCmpImm(Opcode::SLt, 0, sreg(2)));
    prog.append(makeBranch(Opcode::BrF, "DONE"));
    prog.append(makeSLoad(mem("bandx", 0, 7), areg(4)));
    prog.append(makeSLoad(mem("bandxz", 0, 7), areg(1)));
    prog.append(makeMovImm(0, areg(2)));
    prog.append(makeSLoad(mem("x", 0, 4), sreg(3))); // temp = X(k-1)
    prog.append(makeMov(sreg(2), sreg(0)));
    prog.label("LS");
    prog.append(makeMov(sreg(0), vlreg()));
    prog.append(makeVLoad(mem("xz", 0, 1), vreg(0)));
    prog.append(makeVLoadStrided(mem("y", 32, 2), sreg(1), vreg(1)));
    prog.append(makeVBinary(Opcode::VMul, vreg(0), vreg(1), vreg(2)));
    prog.append(makeVNeg(vreg(2), vreg(3)));
    prog.append(makeVSum(vreg(3), sreg(3)));
    stripTail(prog, "LS", {{1, 1024}, {2, 5120}});
    // Tail: X(k-1) = Y(5) * temp, executed at VL = 1.
    prog.append(makeMovImm(1, sreg(4)));
    prog.append(makeMov(sreg(4), vlreg()));
    prog.append(makeVLoad(mem("y", 32), vreg(4)));
    prog.append(makeVBinary(Opcode::VMul, vreg(4), sreg(3), vreg(5)));
    prog.append(makeVStore(vreg(5), mem("x", 0, 4)));
    prog.append(makeSAddImm(8, areg(7)));
    prog.append(makeBranch(Opcode::Jmp, "LP"));
    prog.label("DONE");
    prog.append(isa::Instruction{});
    prog.validate();

    Kernel k;
    k.id = 4;
    k.name = "LFK4";
    k.description = "banded linear equations";
    k.sourceText =
        "DO k = 7, 1001, m\n"
        "  temp = X(k-1)\n"
        "  DO j = 5, n, 5:  temp = temp - XZ(lw)*Y(j); lw = lw+1\n"
        "  X(k-1) = Y(5)*temp";
    k.ma = {1, 1, 2, 0};
    k.flopsPerPoint = 2;
    k.points = band_len * static_cast<long>(band_k.size());
    k.program = std::move(prog);

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("x", testVector(1024, 401));
        s.memory().fillDoubles("y", testVector(1024, 402, 0.05, 0.15));
        s.memory().fillDoubles("xz", testVector(1280, 403, 0.05, 0.15));
        std::vector<int64_t> len, bx, bxz;
        for (long kf : band_k) {
            len.push_back(band_len);
            bx.push_back((kf - 2) * 8);  // X(k-1), 0-based k-2
            bxz.push_back((kf - 7) * 8); // XZ(lw0), 0-based k-7
        }
        len.push_back(0);
        bx.push_back(0);
        bxz.push_back(0);
        s.memory().fillWords("bandlen", len);
        s.memory().fillWords("bandx", bx);
        s.memory().fillWords("bandxz", bxz);
    };
    k.check = [=](const sim::Simulator &s) {
        auto x = testVector(1024, 401);
        auto y = testVector(1024, 402, 0.05, 0.15);
        auto xz = testVector(1280, 403, 0.05, 0.15);
        for (long kf : band_k) {
            double temp = x[kf - 2];
            // Strip-order accumulation matching VSum semantics.
            for (long base = 0; base < band_len; base += 128) {
                double partial = 0.0;
                long end = std::min(band_len, base + 128);
                for (long j = base; j < end; ++j)
                    partial += -(xz[kf - 7 + j] * y[4 + 5 * j]);
                temp += partial;
            }
            x[kf - 2] = y[4] * temp;
        }
        return compareArray(s, "x", x);
    };
    return k;
}

Kernel
makeLfk6()
{
    // General linear recurrence: w(i) += sum_k bt(i,k) * w(i-k) for
    // i = 2..n; bt rows are unit stride, the w gather runs backwards.
    const long n = 64;

    struct Pass
    {
        long len;
        long bt_base;  ///< byte base of bt row
        long w_src;    ///< byte base of w(i-1) (descending)
        long w_dst;    ///< byte address of w(i)
    };
    std::vector<Pass> passes;
    for (long i = 2; i <= n; ++i) {
        long i0 = i - 1; // 0-based target
        passes.push_back(
            {i - 1, i0 * n * 8, (i0 - 1) * 8, i0 * 8});
    }
    long total_points = (n - 1) * n / 2;

    isa::Program prog;
    prog.defineData("w", 64);
    prog.defineData("bt", static_cast<size_t>(n * n));
    size_t tab = passes.size() + 1;
    prog.defineData("plen", tab);
    prog.defineData("pbt", tab);
    prog.defineData("pw", tab);
    prog.defineData("pwt", tab);

    prog.append(makeMovImm(-1, sreg(1))); // backward gather stride
    prog.append(makeMovImm(0, areg(7)));
    prog.label("LP");
    prog.append(makeSLoad(mem("plen", 0, 7), sreg(2)));
    prog.append(makeCmpImm(Opcode::SLt, 0, sreg(2)));
    prog.append(makeBranch(Opcode::BrF, "DONE"));
    prog.append(makeSLoad(mem("pbt", 0, 7), areg(1)));
    prog.append(makeSLoad(mem("pw", 0, 7), areg(2)));
    prog.append(makeSLoad(mem("pwt", 0, 7), areg(4)));
    prog.append(makeSLoad(mem("w", 0, 4), sreg(3))); // acc = w(i)
    prog.append(makeMov(sreg(2), sreg(0)));
    prog.label("LS");
    prog.append(makeMov(sreg(0), vlreg()));
    prog.append(makeVLoad(mem("bt", 0, 1), vreg(0)));
    prog.append(makeVLoadStrided(mem("w", 0, 2), sreg(1), vreg(1)));
    prog.append(makeVBinary(Opcode::VMul, vreg(0), vreg(1), vreg(2)));
    prog.append(makeVSum(vreg(2), sreg(3)));
    stripTail(prog, "LS", {{1, 1024}, {2, -1024}});
    prog.append(makeSStore(sreg(3), mem("w", 0, 4)));
    prog.append(makeSAddImm(8, areg(7)));
    prog.append(makeBranch(Opcode::Jmp, "LP"));
    prog.label("DONE");
    prog.append(isa::Instruction{});
    prog.validate();

    Kernel k;
    k.id = 6;
    k.name = "LFK6";
    k.description = "general linear recurrence equations";
    k.sourceText =
        "DO i = 2, n\n"
        "  DO k = 1, i-1:  W(i) = W(i) + Bt(i,k)*W(i-k)";
    k.ma = {1, 1, 2, 0};
    k.flopsPerPoint = 2;
    k.points = total_points;
    k.program = std::move(prog);

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("w", testVector(64, 601));
        s.memory().fillDoubles("bt", testVector(static_cast<size_t>(n * n),
                                                602, 0.001, 0.015));
        std::vector<int64_t> len, bb, ws, wt;
        for (const auto &p : passes) {
            len.push_back(p.len);
            bb.push_back(p.bt_base);
            ws.push_back(p.w_src);
            wt.push_back(p.w_dst);
        }
        len.push_back(0);
        bb.push_back(0);
        ws.push_back(0);
        wt.push_back(0);
        s.memory().fillWords("plen", len);
        s.memory().fillWords("pbt", bb);
        s.memory().fillWords("pw", ws);
        s.memory().fillWords("pwt", wt);
    };
    k.check = [=](const sim::Simulator &s) {
        auto w = testVector(64, 601);
        auto bt = testVector(static_cast<size_t>(n * n), 602, 0.001,
                             0.015);
        for (long i = 2; i <= n; ++i) {
            long i0 = i - 1;
            double partial = 0.0;
            for (long kk = 1; kk <= i - 1; ++kk)
                partial += bt[i0 * n + (kk - 1)] * w[i0 - kk];
            w[i0] += partial;
        }
        return compareArray(s, "w", w);
    };
    return k;
}

Kernel
makeLfk10()
{
    // Difference predictors: a chain of nine first differences per
    // element, carried in vector registers; columns of px(25,101).
    const long n = 101;
    const long stride = 25;

    isa::Program prog;
    prog.defineData("px", 2560);
    prog.defineData("cx", 2560);

    prog.append(makeMovImm(stride, sreg(1)));
    prog.append(makeMovImm(n, sreg(0)));
    prog.append(makeMovImm(0, areg(5)));
    prog.label("L1");
    prog.append(makeMov(sreg(0), vlreg()));
    prog.append(makeVLoadStrided(mem("cx", 32, 5), sreg(1), vreg(0)));
    int prev = 0;
    for (int j = 0; j < 9; ++j) {
        int load = (2 * j + 1) % 8;
        int diff = (2 * j + 2) % 8;
        long off = 32 + 8 * j;
        prog.append(
            makeVLoadStrided(mem("px", off, 5), sreg(1), vreg(load)));
        prog.append(makeVBinary(Opcode::VSub, vreg(prev), vreg(load),
                                vreg(diff)));
        prog.append(
            makeVStoreStrided(vreg(prev), sreg(1), mem("px", off, 5)));
        prev = diff;
    }
    prog.append(
        makeVStoreStrided(vreg(prev), sreg(1), mem("px", 32 + 72, 5)));
    stripTail(prog, "L1", {{5, 128 * stride * 8}});
    prog.validate();

    Kernel k;
    k.id = 10;
    k.name = "LFK10";
    k.description = "difference predictors";
    k.sourceText =
        "ar = CX(5,i); br = ar - PX(5,i); PX(5,i) = ar\n"
        "cr = br - PX(6,i); PX(6,i) = br; ... PX(14,i) = (9th diff)";
    k.ma = {9, 0, 10, 10};
    k.flopsPerPoint = 9;
    k.points = n;
    k.program = std::move(prog);

    k.setup = [=](sim::Simulator &s) {
        s.memory().fillDoubles("px", testVector(2560, 1001));
        s.memory().fillDoubles("cx", testVector(2560, 1002));
    };
    k.check = [=](const sim::Simulator &s) {
        auto px = testVector(2560, 1001);
        auto cx = testVector(2560, 1002);
        for (long i = 0; i < n; ++i) {
            long base = stride * i;
            double prev_val = cx[base + 4];
            for (int j = 0; j < 9; ++j) {
                double diff = prev_val - px[base + 4 + j];
                px[base + 4 + j] = prev_val;
                prev_val = diff;
            }
            px[base + 13] = prev_val;
        }
        return compareArray(s, "px", px);
    };
    return k;
}

} // namespace macs::lfk
