file(REMOVE_RECURSE
  "CMakeFiles/macs_lfk.dir/data.cc.o"
  "CMakeFiles/macs_lfk.dir/data.cc.o.d"
  "CMakeFiles/macs_lfk.dir/kernels.cc.o"
  "CMakeFiles/macs_lfk.dir/kernels.cc.o.d"
  "CMakeFiles/macs_lfk.dir/kernels_dsl.cc.o"
  "CMakeFiles/macs_lfk.dir/kernels_dsl.cc.o.d"
  "CMakeFiles/macs_lfk.dir/kernels_hand.cc.o"
  "CMakeFiles/macs_lfk.dir/kernels_hand.cc.o.d"
  "libmacs_lfk.a"
  "libmacs_lfk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_lfk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
