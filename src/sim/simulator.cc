#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "sim/simulator_impl.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::sim {

const char *
simTierName(SimTier tier)
{
    return tier == SimTier::Reference ? "reference" : "fast";
}

bool
parseSimTier(const std::string &text, SimTier &out)
{
    if (text == "reference") {
        out = SimTier::Reference;
        return true;
    }
    if (text == "fast") {
        out = SimTier::Fast;
        return true;
    }
    return false;
}

std::string
fingerprint(const SimOptions &options)
{
    return format(
        "contention=%.17g maxinstr=%llu trace=%d profile=%d tier=%s",
        options.memoryContentionFactor,
        static_cast<unsigned long long>(options.maxInstructions),
        options.trace ? 1 : 0, options.profile ? 1 : 0,
        simTierName(options.tier));
}

using isa::Instruction;
using isa::Opcode;
using isa::Pipe;
using isa::Reg;
using isa::RegClass;
using machine::VectorTiming;

Simulator::Simulator(const machine::MachineConfig &config,
                     const isa::Program &program, SimOptions options)
    : config_(config),
      program_(program),
      options_(options),
      memory_(program),
      impl_(std::make_unique<Impl>())
{
    program_.validate();
    MACS_ASSERT(config_.maxVectorLength >= 1 &&
                    config_.maxVectorLength <= Impl::kMaxSimVl,
                "maxVectorLength out of simulator range");
    MACS_ASSERT(options_.externalPort == nullptr ||
                    options_.tier == SimTier::Reference,
                "externalPort requires the reference tier");
    impl_->vl = config_.maxVectorLength;
    impl_->initCache(config_.scalarCache);
    if (options_.tier == SimTier::Fast)
        buildFastProgram(options_.trace || options_.profile);
}

Simulator::~Simulator() = default;

void
Simulator::setScalar(int index, double value)
{
    MACS_ASSERT(index >= 0 && index < isa::kNumScalarRegs, "bad s reg");
    impl_->sRaw[index] = std::bit_cast<uint64_t>(value);
}

void
Simulator::setScalarRaw(int index, uint64_t raw)
{
    MACS_ASSERT(index >= 0 && index < isa::kNumScalarRegs, "bad s reg");
    impl_->sRaw[index] = raw;
}

void
Simulator::setAddress(int index, int64_t value)
{
    MACS_ASSERT(index >= 0 && index < isa::kNumAddressRegs, "bad a reg");
    impl_->aVal[index] = value;
}

double
Simulator::scalarAsDouble(int index) const
{
    MACS_ASSERT(index >= 0 && index < isa::kNumScalarRegs, "bad s reg");
    return std::bit_cast<double>(impl_->sRaw[index]);
}

int64_t
Simulator::scalarAsInt(int index) const
{
    MACS_ASSERT(index >= 0 && index < isa::kNumScalarRegs, "bad s reg");
    return static_cast<int64_t>(impl_->sRaw[index]);
}

int64_t
Simulator::address(int index) const
{
    MACS_ASSERT(index >= 0 && index < isa::kNumAddressRegs, "bad a reg");
    return impl_->aVal[index];
}

RunStats
Simulator::run()
{
    MACS_ASSERT(!ran_, "Simulator::run() may be called only once");
    ran_ = true;
    return options_.tier == SimTier::Fast ? runFast() : runReference();
}

/**
 * The reference tier: the original instruction-at-a-time interpreter,
 * kept verbatim as the differential oracle for the fast tier
 * (simulator_fast.cc, docs/SIMULATOR.md). Changes here MUST be
 * mirrored there — tests/sim_differential_test.cc holds both to
 * bit-identical output.
 */
RunStats
Simulator::runReference()
{
    Impl &st = *impl_;
    const auto &instrs = program_.instrs();
    MemoryPort port(config_.memory, options_.memoryContentionFactor);
    // Multi-CPU coupling seam: when set, every memory-port access is
    // routed through the shared memory system instead of the private
    // port above (sim/mp/shared_memory.h). With no foreign CPUs the
    // external port's arithmetic is bit-identical to MemoryPort's, so
    // this branch cannot perturb single-CPU results.
    ExternalMemoryPort *xport = options_.externalPort;
    auto strideRateOf = [&](int64_t stride_words) {
        return xport ? xport->strideRate(stride_words)
                     : port.strideRate(stride_words);
    };
    RunStats stats;

    // --- helpers --------------------------------------------------------

    auto readyAt = [&](const Reg &r) -> double {
        switch (r.cls) {
          case RegClass::Scalar:
            return st.sReady[r.index];
          case RegClass::Address:
            return st.aReady[r.index];
          case RegClass::Vl:
            return st.vlReadyAt;
          default:
            return 0.0;
        }
    };

    auto rawOf = [&](const Reg &r) -> uint64_t {
        switch (r.cls) {
          case RegClass::Scalar:
            return st.sRaw[r.index];
          case RegClass::Address:
            return static_cast<uint64_t>(st.aVal[r.index]);
          case RegClass::Vl:
            return static_cast<uint64_t>(st.vl);
          default:
            panic("rawOf on invalid register");
        }
    };

    auto intOf = [&](const Reg &r) {
        return static_cast<int64_t>(rawOf(r));
    };

    auto setIntReg = [&](const Reg &r, int64_t v, double ready) {
        switch (r.cls) {
          case RegClass::Scalar:
            st.sRaw[r.index] = static_cast<uint64_t>(v);
            st.sReady[r.index] = ready;
            break;
          case RegClass::Address:
            st.aVal[r.index] = v;
            st.aReady[r.index] = ready;
            break;
          case RegClass::Vl:
            st.vl = static_cast<int>(std::clamp<int64_t>(
                v, 1, config_.maxVectorLength));
            st.vlReadyAt = ready;
            break;
          default:
            panic("setIntReg on invalid register");
        }
        st.bump(ready);
    };

    auto effectiveAddress = [&](const isa::MemRef &mem) -> uint64_t {
        int64_t addr = mem.offset;
        if (!mem.symbol.empty())
            addr += static_cast<int64_t>(memory_.symbolBase(mem.symbol));
        if (mem.base.valid())
            addr += st.aVal[mem.base.index];
        MACS_ASSERT(addr >= 0, "negative effective address");
        return static_cast<uint64_t>(addr);
    };

    // Earliest cycle >= `from` at which this instruction's vector
    // register pair port needs are satisfiable; accounts for streams
    // still in flight.
    auto pairPortEarliest = [&](double from,
                                const std::array<int, 4> &my_reads,
                                const std::array<int, 4> &my_writes) {
        if (!config_.chaining.enforcePairLimits)
            return from;
        double enter = from;
        for (int guard = 0; guard < 256; ++guard) {
            // Tally active pair usage at `enter`.
            std::array<int, 4> reads = my_reads;
            std::array<int, 4> writes = my_writes;
            bool conflict = false;
            double next_free = std::numeric_limits<double>::infinity();
            for (const auto &a : st.active) {
                if (a.streamEnd <= enter)
                    continue;
                for (int p = 0; p < 4; ++p) {
                    reads[p] += a.pairReads[p];
                    writes[p] += a.pairWrites[p];
                }
            }
            for (int p = 0; p < 4; ++p) {
                bool uses = my_reads[p] || my_writes[p];
                if (!uses)
                    continue;
                if (reads[p] > config_.chaining.maxReadsPerPair ||
                    writes[p] > config_.chaining.maxWritesPerPair) {
                    conflict = true;
                    // Find the earliest completing active user of p.
                    for (const auto &a : st.active) {
                        if (a.streamEnd > enter &&
                            (a.pairReads[p] || a.pairWrites[p]))
                            next_free = std::min(next_free, a.streamEnd);
                    }
                }
            }
            if (!conflict)
                return enter;
            MACS_ASSERT(std::isfinite(next_free),
                        "pair port conflict with no active stream");
            enter = next_free;
        }
        panic("pair port arbitration did not converge");
    };

    auto pruneActive = [&](double now) {
        std::erase_if(st.active, [now](const Impl::ActiveVector &a) {
            return a.streamEnd <= now;
        });
    };

    // --- main loop ------------------------------------------------------

    size_t pc = 0;
    while (pc < instrs.size()) {
        if (stats.instructions >= options_.maxInstructions)
            fatal("instruction budget exceeded (", options_.maxInstructions,
                  "); infinite loop?");
        ++stats.instructions;

        const Instruction &in = instrs[pc];

        if (in.isVector()) {
            ++stats.vectorInstructions;
            const VectorTiming &tim = config_.timing(in.op);
            int p = pipeIndex(in.pipe(), config_.chaining);
            int n = st.vl;

            // Issue: wait for scalar operands, the issue unit, and the
            // pipe's single pending slot.
            double issue_start = std::max(
                {st.issueFree, st.pipes[p].issueGate, readyAt(in.src1),
                 readyAt(in.src2), readyAt(in.mem.base), st.vlReadyAt});
            // VSum accumulates into its scalar destination: the old
            // value is an input.
            if (in.op == Opcode::VSum)
                issue_start = std::max(issue_start, readyAt(in.dst));
            st.issueFree = issue_start + tim.x;

            double enter = issue_start + tim.x;
            double rate = tim.z;
            double producer_complete = 0.0;
            StallCause stall_cause = StallCause::None;
            auto raise = [&](double t, StallCause cause) {
                if (t > enter) {
                    enter = t;
                    stall_cause = cause;
                }
            };

            // Chaining / interlocks on vector sources.
            for (const Reg &r : in.vectorReads()) {
                auto &vt = st.vtime[r.index];
                if (vt.complete > enter) {
                    if (config_.chaining.chainingEnabled) {
                        raise(vt.firstResult, StallCause::Chain);
                        rate = std::max(rate, vt.rate);
                        producer_complete =
                            std::max(producer_complete, vt.complete);
                    } else {
                        raise(vt.complete, StallCause::Chain);
                    }
                }
            }
            // WAW/WAR interlocks on the vector destination. Elementwise
            // overlap is legal as long as the new writer cannot overtake
            // the previous producer or any in-flight reader.
            for (const Reg &r : in.vectorWrites()) {
                auto &vt = st.vtime[r.index];
                if (vt.complete > enter) {
                    // WAW with a still-streaming producer.
                    if (rate >= vt.rate)
                        raise(vt.enter + 1.0, StallCause::Interlock);
                    else
                        raise(vt.streamEnd, StallCause::Interlock);
                }
                if (vt.hasActiveReaders(enter)) {
                    if (rate >= vt.minReadRate)
                        raise(vt.lastReadEnter + 1.0,
                              StallCause::Interlock);
                    else
                        raise(vt.lastReadStreamEnd,
                              StallCause::Interlock);
                }
            }

            // Tailgate behind the previous instruction on this pipe;
            // bubbles of intervening instructions on other pipes stack
            // onto the gap (see PipeState::pendingBubble).
            raise(st.pipes[p].lastStreamEnd +
                      st.pipes[p].pendingBubble + tim.bubble,
                  StallCause::Tailgate);

            // Vector register pair port limits.
            std::array<int, 4> my_reads{}, my_writes{};
            for (const Reg &r : in.vectorReads())
                ++my_reads[r.pair()];
            for (const Reg &r : in.vectorWrites())
                ++my_writes[r.pair()];
            pruneActive(std::min({enter, st.pipes[0].lastStreamEnd,
                                  st.pipes[1].lastStreamEnd,
                                  st.pipes[2].lastStreamEnd}));
            raise(pairPortEarliest(enter, my_reads, my_writes),
                  StallCause::PairPort);

            double stream_end;
            int64_t stride_words = 1;
            if (in.isVectorMemory()) {
                if (in.op == Opcode::VLdS)
                    stride_words = intOf(in.src1);
                else if (in.op == Opcode::VStS)
                    stride_words = intOf(in.src2);
                StreamTiming mt;
                if (xport) {
                    uint64_t start_word =
                        effectiveAddress(in.mem) /
                        static_cast<uint64_t>(config_.memory.wordBytes);
                    mt = xport->serviceStream(enter, n, stride_words,
                                              rate, start_word);
                } else {
                    mt = port.serviceStream(enter, n, stride_words, rate);
                }
                raise(mt.enter, StallCause::MemoryPort);
                rate = mt.rate;
                stream_end = mt.streamEnd;
                stats.refreshStallCycles += mt.refreshStall;
                stats.portBusyCycles += mt.streamEnd - mt.enter;
                // Bank-conflict attribution: cycles the stride costs
                // beyond the unit-stride rate, contention excluded.
                stats.bankConflictCycles +=
                    (strideRateOf(stride_words) - strideRateOf(1)) * n;
                stats.memoryElements += static_cast<uint64_t>(n);
            } else {
                stream_end = enter + rate * n;
            }

            double first_result = enter + tim.y;
            double complete = stream_end + tim.y;
            // A chained producer delayed mid-stream (refresh) delays
            // the consumer's tail as well.
            if (producer_complete > 0.0)
                complete = std::max(complete, producer_complete + tim.y);

            // Update register timing.
            for (const Reg &r : in.vectorReads()) {
                auto &vt = st.vtime[r.index];
                vt.lastReadEnter = std::max(vt.lastReadEnter, enter);
                vt.lastReadStreamEnd =
                    std::max(vt.lastReadStreamEnd, stream_end);
                vt.minReadRate = std::min(vt.minReadRate, rate);
            }
            for (const Reg &r : in.vectorWrites()) {
                auto &vt = st.vtime[r.index];
                vt.enter = enter;
                vt.firstResult = first_result;
                vt.streamEnd = stream_end;
                vt.complete = std::max(complete, vt.complete + 1.0);
                vt.rate = rate;
                // New producer: reader bookkeeping restarts for the
                // new value.
                vt.lastReadEnter = 0.0;
                vt.lastReadStreamEnd = 0.0;
                vt.minReadRate = 1e18;
            }
            if (in.op == Opcode::VSum) {
                // Scalar result available when the reduction drains.
                st.sReady[in.dst.index] = complete;
            }

            st.pipes[p].lastStreamEnd = stream_end;
            st.pipes[p].issueGate = enter;
            st.pipes[p].pendingBubble = 0.0;
            for (int q = 0; q < 3; ++q)
                if (q != p)
                    st.pipes[q].pendingBubble += tim.bubble;
            st.active.push_back({enter, stream_end, my_reads, my_writes});
            st.bump(complete);

            // Pipe busy accounting.
            double busy = rate * n;
            if (p == 0)
                stats.loadStorePipeBusy += busy;
            else if (p == 1)
                stats.addPipeBusy += busy;
            else
                stats.multiplyPipeBusy += busy;
            stats.vectorElements += static_cast<uint64_t>(n);
            if (in.isVectorFloat())
                stats.flops += static_cast<uint64_t>(n);

            // ---- functional execution ----
            auto broadcastOrVec = [&](const Reg &r, int i) -> double {
                if (r.isVector())
                    return st.vdata[r.index][i];
                return std::bit_cast<double>(rawOf(r));
            };
            switch (in.op) {
              case Opcode::VLd:
              case Opcode::VLdS: {
                uint64_t addr = effectiveAddress(in.mem);
                for (int i = 0; i < n; ++i)
                    st.vdata[in.dst.index][i] = memory_.readDouble(
                        addr + static_cast<uint64_t>(i * stride_words) * 8);
                break;
              }
              case Opcode::VSt:
              case Opcode::VStS: {
                uint64_t addr = effectiveAddress(in.mem);
                for (int i = 0; i < n; ++i)
                    memory_.writeDouble(
                        addr + static_cast<uint64_t>(i * stride_words) * 8,
                        st.vdata[in.src1.index][i]);
                // The VP writes around the ASU cache: invalidate the
                // covered range for coherence.
                int64_t span = static_cast<int64_t>(n - 1) * stride_words;
                uint64_t lo = addr, hi = addr + 8;
                if (span >= 0)
                    hi = addr + static_cast<uint64_t>(span) * 8 + 8;
                else
                    lo = addr + static_cast<uint64_t>(span) * 8;
                st.invalidateCacheRange(config_.scalarCache, lo, hi);
                break;
              }
              case Opcode::VAdd:
              case Opcode::VSub:
              case Opcode::VMul:
              case Opcode::VDiv: {
                for (int i = 0; i < n; ++i) {
                    double a = broadcastOrVec(in.src1, i);
                    double b = broadcastOrVec(in.src2, i);
                    double r = 0.0;
                    switch (in.op) {
                      case Opcode::VAdd:
                        r = a + b;
                        break;
                      case Opcode::VSub:
                        r = a - b;
                        break;
                      case Opcode::VMul:
                        r = a * b;
                        break;
                      default:
                        r = a / b;
                        break;
                    }
                    st.vdata[in.dst.index][i] = r;
                }
                break;
              }
              case Opcode::VNeg: {
                for (int i = 0; i < n; ++i)
                    st.vdata[in.dst.index][i] =
                        -st.vdata[in.src1.index][i];
                break;
              }
              case Opcode::VSum: {
                double sum = 0.0;
                for (int i = 0; i < n; ++i)
                    sum += st.vdata[in.src1.index][i];
                double old = std::bit_cast<double>(st.sRaw[in.dst.index]);
                st.sRaw[in.dst.index] =
                    std::bit_cast<uint64_t>(old + sum);
                break;
              }
              default:
                panic("unhandled vector opcode");
            }

            if (options_.trace) {
                timeline_.record({pc, in.toString(), issue_start, enter,
                                  first_result, stream_end, complete, p,
                                  busy, enter - (issue_start + tim.x),
                                  stall_cause});
            }
            if (options_.profile) {
                profile_.record(pc, in.toString(),
                                enter - (issue_start + tim.x),
                                stall_cause);
            }
            ++pc;
            continue;
        }

        // ---- scalar / control ----
        ++stats.scalarInstructions;
        double issue_start =
            std::max({st.issueFree, readyAt(in.src1), readyAt(in.src2),
                      readyAt(in.mem.base)});
        double issue_done = issue_start + config_.scalar.issueCycles;
        st.issueFree = issue_done;
        st.bump(issue_done);

        switch (in.op) {
          case Opcode::SLd: {
            ++stats.scalarMemAccesses;
            uint64_t addr = effectiveAddress(in.mem);
            ScalarAccessTiming at =
                xport ? xport->serviceScalar(
                            issue_done,
                            addr / static_cast<uint64_t>(
                                       config_.memory.wordBytes))
                      : port.serviceScalar(issue_done);
            stats.portBusyCycles += at.done - at.start;
            bool hit = st.cacheAccess(config_.scalarCache, addr);
            if (hit)
                ++stats.scalarCacheHits;
            else
                ++stats.scalarCacheMisses;
            double ready = at.start + (hit ? config_.scalar.loadLatency
                                           : config_.scalar
                                                 .loadMissLatency);
            setIntReg(in.dst,
                      static_cast<int64_t>(memory_.readWord(addr)), ready);
            ++pc;
            break;
          }
          case Opcode::SSt: {
            ++stats.scalarMemAccesses;
            issue_start = std::max(issue_start, readyAt(in.src1));
            uint64_t addr = effectiveAddress(in.mem);
            ScalarAccessTiming at =
                xport ? xport->serviceScalar(
                            issue_done,
                            addr / static_cast<uint64_t>(
                                       config_.memory.wordBytes))
                      : port.serviceScalar(issue_done);
            stats.portBusyCycles += at.done - at.start;
            memory_.writeWord(addr, rawOf(in.src1));
            st.invalidateCacheRange(config_.scalarCache, addr, addr + 8);
            st.bump(at.done);
            ++pc;
            break;
          }
          case Opcode::SAdd:
          case Opcode::SSub:
          case Opcode::SMul: {
            // Two-operand forms ("add.w #1024,a5", "sub.w s1,s0")
            // update the destination in place: rD := rD op operand.
            // Three-operand forms compute rD := op1 op op2.
            int64_t a, b;
            if (!in.src2.valid()) {
                a = intOf(in.dst);
                b = in.hasImm ? in.imm : intOf(in.src1);
            } else {
                a = in.hasImm ? in.imm : intOf(in.src1);
                b = intOf(in.src2);
            }
            int64_t r = 0;
            switch (in.op) {
              case Opcode::SAdd:
                r = a + b;
                break;
              case Opcode::SSub:
                r = a - b;
                break;
              default:
                r = a * b;
                break;
            }
            setIntReg(in.dst, r, issue_start + config_.scalar.aluLatency);
            ++pc;
            break;
          }
          case Opcode::SFAdd:
          case Opcode::SFSub:
          case Opcode::SFMul:
          case Opcode::SFDiv: {
            double a = std::bit_cast<double>(rawOf(in.src1));
            double b = std::bit_cast<double>(rawOf(in.src2));
            double r = 0.0;
            switch (in.op) {
              case Opcode::SFAdd:
                r = a + b;
                break;
              case Opcode::SFSub:
                r = a - b;
                break;
              case Opcode::SFMul:
                r = a * b;
                break;
              default:
                r = a / b;
                break;
            }
            int latency = in.op == Opcode::SFDiv
                              ? config_.scalar.fpDivLatency
                              : config_.scalar.fpLatency;
            setIntReg(in.dst,
                      static_cast<int64_t>(std::bit_cast<uint64_t>(r)),
                      issue_start + latency);
            ++pc;
            break;
          }
          case Opcode::SMov: {
            int64_t v = in.hasImm ? in.imm : intOf(in.src1);
            setIntReg(in.dst, v, issue_start + config_.scalar.aluLatency);
            ++pc;
            break;
          }
          case Opcode::SLt:
          case Opcode::SLe: {
            int64_t a = in.hasImm ? in.imm : intOf(in.src1);
            int64_t b = intOf(in.src2);
            st.flag = (in.op == Opcode::SLt) ? (a < b) : (a <= b);
            st.flagReadyAt = issue_start + config_.scalar.aluLatency;
            ++pc;
            break;
          }
          case Opcode::BrT:
          case Opcode::BrF: {
            issue_start = std::max(issue_start, st.flagReadyAt);
            bool taken = (in.op == Opcode::BrT) ? st.flag : !st.flag;
            if (taken) {
                ++stats.branchesTaken;
                st.issueFree =
                    issue_start + config_.scalar.branchResolveCycles;
                pc = program_.labelIndex(in.target);
            } else {
                st.issueFree = issue_start + config_.scalar.issueCycles;
                ++pc;
            }
            st.bump(st.issueFree);
            break;
          }
          case Opcode::Jmp: {
            ++stats.branchesTaken;
            st.issueFree =
                issue_start + config_.scalar.branchResolveCycles;
            st.bump(st.issueFree);
            pc = program_.labelIndex(in.target);
            break;
          }
          case Opcode::Nop:
            ++pc;
            break;
          default:
            panic("unhandled scalar opcode");
        }
    }

    stats.cycles =
        std::max(st.maxTime, xport ? xport->freeAt() : port.freeAt());
    return stats;
}

} // namespace macs::sim
