file(REMOVE_RECURSE
  "CMakeFiles/workload_metrics_test.dir/workload_metrics_test.cc.o"
  "CMakeFiles/workload_metrics_test.dir/workload_metrics_test.cc.o.d"
  "workload_metrics_test"
  "workload_metrics_test.pdb"
  "workload_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
