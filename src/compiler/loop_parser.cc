#include "compiler/loop_parser.h"

#include <cctype>
#include <vector>

#include "support/logging.h"
#include "support/strings.h"

namespace macs::compiler {

namespace {

/** Token kinds produced by the lexer. */
enum class Tok
{
    Ident,
    Number,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Equals,
    End,
};

struct Token
{
    Tok kind;
    std::string text;
    double value = 0.0;
};

class Lexer
{
  public:
    explicit Lexer(std::string_view text) : text_(text) { advance(); }

    const Token &peek() const { return current_; }

    Token
    next()
    {
        Token t = current_;
        advance();
        return t;
    }

    bool
    accept(Tok kind)
    {
        if (current_.kind != kind)
            return false;
        advance();
        return true;
    }

    Token
    expect(Tok kind, const char *what)
    {
        if (current_.kind != kind)
            fatal("loop DSL: expected ", what, " near '", current_.text,
                  "'");
        return next();
    }

  private:
    void
    advance()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ >= text_.size()) {
            current_ = {Tok::End, "<end>"};
            return;
        }
        char c = text_[pos_];
        auto single = [&](Tok k) {
            current_ = {k, std::string(1, c)};
            ++pos_;
        };
        switch (c) {
          case '+':
            return single(Tok::Plus);
          case '-':
            return single(Tok::Minus);
          case '*':
            return single(Tok::Star);
          case '/':
            return single(Tok::Slash);
          case '(':
            return single(Tok::LParen);
          case ')':
            return single(Tok::RParen);
          case '=':
            return single(Tok::Equals);
          default:
            break;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
            size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E' ||
                    ((text_[pos_] == '+' || text_[pos_] == '-') &&
                     (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
                ++pos_;
            std::string num(text_.substr(start, pos_ - start));
            double v = 0;
            if (!parseDouble(num, v))
                fatal("loop DSL: bad number '", num, "'");
            current_ = {Tok::Number, num, v};
            return;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_'))
                ++pos_;
            current_ = {Tok::Ident,
                        std::string(text_.substr(start, pos_ - start))};
            return;
        }
        fatal("loop DSL: unexpected character '", std::string(1, c), "'");
    }

    std::string_view text_;
    size_t pos_ = 0;
    Token current_{Tok::End, ""};
};

class Parser
{
  public:
    Parser(std::string_view text) : lex_(text) {}

    Loop
    parse()
    {
        Loop loop;
        Token kw = lex_.expect(Tok::Ident, "DO");
        if (toLower(kw.text) != "do")
            fatal("loop DSL: loop must start with DO");
        loop.var = lex_.expect(Tok::Ident, "loop variable").text;
        if (lex_.peek().kind == Tok::Ident &&
            toLower(lex_.peek().text) == "by") {
            lex_.next();
            bool negative = lex_.accept(Tok::Minus);
            Token s = lex_.expect(Tok::Number, "stride");
            loop.stride = static_cast<long>(s.value);
            if (negative)
                loop.stride = -loop.stride;
            if (loop.stride == 0)
                fatal("loop DSL: stride must be nonzero");
        }
        var_ = loop.var;

        while (!(lex_.peek().kind == Tok::Ident &&
                 toLower(lex_.peek().text) == "end")) {
            if (lex_.peek().kind == Tok::End)
                fatal("loop DSL: missing END");
            loop.stmts.push_back(parseStmt());
        }
        lex_.next(); // END
        if (loop.stmts.empty())
            fatal("loop DSL: empty loop body");
        return loop;
    }

  private:
    Stmt
    parseStmt()
    {
        Stmt s;
        Token name = lex_.expect(Tok::Ident, "assignment target");
        s.dstName = name.text;
        if (lex_.peek().kind == Tok::LParen) {
            s.arrayDst = true;
            auto [coef, offset] = parseIndex();
            s.dstCoef = coef;
            s.dstOffset = offset;
        } else {
            s.arrayDst = false;
        }
        lex_.expect(Tok::Equals, "'='");
        s.rhs = parseExpr();
        return s;
    }

    /** Parse "(...)" affine index; returns {coef, offset}. */
    std::pair<long, long>
    parseIndex()
    {
        lex_.expect(Tok::LParen, "'('");
        long coef = 0, offset = 0;

        // Forms: var | int*var | var+int | var-int | int*var+int | int
        if (lex_.peek().kind == Tok::Number) {
            long v = static_cast<long>(lex_.next().value);
            if (lex_.accept(Tok::Star)) {
                Token var = lex_.expect(Tok::Ident, "loop variable");
                checkVar(var.text);
                coef = v;
            } else {
                offset = v; // constant index (loop-invariant element)
                coef = 0;
            }
        } else {
            Token var = lex_.expect(Tok::Ident, "loop variable");
            checkVar(var.text);
            coef = 1;
        }
        if (coef != 0) {
            if (lex_.accept(Tok::Plus))
                offset = static_cast<long>(
                    lex_.expect(Tok::Number, "offset").value);
            else if (lex_.accept(Tok::Minus))
                offset = -static_cast<long>(
                    lex_.expect(Tok::Number, "offset").value);
        }
        lex_.expect(Tok::RParen, "')'");
        return {coef, offset};
    }

    void
    checkVar(const std::string &name)
    {
        if (name != var_)
            fatal("loop DSL: index variable '", name,
                  "' is not the loop variable '", var_, "'");
    }

    ExprPtr
    parseExpr()
    {
        ExprPtr e = parseTerm();
        while (true) {
            if (lex_.accept(Tok::Plus))
                e = add(std::move(e), parseTerm());
            else if (lex_.accept(Tok::Minus))
                e = sub(std::move(e), parseTerm());
            else
                return e;
        }
    }

    ExprPtr
    parseTerm()
    {
        ExprPtr e = parseUnary();
        while (true) {
            if (lex_.accept(Tok::Star))
                e = mul(std::move(e), parseUnary());
            else if (lex_.accept(Tok::Slash))
                e = div(std::move(e), parseUnary());
            else
                return e;
        }
    }

    ExprPtr
    parseUnary()
    {
        if (lex_.accept(Tok::Minus))
            return neg(parseUnary());
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        if (lex_.peek().kind == Tok::Number)
            return number(lex_.next().value);
        if (lex_.accept(Tok::LParen)) {
            ExprPtr e = parseExpr();
            lex_.expect(Tok::RParen, "')'");
            return e;
        }
        Token name = lex_.expect(Tok::Ident, "identifier");
        if (lex_.peek().kind == Tok::LParen) {
            auto [coef, offset] = parseIndex();
            return array(name.text, coef, offset);
        }
        return scalar(name.text);
    }

    Lexer lex_;
    std::string var_;
};

} // namespace

Loop
parseLoop(std::string_view text)
{
    Parser p(text);
    return p.parse();
}

} // namespace macs::compiler
