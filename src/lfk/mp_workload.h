/**
 * @file
 * Workload mixes for the cycle-coupled multi-CPU engine: package LFK
 * kernels as sim::mp::CoupledJob fleets.
 *
 * Three mixes (paper section 4.2 + the strip-mining direction):
 *  - independent: every CPU runs the full kernel as an unrelated
 *    process — staggered clocks and distinct address spaces, the
 *    paper's multi-user scenario;
 *  - lockstep: every CPU runs the full kernel launched on the same
 *    clock edge (a gang-scheduled parallel job), distinct address
 *    spaces imperfectly staggered;
 *  - strip: ONE kernel's iteration space split across the CPUs,
 *    floor(n/P)+1 iterations for the first n%P chunks, each chunk at
 *    its slice's address offset. DSL kernels only (Kernel::remake);
 *    the functional check is skipped — chunk programs re-time the
 *    loop, they do not re-partition the data arrays.
 */

#ifndef MACS_LFK_MP_WORKLOAD_H
#define MACS_LFK_MP_WORKLOAD_H

#include <string>
#include <vector>

#include "lfk/kernels.h"
#include "sim/contention.h"
#include "sim/mp/coupled.h"

namespace macs::lfk {

/** Multi-CPU workload shape (superset of sim::WorkloadMix). */
enum class MpMix
{
    Independent,
    LockStep,
    Strip,
};

/** Canonical mix name ("independent" / "lockstep" / "strip"). */
const char *mpMixName(MpMix mix);

/** Parse a mix name; false (out untouched) on anything else. */
bool parseMpMix(const std::string &text, MpMix &out);

/**
 * Map a mix onto the analytic tier's WorkloadMix; false for Strip
 * (the fixed-point driver has no notion of a split kernel).
 */
bool toWorkloadMix(MpMix mix, sim::WorkloadMix &out);

/**
 * A built fleet: jobs point into the owned kernels, so move the
 * struct as a whole and keep it alive for the run.
 */
struct MpWorkload
{
    std::vector<Kernel> kernels;
    std::vector<sim::mp::CoupledJob> jobs;
    MpMix mix = MpMix::Independent;
};

/**
 * Package @p cpus copies (independent/lockstep) or chunks (strip) of
 * kernel @p kernel_id. fatal() on a non-positive CPU count or on
 * strip-mining a hand-assembled kernel.
 */
MpWorkload buildMpWorkload(int kernel_id, MpMix mix, int cpus);

/**
 * One full kernel per CPU with independent-mix skews — the paper's
 * multi-user load with *different* programs per CPU. One id per CPU.
 */
MpWorkload buildMpMixedWorkload(const std::vector<int> &kernel_ids);

} // namespace macs::lfk

#endif // MACS_LFK_MP_WORKLOAD_H
