#include "macs/macsd.h"

#include <algorithm>
#include <array>
#include <optional>

#include "sim/memory_port.h"
#include "support/logging.h"

namespace macs::model {

namespace {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;
using isa::RegClass;

/** Dense id for scalar/address registers (-1 for others). */
int
regId(const Reg &r)
{
    switch (r.cls) {
      case RegClass::Scalar:
        return r.index;
      case RegClass::Address:
        return isa::kNumScalarRegs + r.index;
      default:
        return -1;
    }
}

/** Constant-propagation lattice: known value or unknown. */
class ConstState
{
  public:
    void
    set(const Reg &r, std::optional<int64_t> v)
    {
        int id = regId(r);
        if (id >= 0)
            values_[id] = v;
    }

    std::optional<int64_t>
    get(const Reg &r) const
    {
        int id = regId(r);
        if (id < 0)
            return std::nullopt;
        return values_[id];
    }

    /** Apply one preamble instruction's effect. */
    void
    step(const Instruction &in)
    {
        switch (in.op) {
          case Opcode::SMov:
            if (in.hasImm)
                set(in.dst, in.imm);
            else
                set(in.dst, get(in.src1));
            return;
          case Opcode::SAdd:
          case Opcode::SSub:
          case Opcode::SMul: {
            std::optional<int64_t> a, b;
            if (!in.src2.valid()) {
                a = get(in.dst);
                b = in.hasImm ? std::optional<int64_t>(in.imm)
                              : get(in.src1);
            } else {
                a = in.hasImm ? std::optional<int64_t>(in.imm)
                              : get(in.src1);
                b = get(in.src2);
            }
            if (a && b) {
                int64_t r = 0;
                if (in.op == Opcode::SAdd)
                    r = *a + *b;
                else if (in.op == Opcode::SSub)
                    r = *a - *b;
                else
                    r = *a * *b;
                set(in.dst, r);
            } else {
                set(in.dst, std::nullopt);
            }
            return;
          }
          default:
            // Any other scalar/address write (loads, reductions, VL
            // moves) leaves the register unknown.
            set(in.scalarWrite(), std::nullopt);
            return;
        }
    }

  private:
    std::array<std::optional<int64_t>,
               isa::kNumScalarRegs + isa::kNumAddressRegs>
        values_{};
};

/** The register holding a strided access's stride, or None. */
Reg
strideReg(const Instruction &in)
{
    if (in.op == Opcode::VLdS)
        return in.src1;
    if (in.op == Opcode::VStS)
        return in.src2;
    return isa::noreg();
}

} // namespace

StrideBinding
bindStrides(const isa::Program &prog)
{
    auto [begin, end] = prog.innerLoopRange();
    const auto &instrs = prog.instrs();

    // Propagate constants through the preamble.
    ConstState state;
    for (size_t i = 0; i < begin; ++i)
        state.step(instrs[i]);

    // Registers the loop body itself modifies are not loop-invariant.
    std::array<bool, isa::kNumScalarRegs + isa::kNumAddressRegs>
        clobbered{};
    for (size_t i = begin; i < end; ++i) {
        int id = regId(instrs[i].scalarWrite());
        if (id >= 0)
            clobbered[static_cast<size_t>(id)] = true;
    }

    StrideBinding out;
    for (size_t i = begin; i < end; ++i) {
        const Instruction &in = instrs[i];
        if (!in.isVectorMemory())
            continue;
        size_t body_idx = i - begin;
        Reg sr = strideReg(in);
        if (!sr.valid()) {
            out.strides[body_idx] = 1; // unit-stride form
            continue;
        }
        auto v = state.get(sr);
        int id = regId(sr);
        bool invariant =
            id >= 0 && !clobbered[static_cast<size_t>(id)];
        if (v && invariant)
            out.strides[body_idx] = *v;
        else
            out.unbound.push_back(body_idx);
    }
    return out;
}

MacsDResult
evaluateMacsD(const isa::Program &prog,
              const machine::MachineConfig &config, int vector_length)
{
    MacsDResult res;
    res.binding = bindStrides(prog);

    sim::MemoryPort port(config.memory);
    std::map<size_t, double> z_override;
    for (const auto &[idx, stride] : res.binding.strides) {
        double rate = port.strideRate(stride);
        res.worstMemoryRate = std::max(res.worstMemoryRate, rate);
        if (rate > 1.0)
            z_override[idx] = rate;
    }
    if (!res.binding.unbound.empty()) {
        warn("MACS-D: ", res.binding.unbound.size(),
             " strided access(es) have unresolvable strides; charged "
             "at the conflict-free rate");
    }

    auto body = prog.innerLoop();
    res.macs = evaluateMacs(body, config, vector_length, &z_override);
    return res;
}

} // namespace macs::model
