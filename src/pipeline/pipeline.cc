#include "pipeline/pipeline.h"

#include <chrono>
#include <exception>
#include <future>
#include <new>
#include <thread>
#include <utility>

#include "lfk/kernels.h"
#include "support/hash.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::pipeline {

namespace {

double
nowUs()
{
    using namespace std::chrono;
    return duration<double, std::micro>(
               steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Transient failures may succeed on retry: injected or real
 * TransientFault / IoError / bad_alloc. fatal()/panic() and everything
 * else is permanent — retrying a deterministic computation would fail
 * again.
 */
bool
isTransient(const std::exception_ptr &ep)
{
    try {
        std::rethrow_exception(ep);
    } catch (const faults::TransientFault &) {
        return true;
    } catch (const faults::IoError &) {
        return true;
    } catch (const std::bad_alloc &) {
        return true;
    } catch (...) {
        return false;
    }
}

/** Sleep @p us microseconds in 1 ms slices, aborting on @p cancel. */
void
backoffSleep(double us, const std::atomic<bool> *cancel)
{
    using namespace std::chrono;
    auto deadline =
        steady_clock::now() + duration<double, std::micro>(us);
    while (steady_clock::now() < deadline) {
        if (cancel != nullptr &&
            cancel->load(std::memory_order_acquire))
            return;
        std::this_thread::sleep_for(milliseconds(1));
    }
}

/** Effective machine of a job: VL override applied to a config copy. */
machine::MachineConfig
effectiveConfig(const BatchJob &job)
{
    machine::MachineConfig cfg = job.config;
    if (job.vectorLength > 0)
        cfg.maxVectorLength = job.vectorLength;
    return cfg;
}

size_t
resolveWorkers(size_t requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Fast direct-field hashing for the cache key.
 *
 * The canonical definitions of the key components are the text
 * fingerprints (model::fingerprint, MachineConfig::fingerprint,
 * sim::fingerprint) — tests/pipeline_test.cc cross-checks that these
 * hashes distinguish everything the text forms distinguish. Hashing
 * fields directly avoids building multi-KB strings per job, which
 * dominated the per-job overhead (~45us -> ~2us).
 */
/// @{
uint64_t
hashReg(uint64_t h, const isa::Reg &r)
{
    h = hashValue(h, static_cast<int>(r.cls));
    // Mirror Reg::operator==: index is irrelevant for None/Vl.
    int index = (r.cls == isa::RegClass::None ||
                 r.cls == isa::RegClass::Vl)
                    ? 0
                    : r.index;
    return hashValue(h, index);
}

uint64_t
hashProgram(const isa::Program &prog)
{
    uint64_t h = fnv1a64("macs-program-v1");
    for (const isa::Instruction &in : prog.instrs()) {
        h = hashValue(h, static_cast<int>(in.op));
        h = hashReg(h, in.dst);
        h = hashReg(h, in.src1);
        h = hashReg(h, in.src2);
        h = hashCombine(h, fnv1a64(in.mem.symbol));
        h = hashValue(h, in.mem.offset);
        h = hashReg(h, in.mem.base);
        h = hashValue(h, in.imm);
        h = hashValue(h, in.hasImm);
        h = hashCombine(h, fnv1a64(in.target));
        // Comments are cosmetic; excluded on purpose.
    }
    for (const auto &[label, index] : prog.labels()) {
        h = hashCombine(h, fnv1a64(label));
        h = hashValue(h, index);
    }
    for (const isa::DataSymbol &sym : prog.dataSymbols()) {
        h = hashCombine(h, fnv1a64(sym.name));
        h = hashValue(h, sym.words);
    }
    return h;
}

uint64_t
hashKernel(const model::KernelCase &kernel)
{
    uint64_t h = fnv1a64("macs-kernel-v1");
    h = hashCombine(h, fnv1a64(kernel.name));
    h = hashValue(h, kernel.ma.fAdd);
    h = hashValue(h, kernel.ma.fMul);
    h = hashValue(h, kernel.ma.loads);
    h = hashValue(h, kernel.ma.stores);
    h = hashValue(h, kernel.sourceFlopsPerPoint);
    h = hashValue(h, kernel.points);
    return hashCombine(h, hashProgram(kernel.program));
}

uint64_t
hashMachine(const machine::MachineConfig &cfg)
{
    // Content hash of the resolved configuration — the machine half
    // of the memo-cache key. Delegates to MachineConfig::contentHash()
    // so the field list lives next to fingerprint() and new machine
    // knobs (e.g. machine-file-introduced ones) cannot be silently
    // omitted here: two .machine files sharing a name but differing
    // in any constant must never alias a cache entry.
    return cfg.contentHash();
}

uint64_t
hashOptions(const sim::SimOptions &opt)
{
    uint64_t h = fnv1a64("macs-simopt-v1");
    h = hashValue(h, opt.memoryContentionFactor);
    h = hashValue(h, opt.maxInstructions);
    h = hashValue(h, opt.trace);
    h = hashValue(h, opt.profile);
    // Tier keeps results bit-identical, but it must never alias a
    // cache entry: a hit would silently report the wrong tier's
    // timing breakdown in metrics and make differential runs vacuous.
    return hashValue(h, static_cast<uint64_t>(opt.tier));
}
/// @}

} // namespace

BatchEngine::BatchEngine(EngineOptions options)
    : options_(options), pool_(resolveWorkers(options.workers))
{
    cache_.setCapacity(options_.cacheCapacity);
    cache_.attachMetrics(&registry());
}

BatchEngine::~BatchEngine()
{
    // Normally empty (run() reaps its own strays); this covers an
    // engine destroyed right after a timed-out run.
    std::lock_guard<std::mutex> lock(straysMu_);
    for (std::thread &t : strays_)
        t.join();
}

const faults::FaultInjector &
BatchEngine::injector() const
{
    return options_.faults != nullptr ? *options_.faults
                                      : faults::FaultInjector::global();
}

obs::Registry &
BatchEngine::registry() const
{
    return options_.metrics != nullptr ? *options_.metrics
                                       : obs::Registry::global();
}

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
    case ErrorKind::None:
        return "none";
    case ErrorKind::Permanent:
        return "permanent";
    case ErrorKind::Transient:
        return "transient";
    case ErrorKind::Timeout:
        return "timeout";
    }
    return "none";
}

CacheKey
BatchEngine::keyOf(const BatchJob &job)
{
    CacheKey key;
    key.program = hashKernel(job.kernel);
    // Hash the *effective* config so a job with a VL override shares
    // its cache entry with an identical job whose config carries that
    // VL natively (both produce the same analysis).
    key.machine = job.vectorLength > 0
                      ? hashMachine(effectiveConfig(job))
                      : hashMachine(job.config);
    key.options = hashOptions(job.options);
    return key;
}

uint64_t
BatchEngine::attemptKey(const CacheKey &key, int attempt)
{
    uint64_t h = fnv1a64("macs-attempt-v1");
    h = hashValue(h, key.program);
    h = hashValue(h, key.machine);
    h = hashValue(h, key.options);
    return hashValue(h, attempt);
}

/**
 * One guarded computation: the retry loop around analyzeKernel with
 * the fault-injection hooks at the sites where real faults strike.
 * Injection decisions are keyed on (cache key, attempt), so the fire
 * pattern is identical for any worker count and a retry of the same
 * job is an independent draw. Shared verbatim by the batch engine and
 * the analysis server (src/server).
 */
AnalysisCache::Value
computeAnalysisGuarded(const BatchJob &job, const CacheKey &key,
                       const GuardedComputeOptions &options,
                       std::atomic<int> &attempts,
                       const std::atomic<bool> *cancel)
{
    const faults::FaultInjector &inj =
        options.faults != nullptr ? *options.faults
                                  : faults::FaultInjector::global();
    obs::Registry &reg = options.metrics != nullptr
                             ? *options.metrics
                             : obs::Registry::global();
    for (int attempt = 0;; ++attempt) {
        attempts.store(attempt + 1, std::memory_order_relaxed);
        try {
            uint64_t akey = BatchEngine::attemptKey(key, attempt);
            inj.maybeFailAlloc(akey);
            inj.maybeDelay(akey, cancel);
            inj.maybeThrowWorker(akey, job.displayLabel());
            machine::MachineConfig cfg = effectiveConfig(job);
            return std::make_shared<const model::KernelAnalysis>(
                model::analyzeKernel(job.kernel, cfg, job.options));
        } catch (...) {
            std::exception_ptr ep = std::current_exception();
            bool transient = isTransient(ep);
            bool cancelled = cancel != nullptr &&
                             cancel->load(std::memory_order_acquire);
            if (!transient || attempt >= options.maxRetries ||
                cancelled) {
                if (transient && attempt >= options.maxRetries)
                    reg.counter("macs_retry_exhausted_total",
                                "Jobs whose transient-fault retry "
                                "budget ran out")
                        .inc();
                std::rethrow_exception(ep);
            }
            reg.counter("macs_retry_attempts_total",
                        "Transient-fault retries performed")
                .inc();
            // Exponential backoff: base * 2^attempt.
            backoffSleep(options.retryBackoffUs *
                             static_cast<double>(1ULL << attempt),
                         cancel);
        }
    }
}

ErrorKind
classifyError(const std::exception_ptr &ep, std::string &message)
{
    try {
        std::rethrow_exception(ep);
    } catch (const DeadlineExceeded &e) {
        message = e.what();
        return ErrorKind::Timeout;
    } catch (const faults::TransientFault &e) {
        message = e.what();
        return ErrorKind::Transient;
    } catch (const faults::IoError &e) {
        message = e.what();
        return ErrorKind::Transient;
    } catch (const std::bad_alloc &) {
        message = "allocation failure (std::bad_alloc)";
        return ErrorKind::Transient;
    } catch (const std::exception &e) {
        message = e.what();
        return ErrorKind::Permanent;
    } catch (...) {
        message = "unknown error";
        return ErrorKind::Permanent;
    }
}

AnalysisCache::Value
BatchEngine::computeGuarded(const BatchJob &job, const CacheKey &key,
                            std::atomic<int> &attempts,
                            const std::atomic<bool> *cancel)
{
    GuardedComputeOptions opt;
    opt.maxRetries = options_.maxRetries;
    opt.retryBackoffUs = options_.retryBackoffUs;
    opt.faults = options_.faults;
    opt.metrics = options_.metrics;
    return computeAnalysisGuarded(job, key, opt, attempts, cancel);
}

/**
 * Run computeGuarded on a side thread and wait at most jobTimeoutMs.
 * On expiry, signal cancellation, park the thread on strays_ (reaped
 * in the run() epilogue — never detached), and fail the job with
 * DeadlineExceeded. Injected delays and backoffs poll the cancel flag
 * every 1 ms, so an expired worker is joinable almost immediately; a
 * genuinely long analyzeKernel finishes on its own time and is joined
 * at the end of the run.
 */
AnalysisCache::Value
BatchEngine::computeWithDeadline(const BatchJob &job,
                                 const CacheKey &key, int &attempts)
{
    struct State
    {
        std::promise<AnalysisCache::Value> result;
        std::atomic<bool> cancel{false};
        std::atomic<int> attempts{1};
    };
    auto state = std::make_shared<State>();
    std::future<AnalysisCache::Value> future =
        state->result.get_future();

    std::thread worker([this, &job, key, state] {
        try {
            state->result.set_value(computeGuarded(
                job, key, state->attempts, &state->cancel));
        } catch (...) {
            state->result.set_exception(std::current_exception());
        }
    });

    auto timeout = std::chrono::duration<double, std::milli>(
        options_.jobTimeoutMs);
    if (future.wait_for(timeout) == std::future_status::ready) {
        worker.join();
        attempts = state->attempts.load(std::memory_order_relaxed);
        return future.get(); // rethrows the worker's exception
    }

    state->cancel.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(straysMu_);
        strays_.push_back(std::move(worker));
    }
    attempts = state->attempts.load(std::memory_order_relaxed);
    registry()
        .counter("macs_retry_timeouts_total",
                 "Jobs whose wall-clock deadline expired")
        .inc();
    throw DeadlineExceeded(
        format("job '%s' exceeded its %g ms deadline",
               job.displayLabel().c_str(), options_.jobTimeoutMs));
}

void
BatchEngine::runOne(const BatchJob &job, JobResult &out,
                    double enqueue_us)
{
    double start_us = nowUs();
    out.timing.queueWaitUs = start_us - enqueue_us;

    // One (guarded, possibly deadline-bounded) computation attempt
    // chain, recording the attempt count into @p attempts_out even
    // when it throws.
    auto compute = [&](int &attempts_out) -> AnalysisCache::Value {
        if (options_.jobTimeoutMs > 0.0)
            return computeWithDeadline(job, out.key, attempts_out);
        std::atomic<int> attempts{1};
        try {
            AnalysisCache::Value v =
                computeGuarded(job, out.key, attempts, nullptr);
            attempts_out = attempts.load(std::memory_order_relaxed);
            return v;
        } catch (...) {
            attempts_out = attempts.load(std::memory_order_relaxed);
            throw;
        }
    };

    try {
        if (!options_.useCache) {
            double c0 = nowUs();
            out.analysis = compute(out.timing.attempts);
            out.timing.computeUs = nowUs() - c0;
        } else {
            AnalysisCache::Claim claim = cache_.claim(out.key);
            if (claim.owner()) {
                double c0 = nowUs();
                bool computed = false;
                try {
                    claim.promise->set_value(
                        compute(out.timing.attempts));
                    computed = true;
                } catch (...) {
                    claim.promise->set_exception(
                        std::current_exception());
                }
                if (computed && options_.checkpoint != nullptr)
                    options_.checkpoint->append(out.key,
                                                *claim.future.get());
                out.timing.computeUs = nowUs() - c0;
            } else {
                out.timing.cacheHit = true;
            }
            // get() rethrows the owner's exception for every waiter.
            out.analysis = claim.future.get();
        }
    } catch (...) {
        out.analysis = nullptr;
        out.errorKind =
            classifyError(std::current_exception(), out.error);
    }
    out.timing.totalUs = nowUs() - start_us;
}

BatchResult
BatchEngine::run(const std::vector<BatchJob> &jobs)
{
    BatchResult result;
    result.results.resize(jobs.size());
    result.stats.workers = pool_.workerCount();
    result.stats.jobs = jobs.size();
    if (jobs.empty())
        return result;

    // Checkpoint resume: completed analyses become cache hits, so the
    // run recomputes only unfinished work.
    if (options_.checkpoint != nullptr && options_.useCache) {
        for (const BatchJob &job : jobs) {
            CacheKey key = keyOf(job);
            if (AnalysisCache::Value v =
                    options_.checkpoint->lookup(key))
                cache_.seed(key, std::move(v));
        }
    }

    double t0 = nowUs();
    for (size_t i = 0; i < jobs.size(); ++i) {
        JobResult &out = result.results[i];
        out.label = jobs[i].displayLabel();
        out.configName = jobs[i].configName;
        out.vectorLength = jobs[i].vectorLength > 0
                               ? jobs[i].vectorLength
                               : jobs[i].config.maxVectorLength;
        out.clockMhz = jobs[i].config.clockMhz;
        out.key = keyOf(jobs[i]);
        double enqueue_us = nowUs();
        pool_.submit([this, &jobs, &out, i, enqueue_us] {
            runOne(jobs[i], out, enqueue_us);
        });
    }
    pool_.waitIdle();

    // Reap timed-out workers: every spawned thread is joined before
    // run() returns (jobs is borrowed from the caller, so no stray
    // may outlive this call).
    {
        std::vector<std::thread> strays;
        {
            std::lock_guard<std::mutex> lock(straysMu_);
            strays.swap(strays_);
        }
        for (std::thread &t : strays)
            t.join();
    }
    result.stats.wallUs = nowUs() - t0;

    for (size_t i = 0; i < result.results.size(); ++i) {
        const JobResult &r = result.results[i];
        result.stats.computeUs += r.timing.computeUs;
        result.stats.queueWaitUs += r.timing.queueWaitUs;
        if (r.timing.cacheHit)
            ++result.stats.cacheHits;
        else
            ++result.stats.cacheMisses;
        if (!r.ok()) {
            ++result.stats.failures;
            result.errors.push_back({i, r.label, r.configName,
                                     r.errorKind, r.error,
                                     r.timing.attempts});
        }
    }
    publishMetrics(result);
    return result;
}

void
BatchEngine::publishMetrics(const BatchResult &result) const
{
    obs::Registry &reg = options_.metrics != nullptr
                             ? *options_.metrics
                             : obs::Registry::global();

    reg.counter("macs_pipeline_jobs_total",
                "Batch jobs completed by outcome",
                obs::Labels{{"result", "ok"}})
        .inc(static_cast<double>(result.stats.jobs -
                                 result.stats.failures));
    reg.counter("macs_pipeline_jobs_total",
                "Batch jobs completed by outcome",
                obs::Labels{{"result", "error"}})
        .inc(static_cast<double>(result.stats.failures));
    reg.counter("macs_pipeline_cache_total",
                "Memoization cache lookups by outcome",
                obs::Labels{{"event", "hit"}})
        .inc(static_cast<double>(result.stats.cacheHits));
    reg.counter("macs_pipeline_cache_total",
                "Memoization cache lookups by outcome",
                obs::Labels{{"event", "miss"}})
        .inc(static_cast<double>(result.stats.cacheMisses));

    // Log-spaced edges: 10us .. 1s; queue waits and compute times
    // both span several decades depending on host load.
    static const double kUsEdges[] = {10.0,     100.0,     1000.0,
                                      10000.0,  100000.0,  1000000.0};
    obs::Histogram &queue = reg.histogram(
        "macs_pipeline_queue_wait_us",
        "Per-job wait from submission to worker pickup", kUsEdges);
    obs::Histogram &compute = reg.histogram(
        "macs_pipeline_compute_us",
        "Per-job analysis compute time (cache hits excluded)",
        kUsEdges);
    for (const JobResult &r : result.results) {
        queue.observe(r.timing.queueWaitUs);
        if (!r.timing.cacheHit)
            compute.observe(r.timing.computeUs);
    }

    reg.gauge("macs_pipeline_workers", "Worker threads of the engine")
        .set(static_cast<double>(result.stats.workers));
    // Utilization: fraction of the run's worker-seconds spent
    // computing. Cache hits make this < 1 by design.
    double budget = result.stats.wallUs *
                    static_cast<double>(result.stats.workers);
    reg.gauge("macs_pipeline_worker_utilization",
              "computeUs / (wallUs * workers) of the last run")
        .set(budget > 0.0 ? result.stats.computeUs / budget : 0.0);
}

std::vector<BatchJob>
paperJobSet(const machine::MachineConfig &config,
            const std::string &config_name)
{
    std::vector<BatchJob> jobs;
    for (int id : lfk::lfkIds()) {
        lfk::Kernel k = lfk::makeKernel(id);
        BatchJob job;
        job.label = k.name;
        job.configName = config_name;
        job.kernel = lfk::toKernelCase(k);
        job.config = config;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace macs::pipeline
