/**
 * @file
 * Vector/scalar speedup study (our extension, motivated by the paper's
 * introduction: "the delivered performance ... is primarily related to
 * the efficiency of implementation of inner loops").
 *
 * Compiles the DSL-expressible kernels twice — vectorized, and in
 * scalar mode through the ASU — runs both on the simulated C-240, and
 * reports the speedup. The two excluded recurrences (LFK 5, 11) only
 * have the scalar column: this is precisely why the paper's case study
 * drops them.
 */

#include <cstdio>
#include <optional>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "lfk/data.h"
#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"
#include "support/table.h"

namespace {

using namespace macs;

struct Case
{
    int id;
    const char *dsl;
    long trip;
    std::vector<compiler::ArraySpec> arrays;
    std::vector<std::pair<const char *, double>> scalars;
    std::vector<std::pair<const char *, uint64_t>> inputs; // name, seed
    int flops;
};

std::vector<Case>
cases()
{
    return {
        {1,
         "DO k\n x(k) = q + y(k)*(r*zx(k+10) + t*zx(k+11))\nEND",
         990,
         {{"x", 1024}, {"y", 1024}, {"zx", 1024}},
         {{"scalar_q", 1.5}, {"scalar_r", 0.75}, {"scalar_t", 0.35}},
         {{"y", 101}, {"zx", 102}},
         5},
        {3,
         "DO k\n q = q + z(k)*x(k)\nEND",
         1001,
         {{"x", 1024}, {"z", 1024}},
         {{"scalar_q", 0.0}},
         {{"x", 301}, {"z", 302}},
         2},
        {7,
         "DO k\n x(k) = u(k) + r*(z(k) + r*y(k))"
         " + t*(u(k+3) + r*(u(k+2) + r*u(k+1))"
         " + t*(u(k+6) + q*(u(k+5) + q*u(k+4))))\nEND",
         990,
         {{"x", 1024}, {"y", 1024}, {"z", 1024}, {"u", 1024}},
         {{"scalar_q", 0.5}, {"scalar_r", 0.75}, {"scalar_t", 0.35}},
         {{"y", 701}, {"z", 702}, {"u", 703}},
         16},
        {12,
         "DO k\n x(k) = y(k+1) - y(k)\nEND",
         1000,
         {{"x", 1024}, {"y", 1032}},
         {},
         {{"y", 1201}},
         1},
        {5,
         "DO k\n x(k+1) = z(k+1)*(y(k+1) - x(k))\nEND",
         1000,
         {{"x", 1024}, {"y", 1032}, {"z", 1032}},
         {},
         {{"x", 501}, {"y", 502}, {"z", 503}},
         2},
        {11,
         "DO k\n x(k+1) = x(k) + y(k+1)\nEND",
         1000,
         {{"x", 1024}, {"y", 1032}},
         {},
         {{"x", 1101}, {"y", 1102}},
         1},
    };
}

std::optional<double>
runMode(const Case &c, bool vectorize, int unroll = 1)
{
    compiler::Loop loop = compiler::parseLoop(c.dsl);
    compiler::SourceAnalysis sa = compiler::analyzeSource(loop);
    if (vectorize && !sa.vectorizable)
        return std::nullopt;
    if (!vectorize && c.trip % unroll != 0)
        return std::nullopt;

    compiler::CompileOptions opt;
    opt.tripCount = c.trip;
    opt.arrays = c.arrays;
    opt.vectorize = vectorize;
    opt.unroll = vectorize ? 1 : unroll;
    compiler::CompileResult res = compiler::compile(loop, opt);

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator s(cfg, res.program);
    for (auto [name, seed] : c.inputs) {
        size_t words = 0;
        for (const auto &a : c.arrays)
            if (a.name == name)
                words = a.words;
        s.memory().fillDoubles(name, lfk::testVector(words, seed));
    }
    for (auto [name, value] : c.scalars)
        s.memory().fillDoubles(name, {value});
    double cycles = s.run().cycles;
    return cycles / static_cast<double>(c.trip) / c.flops;
}

} // namespace

int
main()
{
    std::printf("=== Vectorization speedup on the simulated C-240 "
                "===\n\n");

    Table t({"LFK", "scalar CPF", "scalar unrolled", "vector CPF",
             "speedup", "vector MFLOPS"});
    for (const Case &c : cases()) {
        auto scalar = runMode(c, false);
        int u = c.trip % 4 == 0 ? 4 : (c.trip % 2 == 0 ? 2 : 1);
        auto unrolled = u > 1 ? runMode(c, false, u)
                              : std::optional<double>{};
        auto vec = runMode(c, true);
        std::string id = "LFK" + std::to_string(c.id);
        std::string u4 =
            unrolled ? Table::num(*unrolled) : std::string("-");
        if (vec) {
            t.addRow({id, Table::num(*scalar), u4, Table::num(*vec),
                      Table::num(*scalar / *vec, 1),
                      Table::num(25.0 / *vec, 2)});
        } else {
            t.addRow({id, Table::num(*scalar), u4, "(recurrence)", "-",
                      "-"});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "The vectorizable kernels gain roughly an order of magnitude\n"
        "from the VP; even the ASU's best effort (4x unrolled, list\n"
        "scheduled) stays several-fold behind. LFK 5 and 11 carry\n"
        "loop-borne recurrences, run at scalar-FP latency, and are\n"
        "exactly why the paper's case study uses only ten of the first\n"
        "twelve kernels.\n");
    return 0;
}
