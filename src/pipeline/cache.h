/**
 * @file
 * Thread-safe memoization cache for kernel analyses.
 *
 * The cache maps CacheKey -> shared_future<analysis>. The first
 * requester of a key becomes its *owner*: it computes the analysis and
 * fulfills the future; concurrent requesters of the same key receive
 * the same future and block until the owner finishes. This gives
 * exactly one computation per unique key per cache lifetime with no
 * lock held during the (expensive) computation, and it is deadlock-free
 * because an owner always completes its own future synchronously inside
 * the task that created the entry.
 *
 * Failures propagate: if the owner's computation throws, the exception
 * is stored in the future and rethrown to every waiter; the entry stays
 * poisoned (retrying a deterministic computation would fail again).
 */

#ifndef MACS_PIPELINE_CACHE_H
#define MACS_PIPELINE_CACHE_H

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "macs/hierarchy.h"
#include "pipeline/job.h"

namespace macs::pipeline {

class AnalysisCache
{
  public:
    using Value = std::shared_ptr<const model::KernelAnalysis>;

    /** What claim() hands back: a future and whether we must compute. */
    struct Claim
    {
        std::shared_future<Value> future;
        /** Promise to fulfill; non-null iff this caller is the owner. */
        std::shared_ptr<std::promise<Value>> promise;

        bool owner() const { return promise != nullptr; }
    };

    /**
     * Look up @p key, inserting a pending entry when absent. Exactly
     * one caller per key ever receives an owner claim; it MUST either
     * set_value or set_exception on the promise.
     */
    Claim claim(const CacheKey &key);

    /**
     * Pre-populate @p key with an already computed @p value (checkpoint
     * resume): later claims become hits. Does not bump the hit/miss
     * counters itself. @retval false when the key was already present
     * (the existing entry wins).
     */
    bool seed(const CacheKey &key, Value value);

    /** Lifetime hit/miss counters (hits = non-owner claims). @{ */
    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }
    /** @} */

    /** Number of distinct keys ever claimed. */
    size_t size() const;

    /** Drop all entries and reset the counters. */
    void clear();

  private:
    mutable std::mutex mu_;
    std::map<CacheKey, std::shared_future<Value>> entries_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace macs::pipeline

#endif // MACS_PIPELINE_CACHE_H
