# Empty compiler generated dependencies file for table1_instruction_timing.
# This may be replaced when dependencies are built.
