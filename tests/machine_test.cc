/**
 * @file
 * Unit tests for the machine description: Table 1 timing defaults and
 * the what-if factory variants.
 */

#include <gtest/gtest.h>

#include "machine/machine_config.h"
#include "support/logging.h"

namespace macs::machine {
namespace {

using isa::Opcode;

struct TimingCase
{
    Opcode op;
    double x, y, z, b;
};

class Table1Timing : public ::testing::TestWithParam<TimingCase>
{
};

TEST_P(Table1Timing, MatchesPaperTable1)
{
    MachineConfig m = MachineConfig::convexC240();
    const TimingCase &c = GetParam();
    const VectorTiming &t = m.timing(c.op);
    EXPECT_DOUBLE_EQ(t.x, c.x);
    EXPECT_DOUBLE_EQ(t.y, c.y);
    EXPECT_DOUBLE_EQ(t.z, c.z);
    EXPECT_DOUBLE_EQ(t.bubble, c.b);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table1Timing,
    ::testing::Values(TimingCase{Opcode::VLd, 2, 10, 1.00, 2},
                      TimingCase{Opcode::VSt, 2, 10, 1.00, 4},
                      TimingCase{Opcode::VAdd, 2, 10, 1.00, 1},
                      TimingCase{Opcode::VMul, 2, 12, 1.00, 1},
                      TimingCase{Opcode::VSub, 2, 10, 1.00, 1},
                      TimingCase{Opcode::VDiv, 2, 72, 4.00, 21},
                      TimingCase{Opcode::VSum, 2, 10, 1.35, 0},
                      TimingCase{Opcode::VNeg, 2, 10, 1.00, 1}));

TEST(MachineConfig, ClockIs25MHz40ns)
{
    MachineConfig m = MachineConfig::convexC240();
    EXPECT_DOUBLE_EQ(m.clockMhz, 25.0);
    EXPECT_DOUBLE_EQ(m.clockNs(), 40.0);
}

TEST(MachineConfig, MemoryGeometryDefaults)
{
    MachineConfig m = MachineConfig::convexC240();
    EXPECT_EQ(m.memory.banks, 32);
    EXPECT_EQ(m.memory.bankBusyCycles, 8);
    EXPECT_EQ(m.memory.wordBytes, 8);
    EXPECT_EQ(m.memory.refreshPeriodCycles, 400);
    EXPECT_EQ(m.memory.refreshDurationCycles, 8);
    EXPECT_TRUE(m.memory.refreshEnabled);
}

TEST(MachineConfig, ChainingDefaults)
{
    MachineConfig m = MachineConfig::convexC240();
    EXPECT_TRUE(m.chaining.chainingEnabled);
    EXPECT_EQ(m.chaining.maxReadsPerPair, 2);
    EXPECT_EQ(m.chaining.maxWritesPerPair, 1);
    EXPECT_TRUE(m.chaining.scalarMemSplitsChimes);
}

TEST(MachineConfig, RefreshPenaltyDefaults)
{
    MachineConfig m = MachineConfig::convexC240();
    EXPECT_DOUBLE_EQ(m.refreshPenaltyFactor, 1.02);
    EXPECT_DOUBLE_EQ(m.refreshRunThresholdCycles, 400.0);
}

TEST(MachineConfig, TimingFallsBackToDefaults)
{
    MachineConfig m; // empty timing map
    const VectorTiming &t = m.timing(Opcode::VAdd);
    EXPECT_DOUBLE_EQ(t.z, 1.0);
}

TEST(MachineConfig, TimingOnScalarOpcodePanics)
{
    MachineConfig m = MachineConfig::convexC240();
    EXPECT_THROW(m.timing(Opcode::SMov), PanicError);
    EXPECT_THROW(m.setTiming(Opcode::BrT, VectorTiming{}), PanicError);
}

TEST(MachineConfig, SetTimingOverrides)
{
    MachineConfig m = MachineConfig::convexC240();
    m.setTiming(Opcode::VMul, {2, 8, 1.0, 1});
    EXPECT_DOUBLE_EQ(m.timing(Opcode::VMul).y, 8.0);
}

TEST(MachineConfig, NoBubblesZeroesEveryB)
{
    MachineConfig m = MachineConfig::noBubbles();
    for (auto &[op, t] : m.vectorTiming)
        EXPECT_DOUBLE_EQ(t.bubble, 0.0) << "opcode " << (int)op;
}

TEST(MachineConfig, NoRefreshDisablesBothModelAndSim)
{
    MachineConfig m = MachineConfig::noRefresh();
    EXPECT_FALSE(m.memory.refreshEnabled);
    EXPECT_DOUBLE_EQ(m.refreshPenaltyFactor, 1.0);
}

TEST(MachineConfig, NoChainingVariant)
{
    MachineConfig m = MachineConfig::noChaining();
    EXPECT_FALSE(m.chaining.chainingEnabled);
}

TEST(MachineConfig, NoScalarCacheVariant)
{
    MachineConfig m = MachineConfig::noScalarCache();
    EXPECT_FALSE(m.scalarCache.enabled);
    EXPECT_TRUE(MachineConfig::convexC240().scalarCache.enabled);
}

TEST(MachineConfig, WithBanksVariant)
{
    MachineConfig m = MachineConfig::withBanks(8);
    EXPECT_EQ(m.memory.banks, 8);
    EXPECT_THROW(MachineConfig::withBanks(0), PanicError);
}

} // namespace
} // namespace macs::machine
