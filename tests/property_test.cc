/**
 * @file
 * Property-style sweeps (TEST_P): invariants that must hold across
 * vector lengths, contention levels, machine ablations, and strides.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "isa/parser.h"
#include "support/strings.h"
#include "lfk/kernels.h"
#include "macs/hierarchy.h"
#include "macs/macs_bound.h"
#include "machine/machine_config.h"
#include "sim/memory_port.h"
#include "sim/simulator.h"

namespace macs {
namespace {

double
runKernelCycles(int id, const machine::MachineConfig &cfg,
                sim::SimOptions opt = {})
{
    lfk::Kernel k = lfk::makeKernel(id);
    sim::Simulator s(cfg, k.program, opt);
    k.setup(s);
    return s.run().cycles;
}

// ------------------------------------------------ VL sweep

class VlSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(VlSweep, MacsCplShrinksWithLongerVectors)
{
    // Fixed per-chime costs (bubbles) amortize over more elements.
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    int vl = GetParam();
    model::MacsResult shorter = model::evaluateMacs(p.innerLoop(), cfg, vl);
    model::MacsResult longer =
        model::evaluateMacs(p.innerLoop(), cfg, vl * 2);
    // CPL here is cycles per element-iteration: fixed bubble costs
    // amortize better at larger VL.
    EXPECT_GE(shorter.cpl, longer.cpl - 1e-9);
    // Absolute strip cost still grows with VL.
    EXPECT_GT(longer.cycles, shorter.cycles);
}

INSTANTIATE_TEST_SUITE_P(Lengths, VlSweep,
                         ::testing::Values(8, 16, 32, 64));

// ------------------------------------------------ contention sweep

class ContentionSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ContentionSweep, RunTimeMonotoneInContention)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    int id = GetParam();
    double prev = 0.0;
    for (double f : {1.0, 1.15, 1.3, 1.45, 1.6}) {
        sim::SimOptions opt;
        opt.memoryContentionFactor = f;
        double c = runKernelCycles(id, cfg, opt);
        EXPECT_GE(c, prev) << "factor " << f;
        prev = c;
    }
}

TEST_P(ContentionSweep, DegradationIsPartlyMasked)
{
    // Paper section 4.2: memory slows 1.4-1.6x under load but run time
    // degrades far less because other work masks part of it.
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    int id = GetParam();
    double base = runKernelCycles(id, cfg);
    sim::SimOptions opt;
    opt.memoryContentionFactor = 1.45;
    double loaded = runKernelCycles(id, cfg, opt);
    // Memory-saturated kernels (LFK7) degrade by nearly the whole
    // factor plus a little refresh coupling; others mask more.
    EXPECT_LE(loaded / base, 1.60);
    EXPECT_GE(loaded / base, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ContentionSweep,
                         ::testing::Values(1, 3, 7, 12),
                         [](const auto &info) {
                             return "LFK" + std::to_string(info.param);
                         });

// ------------------------------------------------ machine ablations

class AblationSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AblationSweep, RefreshOffNeverSlower)
{
    int id = GetParam();
    double on =
        runKernelCycles(id, machine::MachineConfig::convexC240());
    double off = runKernelCycles(id, machine::MachineConfig::noRefresh());
    EXPECT_LE(off, on + 1e-9);
}

TEST_P(AblationSweep, NoBubblesNeverSlower)
{
    int id = GetParam();
    double base =
        runKernelCycles(id, machine::MachineConfig::convexC240());
    double nb = runKernelCycles(id, machine::MachineConfig::noBubbles());
    EXPECT_LE(nb, base + 1e-9);
}

TEST_P(AblationSweep, ChainingOffNeverFaster)
{
    int id = GetParam();
    double chained =
        runKernelCycles(id, machine::MachineConfig::convexC240());
    double unchained =
        runKernelCycles(id, machine::MachineConfig::noChaining());
    EXPECT_GE(unchained, chained - 1e-9);
}

TEST_P(AblationSweep, BoundsMonotoneUnderAblations)
{
    // The chime model presumes operand chaining (the paper's analysis
    // targets chained vector machines); the no-chaining ablation
    // breaks its sequential-chime assumption, so it is checked
    // separately below.
    int id = GetParam();
    lfk::Kernel k = lfk::makeKernel(id);
    for (auto cfg : {machine::MachineConfig::convexC240(),
                     machine::MachineConfig::noBubbles(),
                     machine::MachineConfig::noRefresh()}) {
        auto a = model::analyzeKernel(lfk::toKernelCase(k), cfg);
        EXPECT_LE(a.maBound.bound, a.macBound.bound + 1e-9);
        EXPECT_LE(a.macBound.bound, a.macs.cpl + 1e-9);
        EXPECT_LE(a.macs.cpl, a.tP + 1e-9);
        EXPECT_LE(std::max(a.tA, a.tX), a.tP + 1e-9);
        EXPECT_LE(a.tP, a.tA + a.tX + 1e-9);
    }
}

TEST_P(AblationSweep, NoChainingStillOrdersMaMac)
{
    // Without chaining the machine overlaps independent chimes the
    // static model serializes, so only the MA/MAC levels and the
    // lower A/X bound remain guaranteed.
    int id = GetParam();
    lfk::Kernel k = lfk::makeKernel(id);
    auto a = model::analyzeKernel(lfk::toKernelCase(k),
                                  machine::MachineConfig::noChaining());
    EXPECT_LE(a.maBound.bound, a.macBound.bound + 1e-9);
    EXPECT_LE(a.macBound.bound, a.tP + 1e-9);
    EXPECT_LE(std::max(a.tA, a.tX), a.tP + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Kernels, AblationSweep,
                         ::testing::Values(1, 3, 10, 12),
                         [](const auto &info) {
                             return "LFK" + std::to_string(info.param);
                         });

// ------------------------------------------------ stride properties

class StrideSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(StrideSweep, SimulatedRateMatchesBankFormula)
{
    int stride = GetParam();
    machine::MachineConfig cfg = machine::MachineConfig::noRefresh();
    std::string text = format(
        R"(
.comm data,%d
    mov #%d,s1
    mov #128,s6
    mov s6,VL
    lds.l data,s1,v0
    lds.l data,s1,v1
    lds.l data,s1,v2
)",
        int(128 * std::abs(stride) + 16), stride);
    isa::Program p = isa::assemble(text);
    sim::Simulator s(cfg, p);
    double cycles = s.run().cycles;
    sim::MemoryPort port(cfg.memory);
    double expected_rate = port.strideRate(stride);
    // Three back-to-back streams: total time scales with the rate.
    EXPECT_GE(cycles, 3 * 128 * expected_rate);
    EXPECT_LE(cycles, 3 * 128 * expected_rate + 80);
}

TEST_P(StrideSweep, MoreBanksNeverSlower)
{
    int stride = GetParam();
    auto run = [&](int banks) {
        machine::MachineConfig cfg = machine::MachineConfig::withBanks(banks);
        cfg.memory.refreshEnabled = false;
        std::string text = format(
            R"(
.comm data,%d
    mov #%d,s1
    mov #128,s6
    mov s6,VL
    lds.l data,s1,v0
)",
            int(128 * std::abs(stride) + 16), stride);
        isa::Program p = isa::assemble(text);
        sim::Simulator s(cfg, p);
        return s.run().cycles;
    };
    EXPECT_GE(run(8), run(16) - 1e-9);
    EXPECT_GE(run(16), run(32) - 1e-9);
    EXPECT_GE(run(32), run(64) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(1, 2, 4, 5, 8, 16, 25, 32));

// ------------------------------------------------ A/X properties

class AxProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(AxProperty, SubProcessesNeverSlowerThanFull)
{
    // Removing work can only speed a run up.
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    lfk::Kernel k = lfk::makeKernel(GetParam());
    auto a = model::analyzeKernel(lfk::toKernelCase(k), cfg);
    EXPECT_LE(a.tA, a.tP + 1e-9);
    EXPECT_LE(a.tX, a.tP + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Kernels, AxProperty,
                         ::testing::ValuesIn(lfk::lfkIds()),
                         [](const auto &info) {
                             return "LFK" + std::to_string(info.param);
                         });

} // namespace
} // namespace macs
