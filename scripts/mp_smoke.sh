#!/usr/bin/env bash
# Multi-CPU stage (docs/MULTICPU.md): the coupled-engine contracts end
# to end through the CLI and the server:
#   (a) 1-CPU degeneracy: `macs mp --cpus 1` must report exactly the
#       plain Simulator's cycle count (zero degradation, zero
#       collisions) for EVERY kernel on EVERY shipped .machine file —
#       the CLI face of the bit-identity differential test;
#   (b) determinism + golden: the 4-CPU matrix (independent, lockstep,
#       strip, analytic) renders byte-identically run over run AND to
#       the committed golden (tests/golden/mp_matrix.json);
#   (c) serving: POST /v1/multicpu is byte-identical to the CLI
#       rendering at 1, 4, and 16 workers (the memo cache and the
#       engine share one deterministic code path).
# To regenerate the golden after an intentional model change:
#   scripts/mp_smoke.sh --regen
#
# Usage: scripts/mp_smoke.sh [path-to-macs | --regen]
set -euo pipefail

cd "$(dirname "$0")/.."
REGEN=0
if [[ "${1:-}" == "--regen" ]]; then REGEN=1; shift || true; fi
MACS=${1:-${MACS:-build/tools/macs}}
if [[ ! -x "$MACS" ]]; then
    echo "mp: '$MACS' is not built (cmake --build build)" >&2
    exit 1
fi

tmp=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill -KILL "$SERVE_PID" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT
fail() { echo "mp: FAIL: $*" >&2; exit 1; }

GOLDEN=tests/golden/mp_matrix.json

# matrix OUT — render the 4-CPU request matrix into one file.
matrix() {
    local out="$1"
    : >"$out"
    for mix in independent lockstep strip; do
        "$MACS" mp 1 --cpus 4 --mix "$mix" --json - >>"$out"
    done
    "$MACS" mp 1 --cpus 4 --engine analytic --json - >>"$out"
}

if (( REGEN )); then
    matrix "$GOLDEN"
    echo "mp: regenerated $GOLDEN"
    exit 0
fi

echo "== mp: 1-CPU coupled runs degenerate to the plain simulator =="
for machine in "" machines/*.machine; do
    args=()
    name=builtin
    if [[ -n "$machine" ]]; then
        args=(--machine "$machine")
        name=$(basename "$machine" .machine)
    fi
    for id in $(seq 1 12); do
        "$MACS" mp "$id" --cpus 1 --json - "${args[@]}" \
            >"$tmp/one.json" 2>/dev/null ||
            fail "mp $id --cpus 1 on $name failed"
        grep -q '"meanDegradation": [-]*0.000000' "$tmp/one.json" ||
            fail "LFK$id on $name: 1-CPU run is not degenerate"
        grep -q '"collisions": 0,' "$tmp/one.json" ||
            fail "LFK$id on $name: 1-CPU run reports collisions"
        solo=$(grep -o '"soloCycles": [0-9.]*' "$tmp/one.json")
        mean=$(grep -o '"meanCycles": [0-9.]*' "$tmp/one.json")
        [[ "${solo#*: }" == "${mean#*: }" ]] ||
            fail "LFK$id on $name: solo ${solo#*: } != coupled ${mean#*: }"
    done
done
echo "mp: 12 kernels x $(ls machines/*.machine | wc -l | tr -d ' ') \
machines + builtin all degenerate exactly"

echo "== mp: 4-CPU matrix determinism + golden =="
matrix "$tmp/matrix1.json"
matrix "$tmp/matrix2.json"
cmp "$tmp/matrix1.json" "$tmp/matrix2.json" ||
    fail "mp matrix is not run-to-run deterministic"
cmp "$tmp/matrix1.json" "$GOLDEN" ||
    fail "mp matrix differs from $GOLDEN (scripts/mp_smoke.sh --regen \
after an intentional model change)"
echo "mp: matrix matches the committed golden"

echo "== mp: /v1/multicpu byte-identical at 1/4/16 workers =="
"$MACS" mp 1 --cpus 4 --json "$tmp/cli.json" >/dev/null
for w in 1 4 16; do
    rm -f "$tmp/port"
    "$MACS" serve --host 127.0.0.1 --port 0 --port-file "$tmp/port" \
        --workers "$w" >"$tmp/serve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$tmp/port" ]] && break
        kill -0 "$SERVE_PID" 2>/dev/null ||
            { sed 's/^/    /' "$tmp/serve.log" >&2
              fail "serve died before binding"; }
        sleep 0.1
    done
    PORT=$(cat "$tmp/port")
    "$MACS" http POST /v1/multicpu --port "$PORT" --retry 5 \
        --data '{"kernel": 1, "cpus": 4}' >"$tmp/srv_w$w.json" \
        2>/dev/null || fail "POST /v1/multicpu failed at $w workers"
    kill -TERM "$SERVE_PID"; wait "$SERVE_PID" || true; SERVE_PID=""
    cmp "$tmp/srv_w$w.json" "$tmp/cli.json" ||
        fail "/v1/multicpu at $w workers differs from the CLI"
done
echo "mp: server bodies byte-identical to the CLI at every worker count"

echo "mp: all stages passed"
