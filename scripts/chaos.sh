#!/usr/bin/env bash
# Chaos stage (docs/ROBUSTNESS.md): run the golden batch under seeded
# fault plans and assert that
#   (a) the process always exits through the documented 0/1/2/3
#       exit-code contract — never a signal/abort — and
#   (b) every SURVIVING job's report bytes are identical to the
#       fault-free golden (failing jobs must not perturb healthy ones).
#
# All plans are seeded: faultDecision() is a pure function of
# (seed, site, job content hash), so each stage's expected exit code
# and failure set is exactly reproducible on every run and worker
# count.
#
# Usage: scripts/chaos.sh [path-to-macs]
set -euo pipefail

cd "$(dirname "$0")/.."
MACS=${1:-${MACS:-build/tools/macs}}
if [[ ! -x "$MACS" ]]; then
    echo "chaos: '$MACS' is not built (cmake --build build)" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fail() { echo "chaos: FAIL: $*" >&2; exit 1; }

# run NAME EXPECTED_RC ARGS... — run `macs batch ARGS`, capture
# stdout/stderr, assert no signal death and the expected exit code.
run() {
    local name="$1" want="$2"
    shift 2
    local rc=0
    "$MACS" batch "$@" >"$tmp/$name.json" 2>"$tmp/$name.err" || rc=$?
    if (( rc >= 128 )); then
        fail "$name: killed by signal (rc=$rc)"
    fi
    if (( rc != want )); then
        sed 's/^/    /' "$tmp/$name.err" >&2
        fail "$name: exit code $rc, expected $want"
    fi
    echo "chaos: $name: rc=$rc ok"
}

# split NAME — split $tmp/NAME.json into one per-job block file
# $tmp/NAME.jobs/<label> (the lines between the job's braces).
split() {
    local name="$1"
    mkdir -p "$tmp/$name.jobs"
    awk -v dir="$tmp/$name.jobs" '
        /^    \{$/   { blk=""; injob=1; label=""; next }
        /^    \},?$/ { if (injob && label != "") {
                           printf "%s", blk > (dir "/" label)
                           close(dir "/" label) }
                       injob=0; blk=""; next }
        injob { blk = blk $0 "\n"
                if ($0 ~ /"label": "/) {
                    label = $0
                    sub(/.*"label": "/, "", label)
                    sub(/".*/, "", label) } }
    ' "$tmp/$name.json"
}

# survivors NAME — labels of jobs that did NOT fail (golden labels
# minus the error-manifest labels of run NAME).
survivors() {
    local name="$1"
    local failed
    failed=$(awk '/^  job #/ { print $3 }' "$tmp/$name.err")
    for f in "$tmp/golden.jobs"/*; do
        local label
        label=$(basename "$f")
        grep -qxF "$label" <<<"$failed" || echo "$label"
    done
}

# assert_survivors_match NAME — every surviving job block of run NAME
# is byte-identical to the fault-free golden block.
assert_survivors_match() {
    local name="$1" n=0
    split "$name"
    while read -r label; do
        [[ -f "$tmp/$name.jobs/$label" ]] ||
            fail "$name: surviving job '$label' missing from report"
        cmp -s "$tmp/golden.jobs/$label" "$tmp/$name.jobs/$label" ||
            fail "$name: surviving job '$label' differs from golden"
        n=$((n + 1))
    done < <(survivors "$name")
    (( n > 0 )) || fail "$name: no surviving jobs to compare"
    echo "chaos: $name: $n surviving job(s) byte-identical to golden"
}

echo "== chaos: fault-free golden =="
run golden 0 all --json -
split golden

echo "== chaos: transient faults, no retry budget (partial failure) =="
run noretry 2 all --json - --faults worker-exception:0.3:42 --retries 0
grep -q "error manifest" "$tmp/noretry.err" ||
    fail "noretry: missing error manifest on stderr"
assert_survivors_match noretry

echo "== chaos: same faults, retry budget heals the batch =="
run retry 0 all --json - --faults worker-exception:0.3:42 --retries 3
cmp -s "$tmp/golden.json" "$tmp/retry.json" ||
    fail "retry: healed report differs from golden"
echo "chaos: retry: full report byte-identical to golden"

echo "== chaos: allocation failures, retried =="
# Seed chosen so the schedule fires on several jobs but every job
# heals within the budget; fault keys hash the machine content hash,
# so re-pick the seed when MachineConfig grows a field.
run alloc 0 all --json - --faults alloc:0.5:8 --retries 5
cmp -s "$tmp/golden.json" "$tmp/alloc.json" ||
    fail "alloc: healed report differs from golden"

echo "== chaos: certain fault, one job (total failure) =="
run total 3 1 --json - --faults worker-exception:1:1 --retries 0

echo "== chaos: invocation error =="
rc=0
"$MACS" batch all --faults "bogus-site:9:x" >/dev/null 2>&1 || rc=$?
(( rc == 1 )) || fail "invocation: exit code $rc, expected 1"
echo "chaos: invocation: rc=1 ok"

echo "== chaos: checkpoint kill/resume with a torn tail =="
run ckpt1 0 1,2,3 --json - --checkpoint "$tmp/run.ckpt"
size=$(wc -c <"$tmp/run.ckpt")
truncate -s $((size - 40)) "$tmp/run.ckpt" # simulate a mid-append kill
run ckpt2 0 all --json - --checkpoint "$tmp/run.ckpt"
grep -q "1 torn" "$tmp/ckpt2.err" ||
    fail "ckpt2: torn tail record not detected"
cmp -s "$tmp/golden.json" "$tmp/ckpt2.json" ||
    fail "ckpt2: resumed report differs from golden"
run ckpt3 0 all --json - --checkpoint "$tmp/run.ckpt"
grep -q "10 record(s) resumed" "$tmp/ckpt3.err" ||
    fail "ckpt3: expected a fully resumed run"
cmp -s "$tmp/golden.json" "$tmp/ckpt3.json" ||
    fail "ckpt3: fully resumed report differs from golden"

echo "== chaos: injected journal corruption is contained =="
run corrupt1 0 all --json - --checkpoint "$tmp/bad.ckpt" \
    --faults cache-corrupt:1:9
run corrupt2 0 all --json - --checkpoint "$tmp/bad.ckpt"
grep -q "corrupt" "$tmp/corrupt2.err" ||
    fail "corrupt2: corrupted records not reported"
cmp -s "$tmp/golden.json" "$tmp/corrupt2.json" ||
    fail "corrupt2: recomputed report differs from golden"

echo "== chaos: server net faults never silently drop a request =="
# Seeded read/write faults make the server answer 503 + Retry-After or
# cut the connection; the client's bounded retry must land EVERY
# request, and each landed body must be byte-identical to the
# fault-free CLI rendering (docs/SERVER.md).
"$MACS" serve --host 127.0.0.1 --port 0 --port-file "$tmp/port" \
    --workers 2 --faults net-read:0.4:42,net-write:0.3:7 \
    >"$tmp/serve.log" 2>&1 &
SERVE_PID=$!
# NB: the kill must not be a bare simple command — once the server
# has been waited on, SERVE_PID is empty, `kill ""` fails, and under
# `set -e` a failing command in an EXIT trap overrides the script's
# exit status (a passing run would exit 1).
trap '{ kill -KILL "$SERVE_PID" || true; } 2>/dev/null; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    [[ -s "$tmp/port" ]] && break
    sleep 0.1
done
[[ -s "$tmp/port" ]] || fail "server: serve never bound a port"
PORT=$(cat "$tmp/port")
"$MACS" batch 1 --json - >"$tmp/server_cli.json" 2>/dev/null
for i in $(seq 1 12); do
    "$MACS" http POST /v1/analyze --data '{"id": 1}' \
        --port "$PORT" --retry 10 >"$tmp/server_req$i.json" \
        2>/dev/null ||
        fail "server: request $i was dropped despite retries"
    cmp -s "$tmp/server_cli.json" "$tmp/server_req$i.json" ||
        fail "server: request $i body differs from the CLI rendering"
done
"$MACS" http GET /metrics --port "$PORT" --retry 10 \
    >"$tmp/server_metrics.txt" 2>/dev/null ||
    fail "server: /metrics unreachable"
grep -q 'macs_faults_fired_total{site="net-read"}' \
    "$tmp/server_metrics.txt" ||
    fail "server: net-read faults did not fire (plan inert?)"
kill -TERM "$SERVE_PID"
rc=0; wait "$SERVE_PID" || rc=$?
SERVE_PID=""
(( rc == 0 )) || fail "server: exit code $rc after SIGTERM, expected 0"
echo "chaos: server: 12/12 faulted requests landed byte-identical"

echo "== chaos: supervised fleet survives seeded worker kills =="
# A 4-process SO_REUSEPORT fleet under the seeded plan
# proc-crash:0.5:72,proc-hang:0.5:13. faultDecision() is a pure
# function of (seed, site, slot<<8|incarnation), so the kill schedule
# is exactly reproducible (docs/ROBUSTNESS.md):
#   slot 0: kill -9 @inc0, SIGSTOP hang @inc1 (watchdog kill) -> 2
#   slot 1: kill -9 @inc0                                     -> 1
#   slot 2: kill -9 @inc0, kill -9 @inc1                      -> 2
#   slot 3: kill -9 @inc0                                     -> 1
# Every worker dies at least once mid-load; the load must not notice.
FAILOVER=${FAILOVER:-build/bench/failover_latency}
rm -f "$tmp/port"
"$MACS" serve --host 127.0.0.1 --port 0 --port-file "$tmp/port" \
    --processes 4 --workers 2 --heartbeat-ms 50 --liveness-ms 400 \
    --faults proc-crash:0.5:72,proc-hang:0.5:13 \
    >"$tmp/fleet.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [[ -s "$tmp/port" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null ||
        { sed 's/^/    /' "$tmp/fleet.log" >&2
          fail "fleet: supervisor died before binding"; }
    sleep 0.1
done
[[ -s "$tmp/port" ]] || fail "fleet: supervisor never bound a port"
PORT=$(cat "$tmp/port")

# The 1k-connection load proof: every request lands a 200 and every
# body is byte-identical across worker incarnations, while the kill
# schedule above executes underneath it.
if [[ -x "$FAILOVER" ]]; then
    "$FAILOVER" --port "$PORT" --requests 1000 --clients 16 \
        >"$tmp/failover.txt" 2>&1 ||
        { sed 's/^/    /' "$tmp/failover.txt" >&2
          fail "fleet: load dropped or corrupted requests"; }
    grep -q "every request landed byte-identical" \
        "$tmp/failover.txt" || fail "fleet: load proof line missing"
    echo "chaos: fleet: 1000/1000 requests landed byte-identical"
else
    echo "chaos: fleet: $FAILOVER not built, using 12-request fallback"
fi

# Survivor responses stay byte-identical to the single-process CLI
# rendering — which incarnation answers must be unobservable.
"$MACS" batch 1 --json - >"$tmp/fleet_cli.json" 2>/dev/null
for i in $(seq 1 12); do
    "$MACS" http POST /v1/analyze --data '{"id": 1}' \
        --port "$PORT" --retry 10 >"$tmp/fleet_req$i.json" \
        2>/dev/null ||
        fail "fleet: request $i was dropped despite retries"
    cmp -s "$tmp/fleet_cli.json" "$tmp/fleet_req$i.json" ||
        fail "fleet: request $i body differs from the CLI rendering"
done
echo "chaos: fleet: 12/12 post-kill requests byte-identical to CLI"

# Restart counts are deterministic: poll any worker's /metrics (each
# scrape reports the supervisor roll-up) until the seeded schedule
# has fully executed, then assert the exact per-slot counters.
settled=0
for _ in $(seq 1 120); do
    "$MACS" http GET /metrics --port "$PORT" --retry 5 \
        >"$tmp/fleet_metrics.txt" 2>/dev/null || true
    if grep -q 'macs_supervisor_restarts_total{worker="0"} 2' \
           "$tmp/fleet_metrics.txt" &&
       grep -q 'macs_supervisor_restarts_total{worker="2"} 2' \
           "$tmp/fleet_metrics.txt" &&
       grep -q 'macs_supervisor_workers_alive 4' \
           "$tmp/fleet_metrics.txt"; then
        settled=1
        break
    fi
    sleep 0.25
done
(( settled == 1 )) ||
    { sed 's/^/    /' "$tmp/fleet.log" >&2
      fail "fleet: seeded kill schedule never settled"; }
for want in \
    'macs_supervisor_restarts_total{worker="0"} 2' \
    'macs_supervisor_restarts_total{worker="1"} 1' \
    'macs_supervisor_restarts_total{worker="2"} 2' \
    'macs_supervisor_restarts_total{worker="3"} 1' \
    'macs_supervisor_crashes_total{worker="0"} 1' \
    'macs_supervisor_crashes_total{worker="2"} 2' \
    'macs_supervisor_hangs_total{worker="0"} 1' \
    'macs_supervisor_hangs_total{worker="1"} 0' \
    'macs_supervisor_degraded 0' \
    'macs_supervisor_processes 4' \
    'macs_supervisor_workers_alive 4'; do
    grep -qF "$want" "$tmp/fleet_metrics.txt" ||
        fail "fleet: /metrics lacks '$want' (schedule drifted?)"
done
echo "chaos: fleet: restart counts match the seeded plan exactly"

# Rolling drain: SIGTERM the supervisor; every surviving worker must
# finish, the drain must be clean, and the exit code 0.
kill -TERM "$SERVE_PID"
rc=0; wait "$SERVE_PID" || rc=$?
SERVE_PID=""
(( rc == 0 )) || { sed 's/^/    /' "$tmp/fleet.log" >&2
                   fail "fleet: exit code $rc after SIGTERM, expected 0"; }
grep -q "supervisor: rolling drain" "$tmp/fleet.log" ||
    fail "fleet: rolling-drain marker missing from the log"
grep -q "UNCLEANLY" "$tmp/fleet.log" &&
    fail "fleet: a worker drained uncleanly"
echo "chaos: fleet: rolling drain clean, rc=0"

echo "chaos: all stages passed"
