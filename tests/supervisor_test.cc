// Tests for the process supervisor (docs/ROBUSTNESS.md "Supervision
// hierarchy", docs/SERVER.md "Multi-process serving"): the
// RestartPolicy arithmetic, the shared-memory FleetState and its
// /metrics / /healthz renderers, the proc fault keys, and the
// Supervisor itself driven end to end with REAL forked workers —
// clean rolling drain, crash restart with backoff, missed-heartbeat
// hang kills, restart-budget exhaustion into degraded mode, service
// loss, seeded-fault restart determinism, and the open-fd baseline
// after a drain.
//
// The test process is single-threaded when Supervisor::run() forks
// (gtest runs tests sequentially on the main thread); worker stubs
// run in the child and never return into gtest — Supervisor _exit()s
// them. Stubs are tiny scripted loops: beat until SIGTERM, crash on
// a chosen incarnation, or go silent to trip the watchdog.

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "faults/fault_injection.h"
#include "supervisor/fleet_state.h"
#include "supervisor/proc_faults.h"
#include "supervisor/restart_policy.h"
#include "supervisor/supervisor.h"

namespace macs::supervisor {
namespace {

// ---------------------------------------------------------------------
// RestartPolicy: pure arithmetic.
// ---------------------------------------------------------------------

TEST(RestartPolicy, BackoffDoublesFromBaseToCap)
{
    RestartPolicy policy;
    policy.baseMs = 50;
    policy.capMs = 2000;
    EXPECT_EQ(policy.backoffMs(0), 50);
    EXPECT_EQ(policy.backoffMs(1), 100);
    EXPECT_EQ(policy.backoffMs(2), 200);
    EXPECT_EQ(policy.backoffMs(5), 1600);
    EXPECT_EQ(policy.backoffMs(6), 2000);
    EXPECT_EQ(policy.backoffMs(7), 2000);
}

TEST(RestartPolicy, BackoffSaturatesWithoutOverflow)
{
    RestartPolicy policy;
    policy.baseMs = 50;
    policy.capMs = 2000;
    // 2^1000 would overflow any integer; the loop must cap first.
    EXPECT_EQ(policy.backoffMs(1000), 2000);
    EXPECT_EQ(policy.backoffMs(-3), 50); // clamped to "no restarts yet"
}

TEST(RestartPolicy, ExhaustedAtBudget)
{
    RestartPolicy policy;
    policy.budget = 3;
    EXPECT_FALSE(policy.exhausted(0));
    EXPECT_FALSE(policy.exhausted(2));
    EXPECT_TRUE(policy.exhausted(3));
    EXPECT_TRUE(policy.exhausted(7));

    policy.budget = 0; // never restart: first death abandons the slot
    EXPECT_TRUE(policy.exhausted(0));
}

// ---------------------------------------------------------------------
// Proc fault keys: (slot, incarnation) pairs map to distinct keys, so
// a seeded plan selects a deterministic set of deaths.
// ---------------------------------------------------------------------

TEST(ProcFaults, KeysAreDistinctPerSlotAndIncarnation)
{
    EXPECT_EQ(procFaultKey(0, 0), 0u);
    EXPECT_EQ(procFaultKey(0, 1), 1u);
    EXPECT_EQ(procFaultKey(1, 0), 256u);
    EXPECT_EQ(procFaultKey(3, 2), 0x302u);

    std::vector<uint64_t> seen;
    for (int slot = 0; slot < kMaxWorkers; ++slot)
        for (int inc = 0; inc < 16; ++inc)
            seen.push_back(procFaultKey(slot, inc));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(ProcFaults, DecisionIsPureFunctionOfSeedSiteKey)
{
    for (int slot = 0; slot < 4; ++slot) {
        uint64_t key = procFaultKey(slot, 0);
        bool first =
            faults::faultDecision(42, faults::Site::ProcCrash, key, 0.5);
        EXPECT_EQ(first, faults::faultDecision(
                             42, faults::Site::ProcCrash, key, 0.5));
        // Different site name => independent draw stream.
        (void)faults::faultDecision(42, faults::Site::ProcHang, key, 0.5);
    }
}

TEST(ProcFaults, SiteNamesRoundTrip)
{
    EXPECT_STREQ(faults::siteName(faults::Site::ProcCrash), "proc-crash");
    EXPECT_STREQ(faults::siteName(faults::Site::ProcHang), "proc-hang");
    EXPECT_EQ(faults::siteFromName("proc-crash"),
              faults::Site::ProcCrash);
    EXPECT_EQ(faults::siteFromName("proc-hang"), faults::Site::ProcHang);
}

// ---------------------------------------------------------------------
// FleetState renderers: deterministic bytes for a given state.
// ---------------------------------------------------------------------

TEST(FleetState, WorkerStateNames)
{
    EXPECT_STREQ(workerStateName(WorkerState::Empty), "empty");
    EXPECT_STREQ(workerStateName(WorkerState::Serving), "serving");
    EXPECT_STREQ(workerStateName(WorkerState::Abandoned), "abandoned");
    EXPECT_STREQ(workerStateName(WorkerState::Drained), "drained");
}

TEST(FleetState, MetricsRollupRendersEverySlotInOrder)
{
    auto state = std::make_unique<FleetState>();
    state->processes.store(2);
    state->degraded.store(1);
    state->slots[0].state.store(
        static_cast<uint32_t>(WorkerState::Serving));
    state->slots[0].restarts.store(3);
    state->slots[0].crashes.store(2);
    state->slots[0].hangs.store(1);
    state->slots[1].state.store(
        static_cast<uint32_t>(WorkerState::Abandoned));

    std::string text = renderFleetMetrics(*state, 0);
    EXPECT_NE(text.find("macs_supervisor_degraded 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("macs_supervisor_draining 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("macs_supervisor_processes 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("macs_supervisor_workers_alive 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("macs_supervisor_worker_up{worker=\"0\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("macs_supervisor_worker_up{worker=\"1\"} 0\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("macs_supervisor_restarts_total{worker=\"0\"} 3\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("macs_supervisor_crashes_total{worker=\"0\"} 2\n"),
        std::string::npos);
    EXPECT_NE(text.find("macs_supervisor_hangs_total{worker=\"0\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("macs_supervisor_self_worker 0\n"),
              std::string::npos);
    // Slot order is fixed: worker 0's series precede worker 1's.
    EXPECT_LT(text.find("restarts_total{worker=\"0\"}"),
              text.find("restarts_total{worker=\"1\"}"));
    // Identical state renders identical bytes.
    EXPECT_EQ(text, renderFleetMetrics(*state, 0));
    // Without a self slot the self series is omitted.
    EXPECT_EQ(renderFleetMetrics(*state, -1)
                  .find("macs_supervisor_self_worker"),
              std::string::npos);
}

TEST(FleetState, HealthJsonRollup)
{
    auto state = std::make_unique<FleetState>();
    state->processes.store(3);
    state->slots[0].state.store(
        static_cast<uint32_t>(WorkerState::Serving));
    state->slots[1].state.store(
        static_cast<uint32_t>(WorkerState::Serving));
    state->slots[2].state.store(
        static_cast<uint32_t>(WorkerState::Backoff));
    state->slots[2].restarts.store(2);

    EXPECT_EQ(renderFleetHealthJson(*state, 1),
              ", \"worker\": 1, \"processes\": 3, \"alive\": 2, "
              "\"restarts\": 2, \"degraded\": false");
}

TEST(FleetState, SharedMappingCrossesFork)
{
    FleetState *state = createSharedFleetState();
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(state->processes.load(), 0u);

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        state->slots[0].pid.store(1234);
        _exit(0);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_EQ(state->slots[0].pid.load(), 1234)
        << "child write must be visible through the shared mapping";
    destroySharedFleetState(state);
}

// ---------------------------------------------------------------------
// Supervisor end to end, with real forked workers.
// ---------------------------------------------------------------------

volatile std::sig_atomic_t g_worker_term = 0;

void
onWorkerTerm(int)
{
    g_worker_term = 1;
}

/** Worker stub: beat every 10 ms until the rolling drain's SIGTERM. */
int
beatUntilTerm(const WorkerContext &ctx)
{
    g_worker_term = 0;
    std::signal(SIGTERM, onWorkerTerm);
    while (g_worker_term == 0) {
        char beat = 1;
        if (::write(ctx.heartbeatFd, &beat, 1) < 0 && errno == EPIPE)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return 0;
}

SupervisorOptions
fastOptions(int processes)
{
    SupervisorOptions opt;
    opt.processes = processes;
    opt.heartbeatIntervalMs = 10;
    opt.livenessTimeoutMs = 300;
    opt.restart.baseMs = 10;
    opt.restart.capMs = 40;
    opt.drainTimeoutMs = 5000;
    opt.verbose = false;
    return opt;
}

size_t
openFdCount()
{
    size_t n = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator("/proc/self/fd"))
        (void)entry, ++n;
    return n;
}

TEST(Supervisor, CleanRollingDrainExitsZero)
{
    SupervisorOptions opt = fastOptions(2);
    opt.drainAfterMs = 200;
    Supervisor sup(opt, beatUntilTerm);
    EXPECT_EQ(sup.run(), Supervisor::kExitClean);

    const FleetState &fleet = sup.fleet();
    EXPECT_TRUE(fleet.isDraining());
    EXPECT_FALSE(fleet.isDegraded());
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(fleet.slots[i].workerState(), WorkerState::Drained)
            << "slot " << i;
        EXPECT_EQ(fleet.slots[i].restarts.load(), 0u);
    }
}

TEST(Supervisor, CrashedWorkerIsRestarted)
{
    SupervisorOptions opt = fastOptions(2);
    opt.drainAfterMs = 500;
    // Slot 1 crashes on its first incarnation only.
    auto worker = [](const WorkerContext &ctx) -> int {
        if (ctx.slot == 1 && ctx.incarnation == 0)
            return 1; // counted as a crash: exit outside a drain
        return beatUntilTerm(ctx);
    };
    Supervisor sup(opt, worker);
    EXPECT_EQ(sup.run(), Supervisor::kExitClean);

    const FleetState &fleet = sup.fleet();
    EXPECT_EQ(fleet.slots[0].restarts.load(), 0u);
    EXPECT_EQ(fleet.slots[1].restarts.load(), 1u);
    EXPECT_EQ(fleet.slots[1].crashes.load(), 1u);
    EXPECT_EQ(fleet.slots[1].hangs.load(), 0u);
    EXPECT_EQ(fleet.slots[1].incarnation.load(), 1u);
    EXPECT_FALSE(fleet.isDegraded());
    EXPECT_EQ(fleet.slots[1].workerState(), WorkerState::Drained);
}

TEST(Supervisor, HungWorkerIsKilledByWatchdogAndRestarted)
{
    SupervisorOptions opt = fastOptions(1);
    opt.livenessTimeoutMs = 150;
    opt.drainAfterMs = 700;
    // First incarnation beats once (reaches readiness) then goes
    // silent — a genuine hang from the supervisor's point of view.
    auto worker = [](const WorkerContext &ctx) -> int {
        if (ctx.incarnation == 0) {
            char beat = 1;
            (void)!::write(ctx.heartbeatFd, &beat, 1);
            for (;;)
                std::this_thread::sleep_for(std::chrono::seconds(10));
        }
        return beatUntilTerm(ctx);
    };
    Supervisor sup(opt, worker);
    EXPECT_EQ(sup.run(), Supervisor::kExitClean);

    const FleetState &fleet = sup.fleet();
    EXPECT_EQ(fleet.slots[0].hangs.load(), 1u);
    EXPECT_EQ(fleet.slots[0].crashes.load(), 0u);
    EXPECT_EQ(fleet.slots[0].restarts.load(), 1u);
    EXPECT_EQ(fleet.slots[0].workerState(), WorkerState::Drained);
}

TEST(Supervisor, BudgetExhaustionDegradesFleetButSurvivorsServe)
{
    SupervisorOptions opt = fastOptions(2);
    opt.restart.budget = 1;
    opt.drainAfterMs = 500;
    // Slot 0 crashes on every incarnation; slot 1 serves. After the
    // budget (1 restart) is exhausted, slot 0 is abandoned and the
    // fleet is degraded — but the drain of the survivor is clean, so
    // run() still exits 0.
    auto worker = [](const WorkerContext &ctx) -> int {
        if (ctx.slot == 0)
            return 1;
        return beatUntilTerm(ctx);
    };
    Supervisor sup(opt, worker);
    EXPECT_EQ(sup.run(), Supervisor::kExitClean);

    const FleetState &fleet = sup.fleet();
    EXPECT_TRUE(fleet.isDegraded());
    EXPECT_EQ(fleet.slots[0].workerState(), WorkerState::Abandoned);
    EXPECT_EQ(fleet.slots[0].restarts.load(), 1u);
    EXPECT_EQ(fleet.slots[0].crashes.load(), 2u);
    EXPECT_EQ(fleet.slots[1].workerState(), WorkerState::Drained);
}

TEST(Supervisor, LastWorkerLostExitsServiceLost)
{
    SupervisorOptions opt = fastOptions(1);
    opt.restart.budget = 0; // first death abandons the only slot
    opt.drainAfterMs = 5000; // never reached: the fleet dies first
    auto worker = [](const WorkerContext &) -> int { return 1; };
    Supervisor sup(opt, worker);
    EXPECT_EQ(sup.run(), Supervisor::kExitServiceLost);
    EXPECT_EQ(sup.fleet().slots[0].workerState(),
              WorkerState::Abandoned);
}

TEST(Supervisor, OnReadyFiresOnceAfterEveryWorkerBeats)
{
    SupervisorOptions opt = fastOptions(2);
    opt.drainAfterMs = 250;
    int ready_calls = 0;
    Supervisor sup(opt, beatUntilTerm, [&] { ++ready_calls; });
    EXPECT_EQ(sup.run(), Supervisor::kExitClean);
    EXPECT_EQ(ready_calls, 1);
}

TEST(Supervisor, OpenFdCountReturnsToBaselineAfterDrain)
{
    size_t baseline = openFdCount();
    {
        SupervisorOptions opt = fastOptions(3);
        opt.drainAfterMs = 200;
        Supervisor sup(opt, beatUntilTerm);
        EXPECT_EQ(sup.run(), Supervisor::kExitClean);
        EXPECT_EQ(openFdCount(), baseline)
            << "heartbeat pipe fds must all be closed by run()'s "
               "return";
    }
    EXPECT_EQ(openFdCount(), baseline);
}

TEST(Supervisor, SeededProcCrashGivesDeterministicRestartCounts)
{
    // The worker consults the SAME seeded plan the chaos stage uses
    // (scripts/chaos.sh: proc-crash:0.5:72): proc-crash keyed by
    // (slot, incarnation). Restart counts are therefore a pure
    // function of the plan — predicted here with faultDecision() and
    // asserted against the live fleet counters. Seed 72 kills every
    // one of the 4 slots at least once (restarts 1,1,2,1).
    constexpr uint64_t kSeed = 72;
    constexpr double kProb = 0.5;
    constexpr int kProcesses = 4;

    uint32_t expected[kProcesses] = {};
    for (int slot = 0; slot < kProcesses; ++slot) {
        int inc = 0;
        while (faults::faultDecision(kSeed, faults::Site::ProcCrash,
                                     procFaultKey(slot, inc), kProb))
            ++inc;
        expected[slot] = static_cast<uint32_t>(inc);
    }

    SupervisorOptions opt = fastOptions(kProcesses);
    opt.drainAfterMs = 900;
    auto worker = [](const WorkerContext &ctx) -> int {
        faults::FaultInjector injector(
            faults::FaultPlan::parse("proc-crash:0.5:72"));
        if (injector.shouldFire(
                faults::Site::ProcCrash,
                procFaultKey(ctx.slot, ctx.incarnation)))
            return 1; // die exactly when the plan says so
        return beatUntilTerm(ctx);
    };
    Supervisor sup(opt, worker);
    EXPECT_EQ(sup.run(), Supervisor::kExitClean);

    const FleetState &fleet = sup.fleet();
    uint32_t total = 0;
    for (int slot = 0; slot < kProcesses; ++slot) {
        EXPECT_EQ(fleet.slots[slot].restarts.load(), expected[slot])
            << "slot " << slot
            << ": restart count must match the seeded prediction";
        total += expected[slot];
    }
    EXPECT_EQ(fleet.totalRestarts(), total);
    for (int slot = 0; slot < kProcesses; ++slot)
        EXPECT_GE(expected[slot], 1u)
            << "seed 72 must kill every slot at least once or the "
               "chaos coverage claim is vacuous";
}

} // namespace
} // namespace macs::supervisor
