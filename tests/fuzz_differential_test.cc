/**
 * @file
 * Randomized differential testing: generate random DSL loops, run them
 * through the direct AST interpreter, compile them (vector mode when
 * the vectorizer accepts, scalar mode always), execute on the
 * simulator, and require identical results. Each seed is a TEST_P
 * case, so failures name the offending seed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/analysis.h"
#include "compiler/codegen.h"
#include "compiler/interpreter.h"
#include "compiler/loop_parser.h"
#include "machine/machine_config.h"
#include "machine/machine_file.h"
#include "sim/simulator.h"
#include "support/logging.h"

#ifndef MACS_CORPUS_DIR
#error "MACS_CORPUS_DIR must be defined by the build"
#endif

namespace macs::compiler {
namespace {

/** Small deterministic PRNG (xorshift*), independent of libc. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed * 2685821657736338717ULL + 1)
    {
    }

    uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 2685821657736338717ULL;
    }

    int
    below(int n)
    {
        return static_cast<int>(next() % static_cast<uint64_t>(n));
    }

    double
    uniform(double lo, double hi)
    {
        double u = static_cast<double>(next() >> 11) /
                   static_cast<double>(1ULL << 53);
        return lo + u * (hi - lo);
    }

  private:
    uint64_t state_;
};

constexpr long kTrip = 150;
constexpr size_t kArrayWords = 512;
const char *const kArrays[] = {"aa", "bb", "cc", "dd", "ee"};
const char *const kScalars[] = {"p1", "p2", "p3"};

/** Random leaf: array ref (common), scalar, or literal. */
ExprPtr
randomLeaf(Rng &rng)
{
    int pick = rng.below(10);
    if (pick < 6) {
        const char *name = kArrays[rng.below(5)];
        long coef = rng.below(4) == 0 ? 2 : 1;
        long offset = rng.below(6);
        return array(name, coef, offset);
    }
    if (pick < 9)
        return scalar(kScalars[rng.below(3)]);
    return number(0.25 + 0.25 * rng.below(8));
}

/**
 * Random expression anchored on an array reference, grown by wrapping
 * with binary operations whose other operand is a leaf — this keeps
 * every subexpression vector-anchored (the code generator rejects
 * loop-invariant subtrees by design).
 */
ExprPtr
randomExpr(Rng &rng)
{
    ExprPtr e = array(kArrays[rng.below(5)], 1, rng.below(6));
    int ops = 1 + rng.below(5);
    for (int i = 0; i < ops; ++i) {
        ExprPtr leaf = randomLeaf(rng);
        switch (rng.below(8)) {
          case 0:
            e = neg(std::move(e));
            break;
          case 1:
          case 2:
            e = add(std::move(e), std::move(leaf));
            break;
          case 3:
            e = add(std::move(leaf), std::move(e));
            break;
          case 4:
          case 5:
            e = mul(std::move(e), std::move(leaf));
            break;
          case 6:
            e = sub(std::move(e), std::move(leaf));
            break;
          case 7:
            // Divide only by loop-invariant positive scalars to keep
            // values finite and comparisons exact.
            e = div(std::move(e), scalar(kScalars[rng.below(3)]));
            break;
        }
    }
    return e;
}

Loop
randomLoop(Rng &rng)
{
    Loop loop;
    loop.var = "k";
    loop.stride = 1;
    int stmts = 1 + rng.below(3);
    for (int i = 0; i < stmts; ++i) {
        Stmt s;
        if (rng.below(5) == 0) {
            // Sum reduction.
            s.arrayDst = false;
            s.dstName = "acc";
            s.rhs = add(scalar("acc"), randomExpr(rng));
        } else {
            s.arrayDst = true;
            s.dstName = kArrays[rng.below(5)];
            s.dstCoef = 1;
            s.dstOffset = rng.below(3);
            s.rhs = randomExpr(rng);
        }
        loop.stmts.push_back(std::move(s));
    }
    return loop;
}

Environment
randomEnv(Rng &rng)
{
    Environment env;
    for (const char *name : kArrays) {
        std::vector<double> v(kArrayWords);
        for (double &x : v)
            x = rng.uniform(0.5, 1.5);
        env.arrays[name] = std::move(v);
    }
    for (const char *name : kScalars)
        env.scalars[name] = rng.uniform(0.5, 1.5);
    env.scalars["acc"] = 0.0;
    return env;
}

/** Compile+simulate @p loop from @p init; nullopt if not compilable. */
Environment
runCompiled(const Loop &loop, const Environment &init, bool vectorize,
            long trip = kTrip)
{
    CompileOptions opt;
    opt.tripCount = trip;
    opt.vectorize = vectorize;
    for (const char *name : kArrays)
        opt.arrays.push_back({name, kArrayWords});
    CompileResult res = compile(loop, opt);

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator sim(cfg, res.program);
    for (const auto &[name, data] : init.arrays)
        sim.memory().fillDoubles(name, data);
    for (const auto &[name, value] : init.scalars) {
        std::string cell = "scalar_" + name;
        if (res.program.hasDataSymbol(cell))
            sim.memory().fillDoubles(cell, {value});
    }
    sim.run();

    Environment out;
    for (const auto &[name, data] : init.arrays)
        out.arrays[name] =
            sim.memory().readDoubles(name, data.size());
    for (const auto &[name, value] : init.scalars) {
        std::string cell = "scalar_" + name;
        out.scalars[name] =
            res.program.hasDataSymbol(cell)
                ? sim.memory().readDoubles(cell, 1)[0]
                : value;
    }
    return out;
}

void
expectSame(const Environment &got, const Environment &want,
           const std::string &context, double tol = 1e-9)
{
    for (const auto &[name, data] : want.arrays) {
        const auto &g = got.arrays.at(name);
        ASSERT_EQ(g.size(), data.size());
        for (size_t i = 0; i < data.size(); ++i) {
            double scale =
                std::max({std::abs(g[i]), std::abs(data[i]), 1.0});
            ASSERT_LE(std::abs(g[i] - data[i]), tol * scale)
                << context << ": " << name << "[" << i << "] got "
                << g[i] << " want " << data[i];
        }
    }
    for (const auto &[name, value] : want.scalars) {
        double g = got.scalars.at(name);
        double scale = std::max({std::abs(g), std::abs(value), 1.0});
        ASSERT_LE(std::abs(g - value), tol * scale)
            << context << ": scalar " << name;
    }
}

class FuzzDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzDifferential, CompiledMatchesInterpreter)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 17);
    Loop loop = randomLoop(rng);
    Environment init = randomEnv(rng);
    SourceAnalysis sa = analyzeSource(loop);
    std::string ctx = "seed " + std::to_string(GetParam()) + "\n" +
                      loop.toString();

    // Scalar mode must match strict sequential semantics for every
    // generated loop, recurrences included.
    {
        Environment want = init;
        interpret(loop, kTrip, want);
        Environment got = runCompiled(loop, init, false);
        expectSame(got, want, ctx + "(scalar mode)");
    }

    // Vector mode must match statement-granular vector semantics
    // whenever the vectorizer accepts the loop.
    if (sa.vectorizable) {
        Environment want = init;
        interpretVector(loop, kTrip, want);
        Environment got = runCompiled(loop, init, true);
        expectSame(got, want, ctx + "(vector mode)", 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range(1, 33));

// ------------------------------------------------------- corpus replay
//
// tests/corpus/ holds shrunk regression loops in the DSL text format
// (see tests/corpus/README.md). They replay through exactly the same
// differential harness as the random seeds — deterministically, in
// sorted file order — so once-found bugs stay found.

/** One corpus file: `#!` metadata plus DSL text. */
struct CorpusCase
{
    std::string name;
    uint64_t seed = 1;
    long trip = kTrip;
    Loop loop;
};

CorpusCase
loadCorpusFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read corpus file ", path.string());
    CorpusCase c;
    c.name = path.filename().string();
    std::string dsl, line;
    while (std::getline(in, line)) {
        std::string trimmed = line;
        trimmed.erase(0, trimmed.find_first_not_of(" \t"));
        if (trimmed.rfind("#!", 0) == 0) {
            std::istringstream meta(trimmed.substr(2));
            std::string key;
            meta >> key;
            if (key == "seed")
                meta >> c.seed;
            else if (key == "trip")
                meta >> c.trip;
            else
                fatal("corpus ", c.name, ": unknown metadata '", key,
                      "'");
            continue;
        }
        if (trimmed.empty() || trimmed[0] == '#')
            continue; // comment (the DSL lexer has no comments)
        dsl += line;
        dsl += '\n';
    }
    c.loop = parseLoop(dsl);
    return c;
}

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(MACS_CORPUS_DIR))
        if (entry.path().extension() == ".loop")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(CorpusReplay, CheckedInLoopsStillAgree)
{
    std::vector<std::filesystem::path> files = corpusFiles();
    ASSERT_FALSE(files.empty())
        << "no .loop files under " << MACS_CORPUS_DIR;

    for (const std::filesystem::path &path : files) {
        CorpusCase c = loadCorpusFile(path);
        SCOPED_TRACE(c.name + " (seed " + std::to_string(c.seed) +
                     ", trip " + std::to_string(c.trip) + ")\n" +
                     c.loop.toString());
        Rng rng(c.seed);
        Environment init = randomEnv(rng);
        SourceAnalysis sa = analyzeSource(c.loop);

        {
            Environment want = init;
            interpret(c.loop, c.trip, want);
            Environment got = runCompiled(c.loop, init, false, c.trip);
            expectSame(got, want, c.name + " (scalar mode)");
        }
        if (sa.vectorizable) {
            Environment want = init;
            interpretVector(c.loop, c.trip, want);
            Environment got = runCompiled(c.loop, init, true, c.trip);
            expectSame(got, want, c.name + " (vector mode)", 1e-8);
        }
    }
}

TEST(CorpusReplay, CorpusCoversVectorAndScalarPaths)
{
    // The corpus must keep exercising both compilation modes: at least
    // one loop the vectorizer accepts and one it must refuse.
    size_t vectorizable = 0, scalar_only = 0;
    for (const std::filesystem::path &path : corpusFiles()) {
        CorpusCase c = loadCorpusFile(path);
        if (analyzeSource(c.loop).vectorizable)
            ++vectorizable;
        else
            ++scalar_only;
    }
    EXPECT_GE(vectorizable, 1u);
    EXPECT_GE(scalar_only, 1u);
}

// --------------------------------------------- machine-file corpus
//
// tests/corpus/machine/ holds valid machine descriptions (fuzz seeds
// for the .machine parser); tests/corpus/bad_machine/ holds torn or
// hostile ones. Valid seeds must round-trip: parse -> fingerprint ->
// the fingerprint and content hash are stable under a reparse of the
// same bytes. Hostile ones must error without crashing.

TEST(MachineCorpusReplay, ValidSeedsRoundTripDeterministically)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(
             fs::path(MACS_CORPUS_DIR) / "machine"))
        if (entry.path().extension() == ".machine")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty())
        << "no .machine files under " << MACS_CORPUS_DIR
        << "/machine";

    for (const fs::path &path : files) {
        SCOPED_TRACE(path.filename().string());
        machine::MachineFile first, second;
        Diagnostics d1, d2;
        ASSERT_TRUE(machine::loadMachineFile(path.string(), first, d1))
            << d1.render();
        ASSERT_TRUE(
            machine::loadMachineFile(path.string(), second, d2));
        EXPECT_EQ(first.name, second.name);
        EXPECT_EQ(first.config.fingerprint(),
                  second.config.fingerprint());
        EXPECT_EQ(first.config.contentHash(),
                  second.config.contentHash());
    }
}

TEST(MachineCorpusReplay, HostileFilesErrorWithoutCrashing)
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(
             fs::path(MACS_CORPUS_DIR) / "bad_machine"))
        if (entry.path().extension() == ".machine")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty());

    for (const fs::path &path : files) {
        SCOPED_TRACE(path.filename().string());
        machine::MachineFile mf;
        Diagnostics diags;
        EXPECT_FALSE(
            machine::loadMachineFile(path.string(), mf, diags));
        EXPECT_TRUE(diags.hasErrors());
    }
}

// ---------------------------------------------------------------- interpreter

TEST(Interpreter, SequentialSemanticsSeeRecurrences)
{
    Loop loop;
    loop.stmts.push_back(Stmt{});
    Stmt &s = loop.stmts.back();
    s.arrayDst = true;
    s.dstName = "x";
    s.dstOffset = 1;
    s.rhs = add(array("x", 1, 0), array("y", 1, 1));

    Environment env;
    env.arrays["x"] = {1.0, 0.0, 0.0, 0.0};
    env.arrays["y"] = {0.0, 1.0, 2.0, 3.0};
    interpret(loop, 3, env);
    // Prefix sum: x = {1, 2, 4, 7}.
    EXPECT_DOUBLE_EQ(env.arrays["x"][3], 7.0);
}

TEST(Interpreter, VectorSemanticsReadBeforeWrite)
{
    // x(k) = x(k+1): the vector load happens before any store.
    Loop loop;
    loop.stmts.push_back(Stmt{});
    Stmt &s = loop.stmts.back();
    s.arrayDst = true;
    s.dstName = "x";
    s.rhs = array("x", 1, 1);

    Environment seq, vec;
    seq.arrays["x"] = {0, 1, 2, 3, 4};
    vec.arrays["x"] = {0, 1, 2, 3, 4};
    interpret(loop, 4, seq);
    interpretVector(loop, 4, vec, 128);
    // Both shift left here (reads are ahead of writes either way).
    EXPECT_DOUBLE_EQ(vec.arrays["x"][0], 1.0);
    EXPECT_DOUBLE_EQ(seq.arrays["x"][0], 1.0);
}

TEST(Interpreter, StripGranularReduction)
{
    Loop loop;
    loop.stmts.push_back(Stmt{});
    Stmt &s = loop.stmts.back();
    s.arrayDst = false;
    s.dstName = "q";
    s.rhs = add(scalar("q"), array("z", 1, 0));

    Environment env;
    env.arrays["z"].assign(300, 1.0);
    env.scalars["q"] = 5.0;
    interpretVector(loop, 300, env, 128);
    EXPECT_DOUBLE_EQ(env.scalars["q"], 305.0);
}

TEST(Interpreter, ErrorsOnUndeclaredNames)
{
    Loop loop;
    loop.stmts.push_back(Stmt{});
    Stmt &s = loop.stmts.back();
    s.arrayDst = true;
    s.dstName = "ghost";
    s.rhs = number(1.0);

    Environment env;
    EXPECT_THROW(interpret(loop, 1, env), FatalError);
}

TEST(Interpreter, ErrorsOnOutOfRangeIndex)
{
    Loop loop;
    loop.stmts.push_back(Stmt{});
    Stmt &s = loop.stmts.back();
    s.arrayDst = true;
    s.dstName = "x";
    s.rhs = array("x", 1, 10);

    Environment env;
    env.arrays["x"] = {1.0, 2.0};
    EXPECT_THROW(interpret(loop, 1, env), FatalError);
}

} // namespace
} // namespace macs::compiler
