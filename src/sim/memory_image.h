/**
 * @file
 * Functional memory for the simulator: a flat word-addressed store with
 * a symbol table mapping a program's data symbols to base addresses.
 *
 * All data is held as 64-bit words (the C-240 memory word). Doubles and
 * integers are bit-cast in and out; the simulator's scalar registers
 * hold raw 64-bit patterns, so loads and stores are type-agnostic.
 */

#ifndef MACS_SIM_MEMORY_IMAGE_H
#define MACS_SIM_MEMORY_IMAGE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.h"

namespace macs::sim {

/** Byte-addressed (8-byte-word-backed) simulated memory. */
class MemoryImage
{
  public:
    /**
     * Lay out the program's data symbols contiguously in declaration
     * order, each aligned to a 64-byte boundary, and zero-fill.
     */
    explicit MemoryImage(const isa::Program &prog);

    /** Base byte address of @p symbol; fatal() when undeclared. */
    uint64_t symbolBase(const std::string &symbol) const;

    /** Total allocated bytes. */
    uint64_t sizeBytes() const { return words_.size() * 8; }

    /** Read the 64-bit word at byte address @p addr (must be aligned). */
    uint64_t readWord(uint64_t addr) const;
    /** Write the 64-bit word at byte address @p addr. */
    void writeWord(uint64_t addr, uint64_t value);

    /** Read a double at byte address @p addr. */
    double readDouble(uint64_t addr) const;
    /** Write a double at byte address @p addr. */
    void writeDouble(uint64_t addr, double value);

    /** Typed array views over a symbol, for initializing workloads. @{ */
    void fillDoubles(const std::string &symbol,
                     const std::vector<double> &values);
    void fillWords(const std::string &symbol,
                   const std::vector<int64_t> &values);
    std::vector<double> readDoubles(const std::string &symbol,
                                    size_t count, size_t first = 0) const;
    /** @} */

  private:
    uint64_t wordIndex(uint64_t addr) const;

    std::vector<uint64_t> words_;
    std::map<std::string, uint64_t> bases_;
};

} // namespace macs::sim

#endif // MACS_SIM_MEMORY_IMAGE_H
