# Empty dependencies file for table4_bounds_vs_measured.
# This may be replaced when dependencies are built.
