/**
 * @file
 * Crash-safe checkpoint/resume journal for the batch pipeline
 * (docs/ROBUSTNESS.md).
 *
 * A CheckpointJournal is an append-only file of completed analyses:
 * each record is a header line naming the cache key, the payload
 * length, and an FNV-1a content hash, followed by the payload (a
 * line-oriented text serialization of the KernelAnalysis that
 * round-trips doubles bit-exactly via %.17g). The journal is written
 * with one write()+flush per record, so a killed run leaves at most
 * one torn record at the tail.
 *
 * open() replays an existing journal and VERIFIES every record:
 *  - a record whose payload hash does not match is CORRUPT: skipped,
 *    counted, and recovered past (resync on the next record magic);
 *  - a record whose payload runs past end-of-file is TORN: skipped
 *    and counted (the kill happened mid-append);
 *  - only hash-verified records are trusted and served to the engine.
 *
 * BatchEngine seeds its AnalysisCache from the journal before running
 * (completed jobs become cache hits — the resume path recomputes only
 * unfinished work) and appends each newly computed analysis. All
 * journal events are published as macs_checkpoint_records_total
 * counters (event = loaded / corrupt / torn / appended /
 * append_failed).
 *
 * Fault sites (src/faults): cache-corrupt flips the stored payload
 * hash of an appended record (so the NEXT run must detect and skip
 * it); io-write-fail makes append() fail. Append failures degrade
 * gracefully: the run continues without checkpoint coverage for that
 * record, with a warning and a counter.
 */

#ifndef MACS_PIPELINE_CHECKPOINT_H
#define MACS_PIPELINE_CHECKPOINT_H

#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "faults/fault_injection.h"
#include "obs/metrics.h"
#include "pipeline/cache.h"
#include "pipeline/job.h"

namespace macs::pipeline {

/**
 * Bit-exact text serialization of a KernelAnalysis ("macs-analysis-v1").
 * @{
 */
std::string serializeAnalysis(const model::KernelAnalysis &analysis);
/** @retval false when @p text is not a well-formed serialization. */
bool deserializeAnalysis(std::string_view text,
                         model::KernelAnalysis &out);
/** @} */

class CheckpointJournal
{
  public:
    struct LoadStats
    {
        size_t loaded = 0;  ///< hash-verified records replayed
        size_t corrupt = 0; ///< records skipped: hash/format mismatch
        size_t torn = 0;    ///< records skipped: truncated tail
    };

    /**
     * @param path     the journal file (created when absent)
     * @param metrics  registry for macs_checkpoint_* counters;
     *                 nullptr means obs::Registry::global()
     * @param faults   injector for the cache-corrupt / io-write-fail
     *                 sites; nullptr disables injection here
     */
    explicit CheckpointJournal(
        std::string path, obs::Registry *metrics = nullptr,
        const faults::FaultInjector *faults = nullptr);

    /**
     * Replay the journal (if the file exists) and open it for
     * appending. Throws faults::IoError when the file cannot be
     * opened for append. Safe to call once per journal.
     */
    LoadStats open();

    /** Verified entry for @p key, or nullptr. */
    AnalysisCache::Value lookup(const CacheKey &key) const;

    /**
     * Seed every verified entry into @p cache (existing entries win).
     * `macs serve` warms its shared cache from the journal at startup.
     */
    void seedInto(AnalysisCache &cache) const;

    size_t entryCount() const;

    /**
     * Append one completed analysis; thread-safe, one flushed write
     * per record. Failures (real or injected) are contained: warn +
     * counter, never an exception — a broken journal must not fail
     * the batch. Records already present are skipped.
     */
    void append(const CacheKey &key,
                const model::KernelAnalysis &analysis);

    const std::string &path() const { return path_; }
    const LoadStats &loadStats() const { return loadStats_; }

  private:
    obs::Registry &registry() const;
    void count(const char *event, double n = 1.0) const;

    std::string path_;
    obs::Registry *metrics_;
    const faults::FaultInjector *faults_;

    mutable std::mutex mu_;
    std::map<CacheKey, AnalysisCache::Value> entries_;
    std::ofstream out_;
    LoadStats loadStats_;
    uint64_t appendSequence_ = 0;
};

} // namespace macs::pipeline

#endif // MACS_PIPELINE_CHECKPOINT_H
